//! Plan-placement equivalence: for randomized temporal data and a family
//! of temporal queries, every operator placement the optimizer may choose
//! must produce the same multiset of tuples. We force placements by
//! skewing cost factors to extremes and compare results.
//!
//! (The snapshot-approximate `G4-taggr-window-push(approx)` rule is
//! disabled here; its semantics are verified separately below.)

use proptest::prelude::*;
use tango::algebra::{tup, Attr, Relation, Schema, SortSpec, Type, Value};
use tango::core::cost::CostFactors;
use tango::minidb::{Connection, Database, Link, LinkProfile};
use tango::Tango;

fn make_db(rows: &[(i64, i64, f64, i32, i32)]) -> Database {
    let db = Database::new(Link::new(LinkProfile::instant()));
    let schema = Schema::with_inferred_period(vec![
        Attr::new("PosID", Type::Int),
        Attr::new("EmpID", Type::Int),
        Attr::new("PayRate", Type::Double),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
    ]);
    db.create_table("POSITION", schema).unwrap();
    db.insert_rows(
        "POSITION",
        rows.iter().map(|&(p, e, pay, t1, t2)| tup![p, e, Value::Double(pay), t1, t2]).collect(),
    )
    .unwrap();
    Connection::new(db.clone()).execute("ANALYZE TABLE POSITION COMPUTE STATISTICS").unwrap();
    db
}

fn run_with_factors(db: &Database, sql: &str, factors: CostFactors) -> (Relation, String) {
    let mut tango = Tango::connect(db.clone());
    tango.options_mut().opt.approx_rules = false;
    tango.set_factors(factors);
    let (rel, report) = tango.query(sql).unwrap_or_else(|e| panic!("{e}\nsql: {sql}"));
    (rel, report.optimized.explain())
}

fn mid_heavy() -> CostFactors {
    CostFactors {
        p_tm: 1e-9,
        p_td: 1e9,
        p_taggm1: 1e-9,
        p_mjm: 1e-9,
        p_taggd1: 1e9,
        p_jd: 1e9,
        ..Default::default()
    }
}

fn dbms_heavy() -> CostFactors {
    CostFactors {
        p_tm: 1e9,
        p_taggm1: 1e9,
        p_mjm: 1e9,
        p_sem: 1e9,
        p_taggd1: 1e-9,
        p_jd: 1e-9,
        ..Default::default()
    }
}

fn queries() -> Vec<String> {
    vec![
        // Query 1 flavour: temporal aggregation
        "VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION GROUP BY PosID ORDER BY PosID"
            .to_string(),
        // global temporal aggregation with several functions
        "VALIDTIME SELECT COUNT(EmpID) AS C, MIN(PayRate) AS MN, MAX(PayRate) AS MX \
         FROM POSITION WHERE PosID < 3 GROUP BY PosID"
            .to_string(),
        // Query 3 flavour: temporal self-join with selections
        "VALIDTIME SELECT A.PosID, A.EmpID, B.EmpID FROM POSITION A, POSITION B \
         WHERE A.PosID = B.PosID AND A.T1 < 40 AND B.T1 < 40 ORDER BY A.PosID"
            .to_string(),
        // Query 2 flavour: nested temporal aggregation + temporal join
        "VALIDTIME SELECT P.PosID, C, P.EmpID FROM \
           (VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION GROUP BY PosID) A, \
           POSITION P WHERE A.PosID = P.PosID AND P.PayRate > 5 ORDER BY P.PosID"
            .to_string(),
        // regular projection/selection pipeline
        "SELECT EmpID, PosID FROM POSITION WHERE PayRate > 5 AND PosID < 4 ORDER BY EmpID, PosID"
            .to_string(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]
    #[test]
    fn middleware_and_dbms_placements_agree(
        rows in proptest::collection::vec(
            (1i64..6, 1i64..8, 0.0f64..20.0, 0i32..50, 1i32..30),
            1..40,
        ),
    ) {
        let fixed: Vec<(i64, i64, f64, i32, i32)> =
            rows.into_iter().map(|(p, e, pay, t1, d)| (p, e, pay, t1, t1 + d)).collect();
        let db = make_db(&fixed);
        for sql in queries() {
            let (mid, mid_plan) = run_with_factors(&db, &sql, mid_heavy());
            let (dbms, dbms_plan) = run_with_factors(&db, &sql, dbms_heavy());
            prop_assert!(
                mid.multiset_eq(&dbms),
                "placements disagree for {sql}\nmid plan:\n{mid_plan}\nmid:\n{mid}\ndbms plan:\n{dbms_plan}\ndbms:\n{dbms}"
            );
        }
    }
}

/// The approximate window-push rule must preserve *snapshot* semantics:
/// within the window, the aggregate at every time point is unchanged.
#[test]
fn approx_window_push_preserves_snapshots() {
    let rows: Vec<(i64, i64, f64, i32, i32)> = vec![
        (1, 1, 9.0, 0, 100),
        (1, 2, 9.0, 10, 30),
        (1, 3, 9.0, 25, 60),
        (2, 4, 9.0, 5, 95),
        (2, 5, 9.0, 40, 45),
    ];
    let db = make_db(&rows);
    let sql = "VALIDTIME SELECT P.PosID, C, P.EmpID FROM \
               (VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION GROUP BY PosID) A, \
               POSITION P WHERE A.PosID = P.PosID AND T1 < 50 AND T2 > 20 ORDER BY P.PosID";

    let run = |approx: bool| -> Relation {
        let mut tango = Tango::connect(db.clone());
        tango.options_mut().opt.approx_rules = approx;
        // force the middleware so the pushed/unpushed variants actually differ
        tango.set_factors(mid_heavy());
        tango.query(sql).unwrap().0
    };
    let with_push = run(true);
    let without_push = run(false);

    // compare snapshots at every point inside the window (20..50)
    let snap = |rel: &Relation, t: i64| -> Vec<(i64, i64, i64)> {
        let s = rel.schema().clone();
        let (i1, i2) = s.period().unwrap();
        let mut v: Vec<(i64, i64, i64)> = rel
            .tuples()
            .iter()
            .filter(|r| r[i1].as_int().unwrap() <= t && t < r[i2].as_int().unwrap())
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap(), r[2].as_int().unwrap()))
            .collect();
        v.sort();
        v
    };
    for t in 20..50 {
        assert_eq!(snap(&with_push, t), snap(&without_push, t), "snapshot diverges at t={t}");
    }
}

// ---------------------------------------------------------------------
// Differential placement harness: hand-built physical plans pinning the
// paper's Figure 7 / 9 / 11a placements — all-DBMS, all-middleware, and
// mixed (including a TRANSFER^D round trip) — executed directly against
// the same database. Whatever side of the wire each operator lands on,
// the sorted results must be identical.
// ---------------------------------------------------------------------

mod placements {
    use super::make_db;
    use std::sync::Arc;
    use tango::algebra::{AggFunc, AggSpec, Expr, ProjItem, Relation, SortSpec};
    use tango::core::engine;
    use tango::core::phys::{Algo, PhysNode};
    use tango::minidb::{Connection, Database};

    struct PlanBuilder {
        conn: Connection,
    }

    impl PlanBuilder {
        fn scan(&self, table: &str) -> PhysNode {
            PhysNode {
                algo: Algo::ScanD(table.into()),
                schema: Arc::new(self.conn.table_schema(table).unwrap()),
                children: vec![],
            }
        }

        fn un(&self, algo: Algo, child: PhysNode) -> PhysNode {
            let schema = Arc::new(algo.output_schema(&[child.schema.as_ref()]).unwrap());
            PhysNode { algo, schema, children: vec![child] }
        }

        fn bin(&self, algo: Algo, l: PhysNode, r: PhysNode) -> PhysNode {
            let schema =
                Arc::new(algo.output_schema(&[l.schema.as_ref(), r.schema.as_ref()]).unwrap());
            PhysNode { algo, schema, children: vec![l, r] }
        }
    }

    fn count_agg() -> (Vec<String>, Vec<AggSpec>) {
        (vec!["PosID".into()], vec![AggSpec::new(AggFunc::Count, Some("PosID"), "Cnt")])
    }

    fn proj(cols: &[&str]) -> Vec<ProjItem> {
        cols.iter().map(|c| ProjItem::col(*c)).collect()
    }

    fn eq_posid() -> Vec<(String, String)> {
        vec![("PosID".into(), "PosID".into())]
    }

    /// Figure 7's three Query 1 placements.
    fn q1_plans(b: &PlanBuilder) -> Vec<(&'static str, PhysNode)> {
        let (group_by, aggs) = count_agg();
        let dbms_proj = |b: &PlanBuilder| {
            b.un(Algo::ProjectD(proj(&["PosID", "T1", "T2"])), b.scan("POSITION"))
        };
        let keys = SortSpec::by(["PosID", "T1"]);
        let p1 = b.un(
            Algo::TAggrM { group_by: group_by.clone(), aggs: aggs.clone() },
            b.un(Algo::TransferM, b.un(Algo::SortD(keys.clone()), dbms_proj(b))),
        );
        let p2 = b.un(
            Algo::TAggrM { group_by: group_by.clone(), aggs: aggs.clone() },
            b.un(Algo::SortM(keys.clone()), b.un(Algo::TransferM, dbms_proj(b))),
        );
        let p3 = b.un(
            Algo::TransferM,
            b.un(Algo::SortD(keys), b.un(Algo::TAggrD { group_by, aggs }, dbms_proj(b))),
        );
        vec![("mixed: sortD+taggrM", p1), ("middleware: sortM+taggrM", p2), ("all DBMS", p3)]
    }

    /// Figure 9-style Query 2 placements, including the round trip that
    /// loads the middleware aggregate back with `TRANSFER^D`.
    fn q2_plans(b: &PlanBuilder) -> Vec<(&'static str, PhysNode)> {
        let (group_by, aggs) = count_agg();
        let keys = SortSpec::by(["PosID", "T1"]);
        let arg = |b: &PlanBuilder| {
            b.un(Algo::ProjectD(proj(&["PosID", "T1", "T2"])), b.scan("POSITION"))
        };
        let agg_m = |b: &PlanBuilder| {
            b.un(
                Algo::TAggrM { group_by: group_by.clone(), aggs: aggs.clone() },
                b.un(Algo::TransferM, b.un(Algo::SortD(keys.clone()), arg(b))),
            )
        };
        let payrate = || Expr::cmp(tango::algebra::CmpOp::Gt, Expr::col("PayRate"), Expr::lit(5.0));
        let p_side = |b: &PlanBuilder| b.un(Algo::FilterD(payrate()), b.scan("POSITION"));

        // mixed with T^D: aggregate in the middleware, join + sort in the DBMS
        let p1 = b.un(
            Algo::TransferM,
            b.un(
                Algo::SortD(SortSpec::by(["PosID"])),
                b.bin(Algo::TJoinD(eq_posid()), b.un(Algo::TransferD, agg_m(b)), p_side(b)),
            ),
        );
        // middleware join over a DBMS-sorted probe side
        let p2 = b.bin(
            Algo::TMergeJoinM(eq_posid()),
            agg_m(b),
            b.un(Algo::TransferM, b.un(Algo::SortD(SortSpec::by(["PosID"])), p_side(b))),
        );
        // everything in the DBMS
        let p3 = b.un(
            Algo::TransferM,
            b.un(
                Algo::SortD(SortSpec::by(["PosID"])),
                b.bin(
                    Algo::TJoinD(eq_posid()),
                    b.un(Algo::TAggrD { group_by, aggs }, arg(b)),
                    p_side(b),
                ),
            ),
        );
        vec![("mixed: taggrM+T^D+joinD", p1), ("middleware: tjoinM", p2), ("all DBMS", p3)]
    }

    /// Figure 11a's Query 3 placements: temporal self-join in the DBMS
    /// vs. in the middleware.
    fn q3_plans(b: &PlanBuilder) -> Vec<(&'static str, PhysNode)> {
        let sel = Expr::cmp(tango::algebra::CmpOp::Lt, Expr::col("T1"), Expr::lit(40));
        let side = |b: &PlanBuilder| {
            b.un(
                Algo::ProjectD(proj(&["PosID", "EmpID", "T1", "T2"])),
                b.un(Algo::FilterD(sel.clone()), b.scan("POSITION")),
            )
        };
        let p1 = b.un(
            Algo::TransferM,
            b.un(
                Algo::SortD(SortSpec::by(["PosID"])),
                b.bin(Algo::TJoinD(eq_posid()), side(b), side(b)),
            ),
        );
        let sorted_side = |b: &PlanBuilder| {
            b.un(Algo::TransferM, b.un(Algo::SortD(SortSpec::by(["PosID"])), side(b)))
        };
        let p2 = b.bin(Algo::TMergeJoinM(eq_posid()), sorted_side(b), sorted_side(b));
        vec![("all DBMS", p1), ("middleware: tjoinM", p2)]
    }

    fn run(conn: &Connection, plan: &PhysNode) -> Relation {
        engine::execute(conn, plan).unwrap_or_else(|e| panic!("{e}\nplan:\n{plan:?}")).0
    }

    fn assert_placements_agree(db: &Database, plans: Vec<(&'static str, PhysNode)>, query: &str) {
        let conn = Connection::new(db.clone());
        let (ref_name, ref_plan) = &plans[0];
        let reference = run(&conn, ref_plan);
        for (name, plan) in &plans[1..] {
            let got = run(&conn, plan);
            assert!(
                got.multiset_eq(&reference),
                "{query}: placement `{name}` disagrees with `{ref_name}`\n\
                 {ref_name}:\n{reference}\n{name}:\n{got}"
            );
        }
    }

    fn dataset() -> Database {
        let rows: Vec<(i64, i64, f64, i32, i32)> = (0..48)
            .map(|i| {
                let t1 = ((i * 13) % 55) as i32;
                (1 + i % 5, 1 + (i * 7) % 11, ((i * 3) % 17) as f64, t1, t1 + 2 + (i % 9) as i32)
            })
            .collect();
        make_db(&rows)
    }

    #[test]
    fn q1_placements_agree() {
        let db = dataset();
        let b = PlanBuilder { conn: Connection::new(db.clone()) };
        assert_placements_agree(&db, q1_plans(&b), "Q1");
    }

    #[test]
    fn q2_placements_agree() {
        let db = dataset();
        let b = PlanBuilder { conn: Connection::new(db.clone()) };
        assert_placements_agree(&db, q2_plans(&b), "Q2");
    }

    #[test]
    fn q3_placements_agree() {
        let db = dataset();
        let b = PlanBuilder { conn: Connection::new(db.clone()) };
        assert_placements_agree(&db, q3_plans(&b), "Q3");
    }
}

/// Sorted delivery: whatever the placement, ORDER BY must hold.
#[test]
fn order_by_is_respected_everywhere() {
    let rows: Vec<(i64, i64, f64, i32, i32)> =
        (0..30).map(|i| ((i * 7) % 5, i, 8.0, (i % 10) as i32, (i % 10 + 3) as i32)).collect();
    let db = make_db(&rows);
    let sql = "VALIDTIME SELECT A.PosID, A.EmpID, B.EmpID FROM POSITION A, POSITION B \
               WHERE A.PosID = B.PosID ORDER BY A.PosID";
    for f in [mid_heavy(), dbms_heavy(), CostFactors::default()] {
        let (rel, plan) = run_with_factors(&db, sql, f);
        assert!(rel.is_sorted_by(&SortSpec::by(["PosID"])), "unsorted output from plan:\n{plan}");
    }
}
