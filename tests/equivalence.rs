//! Plan-placement equivalence: for randomized temporal data and a family
//! of temporal queries, every operator placement the optimizer may choose
//! must produce the same multiset of tuples. We force placements by
//! skewing cost factors to extremes and compare results.
//!
//! (The snapshot-approximate `G4-taggr-window-push(approx)` rule is
//! disabled here; its semantics are verified separately below.)

use proptest::prelude::*;
use tango::algebra::{tup, Attr, Relation, Schema, SortSpec, Type, Value};
use tango::core::cost::CostFactors;
use tango::minidb::{Connection, Database, Link, LinkProfile};
use tango::Tango;

fn make_db(rows: &[(i64, i64, f64, i32, i32)]) -> Database {
    let db = Database::new(Link::new(LinkProfile::instant()));
    let schema = Schema::with_inferred_period(vec![
        Attr::new("PosID", Type::Int),
        Attr::new("EmpID", Type::Int),
        Attr::new("PayRate", Type::Double),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
    ]);
    db.create_table("POSITION", schema).unwrap();
    db.insert_rows(
        "POSITION",
        rows.iter().map(|&(p, e, pay, t1, t2)| tup![p, e, Value::Double(pay), t1, t2]).collect(),
    )
    .unwrap();
    Connection::new(db.clone()).execute("ANALYZE TABLE POSITION COMPUTE STATISTICS").unwrap();
    db
}

fn run_with_factors(db: &Database, sql: &str, factors: CostFactors) -> (Relation, String) {
    let mut tango = Tango::connect(db.clone());
    tango.options_mut().opt.approx_rules = false;
    tango.set_factors(factors);
    let (rel, report) = tango.query(sql).unwrap_or_else(|e| panic!("{e}\nsql: {sql}"));
    (rel, report.optimized.explain())
}

fn mid_heavy() -> CostFactors {
    CostFactors {
        p_tm: 1e-9,
        p_td: 1e9,
        p_taggm1: 1e-9,
        p_mjm: 1e-9,
        p_taggd1: 1e9,
        p_jd: 1e9,
        ..Default::default()
    }
}

fn dbms_heavy() -> CostFactors {
    CostFactors {
        p_tm: 1e9,
        p_taggm1: 1e9,
        p_mjm: 1e9,
        p_sem: 1e9,
        p_taggd1: 1e-9,
        p_jd: 1e-9,
        ..Default::default()
    }
}

fn queries() -> Vec<String> {
    vec![
        // Query 1 flavour: temporal aggregation
        "VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION GROUP BY PosID ORDER BY PosID"
            .to_string(),
        // global temporal aggregation with several functions
        "VALIDTIME SELECT COUNT(EmpID) AS C, MIN(PayRate) AS MN, MAX(PayRate) AS MX \
         FROM POSITION WHERE PosID < 3 GROUP BY PosID"
            .to_string(),
        // Query 3 flavour: temporal self-join with selections
        "VALIDTIME SELECT A.PosID, A.EmpID, B.EmpID FROM POSITION A, POSITION B \
         WHERE A.PosID = B.PosID AND A.T1 < 40 AND B.T1 < 40 ORDER BY A.PosID"
            .to_string(),
        // Query 2 flavour: nested temporal aggregation + temporal join
        "VALIDTIME SELECT P.PosID, C, P.EmpID FROM \
           (VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION GROUP BY PosID) A, \
           POSITION P WHERE A.PosID = P.PosID AND P.PayRate > 5 ORDER BY P.PosID"
            .to_string(),
        // regular projection/selection pipeline
        "SELECT EmpID, PosID FROM POSITION WHERE PayRate > 5 AND PosID < 4 ORDER BY EmpID, PosID"
            .to_string(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]
    #[test]
    fn middleware_and_dbms_placements_agree(
        rows in proptest::collection::vec(
            (1i64..6, 1i64..8, 0.0f64..20.0, 0i32..50, 1i32..30),
            1..40,
        ),
    ) {
        let fixed: Vec<(i64, i64, f64, i32, i32)> =
            rows.into_iter().map(|(p, e, pay, t1, d)| (p, e, pay, t1, t1 + d)).collect();
        let db = make_db(&fixed);
        for sql in queries() {
            let (mid, mid_plan) = run_with_factors(&db, &sql, mid_heavy());
            let (dbms, dbms_plan) = run_with_factors(&db, &sql, dbms_heavy());
            prop_assert!(
                mid.multiset_eq(&dbms),
                "placements disagree for {sql}\nmid plan:\n{mid_plan}\nmid:\n{mid}\ndbms plan:\n{dbms_plan}\ndbms:\n{dbms}"
            );
        }
    }
}

/// The approximate window-push rule must preserve *snapshot* semantics:
/// within the window, the aggregate at every time point is unchanged.
#[test]
fn approx_window_push_preserves_snapshots() {
    let rows: Vec<(i64, i64, f64, i32, i32)> = vec![
        (1, 1, 9.0, 0, 100),
        (1, 2, 9.0, 10, 30),
        (1, 3, 9.0, 25, 60),
        (2, 4, 9.0, 5, 95),
        (2, 5, 9.0, 40, 45),
    ];
    let db = make_db(&rows);
    let sql = "VALIDTIME SELECT P.PosID, C, P.EmpID FROM \
               (VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION GROUP BY PosID) A, \
               POSITION P WHERE A.PosID = P.PosID AND T1 < 50 AND T2 > 20 ORDER BY P.PosID";

    let run = |approx: bool| -> Relation {
        let mut tango = Tango::connect(db.clone());
        tango.options_mut().opt.approx_rules = approx;
        // force the middleware so the pushed/unpushed variants actually differ
        tango.set_factors(mid_heavy());
        tango.query(sql).unwrap().0
    };
    let with_push = run(true);
    let without_push = run(false);

    // compare snapshots at every point inside the window (20..50)
    let snap = |rel: &Relation, t: i64| -> Vec<(i64, i64, i64)> {
        let s = rel.schema().clone();
        let (i1, i2) = s.period().unwrap();
        let mut v: Vec<(i64, i64, i64)> = rel
            .tuples()
            .iter()
            .filter(|r| r[i1].as_int().unwrap() <= t && t < r[i2].as_int().unwrap())
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap(), r[2].as_int().unwrap()))
            .collect();
        v.sort();
        v
    };
    for t in 20..50 {
        assert_eq!(snap(&with_push, t), snap(&without_push, t), "snapshot diverges at t={t}");
    }
}

/// Sorted delivery: whatever the placement, ORDER BY must hold.
#[test]
fn order_by_is_respected_everywhere() {
    let rows: Vec<(i64, i64, f64, i32, i32)> =
        (0..30).map(|i| ((i * 7) % 5, i, 8.0, (i % 10) as i32, (i % 10 + 3) as i32)).collect();
    let db = make_db(&rows);
    let sql = "VALIDTIME SELECT A.PosID, A.EmpID, B.EmpID FROM POSITION A, POSITION B \
               WHERE A.PosID = B.PosID ORDER BY A.PosID";
    for f in [mid_heavy(), dbms_heavy(), CostFactors::default()] {
        let (rel, plan) = run_with_factors(&db, sql, f);
        assert!(rel.is_sorted_by(&SortSpec::by(["PosID"])), "unsorted output from plan:\n{plan}");
    }
}
