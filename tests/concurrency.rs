//! Concurrency: the mini-DBMS is shared state behind a `parking_lot`
//! RwLock and the wire is a shared atomic clock; many middleware sessions
//! and raw connections must be able to hammer one database concurrently.

use std::sync::Arc;
use std::thread;
use tango::algebra::tup;
use tango::minidb::{Connection, Database, Link, LinkProfile};
use tango::Tango;

fn seed_db() -> Database {
    let db = Database::new(Link::new(LinkProfile::instant()));
    let conn = Connection::new(db.clone());
    conn.execute("CREATE TABLE POSITION (PosID INT, EmpName VARCHAR(20), T1 INT, T2 INT)").unwrap();
    let rows: Vec<_> =
        (0..2_000).map(|i: i64| tup![i % 50, format!("emp{i}"), i % 100, i % 100 + 10]).collect();
    db.insert_rows("POSITION", rows).unwrap();
    conn.execute("ANALYZE TABLE POSITION COMPUTE STATISTICS").unwrap();
    db
}

#[test]
fn concurrent_readers_agree() {
    let db = seed_db();
    let expected = Connection::new(db.clone())
        .query_all("SELECT PosID, COUNT(*) AS C FROM POSITION GROUP BY PosID ORDER BY PosID")
        .unwrap();
    let expected = Arc::new(expected);
    let mut handles = Vec::new();
    for _ in 0..8 {
        let db = db.clone();
        let expected = expected.clone();
        handles.push(thread::spawn(move || {
            let conn = Connection::new(db);
            for _ in 0..20 {
                let got = conn
                    .query_all(
                        "SELECT PosID, COUNT(*) AS C FROM POSITION GROUP BY PosID ORDER BY PosID",
                    )
                    .unwrap();
                assert!(got.list_eq(&expected));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn concurrent_middleware_sessions() {
    let db = seed_db();
    let mut handles = Vec::new();
    for t in 0..4 {
        let db = db.clone();
        handles.push(thread::spawn(move || {
            let mut tango = Tango::connect(db);
            for i in 0..5 {
                let (rel, _) = tango
                    .query(&format!(
                        "VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION \
                         WHERE PosID < {} GROUP BY PosID ORDER BY PosID",
                        10 + (t * 5 + i) % 30
                    ))
                    .unwrap();
                assert!(!rel.is_empty());
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

/// Writers (temp-table churn from `TRANSFER^D`-style loads) interleaved
/// with readers must neither deadlock nor corrupt the catalog.
#[test]
fn readers_with_temp_table_churn() {
    let db = seed_db();
    let writer = {
        let db = db.clone();
        thread::spawn(move || {
            let conn = Connection::new(db);
            for i in 0..30 {
                let name = format!("TMP_CHURN_{i}");
                conn.load_direct(
                    &name,
                    tango::algebra::Schema::new(vec![tango::algebra::Attr::new(
                        "X",
                        tango::algebra::Type::Int,
                    )]),
                    (0..100).map(|j| tup![j as i64]).collect(),
                )
                .unwrap();
                conn.execute(&format!("DROP TABLE {name}")).unwrap();
            }
        })
    };
    let reader = {
        let db = db.clone();
        thread::spawn(move || {
            let conn = Connection::new(db);
            for _ in 0..50 {
                let r = conn.query_all("SELECT COUNT(*) AS C FROM POSITION").unwrap();
                assert_eq!(r.tuples()[0][0].as_int(), Some(2_000));
            }
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
    // all temp tables gone
    assert!(db.table_names().iter().all(|t| !t.starts_with("TMP_CHURN")));
}
