//! Concurrency: the mini-DBMS is shared state behind a `parking_lot`
//! RwLock and the wire is a shared atomic clock; many middleware sessions
//! and raw connections must be able to hammer one database concurrently.
//!
//! Since the serving tier, sessions also share one sharded relation
//! cache per database (`docs/CONCURRENCY.md`), so this file additionally
//! pins the cross-session cache semantics: warm hits compound across
//! sessions, racing writers always invalidate, concurrent drains of the
//! same miss populate exactly once, the TinyLFU admission gate holds
//! under pressure, and the chaos seeds survive a 4-thread stampede.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;
use tango::algebra::{tup, Relation};
use tango::minidb::{Connection, Database, FaultPlan, Link, LinkProfile, WireMode};
use tango::{Tango, TangoOptions};

fn seed_db() -> Database {
    let db = Database::new(Link::new(LinkProfile::instant()));
    let conn = Connection::new(db.clone());
    conn.execute("CREATE TABLE POSITION (PosID INT, EmpName VARCHAR(20), T1 INT, T2 INT)").unwrap();
    let rows: Vec<_> =
        (0..2_000).map(|i: i64| tup![i % 50, format!("emp{i}"), i % 100, i % 100 + 10]).collect();
    db.insert_rows("POSITION", rows).unwrap();
    conn.execute("ANALYZE TABLE POSITION COMPUTE STATISTICS").unwrap();
    db
}

#[test]
fn concurrent_readers_agree() {
    let db = seed_db();
    let expected = Connection::new(db.clone())
        .query_all("SELECT PosID, COUNT(*) AS C FROM POSITION GROUP BY PosID ORDER BY PosID")
        .unwrap();
    let expected = Arc::new(expected);
    let mut handles = Vec::new();
    for _ in 0..8 {
        let db = db.clone();
        let expected = expected.clone();
        handles.push(thread::spawn(move || {
            let conn = Connection::new(db);
            for _ in 0..20 {
                let got = conn
                    .query_all(
                        "SELECT PosID, COUNT(*) AS C FROM POSITION GROUP BY PosID ORDER BY PosID",
                    )
                    .unwrap();
                assert!(got.list_eq(&expected));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn concurrent_middleware_sessions() {
    let db = seed_db();
    let mut handles = Vec::new();
    for t in 0..4 {
        let db = db.clone();
        handles.push(thread::spawn(move || {
            let mut tango = Tango::connect(db);
            for i in 0..5 {
                let (rel, _) = tango
                    .query(&format!(
                        "VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION \
                         WHERE PosID < {} GROUP BY PosID ORDER BY PosID",
                        10 + (t * 5 + i) % 30
                    ))
                    .unwrap();
                assert!(!rel.is_empty());
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

/// Per-session wire metering: the link's virtual clock is shared by
/// every connection of a database, but each `Connection` meters only its
/// *own* transfers. Concurrent sessions must not cross-charge — every
/// thread's session meter equals the serial baseline exactly (the
/// virtual clock is deterministic), while clones of one connection (and
/// the cursors it hands out) share a single meter.
#[test]
fn sessions_meter_their_own_wire_time() {
    let db = {
        let db = Database::new(Link::new(LinkProfile::default()));
        let conn = Connection::new(db.clone());
        conn.execute("CREATE TABLE POSITION (PosID INT, EmpName VARCHAR(20), T1 INT, T2 INT)")
            .unwrap();
        let rows: Vec<_> =
            (0..500).map(|i: i64| tup![i % 50, format!("emp{i}"), i % 100, i % 100 + 10]).collect();
        db.insert_rows("POSITION", rows).unwrap();
        conn.execute("ANALYZE TABLE POSITION COMPUTE STATISTICS").unwrap();
        db
    };
    const SQL: &str = "SELECT PosID, COUNT(*) AS C FROM POSITION GROUP BY PosID ORDER BY PosID";

    // serial baseline: what one session's meter reads after one query
    let baseline = {
        let conn = Connection::new(db.clone());
        conn.query_all(SQL).unwrap();
        conn.wire_time()
    };
    assert!(baseline > std::time::Duration::ZERO);

    // eight concurrent sessions: each must read exactly the baseline,
    // even though all of them advance the same link clock
    let mut handles = Vec::new();
    for _ in 0..8 {
        let db = db.clone();
        handles.push(thread::spawn(move || {
            let conn = Connection::new(db);
            conn.query_all(SQL).unwrap();
            conn.wire_time()
        }));
    }
    for h in handles {
        let session_time = h.join().unwrap();
        assert_eq!(
            session_time, baseline,
            "a concurrent session was charged for another session's transfers"
        );
    }

    // clones share the meter: two queries through clone + original
    // accumulate on one counter...
    let conn = Connection::new(db.clone());
    let clone = conn.clone();
    conn.query_all(SQL).unwrap();
    clone.query_all(SQL).unwrap();
    assert_eq!(conn.wire_time(), clone.wire_time());
    assert_eq!(conn.wire_time(), baseline * 2);

    // ...while the link's global clock keeps the grand total
    assert!(db.link().total() >= baseline * 11);
}

/// A second session over the same database is warm from birth: the
/// fragment session A paid to transfer is a hit for session B, with not
/// one additional wire round trip — while a `connect_private` session
/// stays cold and pays the full transfer again.
#[test]
fn cross_session_warm_hits_compound() {
    let db = seed_db();
    const Q: &str = "VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION \
                     WHERE PosID < 20 GROUP BY PosID ORDER BY PosID";

    let mut a = Tango::connect(db.clone());
    let (cold, _) = a.query(Q).unwrap();
    assert!(a.cache().stats().insertions >= 1, "session A must populate");

    let mut b = Tango::connect(db.clone());
    assert!(Arc::ptr_eq(a.cache(), b.cache()));
    b.refresh_statistics().unwrap(); // catalog reads aside, measure the query alone
    let hits_before = b.cache().stats().hits;
    let rt_before = db.link().roundtrips();
    let (warm, _) = b.query(Q).unwrap();
    assert_eq!(db.link().roundtrips(), rt_before, "a cross-session warm hit touched the wire");
    assert!(b.cache().stats().hits > hits_before);
    assert!(warm.list_eq(&cold), "warm cross-session result differs\n{cold}\n{warm}");

    // a private session shares nothing: same query, cold transfer
    let mut p = Tango::connect_private(db.clone());
    p.refresh_statistics().unwrap();
    let rt_before = db.link().roundtrips();
    let (private, _) = p.query(Q).unwrap();
    assert!(db.link().roundtrips() > rt_before, "a private session cannot be warm");
    assert!(private.list_eq(&cold));
    assert_eq!(p.cache().stats().hits, 0);
}

/// N reader threads × a mixed query set, racing writer threads that
/// churn rows *outside* every read predicate: each read must come back
/// byte-identical to the single-threaded baseline, while the writers'
/// version bumps exercise cross-session invalidation the whole time.
#[test]
fn mixed_read_write_stress_matches_single_thread_baseline() {
    let db = seed_db();
    let queries: Vec<String> = (0..6)
        .map(|i| {
            format!(
                "VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION \
                 WHERE PosID < {} GROUP BY PosID ORDER BY PosID",
                10 + i * 5
            )
        })
        .collect();
    // single-threaded baseline, computed before any writer starts
    let baselines: Vec<Relation> = {
        let mut t = Tango::connect(db.clone());
        queries.iter().map(|q| t.query(q).unwrap().0).collect()
    };

    // writers insert/delete PosID ≥ 9000 — invisible to every read
    // predicate (PosID < 35), but each statement bumps POSITION's
    // write-version and invalidates the shared entries under the readers.
    // (DML also marks ANALYZE statistics stale, so every session collects
    // its catalog *before* the barrier releases the writers.)
    let stop = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(6)); // 4 readers + 2 writers
    let writers: Vec<_> = (0..2u64)
        .map(|w| {
            let db = db.clone();
            let stop = stop.clone();
            let start = start.clone();
            thread::spawn(move || {
                let conn = Connection::new(db);
                start.wait();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let id = 9_000 + w * 100 + (i % 50);
                    conn.execute(&format!("INSERT INTO POSITION VALUES ({id}, 'ghost', 1, 2)"))
                        .unwrap();
                    conn.execute(&format!("DELETE FROM POSITION WHERE PosID = {id}")).unwrap();
                    i += 1;
                }
            })
        })
        .collect();

    let mut readers = Vec::new();
    for t in 0..4 {
        let db = db.clone();
        let queries = queries.clone();
        let baselines = baselines.clone();
        let start = start.clone();
        readers.push(thread::spawn(move || {
            let mut tango = Tango::connect(db);
            tango.refresh_statistics().unwrap();
            start.wait();
            for round in 0..6 {
                for (q, base) in queries.iter().zip(&baselines) {
                    let (rel, _) = tango.query(q).unwrap();
                    assert!(
                        rel.list_eq(base),
                        "thread {t} round {round} diverged from baseline\nquery: {q}\n\
                         expected:\n{base}\ngot:\n{rel}"
                    );
                }
            }
        }));
    }
    for r in readers {
        r.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }

    let s = Tango::connect(db).cache().stats();
    assert!(s.invalidations >= 1, "racing writers never invalidated anything: {s:?}");
    assert!(s.misses >= 1, "{s:?}");
}

/// A writer racing readers on the rows they *do* read: lazy write-version
/// validation means no interleaving can leave a stale relation being
/// served — once the dust settles, the shared-cache answer equals a
/// cache-off session's answer over the final database state.
#[test]
fn racing_writes_always_invalidate() {
    let db = seed_db();
    const Q: &str = "VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION \
                     WHERE PosID = 0 GROUP BY PosID ORDER BY PosID";

    // readers collect their catalogs before the barrier frees the
    // writer: DML marks ANALYZE statistics stale
    let start = Arc::new(Barrier::new(4)); // 3 readers + 1 writer
    let writer = {
        let db = db.clone();
        let start = start.clone();
        thread::spawn(move || {
            let conn = Connection::new(db);
            start.wait();
            for _ in 0..20 {
                // rows inside the read predicate: every statement changes
                // the answer readers would get
                conn.execute("INSERT INTO POSITION VALUES (0, 'racer', 500, 510)").unwrap();
                conn.execute("DELETE FROM POSITION WHERE T1 = 500").unwrap();
            }
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let db = db.clone();
            let start = start.clone();
            thread::spawn(move || {
                let mut tango = Tango::connect(db);
                tango.refresh_statistics().unwrap();
                start.wait();
                for _ in 0..20 {
                    let (rel, _) = tango.query(Q).unwrap();
                    assert!(!rel.is_empty());
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }

    // quiesced: re-ANALYZE (statistics went stale under the DML; the
    // paper's middleware would do the same before re-planning), then the
    // warm answer must reflect the final table state
    db.analyze("POSITION").unwrap();
    let mut warm = Tango::connect(db.clone());
    let (got, _) = warm.query(Q).unwrap();
    let mut cold = Tango::connect_private(db.clone());
    cold.options_mut().cache_budget = None;
    let (fresh, _) = cold.query(Q).unwrap();
    assert!(got.list_eq(&fresh), "a stale cached relation survived racing writes");

    // and deterministically: a write between two warm runs must be
    // settled — refreshed in place by delta replay or dropped as stale
    // (versions were read before the populating SQL ran, so even a write
    // racing the populate could not be served unsettled)
    let before = warm.cache().stats();
    db.insert_rows("POSITION", vec![tup![0i64, "late", 700, 710]]).unwrap();
    db.analyze("POSITION").unwrap();
    let (after_write, _) = warm.query(Q).unwrap();
    let s = warm.cache().stats();
    assert!(
        s.invalidations > before.invalidations || s.refreshes > before.refreshes,
        "the write was neither refreshed nor invalidated: {s:?}"
    );
    assert!(
        after_write.tuples().iter().any(|t| t[2].as_int() == Some(700)),
        "the post-write run served a stale relation:\n{after_write}"
    );
}

/// Exactly-one populate under sharing: four sessions released by a
/// barrier onto the same cold fragment may all drain the miss, but the
/// store must end up with a single entry, counted once — byte-for-byte
/// what one session alone produces.
#[test]
fn concurrent_same_miss_populates_once() {
    const Q: &str = "VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION \
                     WHERE PosID < 25 GROUP BY PosID ORDER BY PosID";
    // control: one session, one populate
    let control_db = seed_db();
    let mut control = Tango::connect(control_db);
    control.query(Q).unwrap();
    let (control_len, control_bytes) = (control.cache().len(), control.cache().bytes());
    assert!(control_len >= 1);

    let db = seed_db();
    let barrier = Arc::new(Barrier::new(4));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let db = db.clone();
            let barrier = barrier.clone();
            thread::spawn(move || {
                let mut tango = Tango::connect(db);
                tango.refresh_statistics().unwrap();
                barrier.wait();
                tango.query(Q).unwrap().0
            })
        })
        .collect();
    let results: Vec<Relation> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for r in &results[1..] {
        assert!(r.list_eq(&results[0]));
    }

    let cache = Tango::connect(db).cache().clone();
    assert_eq!(cache.len(), control_len, "racing drains left extra entries");
    assert_eq!(cache.bytes(), control_bytes, "racing populates double-counted bytes");
    let s = cache.stats();
    assert_eq!(
        s.insertions as usize, control_len,
        "each fragment must be populated exactly once: {s:?}"
    );
    // every racing drain either hit, or was deduplicated on insert
    assert_eq!(s.hits + s.duplicate_populates + s.insertions, s.hits + s.misses, "{s:?}");
}

/// The TinyLFU gate on a pressured shared cache: once the budget is
/// pinned to the working set, colder newcomers are rejected (not
/// admitted by churn), the byte bound holds, and switching the gate off
/// restores evict-on-every-insert behavior.
#[test]
fn admission_gate_protects_a_pressured_cache() {
    let db = seed_db();
    // one shard: the admission contest compares the newcomer against the
    // would-be victim in *its* shard, so a single shard makes the
    // contest (and this test) deterministic
    let mut tango =
        Tango::connect_with(db.clone(), TangoOptions { cache_shards: 1, ..Default::default() });
    let hot = "VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION \
               WHERE PosID = 1 GROUP BY PosID ORDER BY PosID";
    tango.query(hot).unwrap();
    let resident = tango.cache().bytes();
    assert!(resident > 0);

    // pin the budget to exactly the resident working set: every further
    // distinct fragment must now win a contest to enter
    tango.options_mut().cache_budget = Some(resident);
    for id in [2, 3, 4] {
        tango
            .query(&format!(
                "VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION \
                 WHERE PosID = {id} GROUP BY PosID ORDER BY PosID"
            ))
            .unwrap();
        assert!(tango.cache().bytes() <= resident, "budget breached under admission");
    }
    let s = tango.cache().stats();
    assert!(s.admission_rejects >= 1, "no newcomer was ever gated: {s:?}");
    // the hot entry survived the stampede of one-off fragments
    let rt_before = db.link().roundtrips();
    tango.query(hot).unwrap();
    assert_eq!(db.link().roundtrips(), rt_before, "the hot fragment was churned out");

    // gate off: plain GreedyDual-Size, newcomers evict their way in
    tango.options_mut().cache_admission = false;
    let evictions_before = tango.cache().stats().evictions;
    tango
        .query(
            "VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION \
             WHERE PosID = 5 GROUP BY PosID ORDER BY PosID",
        )
        .unwrap();
    let s = tango.cache().stats();
    assert!(
        s.evictions > evictions_before || s.rejections > 0,
        "with the gate off, inserts must displace by eviction: {s:?}"
    );
}

/// The chaos seeds, under four concurrent shared-cache sessions: seeded
/// transient fault schedules on the shared wire must leave every
/// thread's results byte-identical to the fault-free baseline (faulted
/// transfers never populate, so no thread can be served a partial
/// relation another thread abandoned).
#[test]
fn chaos_seeds_survive_four_threads() {
    let seeds: Vec<u64> = match std::env::var("TANGO_CHAOS_SEED") {
        Ok(s) => {
            let s = s.trim().to_string();
            let parsed = match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            };
            vec![parsed.unwrap_or_else(|_| panic!("bad TANGO_CHAOS_SEED: {s}"))]
        }
        Err(_) => vec![0xA11CE, 0x5EED5, 0xC0FFEE],
    };
    let db = {
        let db = Database::new(Link::new(LinkProfile {
            roundtrip_latency_us: 100.0,
            bytes_per_sec: 4.0 * 1024.0 * 1024.0,
            row_prefetch: 8,
            mode: WireMode::Virtual,
        }));
        let conn = Connection::new(db.clone());
        conn.execute("CREATE TABLE POSITION (PosID INT, EmpName VARCHAR(20), T1 INT, T2 INT)")
            .unwrap();
        let rows: Vec<_> =
            (0..400).map(|i: i64| tup![i % 20, format!("emp{i}"), i % 60, i % 60 + 8]).collect();
        db.insert_rows("POSITION", rows).unwrap();
        conn.execute("ANALYZE TABLE POSITION COMPUTE STATISTICS").unwrap();
        db
    };
    let queries: Vec<String> = vec![
        "VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION GROUP BY PosID ORDER BY PosID"
            .to_string(),
        "VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION WHERE PosID < 10 \
         GROUP BY PosID ORDER BY PosID"
            .to_string(),
    ];
    let baselines: Vec<Relation> = {
        let mut t = Tango::connect_private(db.clone());
        t.options_mut().cache_budget = None;
        queries.iter().map(|q| t.query(q).unwrap().0).collect()
    };

    let mut total_faults = 0u64;
    for seed in seeds {
        let plan = Arc::new(
            FaultPlan::random(seed, 0.15)
                .with_budget(3)
                .with_spikes(0.05, Duration::from_millis(1)),
        );
        db.link().set_injector(plan.clone());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let db = db.clone();
                let queries = queries.clone();
                let baselines = baselines.clone();
                thread::spawn(move || {
                    let mut tango = Tango::connect(db);
                    for round in 0..2 {
                        for (q, base) in queries.iter().zip(&baselines) {
                            let (rel, _) = tango.query(q).unwrap_or_else(|e| {
                                panic!("seed {seed:#x} thread {t}: chaos run failed: {e}")
                            });
                            assert!(
                                rel.list_eq(base),
                                "seed {seed:#x} thread {t} round {round}: \
                                 chaos result differs from baseline\nquery: {q}"
                            );
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        db.link().clear_injector();
        total_faults += plan.faults_injected();
    }
    assert!(total_faults > 0, "no chaos schedule ever fired under the thread stampede");
}

/// Writers (temp-table churn from `TRANSFER^D`-style loads) interleaved
/// with readers must neither deadlock nor corrupt the catalog.
#[test]
fn readers_with_temp_table_churn() {
    let db = seed_db();
    let writer = {
        let db = db.clone();
        thread::spawn(move || {
            let conn = Connection::new(db);
            for i in 0..30 {
                let name = format!("TMP_CHURN_{i}");
                conn.load_direct(
                    &name,
                    tango::algebra::Schema::new(vec![tango::algebra::Attr::new(
                        "X",
                        tango::algebra::Type::Int,
                    )]),
                    (0..100).map(|j| tup![j as i64]).collect(),
                )
                .unwrap();
                conn.execute(&format!("DROP TABLE {name}")).unwrap();
            }
        })
    };
    let reader = {
        let db = db.clone();
        thread::spawn(move || {
            let conn = Connection::new(db);
            for _ in 0..50 {
                let r = conn.query_all("SELECT COUNT(*) AS C FROM POSITION").unwrap();
                assert_eq!(r.tuples()[0][0].as_int(), Some(2_000));
            }
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
    // all temp tables gone
    assert!(db.table_names().iter().all(|t| !t.starts_with("TMP_CHURN")));
}
