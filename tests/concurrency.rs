//! Concurrency: the mini-DBMS is shared state behind a `parking_lot`
//! RwLock and the wire is a shared atomic clock; many middleware sessions
//! and raw connections must be able to hammer one database concurrently.

use std::sync::Arc;
use std::thread;
use tango::algebra::tup;
use tango::minidb::{Connection, Database, Link, LinkProfile};
use tango::Tango;

fn seed_db() -> Database {
    let db = Database::new(Link::new(LinkProfile::instant()));
    let conn = Connection::new(db.clone());
    conn.execute("CREATE TABLE POSITION (PosID INT, EmpName VARCHAR(20), T1 INT, T2 INT)").unwrap();
    let rows: Vec<_> =
        (0..2_000).map(|i: i64| tup![i % 50, format!("emp{i}"), i % 100, i % 100 + 10]).collect();
    db.insert_rows("POSITION", rows).unwrap();
    conn.execute("ANALYZE TABLE POSITION COMPUTE STATISTICS").unwrap();
    db
}

#[test]
fn concurrent_readers_agree() {
    let db = seed_db();
    let expected = Connection::new(db.clone())
        .query_all("SELECT PosID, COUNT(*) AS C FROM POSITION GROUP BY PosID ORDER BY PosID")
        .unwrap();
    let expected = Arc::new(expected);
    let mut handles = Vec::new();
    for _ in 0..8 {
        let db = db.clone();
        let expected = expected.clone();
        handles.push(thread::spawn(move || {
            let conn = Connection::new(db);
            for _ in 0..20 {
                let got = conn
                    .query_all(
                        "SELECT PosID, COUNT(*) AS C FROM POSITION GROUP BY PosID ORDER BY PosID",
                    )
                    .unwrap();
                assert!(got.list_eq(&expected));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn concurrent_middleware_sessions() {
    let db = seed_db();
    let mut handles = Vec::new();
    for t in 0..4 {
        let db = db.clone();
        handles.push(thread::spawn(move || {
            let mut tango = Tango::connect(db);
            for i in 0..5 {
                let (rel, _) = tango
                    .query(&format!(
                        "VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION \
                         WHERE PosID < {} GROUP BY PosID ORDER BY PosID",
                        10 + (t * 5 + i) % 30
                    ))
                    .unwrap();
                assert!(!rel.is_empty());
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

/// Per-session wire metering: the link's virtual clock is shared by
/// every connection of a database, but each `Connection` meters only its
/// *own* transfers. Concurrent sessions must not cross-charge — every
/// thread's session meter equals the serial baseline exactly (the
/// virtual clock is deterministic), while clones of one connection (and
/// the cursors it hands out) share a single meter.
#[test]
fn sessions_meter_their_own_wire_time() {
    let db = {
        let db = Database::new(Link::new(LinkProfile::default()));
        let conn = Connection::new(db.clone());
        conn.execute("CREATE TABLE POSITION (PosID INT, EmpName VARCHAR(20), T1 INT, T2 INT)")
            .unwrap();
        let rows: Vec<_> =
            (0..500).map(|i: i64| tup![i % 50, format!("emp{i}"), i % 100, i % 100 + 10]).collect();
        db.insert_rows("POSITION", rows).unwrap();
        conn.execute("ANALYZE TABLE POSITION COMPUTE STATISTICS").unwrap();
        db
    };
    const SQL: &str = "SELECT PosID, COUNT(*) AS C FROM POSITION GROUP BY PosID ORDER BY PosID";

    // serial baseline: what one session's meter reads after one query
    let baseline = {
        let conn = Connection::new(db.clone());
        conn.query_all(SQL).unwrap();
        conn.wire_time()
    };
    assert!(baseline > std::time::Duration::ZERO);

    // eight concurrent sessions: each must read exactly the baseline,
    // even though all of them advance the same link clock
    let mut handles = Vec::new();
    for _ in 0..8 {
        let db = db.clone();
        handles.push(thread::spawn(move || {
            let conn = Connection::new(db);
            conn.query_all(SQL).unwrap();
            conn.wire_time()
        }));
    }
    for h in handles {
        let session_time = h.join().unwrap();
        assert_eq!(
            session_time, baseline,
            "a concurrent session was charged for another session's transfers"
        );
    }

    // clones share the meter: two queries through clone + original
    // accumulate on one counter...
    let conn = Connection::new(db.clone());
    let clone = conn.clone();
    conn.query_all(SQL).unwrap();
    clone.query_all(SQL).unwrap();
    assert_eq!(conn.wire_time(), clone.wire_time());
    assert_eq!(conn.wire_time(), baseline * 2);

    // ...while the link's global clock keeps the grand total
    assert!(db.link().total() >= baseline * 11);
}

/// Writers (temp-table churn from `TRANSFER^D`-style loads) interleaved
/// with readers must neither deadlock nor corrupt the catalog.
#[test]
fn readers_with_temp_table_churn() {
    let db = seed_db();
    let writer = {
        let db = db.clone();
        thread::spawn(move || {
            let conn = Connection::new(db);
            for i in 0..30 {
                let name = format!("TMP_CHURN_{i}");
                conn.load_direct(
                    &name,
                    tango::algebra::Schema::new(vec![tango::algebra::Attr::new(
                        "X",
                        tango::algebra::Type::Int,
                    )]),
                    (0..100).map(|j| tup![j as i64]).collect(),
                )
                .unwrap();
                conn.execute(&format!("DROP TABLE {name}")).unwrap();
            }
        })
    };
    let reader = {
        let db = db.clone();
        thread::spawn(move || {
            let conn = Connection::new(db);
            for _ in 0..50 {
                let r = conn.query_all("SELECT COUNT(*) AS C FROM POSITION").unwrap();
                assert_eq!(r.tuples()[0][0].as_int(), Some(2_000));
            }
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
    // all temp tables gone
    assert!(db.table_names().iter().all(|t| !t.starts_with("TMP_CHURN")));
}
