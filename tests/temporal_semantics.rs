//! Sequenced temporal semantics against a brute-force reference model.
//!
//! The defining property of sequenced temporal queries (the semantics the
//! paper's operators implement) is: *at every time point t, the result's
//! snapshot equals the conventional query evaluated over the snapshots of
//! the inputs at t*. This suite builds a tiny day-by-day interpreter and
//! checks the full middleware pipeline (parser → optimizer → translator →
//! engine → DBMS) against it on randomized databases — for temporal
//! aggregation, temporal join, and coalescing.

use proptest::prelude::*;
use std::collections::HashMap;
use tango::algebra::{tup, Attr, Relation, Schema, Type};
use tango::minidb::{Connection, Database, Link, LinkProfile};
use tango::Tango;

type Row = (i64, i64, i32, i32); // (PosID, EmpID, T1, T2)

fn make_db(rows: &[Row]) -> Database {
    let db = Database::new(Link::new(LinkProfile::instant()));
    let schema = Schema::with_inferred_period(vec![
        Attr::new("PosID", Type::Int),
        Attr::new("EmpID", Type::Int),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
    ]);
    db.create_table("POSITION", schema).unwrap();
    db.insert_rows("POSITION", rows.iter().map(|&(p, e, a, b)| tup![p, e, a, b]).collect())
        .unwrap();
    Connection::new(db.clone()).execute("ANALYZE TABLE POSITION COMPUTE STATISTICS").unwrap();
    db
}

/// Snapshot of the raw rows at day `t`.
fn snapshot(rows: &[Row], t: i32) -> Vec<(i64, i64)> {
    rows.iter().filter(|&&(_, _, a, b)| a <= t && t < b).map(|&(p, e, _, _)| (p, e)).collect()
}

/// Snapshot of a temporal result relation (with trailing T1/T2 columns)
/// at day `t`, projected onto its leading `k` columns.
fn result_snapshot(rel: &Relation, t: i32, k: usize) -> Vec<Vec<i64>> {
    let s = rel.schema();
    let (i1, i2) = s.period().expect("temporal result");
    let mut out: Vec<Vec<i64>> = rel
        .tuples()
        .iter()
        .filter(|r| r[i1].as_int().unwrap() <= t as i64 && (t as i64) < r[i2].as_int().unwrap())
        .map(|r| (0..k).map(|i| r[i].as_int().unwrap()).collect())
        .collect();
    out.sort();
    out
}

const HORIZON: i32 = 40;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// ξᵀ: at every t, the count per group equals COUNT over the snapshot.
    #[test]
    fn temporal_aggregation_is_snapshot_reducible(
        raw in proptest::collection::vec((0i64..4, 0i64..6, 0i32..30, 1i32..10), 1..35),
    ) {
        let rows: Vec<Row> = raw.into_iter().map(|(p, e, a, d)| (p, e, a, a + d)).collect();
        let mut tango = Tango::connect(make_db(&rows));
        let (rel, _) = tango
            .query("VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION GROUP BY PosID")
            .unwrap();
        for t in 0..HORIZON {
            // reference: group the snapshot
            let mut counts: HashMap<i64, i64> = HashMap::new();
            for (p, _) in snapshot(&rows, t) {
                *counts.entry(p).or_insert(0) += 1;
            }
            let mut want: Vec<Vec<i64>> =
                counts.into_iter().map(|(p, c)| vec![p, c]).collect();
            want.sort();
            let got = result_snapshot(&rel, t, 2);
            prop_assert_eq!(&got, &want, "t={}", t);
        }
    }

    /// ⋈ᵀ: at every t, the join's snapshot equals the snapshot join.
    #[test]
    fn temporal_join_is_snapshot_reducible(
        raw in proptest::collection::vec((0i64..3, 0i64..5, 0i32..25, 1i32..10), 1..25),
    ) {
        let rows: Vec<Row> = raw.into_iter().map(|(p, e, a, d)| (p, e, a, a + d)).collect();
        let mut tango = Tango::connect(make_db(&rows));
        let (rel, _) = tango
            .query(
                "VALIDTIME SELECT A.PosID, A.EmpID, B.EmpID FROM POSITION A, POSITION B \
                 WHERE A.PosID = B.PosID",
            )
            .unwrap();
        for t in 0..HORIZON {
            let snap = snapshot(&rows, t);
            let mut want: Vec<Vec<i64>> = Vec::new();
            for &(p1, e1) in &snap {
                for &(p2, e2) in &snap {
                    if p1 == p2 {
                        want.push(vec![p1, e1, e2]);
                    }
                }
            }
            want.sort();
            let got = result_snapshot(&rel, t, 3);
            prop_assert_eq!(&got, &want, "t={}", t);
        }
    }

    /// Coalescing: snapshots unchanged, and no two output periods of the
    /// same value ever overlap or touch.
    #[test]
    fn coalesce_is_snapshot_preserving_and_maximal(
        raw in proptest::collection::vec((0i64..3, 0i32..25, 1i32..10), 1..30),
    ) {
        let rows: Vec<Row> = raw.into_iter().map(|(p, a, d)| (p, 0, a, a + d)).collect();
        let mut tango = Tango::connect(make_db(&rows));
        let (rel, _) = tango
            .query("VALIDTIME COALESCE SELECT PosID FROM POSITION")
            .unwrap();
        for t in 0..HORIZON {
            let mut want: Vec<Vec<i64>> = snapshot(&rows, t)
                .into_iter()
                .map(|(p, _)| vec![p])
                .collect();
            want.sort();
            want.dedup(); // coalescing merges duplicates of a value
            let got = result_snapshot(&rel, t, 1);
            prop_assert_eq!(&got, &want, "t={}", t);
        }
        // maximality: per value, periods are disjoint and non-adjacent
        let s = rel.schema().clone();
        let (i1, i2) = s.period().unwrap();
        let mut by_val: HashMap<i64, Vec<(i64, i64)>> = HashMap::new();
        for r in rel.tuples() {
            by_val
                .entry(r[0].as_int().unwrap())
                .or_default()
                .push((r[i1].as_int().unwrap(), r[i2].as_int().unwrap()));
        }
        for (v, mut periods) in by_val {
            periods.sort();
            for w in periods.windows(2) {
                prop_assert!(
                    w[0].1 < w[1].0,
                    "value {} has mergeable periods {:?} and {:?}",
                    v, w[0], w[1]
                );
            }
        }
    }

    /// The windowed variant — the approximate window-push rules are ON
    /// here, so this also validates their snapshot guarantee end to end.
    #[test]
    fn windowed_aggregation_snapshots_inside_window(
        raw in proptest::collection::vec((0i64..4, 0i64..6, 0i32..30, 1i32..10), 1..30),
        win_start in 5i32..15,
        win_len in 5i32..15,
    ) {
        let rows: Vec<Row> = raw.into_iter().map(|(p, e, a, d)| (p, e, a, a + d)).collect();
        let (a, b) = (win_start, win_start + win_len);
        let mut tango = Tango::connect(make_db(&rows));
        let (rel, _) = tango
            .query(&format!(
                "VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION \
                 WHERE T1 < {b} AND T2 > {a} GROUP BY PosID"
            ))
            .unwrap();
        for t in a..b {
            let mut counts: HashMap<i64, i64> = HashMap::new();
            for (p, _) in snapshot(&rows, t) {
                *counts.entry(p).or_insert(0) += 1;
            }
            let mut want: Vec<Vec<i64>> =
                counts.into_iter().map(|(p, c)| vec![p, c]).collect();
            want.sort();
            let got = result_snapshot(&rel, t, 2);
            prop_assert_eq!(&got, &want, "t={} window=[{}, {})", t, a, b);
        }
    }
}
