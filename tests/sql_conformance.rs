//! SQL conformance suite for the mini-DBMS substrate: each case runs one
//! statement battery against a fresh database and checks exact results.
//! The dialect must stay solid — the Translator-To-SQL leans on every
//! corner exercised here.

use tango::algebra::{tup, Tuple, Value};
use tango::minidb::{Connection, Database};

fn fresh() -> Connection {
    let c = Connection::new(Database::in_memory());
    c.execute("CREATE TABLE T (K INT, V INT, S VARCHAR(16), D DATE)").unwrap();
    c.execute(
        "INSERT INTO T VALUES \
         (1, 10, 'alpha', DATE '1995-01-01'), \
         (1, 20, 'beta',  DATE '1996-06-15'), \
         (2, 30, 'gamma', DATE '1997-12-31'), \
         (2, NULL, 'delta', NULL), \
         (3, 50, 'alpha', DATE '1995-01-01')",
    )
    .unwrap();
    c
}

fn q(c: &Connection, sql: &str) -> Vec<Tuple> {
    c.query_all(sql).unwrap_or_else(|e| panic!("{e}\nsql: {sql}")).into_tuples()
}

#[test]
fn arithmetic_and_aliases() {
    let c = fresh();
    assert_eq!(
        q(&c, "SELECT K + 1 AS KP, V * 2 AS VV FROM T WHERE K = 1 ORDER BY VV"),
        vec![tup![2, 20], tup![2, 40]]
    );
    assert_eq!(
        q(&c, "SELECT V / 4 AS Q FROM T WHERE S = 'alpha' ORDER BY Q"),
        vec![tup![2], tup![12]]
    );
}

#[test]
fn null_semantics() {
    let c = fresh();
    // NULL never satisfies comparisons
    assert_eq!(q(&c, "SELECT K FROM T WHERE V > 0 ORDER BY K, V").len(), 4);
    // IS NULL / IS NOT NULL
    assert_eq!(q(&c, "SELECT S FROM T WHERE V IS NULL"), vec![tup!["delta"]]);
    // COUNT(col) skips nulls, COUNT(*) does not (global aggregate)
    let counts = q(&c, "SELECT COUNT(V) AS CV, COUNT(*) AS CS FROM T");
    assert_eq!(counts, vec![tup![4, 5]]);
    // aggregates over all-null groups produce NULL
    let r = q(&c, "SELECT K, SUM(V) AS SV FROM T WHERE K = 2 GROUP BY K");
    assert_eq!(r[0][1], Value::Int(30));
}

#[test]
fn date_comparisons() {
    let c = fresh();
    assert_eq!(
        q(&c, "SELECT S FROM T WHERE D >= DATE '1996-01-01' ORDER BY S"),
        vec![tup!["beta"], tup!["gamma"]]
    );
    assert_eq!(
        q(&c, "SELECT S FROM T WHERE D BETWEEN DATE '1994-01-01' AND DATE '1995-12-31' ORDER BY S"),
        vec![tup!["alpha"], tup!["alpha"]]
    );
}

#[test]
fn string_handling() {
    let c = fresh();
    c.execute("INSERT INTO T VALUES (9, 1, 'o''brien', NULL)").unwrap();
    assert_eq!(q(&c, "SELECT K FROM T WHERE S = 'o''brien'"), vec![tup![9]]);
    assert_eq!(q(&c, "SELECT DISTINCT S FROM T WHERE S = 'alpha'"), vec![tup!["alpha"]]);
}

#[test]
fn grouping_and_having() {
    let c = fresh();
    assert_eq!(
        q(&c, "SELECT K, COUNT(*) AS C, MAX(V) AS M FROM T GROUP BY K ORDER BY K"),
        vec![tup![1, 2, 20], tup![2, 2, 30], tup![3, 1, 50]]
    );
    assert_eq!(
        q(&c, "SELECT K, COUNT(*) AS C FROM T GROUP BY K HAVING C > 1 ORDER BY K"),
        vec![tup![1, 2], tup![2, 2]]
    );
    // AVG yields doubles
    let avg = q(&c, "SELECT K, AVG(V) AS A FROM T WHERE K = 1 GROUP BY K");
    assert_eq!(avg[0][1], Value::Double(15.0));
}

#[test]
fn order_by_directions_and_hidden_columns() {
    let c = fresh();
    assert_eq!(
        q(&c, "SELECT S FROM T WHERE V IS NOT NULL ORDER BY V DESC"),
        vec![tup!["alpha"], tup!["gamma"], tup!["beta"], tup!["alpha"]]
    );
    // ordering by a column not in the projection
    assert_eq!(
        q(&c, "SELECT S FROM T WHERE K < 3 AND V IS NOT NULL ORDER BY V"),
        vec![tup!["alpha"], tup!["beta"], tup!["gamma"]]
    );
}

#[test]
fn joins_products_and_hints() {
    let c = fresh();
    c.execute("CREATE TABLE U (K INT, W VARCHAR(8))").unwrap();
    c.execute("INSERT INTO U VALUES (1, 'one'), (2, 'two'), (4, 'four')").unwrap();
    let expect = vec![tup![1, "one"], tup![1, "one"], tup![2, "two"], tup![2, "two"]];
    for hint in ["", "/*+ USE_HASH */", "/*+ USE_MERGE */", "/*+ USE_NL */"] {
        assert_eq!(
            q(&c, &format!("SELECT {hint} T.K, W FROM T, U WHERE T.K = U.K ORDER BY T.K, W")),
            expect,
            "hint {hint}"
        );
    }
    // cartesian product
    assert_eq!(q(&c, "SELECT T.K, U.K FROM T, U").len(), 15);
    // index nested loops under USE_NL with an index present
    c.execute("CREATE INDEX UK ON U (K)").unwrap();
    assert_eq!(
        q(&c, "SELECT /*+ USE_NL */ T.K, W FROM T, U WHERE T.K = U.K ORDER BY T.K, W"),
        expect
    );
}

#[test]
fn subqueries_and_unions() {
    let c = fresh();
    assert_eq!(
        q(
            &c,
            "SELECT X.M FROM (SELECT K, MAX(V) AS M FROM T GROUP BY K) X WHERE X.M > 20 ORDER BY X.M"
        ),
        vec![tup![30], tup![50]]
    );
    assert_eq!(
        q(&c, "SELECT K FROM T WHERE K = 1 UNION SELECT K FROM T WHERE K > 1 ORDER BY K"),
        vec![tup![1], tup![2], tup![3]]
    );
    assert_eq!(
        q(&c, "SELECT K AS A FROM T WHERE K = 1 UNION ALL SELECT K FROM T WHERE K = 1").len(),
        4
    );
}

#[test]
fn greatest_least_and_nested_expressions() {
    let c = fresh();
    assert_eq!(
        q(&c, "SELECT GREATEST(V, 25) AS G, LEAST(V, 25) AS L FROM T WHERE K = 1 ORDER BY V"),
        vec![tup![25, 10], tup![25, 20]]
    );
    // NULL in GREATEST poisons the result (Oracle semantics)
    let r = q(&c, "SELECT GREATEST(V, 1) AS G FROM T WHERE V IS NULL");
    assert_eq!(r[0][0], Value::Null);
}

#[test]
fn ddl_lifecycle_and_errors() {
    let c = fresh();
    assert!(c.execute("CREATE TABLE T (A INT)").is_err(), "duplicate table");
    assert!(c.query("SELECT nope FROM T").is_err(), "unknown column");
    assert!(c.query("SELECT K FROM NOPE").is_err(), "unknown table");
    assert!(c.execute("INSERT INTO T VALUES (1)").is_err(), "arity mismatch");
    assert!(c.query("SELECT K FROM T WHERE").is_err(), "syntax error");
    c.execute("DROP TABLE T").unwrap();
    assert!(c.query("SELECT K FROM T").is_err());
}

#[test]
fn explain_describes_plan() {
    let c = fresh();
    let lines = q(&c, "EXPLAIN SELECT K, COUNT(*) AS C FROM T WHERE V > 5 GROUP BY K ORDER BY K");
    let text: Vec<String> = lines.iter().map(|t| t[0].as_str().unwrap().to_string()).collect();
    let joined = text.join("\n");
    assert!(joined.contains("SORT"), "{joined}");
    assert!(joined.contains("HASH GROUP BY"), "{joined}");
    assert!(joined.contains("TABLE SCAN T"), "{joined}");
    assert!(joined.contains("FILTER"), "{joined}");
}

#[test]
fn analyze_then_dictionary_views() {
    let c = fresh();
    c.execute("ANALYZE TABLE T COMPUTE STATISTICS").unwrap();
    let r = q(&c, "SELECT NUM_ROWS FROM USER_TABLES WHERE TABLE_NAME = 'T'");
    assert_eq!(r, vec![tup![5]]);
    let r = q(
        &c,
        "SELECT NUM_DISTINCT, NUM_NULLS FROM USER_TAB_COLUMNS \
         WHERE TABLE_NAME = 'T' AND COLUMN_NAME = 'V'",
    );
    assert_eq!(r, vec![tup![4, 1]]);
}

#[test]
fn update_and_delete() {
    let c = fresh();
    // UPDATE with expression over the old row
    let o = c.execute("UPDATE T SET V = V + 100 WHERE K = 1").unwrap();
    assert_eq!(o.rows_affected, 2);
    assert_eq!(q(&c, "SELECT V FROM T WHERE K = 1 ORDER BY V"), vec![tup![110], tup![120]]);
    // swap-style multi-assignment uses pre-update values
    c.execute("CREATE TABLE P (A INT, B INT)").unwrap();
    c.execute("INSERT INTO P VALUES (1, 2)").unwrap();
    c.execute("UPDATE P SET A = B, B = A").unwrap();
    assert_eq!(q(&c, "SELECT A, B FROM P"), vec![tup![2, 1]]);
    // DELETE with predicate, then unconditional
    let o = c.execute("DELETE FROM T WHERE V IS NULL").unwrap();
    assert_eq!(o.rows_affected, 1);
    let o = c.execute("DELETE FROM T").unwrap();
    assert_eq!(o.rows_affected, 4);
    assert!(q(&c, "SELECT K FROM T").is_empty());
    // indexes stay consistent after DML
    c.execute("CREATE INDEX TK ON T (K)").unwrap();
    c.execute("INSERT INTO T VALUES (7, 1, 'x', NULL), (8, 2, 'y', NULL)").unwrap();
    c.execute("DELETE FROM T WHERE K = 7").unwrap();
    assert_eq!(q(&c, "SELECT /*+ USE_NL */ S FROM T WHERE K = 8"), vec![tup!["y"]]);
}

#[test]
fn validtime_is_rejected_by_the_dbms() {
    let c = fresh();
    let err = c
        .query("VALIDTIME SELECT K, COUNT(K) AS C FROM T GROUP BY K")
        .err()
        .expect("VALIDTIME must be rejected")
        .to_string();
    assert!(err.contains("VALIDTIME"), "{err}");
}
