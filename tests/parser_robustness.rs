//! Parser robustness: no input may panic the SQL or temporal-SQL
//! parsers, and expression rendering round-trips through the parser.

use proptest::prelude::*;
use tango::algebra::{Attr, CmpOp, Expr, Schema, Type, Value};

proptest! {
    /// Arbitrary garbage must produce `Err`, never a panic.
    #[test]
    fn sql_parser_never_panics(input in "[ -~]{0,120}") {
        let _ = tango::minidb::parser::parse(&input);
    }

    /// Garbage prefixed with plausible SQL heads, to get deeper into the
    /// grammar before the noise starts.
    #[test]
    fn sql_parser_never_panics_with_head(
        head in prop::sample::select(vec![
            "SELECT ", "VALIDTIME SELECT ", "SELECT * FROM t WHERE ",
            "INSERT INTO t VALUES ", "CREATE TABLE t (", "EXPLAIN SELECT ",
            "UPDATE t SET ", "DELETE FROM ",
        ]),
        tail in "[ -~]{0,80}",
    ) {
        let _ = tango::minidb::parser::parse(&format!("{head}{tail}"));
    }

    /// tsql conversion must not panic either (schema resolution included).
    #[test]
    fn tsql_parser_never_panics(input in "[ -~]{0,120}") {
        let schema = |name: &str| {
            name.eq_ignore_ascii_case("T").then(|| {
                Schema::with_inferred_period(vec![
                    Attr::new("K", Type::Int),
                    Attr::new("T1", Type::Int),
                    Attr::new("T2", Type::Int),
                ])
            })
        };
        let _ = tango::core::tsql::parse_tsql(&input, &schema);
    }
}

/// Expression SQL rendering is re-parseable and evaluates identically —
/// the property the Translator-To-SQL depends on.
fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0i64..100).prop_map(Expr::lit),
        prop::sample::select(vec!["A", "B"]).prop_map(Expr::col),
        Just(Expr::Lit(Value::Double(2.5))),
        Just(Expr::Lit(Value::Str("x'y".into()))),
        Just(Expr::Lit(Value::Null)),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = arb_expr(depth - 1);
    prop_oneof![
        leaf,
        (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::cmp(CmpOp::Lt, l, r)),
        (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::eq(l, r)),
        (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::and(l, r)),
        (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::or(l, r)),
        (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Arith(
            tango::algebra::ArithOp::Add,
            Box::new(l),
            Box::new(r)
        )),
        (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Greatest(vec![l, r])),
        inner.clone().prop_map(|e| Expr::IsNull(Box::new(e), false)),
        inner.prop_map(Expr::not),
    ]
    .boxed()
}

proptest! {
    #[test]
    fn expression_rendering_round_trips(e in arb_expr(3), a in -5i64..5, b in -5i64..5) {
        use tango::minidb::ast::{SelectItem, Stmt};
        let sql = format!("SELECT {e} AS X FROM T");
        let parsed = tango::minidb::parser::parse(&sql)
            .unwrap_or_else(|err| panic!("rendered SQL failed to parse: {err}\n{sql}"));
        let Stmt::Select(sel) = parsed else { panic!() };
        let SelectItem::Expr { expr: reparsed, .. } = &sel.items[0] else {
            panic!("expected expression item")
        };
        // evaluate both against a sample row; ill-typed expressions must
        // fail identically on both sides
        let schema = Schema::new(vec![Attr::new("A", Type::Int), Attr::new("B", Type::Int)]);
        let t = tango::algebra::tup![a, b];
        let v1 = e.bound(&schema).unwrap().eval(&t);
        let v2 = reparsed.bound(&schema).unwrap().eval(&t);
        match (v1, v2) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "expr {} reparsed as {}", e, reparsed),
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(false, "divergent outcomes {x:?} vs {y:?} for {e}"),
        }
    }
}
