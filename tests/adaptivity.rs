//! The "adaptable" part of the paper's title: calibration fits the cost
//! factors to the environment, runtime feedback refines them, and the
//! resulting factors steer the middleware/DBMS split.

use tango::algebra::{tup, Attr, Schema, Type, Value};
use tango::core::phys::Algo;
use tango::minidb::{Connection, Database, Link, LinkProfile, WireMode};
use tango::Tango;

fn populated_db(profile: LinkProfile, rows: usize) -> Database {
    let db = Database::new(Link::new(profile));
    let schema = Schema::with_inferred_period(vec![
        Attr::new("PosID", Type::Int),
        Attr::new("Pad", Type::Str),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
    ]);
    db.create_table("POSITION", schema).unwrap();
    let mut x = 7u64;
    let data: Vec<_> = (0..rows)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t1 = (x % 5000) as i64;
            tup![
                (x % (rows as u64 / 6 + 1)) as i64,
                Value::Str(format!("padding-{:016}", x)),
                t1,
                t1 + 1 + (x % 400) as i64
            ]
        })
        .collect();
    db.insert_rows("POSITION", data).unwrap();
    Connection::new(db.clone()).execute("ANALYZE TABLE POSITION COMPUTE STATISTICS").unwrap();
    db
}

/// Calibration must discover the environment: on a slow wire the fitted
/// transfer factor is much larger than on a near-instant one.
#[test]
fn calibration_senses_the_wire() {
    let slow = LinkProfile {
        roundtrip_latency_us: 2_000.0,
        bytes_per_sec: 512.0 * 1024.0,
        row_prefetch: 20,
        mode: WireMode::Virtual,
    };
    let mut tango_slow = Tango::connect(populated_db(slow, 500));
    let f_slow = tango_slow.calibrate().unwrap().factors;

    let mut tango_fast = Tango::connect(populated_db(LinkProfile::instant(), 500));
    let f_fast = tango_fast.calibrate().unwrap().factors;

    assert!(
        f_slow.p_tm > 5.0 * f_fast.p_tm,
        "slow wire p_tm {} should dwarf fast wire p_tm {}",
        f_slow.p_tm,
        f_fast.p_tm
    );
    assert!(f_slow.p_td > f_fast.p_td);
}

/// The placement decision follows the wire. With a *collapsing*
/// aggregate (few groups, few distinct time points, so the result is a
/// handful of rows) the trade is: middleware = ship the whole argument
/// out; DBMS = evaluate in place, ship a tiny result. A free wire favours
/// the middleware's far better algorithm; a glacial wire favours the
/// DBMS.
#[test]
fn placement_follows_transfer_costs() {
    let sql = "VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION \
               GROUP BY PosID ORDER BY PosID";
    let collapsing_db = |profile: LinkProfile| -> Database {
        let db = Database::new(Link::new(profile));
        let schema = Schema::with_inferred_period(vec![
            Attr::new("PosID", Type::Int),
            Attr::new("Pad", Type::Str),
            Attr::new("T1", Type::Int),
            Attr::new("T2", Type::Int),
        ]);
        db.create_table("POSITION", schema).unwrap();
        let data: Vec<_> = (0..4_000)
            .map(|i: i64| {
                // 2 groups, 10 distinct starts, one duration: the
                // temporal aggregate has at most ~40 rows
                tup![i % 2, Value::Str(format!("padding-{i:032}")), (i % 10) * 5, (i % 10) * 5 + 12]
            })
            .collect();
        db.insert_rows("POSITION", data).unwrap();
        Connection::new(db.clone()).execute("ANALYZE TABLE POSITION COMPUTE STATISTICS").unwrap();
        db
    };

    // near-free wire: middleware aggregation wins (it's algorithmically
    // far better than the constant-period SQL)
    let mut fast = Tango::connect(collapsing_db(LinkProfile::instant()));
    fast.calibrate().unwrap();
    let q = fast.optimize(sql).unwrap();
    assert!(
        q.plan.any(&|a| matches!(a, Algo::TAggrM { .. })),
        "fast wire should aggregate in the middleware:\n{}",
        q.explain()
    );

    // absurdly slow wire: shipping the 4000-row argument out costs far
    // more than evaluating in place and shipping ~40 result rows
    let glacial = LinkProfile {
        roundtrip_latency_us: 50_000.0,
        bytes_per_sec: 16.0 * 1024.0,
        row_prefetch: 10,
        mode: WireMode::Virtual,
    };
    let mut slow = Tango::connect(collapsing_db(glacial));
    slow.calibrate().unwrap();
    let q = slow.optimize(sql).unwrap();
    assert!(
        q.plan.any(&|a| matches!(a, Algo::TAggrD { .. })),
        "glacial wire should keep aggregation in the DBMS:\n{}",
        q.explain()
    );
}

/// Feedback moves a wrong factor towards observed reality.
#[test]
fn feedback_corrects_bad_factors() {
    let mut tango = Tango::connect(populated_db(LinkProfile::default(), 3_000));
    tango.calibrate().unwrap();
    let calibrated_tm = tango.factors().p_tm;

    // sabotage the transfer factor, then let feedback repair it
    let mut bad = *tango.factors();
    bad.p_tm = calibrated_tm * 100.0;
    tango.set_factors(bad);
    tango.options_mut().feedback = true;
    tango.options_mut().feedback_alpha = 0.5;
    // feedback learns from the wire; with the relation cache on, the
    // repeats would be hits that (deliberately) teach it nothing
    tango.options_mut().cache_budget = None;
    for _ in 0..6 {
        tango
            .query("VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION GROUP BY PosID")
            .unwrap();
    }
    let repaired = tango.factors().p_tm;
    assert!(
        repaired < calibrated_tm * 10.0,
        "feedback should pull p_tm back towards reality: sabotaged {} -> {} (calibrated {})",
        calibrated_tm * 100.0,
        repaired,
        calibrated_tm
    );
}

/// Per-step instrumentation: the report's steps account for the work and
/// expose transfers' server time separately.
#[test]
fn execution_report_accounts_steps() {
    let mut tango = Tango::connect(populated_db(LinkProfile::default(), 1_000));
    let (rel, report) = tango
        .query(
            "VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION GROUP BY PosID ORDER BY PosID",
        )
        .unwrap();
    assert!(!rel.is_empty());
    assert!(!report.exec.steps.is_empty());
    let transfer = report
        .exec
        .steps
        .iter()
        .find(|s| matches!(s.algo, Algo::TransferM))
        .expect("plan must contain a TRANSFER^M");
    assert!(transfer.out_rows >= 1_000, "transfer should have moved the argument");
    assert!(transfer.out_bytes > 0);
    // exclusive times are non-negative and bounded by inclusive
    for s in &report.exec.steps {
        assert!(s.exclusive_us >= 0.0);
        assert!(s.exclusive_us <= s.inclusive_us + 1.0);
    }
}
