//! End-to-end reproduction of the paper's worked example (Figure 3)
//! through the public API, exercising parser → optimizer → translator →
//! engine → DBMS.

use tango::algebra::{tup, SortSpec};
use tango::minidb::{Connection, Database, Link, LinkProfile};
use tango::uis::figure3;
use tango::Tango;

fn setup() -> (Database, Tango) {
    let db = Database::new(Link::new(LinkProfile::default()));
    let conn = Connection::new(db.clone());
    let pos = figure3::position();
    db.create_table("POSITION", pos.schema().as_ref().clone()).unwrap();
    db.insert_rows("POSITION", pos.into_tuples()).unwrap();
    conn.execute("ANALYZE TABLE POSITION COMPUTE STATISTICS").unwrap();
    let tango = Tango::connect(db.clone());
    (db, tango)
}

#[test]
fn figure3c_temporal_aggregation() {
    let (_db, mut tango) = setup();
    let (rel, report) = tango
        .query(
            "VALIDTIME SELECT PosID, COUNT(PosID) AS Cnt FROM POSITION \
             GROUP BY PosID ORDER BY PosID",
        )
        .unwrap();
    // layout (PosID, Cnt, T1, T2); content of Figure 3(c)
    assert_eq!(
        rel.tuples(),
        &[tup![1, 1, 2, 5], tup![1, 2, 5, 20], tup![1, 1, 20, 25], tup![2, 1, 5, 10]]
    );
    // initial plan assigns everything to the DBMS with one T^M on top
    let initial = report.optimized.logical.to_string();
    assert!(initial.starts_with("T^M"), "{initial}");
}

#[test]
fn figure3b_example_query() {
    let (_db, mut tango) = setup();
    let (rel, _) = tango
        .query(
            "VALIDTIME SELECT P.PosID, P.EmpName, A.Cnt FROM \
               (VALIDTIME SELECT PosID, COUNT(PosID) AS Cnt FROM POSITION GROUP BY PosID) A, \
               POSITION P \
             WHERE A.PosID = P.PosID ORDER BY P.PosID",
        )
        .unwrap();
    let expected = figure3::query_result();
    // our layout (PosID, EmpName, Cnt, T1, T2) matches figure3::query_result
    assert_eq!(rel.len(), expected.len());
    let mut got = rel.clone();
    got.sort_by(&SortSpec::by(["PosID", "EmpName", "T1"]));
    let mut want = expected.clone();
    want.sort_by(&SortSpec::by(["PosID", "EmpName", "T1"]));
    assert_eq!(got.tuples(), want.tuples());
    // and the result arrives ordered by PosID as requested
    assert!(rel.is_sorted_by(&SortSpec::by(["PosID"])));
}

/// The same query must yield identical results no matter where the
/// optimizer places the operators — force extreme cost factors to drive
/// the plan to each side.
#[test]
fn placement_is_semantically_transparent() {
    let sql = "VALIDTIME SELECT P.PosID, P.EmpName, A.Cnt FROM \
               (VALIDTIME SELECT PosID, COUNT(PosID) AS Cnt FROM POSITION GROUP BY PosID) A, \
               POSITION P \
               WHERE A.PosID = P.PosID ORDER BY P.PosID";

    let (_db, mut tango) = setup();
    // force "everything in the DBMS": make middleware work absurdly costly
    let mut expensive_mid = *tango.factors();
    expensive_mid.p_tm = 1e6;
    expensive_mid.p_taggm1 = 1e6;
    expensive_mid.p_mjm = 1e6;
    tango.set_factors(expensive_mid);
    let (dbms_rel, dbms_rep) = tango.query(sql).unwrap();
    assert!(
        dbms_rep.optimized.explain().contains("TAGGR^D"),
        "expected a DBMS-heavy plan:\n{}",
        dbms_rep.optimized.explain()
    );

    // force "everything in the middleware"
    let mut expensive_dbms = *tango.factors();
    expensive_dbms.p_tm = 1e-9;
    expensive_dbms.p_taggm1 = 1e-9;
    expensive_dbms.p_mjm = 1e-9;
    expensive_dbms.p_taggd1 = 1e6;
    expensive_dbms.p_jd = 1e6;
    tango.set_factors(expensive_dbms);
    let (mid_rel, mid_rep) = tango.query(sql).unwrap();
    assert!(
        mid_rep.optimized.explain().contains("TAGGR^M"),
        "expected a middleware-heavy plan:\n{}",
        mid_rep.optimized.explain()
    );

    assert!(
        dbms_rel.multiset_eq(&mid_rel),
        "placement changed the result!\nDBMS:\n{dbms_rel}\nmiddleware:\n{mid_rel}"
    );
}
