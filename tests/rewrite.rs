//! Config-driven rewrite layer, end to end: the checked-in packs under
//! `rules/` must load, fire on the spellings they exist to fix, surface
//! their firings in EXPLAIN ANALYZE / the optimizer trace, and — the
//! soundness contract — never change a query's result. The differential
//! sweep runs every query with and without every pack combination at
//! batch sizes 1 and 1024 and demands identical rows.

use proptest::prelude::*;
use tango::algebra::{tup, Attr, Relation, Schema, Type, Value};
use tango::minidb::{Connection, Database, Link, LinkProfile};
use tango::Tango;

const ALL_PACKS: [&str; 3] = ["temporal-normalize", "subquery-to-join", "compat"];

/// `POSITION` as in `tests/equivalence.rs`, plus one `POSINFO` dossier
/// row per distinct PosID so the join spellings have a second table.
fn make_db(rows: &[(i64, i64, f64, i32, i32)]) -> Database {
    let db = Database::new(Link::new(LinkProfile::instant()));
    let schema = Schema::with_inferred_period(vec![
        Attr::new("PosID", Type::Int),
        Attr::new("EmpID", Type::Int),
        Attr::new("PayRate", Type::Double),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
    ]);
    db.create_table("POSITION", schema).unwrap();
    db.insert_rows(
        "POSITION",
        rows.iter().map(|&(p, e, pay, t1, t2)| tup![p, e, Value::Double(pay), t1, t2]).collect(),
    )
    .unwrap();
    let posinfo = Schema::new(vec![Attr::new("PosID", Type::Int), Attr::new("Info", Type::Str)]);
    db.create_table("POSINFO", posinfo).unwrap();
    let mut ids: Vec<i64> = rows.iter().map(|r| r.0).collect();
    ids.sort_unstable();
    ids.dedup();
    db.insert_rows(
        "POSINFO",
        ids.into_iter().map(|p| tup![p, Value::Str(format!("info-{p}"))]).collect(),
    )
    .unwrap();
    let conn = Connection::new(db.clone());
    conn.execute("ANALYZE TABLE POSITION COMPUTE STATISTICS").unwrap();
    conn.execute("ANALYZE TABLE POSINFO COMPUTE STATISTICS").unwrap();
    db
}

fn run(db: &Database, packs: &[&str], batch: usize, sql: &str) -> Relation {
    let mut tango = Tango::connect(db.clone());
    tango.options_mut().rewrite_packs = packs.iter().map(|p| p.to_string()).collect();
    tango.options_mut().batch_rows = Some(batch);
    tango.query(sql).unwrap_or_else(|e| panic!("{e}\npacks: {packs:?}\nsql: {sql}")).0
}

/// The spellings each pack exists to fix. Every query carries an ORDER
/// BY over all projected columns so results are compared byte-for-byte.
fn target_queries() -> Vec<&'static str> {
    vec![
        // temporal-normalize: an Overlaps window hidden behind NOT
        "SELECT P.PosID, P.T1, I.Info FROM POSITION P, POSINFO I \
         WHERE P.PosID = I.PosID AND NOT (P.T1 > 40) AND NOT (P.T2 < 10) \
         ORDER BY P.PosID, P.T1, I.Info",
        // subquery-to-join: the join key hidden behind NOT (a <> b)
        "SELECT P.PosID, P.T1, I.Info \
         FROM (SELECT PosID, Info FROM POSINFO) I, POSITION P \
         WHERE NOT (I.PosID <> P.PosID) ORDER BY P.PosID, P.T1, I.Info",
        // compat: the Figure 5 plain-SQL rendering of TJOIN^D
        "SELECT A.PosID, A.EmpID, B.EmpID AS EmpID2, \
         GREATEST(A.T1, B.T1) AS S1, LEAST(A.T2, B.T2) AS S2 \
         FROM POSITION A, POSITION B \
         WHERE A.PosID = B.PosID AND A.T1 < B.T2 AND B.T1 < A.T2 \
         ORDER BY A.PosID, A.EmpID, EmpID2, S1, S2",
    ]
}

/// The `tests/equivalence.rs` figure-query family — queries the packs
/// mostly do *not* fire on; the sweep proves they stay inert.
fn figure_queries() -> Vec<&'static str> {
    vec![
        "VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION GROUP BY PosID ORDER BY PosID",
        "VALIDTIME SELECT COUNT(EmpID) AS C, MIN(PayRate) AS MN, MAX(PayRate) AS MX \
         FROM POSITION WHERE PosID < 3 GROUP BY PosID",
        "VALIDTIME SELECT A.PosID, A.EmpID, B.EmpID FROM POSITION A, POSITION B \
         WHERE A.PosID = B.PosID AND A.T1 < 40 AND B.T1 < 40 ORDER BY A.PosID",
        "VALIDTIME SELECT P.PosID, C, P.EmpID FROM \
           (VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION GROUP BY PosID) A, \
           POSITION P WHERE A.PosID = P.PosID AND P.PayRate > 5 ORDER BY P.PosID",
        "SELECT EmpID, PosID FROM POSITION WHERE PayRate > 5 AND PosID < 4 ORDER BY EmpID, PosID",
    ]
}

fn pack_sets() -> Vec<Vec<&'static str>> {
    let mut sets: Vec<Vec<&'static str>> = ALL_PACKS.iter().map(|p| vec![*p]).collect();
    sets.push(ALL_PACKS.to_vec());
    sets
}

fn dataset() -> Database {
    let rows: Vec<(i64, i64, f64, i32, i32)> = (0..48)
        .map(|i| {
            let t1 = ((i * 13) % 55) as i32;
            (1 + i % 5, 1 + (i * 7) % 11, ((i * 3) % 17) as f64, t1, t1 + 2 + (i % 9) as i32)
        })
        .collect();
    make_db(&rows)
}

// ---------------------------------------------------------------------
// Firing + observability
// ---------------------------------------------------------------------

/// Each checked-in pack fires on its target spelling, and the firing is
/// visible everywhere the issue promises: the report's rewrite outcome,
/// the optimizer trace, the EXPLAIN ANALYZE annotations, and the JSON
/// trace.
#[test]
fn packs_fire_and_surface_in_traces() {
    let db = dataset();
    for (pack, sql) in ALL_PACKS.iter().zip(target_queries()) {
        let mut tango = Tango::connect(db.clone());
        tango.options_mut().rewrite_packs = vec![pack.to_string()];
        let (text, report) = tango.explain_analyze(sql).unwrap();
        let fires = report.optimized.rewrites.total_fires();
        assert!(fires >= 1, "pack {pack} never fired on its target query");
        assert!(
            report.optimized.rewrites.fires.iter().all(|f| f.pack == *pack),
            "foreign pack name in fires for {pack}"
        );
        let trace = report.optimized.optimizer_trace();
        assert!(
            trace.contains(&format!("rewrite: {pack}/")),
            "optimizer trace misses {pack}:\n{trace}"
        );
        assert!(
            text.contains("rewrite_fires") && text.contains("events:") && text.contains("rewrite"),
            "EXPLAIN ANALYZE misses the rewrite annotations for {pack}:\n{text}"
        );
        let json = report.exec.to_json();
        assert!(json.contains("\"rewrite\""), "JSON trace misses rewrite events for {pack}");
    }
}

/// Without packs the stage is off: no fires, no annotations.
#[test]
fn no_packs_means_no_rewrite_annotations() {
    let db = dataset();
    let mut tango = Tango::connect(db.clone());
    let (text, report) = tango.explain_analyze(target_queries()[0]).unwrap();
    assert!(report.optimized.rewrites.is_empty());
    assert!(!text.contains("rewrite_fires"), "phantom rewrite annotation:\n{text}");
    assert!(!report.optimized.optimizer_trace().contains("rewrite:"));
}

/// An unknown pack name fails the query with an error that names the
/// paths tried, not a panic or a silent no-op.
#[test]
fn unknown_pack_is_a_useful_error() {
    let db = dataset();
    let mut tango = Tango::connect(db.clone());
    tango.options_mut().rewrite_packs = vec!["no-such-pack".to_string()];
    let err = match tango.query(target_queries()[0]) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("query with unknown pack unexpectedly succeeded"),
    };
    assert!(
        err.contains("no-such-pack") && err.contains("tried"),
        "unhelpful unknown-pack error: {err}"
    );
}

// ---------------------------------------------------------------------
// Differential: rewritten ≡ unrewritten
// ---------------------------------------------------------------------

/// Fixed dataset: every query × every pack set × batch 1 and 1024 must
/// return exactly the rows of the pack-less run (byte-identical for the
/// fully-ordered target spellings, multiset-identical for the figure
/// family, whose ORDER BY keys do not pin a total order).
#[test]
fn differential_fixed_dataset() {
    let db = dataset();
    for batch in [1usize, 1024] {
        for sql in target_queries() {
            let baseline = run(&db, &[], batch, sql);
            for packs in pack_sets() {
                let got = run(&db, &packs, batch, sql);
                assert_eq!(
                    baseline.tuples(),
                    got.tuples(),
                    "rows differ: packs {packs:?}, batch {batch}\nsql: {sql}"
                );
            }
        }
        for sql in figure_queries() {
            let baseline = run(&db, &[], batch, sql);
            for packs in pack_sets() {
                let got = run(&db, &packs, batch, sql);
                assert!(
                    baseline.multiset_eq(&got),
                    "rows differ: packs {packs:?}, batch {batch}\nsql: {sql}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]
    /// Randomized differential: for arbitrary temporal data, rewriting
    /// with all three packs at once never changes any query's result,
    /// at batch 1 and at batch 1024.
    #[test]
    fn differential_random_data(
        rows in proptest::collection::vec(
            (1i64..6, 1i64..8, 0.0f64..20.0, 0i32..50, 1i32..30),
            1..32,
        ),
    ) {
        let fixed: Vec<(i64, i64, f64, i32, i32)> =
            rows.into_iter().map(|(p, e, pay, t1, d)| (p, e, pay, t1, t1 + d)).collect();
        let db = make_db(&fixed);
        let all: Vec<&str> = ALL_PACKS.to_vec();
        for batch in [1usize, 1024] {
            for sql in target_queries() {
                let baseline = run(&db, &[], batch, sql);
                let got = run(&db, &all, batch, sql);
                prop_assert_eq!(
                    baseline.tuples(),
                    got.tuples(),
                    "rows differ at batch {}\nsql: {}", batch, sql
                );
            }
            for sql in figure_queries() {
                let baseline = run(&db, &[], batch, sql);
                let got = run(&db, &all, batch, sql);
                prop_assert!(
                    baseline.multiset_eq(&got),
                    "rows differ at batch {}\nsql: {}", batch, sql
                );
            }
        }
    }
}
