//! The execution-trace layer end to end: per-operator accounting in
//! [`ExecReport`], the machine-readable JSON form, `EXPLAIN` /
//! `EXPLAIN ANALYZE` rendering, and the zero-overhead untraced path.

use std::sync::Arc;
use tango::algebra::{tup, Attr, Expr, Schema, Type, Value};
use tango::core::cost::CostFactors;
use tango::core::engine::{self, ExecReport};
use tango::core::phys::{Algo, PhysNode, Site};
use tango::core::tsql::{strip_explain, Explain};
use tango::minidb::{Connection, Database, Link, LinkProfile};
use tango::Tango;

fn setup() -> (Database, Connection) {
    let db = Database::new(Link::new(LinkProfile::instant()));
    let conn = Connection::new(db.clone());
    conn.execute("CREATE TABLE POSITION (PosID INT, EmpName VARCHAR(20), T1 INT, T2 INT)").unwrap();
    conn.execute("INSERT INTO POSITION VALUES (1,'Tom',2,20),(1,'Jane',5,25),(2,'Tom',5,10)")
        .unwrap();
    conn.execute("ANALYZE TABLE POSITION COMPUTE STATISTICS").unwrap();
    (db, conn)
}

fn scan(c: &Connection, table: &str) -> PhysNode {
    PhysNode {
        algo: Algo::ScanD(table.into()),
        schema: Arc::new(c.table_schema(table).unwrap()),
        children: vec![],
    }
}

fn un(algo: Algo, child: PhysNode) -> PhysNode {
    let schema = Arc::new(algo.output_schema(&[child.schema.as_ref()]).unwrap());
    PhysNode { algo, schema, children: vec![child] }
}

/// SORT^M ← FILTER^M ← TRANSFER^M ← SCAN^D: a three-step middleware
/// pipeline whose per-operator rows, bytes and time accounting must add
/// up.
fn three_op_plan(conn: &Connection) -> PhysNode {
    un(
        Algo::SortM(tango::algebra::SortSpec::by(["EmpName"])),
        un(
            Algo::FilterM(Expr::eq(Expr::col("PosID"), Expr::lit(1))),
            un(Algo::TransferM, scan(conn, "POSITION")),
        ),
    )
}

fn run_traced(conn: &Connection) -> ExecReport {
    let plan = three_op_plan(conn);
    let (rel, report) = engine::execute(conn, &plan).unwrap();
    assert_eq!(rel.len(), 2); // PosID = 1 matches Tom and Jane
    report
}

#[test]
fn exec_report_row_accounting() {
    let (_db, conn) = setup();
    let report = run_traced(&conn);

    // bottom-up step order: TRANSFER^M, FILTER^M, SORT^M
    assert_eq!(report.steps.len(), 3);
    let (t, f, s) = (&report.steps[0], &report.steps[1], &report.steps[2]);
    assert!(matches!(t.algo, Algo::TransferM));
    assert!(matches!(f.algo, Algo::FilterM(_)));
    assert!(matches!(s.algo, Algo::SortM(_)));

    // rows: the transfer fetches all 3, the filter keeps 2, the sort
    // preserves them
    assert_eq!(t.out_rows, 3);
    assert_eq!(f.out_rows, 2);
    assert_eq!(s.out_rows, 2);
    assert_eq!(report.rows, 2);

    // the step tree mirrors the plan
    assert_eq!(t.children, Vec::<usize>::new());
    assert_eq!(f.children, vec![0]);
    assert_eq!(s.children, vec![1]);
}

#[test]
fn exec_report_byte_accounting() {
    let (_db, conn) = setup();
    let report = run_traced(&conn);
    let (t, f, s) = (&report.steps[0], &report.steps[1], &report.steps[2]);

    // every tuple has a positive wire size; dropping a row must shrink
    // the filter's byte count below the transfer's
    assert!(t.out_bytes > 0);
    assert!(f.out_bytes > 0 && f.out_bytes < t.out_bytes);
    // the sort re-emits exactly what the filter produced
    assert_eq!(s.out_bytes, f.out_bytes);
}

#[test]
fn exec_report_exclusive_time_accounting() {
    let (_db, conn) = setup();
    let report = run_traced(&conn);
    let (t, f, s) = (&report.steps[0], &report.steps[1], &report.steps[2]);

    for step in [t, f, s] {
        assert!(step.inclusive_us >= 0.0);
        assert!(step.exclusive_us >= 0.0);
        assert!(
            step.exclusive_us <= step.inclusive_us + 1e-6,
            "exclusive {} > inclusive {} for {}",
            step.exclusive_us,
            step.inclusive_us,
            step.label
        );
    }
    // inclusive times nest: each parent contains its child's time
    assert!(f.inclusive_us >= t.inclusive_us);
    assert!(s.inclusive_us >= f.inclusive_us);
    // exclusive = inclusive − Σ children inclusive
    assert!((f.exclusive_us - (f.inclusive_us - t.inclusive_us)).abs() < 1e-3);
    assert!((s.exclusive_us - (s.inclusive_us - f.inclusive_us)).abs() < 1e-3);
}

#[test]
fn exec_report_counters_and_sites() {
    let (_db, conn) = setup();
    let report = run_traced(&conn);
    let (t, f, s) = (&report.steps[0], &report.steps[1], &report.steps[2]);

    assert_eq!(t.site(), Site::Middleware);
    assert!(t.counters.iter().any(|&(k, v)| k == "sql_round_trips" && v == 1));
    assert!(f.counters.iter().any(|&(k, v)| k == "rows_dropped" && v == 1));
    assert!(s.counters.iter().any(|&(k, v)| k == "rows_buffered" && v == 2));
}

#[test]
fn exec_report_json_is_well_formed() {
    let (_db, conn) = setup();
    let report = run_traced(&conn);
    let json = report.to_json();
    for key in
        ["\"rows\":", "\"steps\":", "\"op\":", "\"site\":", "\"exclusive_us\":", "\"counters\":"]
    {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    assert!(json.contains("\"op\":\"TRANSFER^M\""), "{json}");
    assert!(json.contains("\"rows_dropped\":1"), "{json}");
    // balanced braces/brackets — cheap well-formedness check
    let opens = json.matches(['{', '[']).count();
    let closes = json.matches(['}', ']']).count();
    assert_eq!(opens, closes, "{json}");
}

#[test]
fn untraced_execution_collects_nothing() {
    let (_db, conn) = setup();
    let plan = three_op_plan(&conn);
    let (rel, report) = engine::execute_with(&conn, &plan, false).unwrap();
    assert_eq!(rel.len(), 2);
    assert_eq!(report.rows, 2);
    assert!(report.steps.is_empty(), "untraced run must create no spans");
}

#[test]
fn strip_explain_prefixes() {
    assert_eq!(strip_explain("SELECT 1"), (None, "SELECT 1"));
    assert_eq!(strip_explain("EXPLAIN SELECT 1"), (Some(Explain::Plan), "SELECT 1"));
    assert_eq!(
        strip_explain("  explain analyze VALIDTIME SELECT 1"),
        (Some(Explain::Analyze), "VALIDTIME SELECT 1")
    );
    // EXPLAIN must be a standalone word
    assert_eq!(strip_explain("EXPLAINX"), (None, "EXPLAINX"));
}

const QUERY1: &str = "VALIDTIME SELECT PosID, COUNT(PosID) AS CNT FROM POSITION \
                      GROUP BY PosID ORDER BY PosID";

#[test]
fn explain_shows_sites_and_estimates() {
    let (db, _conn) = setup();
    let mut tango = Tango::connect(db);
    let text = tango.explain(QUERY1).unwrap();
    assert!(text.contains("TAGGR^M"), "{text}");
    assert!(text.contains("(middleware, est rows"), "{text}");
    assert!(text.contains("(dbms, est rows"), "{text}");
    // EXPLAIN alone never executes: no actuals, no totals
    assert!(!text.contains("actual rows"), "{text}");
    assert!(!text.contains("total:"), "{text}");
}

/// Golden output: `EXPLAIN ANALYZE` for Query 1 on the Figure 3 data,
/// with timings redacted so the rendering is reproducible.
#[test]
fn explain_analyze_golden_query1() {
    let (db, _conn) = setup();
    let mut tango = Tango::connect(db);
    let optimized = tango.optimize(QUERY1).unwrap();
    let (rel, exec) = tango.execute_physical(&optimized.plan).unwrap();
    assert_eq!(rel.len(), 4); // Figure 3(c)
    let text = optimized.explain_analyze(&exec, true);
    let expected = "\
PROJECT^M  (middleware, est rows 2.4, actual rows 4, exclusive ?, batches 1)
  TAGGR^M [group by PosID; COUNT(PosID) AS CNT]  (middleware, est rows 2.4, actual rows 4, exclusive ?, groups 2, constant_periods 4, batches 1)
    TRANSFER^M  (middleware, est rows 3.0, actual rows 3, exclusive ?, server ?, cache miss, sql_round_trips 1, cache_bytes 72, batches 1)
      SORT^D [PosID, T1]  (dbms, est rows 3.0, in SQL)
        PROJECT^D  (dbms, est rows 3.0, in SQL)
          SCAN^D POSITION  (dbms, est rows 3.0, in SQL)
total: 4 rows, wall ?, wire ?, wall+wire ?
";
    assert_eq!(text, expected, "got:\n{text}");
}

/// Versioned `POSITION` joined against the wide per-position `POSINFO`
/// dossier table — the misestimate-rescue shape of
/// `tests/adaptive_replan.rs` at golden scale. The naive `Overlaps`
/// estimator believes the 20-day window keeps ~25% of `POSITION`; the
/// truth is a handful of rows, so the misestimate monitor fires at the
/// first pipeline breaker and flips the join into the DBMS.
fn replan_setup() -> Database {
    let db = Database::new(Link::new(LinkProfile::instant()));
    let position = Schema::with_inferred_period(vec![
        Attr::new("PosID", Type::Int),
        Attr::new("EmpID", Type::Int),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
    ]);
    db.create_table("POSITION", position).unwrap();
    let posinfo = Schema::new(vec![Attr::new("PosID", Type::Int), Attr::new("Info", Type::Str)]);
    db.create_table("POSINFO", posinfo).unwrap();

    // deterministic xorshift: the fixture (and hence the golden) can
    // never drift
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut step = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    const POSITIONS: i64 = 40;
    const VERSIONS: i64 = 10;
    const DOMAIN: i64 = 5_000;
    let stride = DOMAIN / VERSIONS;
    let mut rows = Vec::new();
    for p in 0..POSITIONS {
        for v in 0..VERSIONS {
            // one version per stratum of the domain, so (PosID, T1) is
            // unique and the ORDER BY below is a total order
            let t1 = v * stride + (step() % (stride as u64 - 40)) as i64;
            let t2 = t1 + 1 + (step() % 39) as i64;
            rows.push(tup![p, (step() % 80) as i64, t1, t2]);
        }
    }
    db.insert_rows("POSITION", rows).unwrap();
    let dossier: Vec<_> = (0..POSITIONS)
        .map(|p| tup![p, Value::Str(format!("dossier-{p:06}-{}", "x".repeat(140)))])
        .collect();
    db.insert_rows("POSINFO", dossier).unwrap();
    let conn = Connection::new(db.clone());
    conn.execute("ANALYZE TABLE POSITION COMPUTE STATISTICS").unwrap();
    conn.execute("ANALYZE TABLE POSINFO COMPUTE STATISTICS").unwrap();
    db
}

const REPLAN_QUERY: &str = "SELECT P.PosID, P.T1, I.Info FROM POSITION P, POSINFO I \
     WHERE P.PosID = I.PosID AND P.T1 <= 2520 AND P.T2 >= 2500 \
     ORDER BY P.PosID, P.T1";

/// Golden output: `EXPLAIN ANALYZE` after a mid-query cardinality
/// re-plan. Pins the `cardinality-replan` event line, the `replans`
/// counter, the est-vs-actual rows at the triggering breaker, and the
/// `replan spliced` annotations on the re-optimized remainder. Cost
/// factors are pinned (not calibrated) so the placement decisions — and
/// hence the rendered plan — are reproducible.
#[test]
fn explain_analyze_golden_cardinality_replan() {
    let db = replan_setup();
    let mut tango = Tango::connect(db);
    tango.options_mut().cache_budget = None;
    tango.options_mut().opt.naive_overlaps = true; // seed the misestimate
    tango.set_factors(CostFactors {
        p_tm: 5.0,
        p_td: 4.5,
        p_td_fixed: 200.0,
        p_jd: 0.06,
        p_mjm: 0.02,
        ..Default::default()
    });
    let (rel, report) = tango.query(REPLAN_QUERY).unwrap();
    let text = report.optimized.explain_analyze(&report.exec, true);
    // The triggering breaker is the TRANSFER^M over the naive window
    // selection: est rows 102 vs actual rows 2 (51× off, past the
    // default 8× threshold). The remainder above it was re-optimized —
    // the join flipped into the DBMS behind a TRANSFER^D of the
    // materialized breaker output — and every spliced step is annotated.
    let expected = "\
TRANSFER^M  (middleware, est rows 2.0, actual rows 2, exclusive ?, server ?, replan spliced, sql_round_trips 1, batches 1)
  SORT^D [PosID, T1]  (dbms, est rows 2.0, in SQL)
    PROJECT^D  (dbms, est rows 2.0, in SQL)
      PROJECT^D  (dbms, est rows 2.0, in SQL)
        JOIN^D [PosID=PosID]  (dbms, est rows 2.0, in SQL)
          SCAN^D POSINFO  (dbms, est rows 40.0, in SQL)
          TRANSFER^D  (dbms, est rows 2.0, actual rows 0, exclusive ?, replan spliced, rows_loaded 2, sql_round_trips 1)
            MATSCAN^M #MAT0  (middleware, est rows 2.0, actual rows 2, exclusive ?, batches 1)
              TRANSFER^M  (middleware, est rows 102, actual rows 2, exclusive ?, server ?, sql_round_trips 1, batches 1, replans 1, replan_gain_est ?, events: cardinality-replan)
                SORT^D [PosID]  (dbms, est rows 102, in SQL)
                  PROJECT^D  (dbms, est rows 102, in SQL)
                    FILTER^D [((T1 <= 2520) AND (T2 >= 2500))]  (dbms, est rows 102, in SQL)
                      SCAN^D POSITION  (dbms, est rows 400, in SQL)
total: 2 rows, wall ?, wire ?, wall+wire ?
";
    assert_eq!(rel.len(), 2);
    assert_eq!(text, expected, "got:\n{text}");
}

#[test]
fn explain_analyze_entry_point_runs_the_query() {
    let (db, _conn) = setup();
    let mut tango = Tango::connect(db);
    let (text, report) = tango.explain_analyze(QUERY1).unwrap();
    assert!(text.contains("actual rows 4"), "{text}");
    assert!(text.contains("total: 4 rows"), "{text}");
    assert_eq!(report.exec.rows, 4);
    // the optimizer-side trace is available alongside
    let trace = report.optimized.optimizer_trace();
    assert!(trace.contains("classes"), "{trace}");
    assert!(trace.contains("optimize calls"), "{trace}");
}
