//! The middleware relation cache, end to end: repeat queries are served
//! from middleware-resident copies without touching the wire, writes
//! invalidate exactly the dependent entries, the byte budget is a hard
//! bound, faulted transfers never populate partial results, and the
//! optimizer's placement decision flips when (and only when) the
//! fragment it needs already resides in the middleware — the paper's
//! Figure 10 scenario as a first-class state.

use proptest::prelude::*;
use std::sync::Arc;
use tango::algebra::{
    tup, AggFunc, AggSpec, Attr, CmpOp, Expr, ProjItem, Schema, SortSpec, Type, Value,
};
use tango::core::cost::CostFactors;
use tango::core::phys::{Algo, PhysNode};
use tango::minidb::{Database, Fault, FaultPlan, Link, LinkProfile, RetryPolicy, WireMode};
use tango::Tango;

const QUERY1: &str = "VALIDTIME SELECT PosID, COUNT(PosID) AS Cnt FROM POSITION \
                      GROUP BY PosID ORDER BY PosID";

fn make_db(profile: LinkProfile, rows: &[(i64, i64, f64, i32, i32)]) -> Database {
    let db = Database::new(Link::new(profile));
    let schema = Schema::with_inferred_period(vec![
        Attr::new("PosID", Type::Int),
        Attr::new("EmpID", Type::Int),
        Attr::new("PayRate", Type::Double),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
    ]);
    db.create_table("POSITION", schema).unwrap();
    db.insert_rows(
        "POSITION",
        rows.iter().map(|&(p, e, pay, t1, t2)| tup![p, e, Value::Double(pay), t1, t2]).collect(),
    )
    .unwrap();
    db.analyze("POSITION").unwrap();
    db.link().reset();
    db
}

fn default_rows(n: usize) -> Vec<(i64, i64, f64, i32, i32)> {
    let mut state = 0xDEAD_BEEF_u64;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = |m: u64, s: u64| ((s >> 33) % m) as i64;
            let t1 = r(60, state) as i32;
            (1 + r(5, state), 1 + r(20, state ^ 7), r(200, state ^ 13) as f64 / 10.0, t1, t1 + 5)
        })
        .collect()
}

/// A repeated query is answered from the resident copy: byte-identical
/// result, a `cache hit` annotation instead of SQL round trips, and not
/// one additional wire round trip.
#[test]
fn warm_run_is_byte_identical_and_wire_free() {
    let db = make_db(LinkProfile::default(), &default_rows(150));
    let mut tango = Tango::connect(db.clone());

    let (cold, cold_report) = tango.query(QUERY1).unwrap();
    let cold_text = cold_report.optimized.explain_analyze(&cold_report.exec, true);
    assert!(cold_text.contains("cache miss"), "{cold_text}");
    assert!(cold_text.contains("cache_bytes"), "{cold_text}");
    assert_eq!(tango.cache().stats().insertions, 1);

    let wire_before = db.link().roundtrips();
    let (warm, warm_report) = tango.query(QUERY1).unwrap();
    assert_eq!(db.link().roundtrips(), wire_before, "a hit must not touch the wire");
    assert!(warm.list_eq(&cold), "cached result differs\ncold:\n{cold}\nwarm:\n{warm}");

    let warm_text = warm_report.optimized.explain_analyze(&warm_report.exec, true);
    assert!(warm_text.contains("cache hit"), "{warm_text}");
    assert!(!warm_text.contains("sql_round_trips"), "{warm_text}");
    let s = tango.cache().stats();
    assert_eq!(s.hits, 1, "{s:?}");
}

/// `cache_budget: None` disables the machinery entirely — no lookups, no
/// insertions, no annotations.
#[test]
fn disabled_cache_changes_nothing() {
    let db = make_db(LinkProfile::default(), &default_rows(50));
    let mut tango = Tango::connect(db);
    tango.options_mut().cache_budget = None;
    let (a, report) = tango.query(QUERY1).unwrap();
    let (b, _) = tango.query(QUERY1).unwrap();
    assert!(a.list_eq(&b));
    let text = report.optimized.explain_analyze(&report.exec, true);
    assert!(!text.contains("cache"), "{text}");
    assert_eq!(tango.cache().stats(), Default::default());
}

fn scan(conn: &tango::minidb::Connection, table: &str) -> PhysNode {
    PhysNode {
        algo: Algo::ScanD(table.into()),
        schema: Arc::new(conn.table_schema(table).unwrap()),
        children: vec![],
    }
}

fn un(algo: Algo, child: PhysNode) -> PhysNode {
    let schema = Arc::new(algo.output_schema(&[child.schema.as_ref()]).unwrap());
    PhysNode { algo, schema, children: vec![child] }
}

fn bin(algo: Algo, l: PhysNode, r: PhysNode) -> PhysNode {
    let schema = Arc::new(algo.output_schema(&[l.schema.as_ref(), r.schema.as_ref()]).unwrap());
    PhysNode { algo, schema, children: vec![l, r] }
}

/// Figure 9's mixed Query 2 placement: the Figure 5 round trip where the
/// middleware aggregate is bulk-loaded back with `TRANSFER^D` and joined
/// in the DBMS.
fn figure9_mixed_plan(conn: &tango::minidb::Connection) -> PhysNode {
    let group_by = vec!["PosID".to_string()];
    let aggs = vec![AggSpec::new(AggFunc::Count, Some("PosID"), "Cnt")];
    let keys = SortSpec::by(["PosID", "T1"]);
    let arg = un(
        Algo::ProjectD(["PosID", "T1", "T2"].iter().map(|c| ProjItem::col(*c)).collect()),
        scan(conn, "POSITION"),
    );
    let agg_m =
        un(Algo::TAggrM { group_by, aggs }, un(Algo::TransferM, un(Algo::SortD(keys), arg)));
    let payrate = Expr::cmp(CmpOp::Gt, Expr::col("PayRate"), Expr::lit(5.0));
    let p_side = un(Algo::FilterD(payrate), scan(conn, "POSITION"));
    let eq = vec![("PosID".to_string(), "PosID".to_string())];
    un(
        Algo::TransferM,
        un(
            Algo::SortD(SortSpec::by(["PosID"])),
            bin(Algo::TJoinD(eq), un(Algo::TransferD, agg_m), p_side),
        ),
    )
}

/// A fragment that scans a `TRANSFER^D` temp table is uncacheable: its
/// contents are middleware state, not a function of base-table versions.
/// That transfer streams normally, annotated `cache bypass` — while the
/// cacheable inner transfer (the aggregation argument) populates.
#[test]
fn temp_table_fragments_bypass() {
    let db = make_db(LinkProfile::instant(), &default_rows(80));
    let mut tango = Tango::connect(db);
    let plan = figure9_mixed_plan(tango.conn());
    let (rel, exec) = tango.execute_physical(&plan).unwrap();
    assert!(!rel.is_empty());

    let s = tango.cache().stats();
    assert_eq!(s.bypasses, 1, "the temp-scanning fragment must bypass: {s:?}");
    assert_eq!(s.insertions, 1, "the base-table fragment must populate: {s:?}");
    let annots: Vec<Option<&str>> = exec
        .steps
        .iter()
        .filter(|st| matches!(st.algo, Algo::TransferM))
        .map(|st| st.annotation("cache"))
        .collect();
    assert!(annots.contains(&Some("bypass")), "{annots:?}");
    assert!(annots.contains(&Some("miss")), "{annots:?}");

    // a second run: the inner fragment now hits, the outer still bypasses
    tango.execute_physical(&plan).unwrap();
    let s = tango.cache().stats();
    assert_eq!((s.hits, s.bypasses), (1, 2), "{s:?}");
}

/// A write to a base table invalidates dependent entries: the next run
/// misses, refetches, and sees the new data. Pinned to the drop-on-write
/// baseline (`cache_refresh: false`) — with incremental maintenance on,
/// the same write becomes an in-place refresh instead (see
/// `tests/maintenance.rs`).
#[test]
fn writes_invalidate_and_results_stay_fresh() {
    let db = make_db(LinkProfile::default(), &default_rows(100));
    let mut tango = Tango::connect(db.clone());
    tango.options_mut().cache_refresh = false;
    tango.query(QUERY1).unwrap();
    tango.query(QUERY1).unwrap();
    assert_eq!(tango.cache().stats().hits, 1);

    db.insert_rows("POSITION", vec![tup![9, 9, Value::Double(1.0), 0, 99]]).unwrap();
    db.analyze("POSITION").unwrap();

    let (stale_free, report) = tango.query(QUERY1).unwrap();
    let s = tango.cache().stats();
    assert!(s.invalidations >= 1, "{s:?}");
    assert_eq!(s.hits, 1, "a post-write run must not be served stale: {s:?}");

    // control: a cache-off session on the modified database
    let mut control = Tango::connect(db);
    control.options_mut().cache_budget = None;
    let (expect, _) = control.query(QUERY1).unwrap();
    assert!(
        stale_free.list_eq(&expect),
        "post-write result is stale\nexpected:\n{expect}\ngot:\n{stale_free}"
    );
    // the new group (PosID 9) really is visible
    assert!(stale_free.tuples().iter().any(|t| t[0] == Value::Int(9)), "{stale_free}");
    let _ = report;
}

/// The byte budget is a hard bound, enforced by eviction/rejection.
#[test]
fn budget_is_a_hard_bound() {
    let db = make_db(LinkProfile::default(), &default_rows(200));
    let mut tango = Tango::connect(db);
    tango.options_mut().cache_budget = Some(512);
    for sql in [
        QUERY1,
        "VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION WHERE PayRate > 5 GROUP BY PosID",
        "SELECT EmpID, PosID FROM POSITION WHERE PosID < 3 ORDER BY EmpID, PosID",
    ] {
        tango.query(sql).unwrap();
        assert!(tango.cache().bytes() <= 512, "budget exceeded: {} bytes", tango.cache().bytes());
    }
    let s = tango.cache().stats();
    assert!(s.evictions + s.rejections > 0, "nothing was ever squeezed out: {s:?}");
}

/// Chaos safety: a transfer that re-planned mid-flight, or died after
/// emitting rows, must never populate the cache — only a clean full
/// drain does.
#[test]
fn faulted_transfers_never_populate() {
    let db = make_db(
        LinkProfile {
            roundtrip_latency_us: 100.0,
            bytes_per_sec: 4.0 * 1024.0 * 1024.0,
            row_prefetch: 8,
            mode: WireMode::Virtual,
        },
        &default_rows(120),
    );
    let mut tango = Tango::connect(db.clone());
    let optimized = tango.optimize(QUERY1).unwrap();

    // (a) the submission exhausts its retries and the fragment re-plans:
    // the fallback's rows come from base-table fetches, not the keyed
    // fragment, so nothing may be admitted
    tango.conn_mut().set_retry_policy(RetryPolicy { max_attempts: 2, ..RetryPolicy::default() });
    let rt = db.link().roundtrips();
    db.link().set_injector(Arc::new(FaultPlan::scripted([
        (rt + 1, Fault::Transient("chaos".into())),
        (rt + 2, Fault::Disconnect),
    ])));
    let (rel, exec) = tango.execute_physical(&optimized.plan).unwrap();
    db.link().clear_injector();
    assert!(!rel.is_empty());
    let text = optimized.explain_analyze(&exec, true);
    assert!(text.contains("replans 1"), "{text}");
    assert!(tango.cache().is_empty(), "a re-planned transfer populated the cache");
    assert_eq!(tango.cache().stats().insertions, 0);

    // (b) a mid-stream failure after rows were emitted propagates and
    // leaves no partial entry behind
    tango.conn_mut().set_retry_policy(RetryPolicy::none());
    let rt = db.link().roundtrips();
    db.link()
        .set_injector(Arc::new(FaultPlan::scripted([(rt + 3, Fault::Transient("drop".into()))])));
    tango.execute_physical(&optimized.plan).map(|_| ()).unwrap_err();
    db.link().clear_injector();
    assert!(tango.cache().is_empty(), "a failed transfer populated the cache");

    // (c) with the chaos gone the same plan populates and then hits
    tango.conn_mut().set_retry_policy(RetryPolicy::default());
    tango.execute_physical(&optimized.plan).unwrap();
    assert_eq!(tango.cache().stats().insertions, 1);
    let wire_before = db.link().roundtrips();
    tango.execute_physical(&optimized.plan).unwrap();
    assert_eq!(db.link().roundtrips(), wire_before);
    assert_eq!(tango.cache().stats().hits, 1);
}

/// Figure 10, cost-driven: on a glacial wire the optimizer keeps the
/// temporal aggregation in the DBMS — until its argument fragment
/// resides in the middleware, at which point the transfer is priced at
/// memory speed and the plan flips to the middleware algorithm. Clearing
/// the cache flips it straight back: the *only* input that changed is
/// residency.
#[test]
fn optimizer_flips_placement_for_resident_fragments() {
    // 2 groups, 10 distinct starts: the aggregate collapses to a handful
    // of rows, so "evaluate in place, ship the tiny result" wins cold
    let rows: Vec<(i64, i64, f64, i32, i32)> = (0..4_000)
        .map(|i: i64| (i % 2, i, 9.0, ((i % 10) * 5) as i32, ((i % 10) * 5 + 12) as i32))
        .collect();
    let glacial = LinkProfile {
        roundtrip_latency_us: 50_000.0,
        bytes_per_sec: 16.0 * 1024.0,
        row_prefetch: 10,
        mode: WireMode::Virtual,
    };
    let db = make_db(glacial, &rows);
    let mut tango = Tango::connect(db);
    tango.calibrate().unwrap();
    let sql = "VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION \
               GROUP BY PosID ORDER BY PosID";

    let cold = tango.optimize(sql).unwrap();
    assert!(
        cold.plan.any(&|a| matches!(a, Algo::TAggrD { .. })),
        "glacial wire should keep aggregation in the DBMS while cold:\n{}",
        cold.explain()
    );

    // stage the residency Figure 10 hand-builds: run the middleware
    // variant once (forced by factors) so its argument fragment is cached
    let calibrated = *tango.factors();
    tango.set_factors(CostFactors { p_tm: 1e-9, p_taggd1: 1e9, ..Default::default() });
    let forced = tango.optimize(sql).unwrap();
    assert!(forced.plan.any(&|a| matches!(a, Algo::TAggrM { .. })), "{}", forced.explain());
    tango.execute_physical(&forced.plan).unwrap();
    assert_eq!(tango.cache().stats().insertions, 1, "warming run must populate");
    tango.set_factors(calibrated);

    let warm = tango.optimize(sql).unwrap();
    assert!(
        warm.plan.any(&|a| matches!(a, Algo::TAggrM { .. })),
        "resident argument should flip aggregation into the middleware:\n{}",
        warm.explain()
    );
    assert!(
        warm.est_cost_us < cold.est_cost_us,
        "the flip must be cost-driven: warm {} < cold {}",
        warm.est_cost_us,
        cold.est_cost_us
    );

    // and the flip reverses when residency goes away
    tango.clear_cache();
    let cleared = tango.optimize(sql).unwrap();
    assert!(
        cleared.plan.any(&|a| matches!(a, Algo::TAggrD { .. })),
        "clearing the cache must restore the cold plan:\n{}",
        cleared.explain()
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]
    /// Differential: for random data, random interleaved writes and the
    /// benchmark query family, a cache-on session answers every query
    /// exactly like a cache-off session over the same database state.
    #[test]
    fn cached_sessions_agree_with_uncached(
        rows in proptest::collection::vec(
            (1i64..6, 1i64..8, 0.0f64..20.0, 0i32..50, 1i32..30),
            1..40,
        ),
        extra in (1i64..6, 1i64..8, 0i32..50, 1i32..30),
    ) {
        let fixed: Vec<(i64, i64, f64, i32, i32)> =
            rows.into_iter().map(|(p, e, pay, t1, d)| (p, e, pay, t1, t1 + d)).collect();
        let db = make_db(LinkProfile::instant(), &fixed);
        let mut cached = Tango::connect(db.clone());
        let mut uncached = Tango::connect(db.clone());
        uncached.options_mut().cache_budget = None;

        let queries = [
            QUERY1.to_string(),
            "VALIDTIME SELECT A.PosID, A.EmpID, B.EmpID FROM POSITION A, POSITION B \
             WHERE A.PosID = B.PosID AND A.T1 < 40 AND B.T1 < 40 ORDER BY A.PosID".to_string(),
            "SELECT EmpID, PosID FROM POSITION WHERE PayRate > 5 ORDER BY EmpID, PosID".to_string(),
        ];
        let check = |cached: &mut Tango, uncached: &mut Tango| {
            for sql in &queries {
                // twice: the second run exercises the hit path
                for pass in ["cold", "warm"] {
                    let (a, _) = cached.query(sql).unwrap_or_else(|e| panic!("{e}\nsql: {sql}"));
                    let (b, _) = uncached.query(sql).unwrap_or_else(|e| panic!("{e}\nsql: {sql}"));
                    assert!(
                        a.multiset_eq(&b),
                        "{pass} cached run diverged\nsql: {sql}\ncached:\n{a}\nuncached:\n{b}"
                    );
                }
            }
        };
        check(&mut cached, &mut uncached);
        // a write in between: the cached session must not serve stale rows
        let (p, e, t1, d) = extra;
        db.insert_rows("POSITION", vec![tup![p, e, Value::Double(3.0), t1, t1 + d]]).unwrap();
        db.analyze("POSITION").unwrap();
        cached.refresh_statistics().unwrap();
        uncached.refresh_statistics().unwrap();
        check(&mut cached, &mut uncached);
        prop_assert!(cached.cache().stats().hits >= 1, "the warm passes never hit");
    }
}

/// The cached scan repeats the delivered order: a warm ORDER BY run is
/// list-equal, not just multiset-equal, to the cold one.
#[test]
fn warm_runs_preserve_order() {
    let db = make_db(LinkProfile::default(), &default_rows(80));
    let mut tango = Tango::connect(db);
    let (cold, _) = tango.query(QUERY1).unwrap();
    for _ in 0..3 {
        let (warm, _) = tango.query(QUERY1).unwrap();
        assert!(warm.list_eq(&cold));
    }
}
