//! Incremental cache maintenance, end to end: writes no longer simply
//! evict — the engine prices refreshing a stale fragment by delta-log
//! replay against refetching or dropping it, picks the cheapest, and a
//! refreshed fragment is **byte-identical** to a cold refetch. The
//! differential suites gate exactly that equivalence across the
//! cacheable shapes (filter/project chains, the merge joins, `TAGGR`),
//! write mixes and batch sizes, and the chaos test pins that a faulted
//! refresh never corrupts or populates the cache.

use proptest::prelude::*;
use std::sync::{Arc, Barrier};
use std::thread;
use tango::algebra::{
    tup, AggFunc, AggSpec, Attr, CmpOp, Expr, ProjItem, Schema, SortSpec, Type, Value,
};
use tango::core::cost::CostFactors;
use tango::core::phys::{Algo, PhysNode};
use tango::minidb::{Connection, Database, Fault, FaultPlan, Link, LinkProfile};
use tango::Tango;

const QUERY1: &str = "VALIDTIME SELECT PosID, COUNT(PosID) AS Cnt FROM POSITION \
                      GROUP BY PosID ORDER BY PosID";

/// POSITION plus a SALARY side table (for the two-table join shapes).
fn make_db(profile: LinkProfile, rows: &[(i64, i64, f64, i32, i32)]) -> Database {
    let db = Database::new(Link::new(profile));
    let position = Schema::with_inferred_period(vec![
        Attr::new("PosID", Type::Int),
        Attr::new("EmpID", Type::Int),
        Attr::new("PayRate", Type::Double),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
    ]);
    db.create_table("POSITION", position).unwrap();
    db.insert_rows(
        "POSITION",
        rows.iter().map(|&(p, e, pay, t1, t2)| tup![p, e, Value::Double(pay), t1, t2]).collect(),
    )
    .unwrap();
    let salary = Schema::with_inferred_period(vec![
        Attr::new("EmpID", Type::Int),
        Attr::new("Amount", Type::Int),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
    ]);
    db.create_table("SALARY", salary).unwrap();
    db.insert_rows("SALARY", (1..=20).map(|e| tup![e, 100 + 7 * e, 0, 60]).collect()).unwrap();
    db.analyze("POSITION").unwrap();
    db.analyze("SALARY").unwrap();
    db.link().reset();
    db
}

fn default_rows(n: usize) -> Vec<(i64, i64, f64, i32, i32)> {
    // distinct PosID per row: the chain fragment's delivered order is a
    // key, so every merge is provably order-determined
    (0..n as i64).map(|i| (i, 1 + i % 20, (i % 37) as f64 / 3.0, 0, 30 + (i % 11) as i32)).collect()
}

fn scan(conn: &Connection, table: &str) -> PhysNode {
    PhysNode {
        algo: Algo::ScanD(table.into()),
        schema: Arc::new(conn.table_schema(table).unwrap()),
        children: vec![],
    }
}

fn un(algo: Algo, child: PhysNode) -> PhysNode {
    let schema = Arc::new(algo.output_schema(&[child.schema.as_ref()]).unwrap());
    PhysNode { algo, schema, children: vec![child] }
}

fn bin(algo: Algo, l: PhysNode, r: PhysNode) -> PhysNode {
    let schema = Arc::new(algo.output_schema(&[l.schema.as_ref(), r.schema.as_ref()]).unwrap());
    PhysNode { algo, schema, children: vec![l, r] }
}

/// `SEL`-chain fragment: σ(PayRate ≥ 0) over POSITION, delivered sorted
/// on every column (a key, so refresh is always order-determined).
fn chain_plan(conn: &Connection) -> PhysNode {
    let pred = Expr::cmp(CmpOp::Ge, Expr::col("PayRate"), Expr::lit(0.0));
    let order = SortSpec::by(["PosID", "EmpID", "PayRate", "T1", "T2"]);
    un(Algo::TransferM, un(Algo::SortD(order), un(Algo::FilterD(pred), scan(conn, "POSITION"))))
}

/// The SALARY side as its own cacheable fragment — querying this first
/// makes it the *resident other side* a join delta can replay against.
fn salary_plan(conn: &Connection) -> PhysNode {
    un(Algo::TransferM, scan(conn, "SALARY"))
}

/// Temporal merge join POSITION ⋈ᵀ SALARY on EmpID, both sides linear
/// chains over distinct tables.
fn join_plan(conn: &Connection) -> PhysNode {
    let eq = vec![("EmpID".to_string(), "EmpID".to_string())];
    let order = SortSpec::by(["EmpID", "PosID", "PayRate", "Amount", "T1", "T2"]);
    un(
        Algo::TransferM,
        un(Algo::SortD(order), bin(Algo::TJoinD(eq), scan(conn, "POSITION"), scan(conn, "SALARY"))),
    )
}

/// `TAGGR^D` fragment: COUNT of POSITION rows per PosID, delivered on
/// (PosID, T1) — unique over the aggregate's constant intervals.
fn taggr_plan(conn: &Connection) -> PhysNode {
    let group_by = vec!["PosID".to_string()];
    let aggs = vec![AggSpec::new(AggFunc::Count, Some("PosID"), "Cnt")];
    let arg = un(
        Algo::ProjectD(["PosID", "T1", "T2"].iter().map(|c| ProjItem::col(*c)).collect()),
        scan(conn, "POSITION"),
    );
    un(
        Algo::TransferM,
        un(Algo::SortD(SortSpec::by(["PosID", "T1"])), un(Algo::TAggrD { group_by, aggs }, arg)),
    )
}

fn cache_annotations(exec: &tango::core::engine::ExecReport) -> Vec<Option<&str>> {
    exec.steps
        .iter()
        .filter(|st| matches!(st.algo, Algo::TransferM))
        .map(|st| st.annotation("cache"))
        .collect()
}

fn control_run(db: &Database, plan: &PhysNode) -> tango::algebra::Relation {
    let mut off = Tango::connect_private(db.clone());
    off.options_mut().cache_budget = None;
    off.execute_physical(plan).unwrap().0
}

/// A write no longer costs the warm speedup: the stale chain fragment is
/// refreshed in place by replaying the table's tombstones — cheaper on
/// the wire than the cold run — and the merged result is byte-identical
/// to a cold refetch.
#[test]
fn chain_refresh_survives_writes_byte_identically() {
    let db = make_db(LinkProfile::default(), &default_rows(150));
    let mut tango = Tango::connect(db.clone());
    let plan = chain_plan(tango.conn());

    let rt0 = db.link().roundtrips();
    tango.execute_physical(&plan).unwrap();
    let cold_rts = db.link().roundtrips() - rt0;
    tango.execute_physical(&plan).unwrap(); // hit: the entry earns its keep

    db.insert_rows("POSITION", vec![tup![999, 9, Value::Double(3.5), 0, 40]]).unwrap();
    let rt1 = db.link().roundtrips();
    let (got, exec) = tango.execute_physical(&plan).unwrap();
    let refresh_rts = db.link().roundtrips() - rt1;

    let annots = cache_annotations(&exec);
    assert_eq!(annots, vec![Some("refresh")], "{annots:?}");
    let s = tango.cache().stats();
    assert_eq!(s.refreshes, 1, "{s:?}");
    assert!(s.refresh_bytes > 0, "{s:?}");
    assert_eq!(s.invalidations, 0, "a refreshed entry must not be dropped: {s:?}");
    assert!(
        refresh_rts < cold_rts,
        "refresh must beat a refetch on the wire: {refresh_rts} vs {cold_rts} round trips"
    );
    assert!(got.tuples().iter().any(|t| t[0] == Value::Int(999)), "{got}");
    let expect = control_run(&db, &plan);
    assert!(got.list_eq(&expect), "refresh diverged from cold\nexpected:\n{expect}\ngot:\n{got}");

    // the refreshed entry keeps serving hits without the wire
    let rt2 = db.link().roundtrips();
    let (warm, _) = tango.execute_physical(&plan).unwrap();
    assert_eq!(db.link().roundtrips(), rt2, "a post-refresh hit must not touch the wire");
    assert!(warm.list_eq(&expect));
}

/// The maintenance decision is priced, not hard-coded: the *same* stale
/// entry is refreshed under the default factors but refetched when
/// `p_delta` makes replay merging prohibitive — flipped by cost alone.
#[test]
fn maintenance_picks_refetch_when_replay_outcosts_it() {
    let db = make_db(LinkProfile::default(), &default_rows(150));
    let mut tango = Tango::connect(db.clone());
    let plan = chain_plan(tango.conn());
    tango.execute_physical(&plan).unwrap();
    tango.execute_physical(&plan).unwrap();

    db.insert_rows("POSITION", vec![tup![999, 9, Value::Double(3.5), 0, 40]]).unwrap();
    // replay CPU priced astronomically: refetching is now the cheapest
    // way to keep the entry
    tango.set_factors(CostFactors { p_delta: 1e9, ..Default::default() });
    let (got, exec) = tango.execute_physical(&plan).unwrap();

    let annots = cache_annotations(&exec);
    assert_eq!(annots, vec![Some("refetch")], "{annots:?}");
    let s = tango.cache().stats();
    assert_eq!(s.refreshes, 0, "{s:?}");
    assert!(s.invalidations >= 1, "{s:?}");
    assert_eq!(s.insertions, 2, "the refetch must repopulate: {s:?}");
    let expect = control_run(&db, &plan);
    assert!(got.list_eq(&expect), "expected:\n{expect}\ngot:\n{got}");
}

/// A never-hit entry has no future benefit to amortize either a refresh
/// or a refetch against: the write drops it and the query streams
/// without repopulating.
#[test]
fn maintenance_drops_never_hit_entries() {
    let db = make_db(LinkProfile::default(), &default_rows(150));
    let mut tango = Tango::connect(db.clone());
    let plan = chain_plan(tango.conn());
    tango.execute_physical(&plan).unwrap(); // populate; zero hits so far

    db.insert_rows("POSITION", vec![tup![999, 9, Value::Double(3.5), 0, 40]]).unwrap();
    let (got, exec) = tango.execute_physical(&plan).unwrap();

    let annots = cache_annotations(&exec);
    assert_eq!(annots, vec![Some("drop")], "{annots:?}");
    let s = tango.cache().stats();
    assert_eq!((s.refreshes, s.insertions), (0, 1), "{s:?}");
    assert!(s.invalidations >= 1, "{s:?}");
    assert_eq!(tango.cache().len(), 0, "a dropped entry must not be refilled: {s:?}");
    let expect = control_run(&db, &plan);
    assert!(got.list_eq(&expect), "expected:\n{expect}\ngot:\n{got}");
}

/// The bilinear join rule: with the SALARY side resident fresh, a write
/// to POSITION refreshes the join fragment by delta-joining the
/// tombstones against the resident other side — no join SQL re-runs.
#[test]
fn join_refresh_replays_against_resident_other_side() {
    let db = make_db(LinkProfile::default(), &default_rows(60));
    let mut tango = Tango::connect(db.clone());
    let jplan = join_plan(tango.conn());
    let splan = salary_plan(tango.conn());

    tango.execute_physical(&splan).unwrap(); // make the other side resident
    tango.execute_physical(&jplan).unwrap();
    tango.execute_physical(&jplan).unwrap(); // the join entry earns a hit

    db.insert_rows("POSITION", vec![tup![999, 3, Value::Double(9.9), 5, 25]]).unwrap();
    let (got, exec) = tango.execute_physical(&jplan).unwrap();

    let annots = cache_annotations(&exec);
    assert_eq!(annots, vec![Some("refresh")], "{annots:?}");
    assert_eq!(tango.cache().stats().refreshes, 1, "{:?}", tango.cache().stats());
    assert!(got.tuples().iter().any(|t| t[0] == Value::Int(999)), "{got}");
    let expect = control_run(&db, &jplan);
    assert!(got.list_eq(&expect), "expected:\n{expect}\ngot:\n{got}");

    // without the resident other side the same write must *bail* to a
    // refetch — and still produce identical bytes
    let db2 = make_db(LinkProfile::default(), &default_rows(60));
    let mut solo = Tango::connect(db2.clone());
    let jplan2 = join_plan(solo.conn());
    solo.execute_physical(&jplan2).unwrap();
    solo.execute_physical(&jplan2).unwrap();
    db2.insert_rows("POSITION", vec![tup![999, 3, Value::Double(9.9), 5, 25]]).unwrap();
    let (got2, exec2) = solo.execute_physical(&jplan2).unwrap();
    let annots2 = cache_annotations(&exec2);
    assert_eq!(annots2, vec![Some("miss")], "{annots2:?}");
    let s = solo.cache().stats();
    assert!(s.refresh_bails >= 1, "{s:?}");
    assert_eq!(s.refreshes, 0, "{s:?}");
    let expect2 = control_run(&db2, &jplan2);
    assert!(got2.list_eq(&expect2), "expected:\n{expect2}\ngot:\n{got2}");
}

/// Touched-group re-aggregation: a write to one group refreshes the
/// `TAGGR` fragment by refetching only that group's rows and splicing
/// them over the cached base.
#[test]
fn taggr_refresh_refetches_only_touched_groups() {
    let db = make_db(LinkProfile::default(), &default_rows(150));
    let mut tango = Tango::connect(db.clone());
    let plan = taggr_plan(tango.conn());
    tango.execute_physical(&plan).unwrap();
    tango.execute_physical(&plan).unwrap();

    // touch exactly one group (PosID 7)
    db.insert_rows("POSITION", vec![tup![7, 9, Value::Double(3.5), 2, 50]]).unwrap();
    let (got, exec) = tango.execute_physical(&plan).unwrap();

    let annots = cache_annotations(&exec);
    assert_eq!(annots, vec![Some("refresh")], "{annots:?}");
    let s = tango.cache().stats();
    assert_eq!(s.refreshes, 1, "{s:?}");
    let expect = control_run(&db, &plan);
    assert!(got.list_eq(&expect), "expected:\n{expect}\ngot:\n{got}");
    // the touched-group refetch must move far less than the full result
    let full_bytes: u64 = expect.tuples().iter().map(|t| t.byte_size() as u64).sum();
    assert!(
        s.refresh_bytes < full_bytes,
        "refetched too much: {} vs {full_bytes}",
        s.refresh_bytes
    );
}

/// Chaos: a wire fault during the delta fetch makes the refresh bail —
/// the query degrades to an ordinary streamed refetch, results stay
/// byte-identical, and the faulted attempt neither corrupts nor
/// populates the cache.
#[test]
fn faulted_refresh_never_corrupts_or_populates() {
    let db = make_db(LinkProfile::default(), &default_rows(150));
    let mut tango = Tango::connect(db.clone());
    let plan = chain_plan(tango.conn());
    tango.execute_physical(&plan).unwrap();
    tango.execute_physical(&plan).unwrap();

    db.insert_rows("POSITION", vec![tup![999, 9, Value::Double(3.5), 0, 40]]).unwrap();
    let rt = db.link().roundtrips();
    db.link().set_injector(Arc::new(FaultPlan::scripted([(
        rt + 1,
        Fault::Fatal("ORA-03113: end-of-file on delta channel".into()),
    )])));
    let (got, exec) = tango.execute_physical(&plan).unwrap();
    db.link().clear_injector();

    let annots = cache_annotations(&exec);
    assert_eq!(annots, vec![Some("miss")], "the bail must degrade to a miss: {annots:?}");
    let s = tango.cache().stats();
    assert!(s.refresh_bails >= 1, "{s:?}");
    assert_eq!(s.refreshes, 0, "a faulted refresh must not commit: {s:?}");
    let expect = control_run(&db, &plan);
    assert!(got.list_eq(&expect), "expected:\n{expect}\ngot:\n{got}");

    // the fallback populate installed a fresh entry: warm again, and
    // still identical
    let rt2 = db.link().roundtrips();
    let (warm, _) = tango.execute_physical(&plan).unwrap();
    assert_eq!(db.link().roundtrips(), rt2, "the repopulated entry must serve hits");
    assert!(warm.list_eq(&expect));
}

/// Write-heavy racing: concurrent writers against warm refresher
/// sessions. No interleaving may serve stale or corrupt bytes, and once
/// the dust settles a deterministic write must still be settled — as an
/// in-place refresh or an invalidation, never ignored.
#[test]
fn racing_writers_vs_refreshers_stay_consistent() {
    let db = make_db(LinkProfile::instant(), &default_rows(80));
    let start = Arc::new(Barrier::new(4)); // 2 writers + 2 refreshers
    let writers: Vec<_> = (0..2)
        .map(|w| {
            let db = db.clone();
            let start = start.clone();
            thread::spawn(move || {
                let conn = Connection::new(db);
                start.wait();
                for i in 0..15 {
                    let id = 2000 + w * 100 + i;
                    conn.execute(&format!("INSERT INTO POSITION VALUES ({id}, 5, 1.5, 0, 30)"))
                        .unwrap();
                    if i % 3 == 0 {
                        conn.execute(&format!("DELETE FROM POSITION WHERE PosID = {id}")).unwrap();
                    }
                }
            })
        })
        .collect();
    let refreshers: Vec<_> = (0..2)
        .map(|_| {
            let db = db.clone();
            let start = start.clone();
            thread::spawn(move || {
                let mut tango = Tango::connect(db);
                tango.refresh_statistics().unwrap();
                let plan = chain_plan(tango.conn());
                start.wait();
                for _ in 0..15 {
                    let (rel, _) = tango.execute_physical(&plan).unwrap();
                    assert!(!rel.is_empty());
                    let (rel2, _) = tango.query(QUERY1).unwrap();
                    assert!(!rel2.is_empty());
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    for r in refreshers {
        r.join().unwrap();
    }

    // quiesced: the warm answer must equal a cache-off session's over
    // the final state
    db.analyze("POSITION").unwrap();
    let mut warm = Tango::connect(db.clone());
    let plan = chain_plan(warm.conn());
    let (got, _) = warm.execute_physical(&plan).unwrap();
    let expect = control_run(&db, &plan);
    assert!(got.list_eq(&expect), "a stale relation survived the race");

    // deterministic post-race freshness: one more write must be settled
    warm.execute_physical(&plan).unwrap(); // earn a hit so refresh can win
    let before = warm.cache().stats();
    db.insert_rows("POSITION", vec![tup![7777, 1, Value::Double(2.0), 0, 9]]).unwrap();
    let (after, _) = warm.execute_physical(&plan).unwrap();
    let s = warm.cache().stats();
    assert!(
        s.refreshes > before.refreshes || s.invalidations > before.invalidations,
        "the post-race write was neither refreshed nor invalidated: {s:?}"
    );
    assert!(after.tuples().iter().any(|t| t[0] == Value::Int(7777)), "{after}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]
    /// Differential gate: across the cacheable shapes, insert/delete/
    /// mixed write batches and batch sizes 1 and 1024, a refresh-by-delta
    /// session answers every query byte-identically to a drop-on-write
    /// session *and* to a cache-off session over the same database state.
    /// Refresh is an optimization that must be invisible or absent.
    #[test]
    fn refresh_by_delta_is_equivalent_to_refetch(
        rows in proptest::collection::vec(
            (0i64..40, 1i64..8, 0.0f64..20.0, 0i32..50, 1i32..30),
            1..50,
        ),
        writes in proptest::collection::vec(
            (0u8..3, 0i64..40, 1i64..8, 0i32..50, 1i32..30),
            1..8,
        ),
        batch in proptest::sample::select(vec![1usize, 1024]),
    ) {
        let fixed: Vec<(i64, i64, f64, i32, i32)> =
            rows.into_iter().map(|(p, e, pay, t1, d)| (p, e, pay, t1, t1 + d)).collect();
        let db = make_db(LinkProfile::instant(), &fixed);

        let mut refreshing = Tango::connect_private(db.clone());
        refreshing.options_mut().batch_rows = Some(batch);
        let mut dropping = Tango::connect_private(db.clone());
        dropping.options_mut().cache_refresh = false;
        dropping.options_mut().batch_rows = Some(batch);
        let mut uncached = Tango::connect_private(db.clone());
        uncached.options_mut().cache_budget = None;
        uncached.options_mut().batch_rows = Some(batch);

        let conn = Connection::new(db.clone());
        let plans = [
            salary_plan(&conn), // first: the join's resident other side
            chain_plan(&conn),
            join_plan(&conn),
            taggr_plan(&conn),
        ];
        let mut check = |note: &str| {
            for plan in &plans {
                // twice: the second run exercises hit/refresh paths
                for pass in ["cold", "warm"] {
                    let (a, _) = refreshing.execute_physical(plan).unwrap();
                    let (b, _) = dropping.execute_physical(plan).unwrap();
                    let (c, _) = uncached.execute_physical(plan).unwrap();
                    prop_assert!(
                        a.list_eq(&c),
                        "refresh-by-delta diverged ({note}, {pass})\nexpected:\n{c}\ngot:\n{a}"
                    );
                    prop_assert!(
                        b.list_eq(&c),
                        "drop-on-write diverged ({note}, {pass})\nexpected:\n{c}\ngot:\n{b}"
                    );
                }
            }
        };

        check("pre-write");
        for (i, &(kind, p, e, t1, d)) in writes.iter().enumerate() {
            match kind {
                0 => db
                    .insert_rows(
                        "POSITION",
                        vec![tup![p, e, Value::Double(1.25), t1, t1 + d]],
                    )
                    .map(|_| ())
                    .unwrap(),
                1 => {
                    conn.execute(&format!("DELETE FROM POSITION WHERE PosID = {p}")).map(|_| ()).unwrap()
                }
                _ => {
                    db.insert_rows(
                        "POSITION",
                        vec![tup![p, e, Value::Double(0.5), t1, t1 + d]],
                    )
                    .unwrap();
                    conn.execute(&format!("DELETE FROM POSITION WHERE EmpID = {e} AND T1 = {t1}"))
                        .map(|_| ())
                        .unwrap();
                }
            }
            check(&format!("after write {i}"));
        }
    }
}
