//! Translator cross-validation: the same physical fragment evaluated
//! (a) by the middleware's XXL cursors and (b) by the Translator-To-SQL +
//! mini-DBMS must produce the same multiset. This pins the two
//! independent implementations of every temporal operator against each
//! other on randomized data.

use proptest::prelude::*;
use std::sync::Arc;
use tango::algebra::{tup, AggFunc, AggSpec, Attr, Relation, Schema, SortSpec, Type};
use tango::core::phys::{Algo, PhysNode};
use tango::core::to_sql::render_select;
use tango::minidb::{Connection, Database, Link, LinkProfile};
use tango::xxl::{collect, TemporalAggregate, TemporalMergeJoin, VecScan};

type Row = (i64, i64, i32, i32);

fn schema() -> Schema {
    Schema::with_inferred_period(vec![
        Attr::new("PosID", Type::Int),
        Attr::new("EmpID", Type::Int),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
    ])
}

fn relation(rows: &[Row]) -> Relation {
    Relation::new(Arc::new(schema()), rows.iter().map(|&(p, e, a, b)| tup![p, e, a, b]).collect())
}

fn db_with(rows: &[Row]) -> Connection {
    let db = Database::new(Link::new(LinkProfile::instant()));
    db.create_table("R", schema()).unwrap();
    db.insert_rows("R", relation(rows).into_tuples()).unwrap();
    Connection::new(db)
}

fn scan_node() -> PhysNode {
    PhysNode { algo: Algo::ScanD("R".into()), schema: Arc::new(schema()), children: vec![] }
}

fn node(algo: Algo, children: Vec<PhysNode>) -> PhysNode {
    let kids: Vec<&Schema> = children.iter().map(|c| c.schema.as_ref()).collect();
    let out = algo.output_schema(&kids).unwrap();
    PhysNode { algo, schema: Arc::new(out), children }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// TAGGR^M vs the constant-period SQL of TAGGR^D.
    #[test]
    fn taggr_cursor_vs_sql(
        raw in proptest::collection::vec((0i64..4, 0i64..5, 0i32..25, 1i32..10), 1..30),
    ) {
        let rows: Vec<Row> = raw.into_iter().map(|(p, e, a, d)| (p, e, a, a + d)).collect();
        let aggs = vec![
            AggSpec::new(AggFunc::Count, Some("PosID"), "C"),
            AggSpec::new(AggFunc::Min, Some("EmpID"), "MN"),
            AggSpec::new(AggFunc::Max, Some("EmpID"), "MX"),
        ];
        // middleware side
        let mut sorted = relation(&rows);
        sorted.sort_by(&SortSpec::by(["PosID", "T1"]));
        let agg = TemporalAggregate::new(
            Box::new(VecScan::new(sorted)),
            vec!["PosID".into()],
            aggs.clone(),
        ).unwrap();
        let mid = collect(Box::new(agg)).unwrap();
        // DBMS side via the translator
        let sql_node = node(
            Algo::TAggrD { group_by: vec!["PosID".into()], aggs },
            vec![scan_node()],
        );
        let sql = render_select(&sql_node).unwrap();
        let dbms = db_with(&rows).query_all(&sql).unwrap();
        prop_assert!(
            mid.multiset_eq(&dbms),
            "taggr diverged\nsql: {sql}\nmid:\n{mid}\ndbms:\n{dbms}"
        );
    }

    /// TMERGEJOIN^M vs the Figure 5 SQL of TJOIN^D (self join).
    #[test]
    fn tjoin_cursor_vs_sql(
        raw in proptest::collection::vec((0i64..4, 0i64..5, 0i32..25, 1i32..10), 1..25),
    ) {
        let rows: Vec<Row> = raw.into_iter().map(|(p, e, a, d)| (p, e, a, a + d)).collect();
        let eq = vec![("PosID".to_string(), "PosID".to_string())];
        // middleware side
        let mut sorted = relation(&rows);
        sorted.sort_by(&SortSpec::by(["PosID"]));
        let tj = TemporalMergeJoin::new(
            Box::new(VecScan::new(sorted.clone())),
            Box::new(VecScan::new(sorted)),
            &eq,
        ).unwrap();
        let mid = collect(Box::new(tj)).unwrap();
        // DBMS side
        let sql_node = node(Algo::TJoinD(eq), vec![scan_node(), scan_node()]);
        let sql = render_select(&sql_node).unwrap();
        let dbms = db_with(&rows).query_all(&sql).unwrap();
        prop_assert!(
            mid.multiset_eq(&dbms),
            "tjoin diverged\nsql: {sql}\nmid:\n{mid}\ndbms:\n{dbms}"
        );
    }

    /// Stacked fragments: filter + project + sort render into one SELECT
    /// pyramid whose result matches direct evaluation.
    #[test]
    fn stacked_fragment_round_trips(
        raw in proptest::collection::vec((0i64..6, 0i64..9, 0i32..25, 1i32..10), 0..25),
        cut in 0i64..6,
    ) {
        use tango::algebra::{CmpOp, Expr, ProjItem};
        let rows: Vec<Row> = raw.into_iter().map(|(p, e, a, d)| (p, e, a, a + d)).collect();
        let pred = Expr::cmp(CmpOp::Ge, Expr::col("PosID"), Expr::lit(cut));
        let frag = node(
            Algo::SortD(SortSpec::by(["EmpID", "T1"])),
            vec![node(
                Algo::ProjectD(vec![ProjItem::col("EmpID"), ProjItem::col("T1")]),
                vec![node(Algo::FilterD(pred.clone()), vec![scan_node()])],
            )],
        );
        let sql = render_select(&frag).unwrap();
        let dbms = db_with(&rows).query_all(&sql).unwrap();
        // reference: direct computation
        let mut want: Vec<(i64, i64)> = rows
            .iter()
            .filter(|&&(p, _, _, _)| p >= cut)
            .map(|&(_, e, a, _)| (e, a as i64))
            .collect();
        want.sort();
        let got: Vec<(i64, i64)> = dbms
            .tuples()
            .iter()
            .map(|t| (t[0].as_int().unwrap(), t[1].as_int().unwrap()))
            .collect();
        prop_assert_eq!(got, want, "sql: {}", sql);
    }
}
