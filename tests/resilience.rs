//! Chaos & resilience: the simulated JDBC wire fails on purpose — seeded
//! fault schedules ([`FaultPlan`]) inject latency spikes, throttles,
//! transient errors, disconnects and fatal failures — and the middleware
//! must absorb every survivable schedule without changing a single
//! result byte:
//!
//! * transient faults are retried with capped, jittered backoff charged
//!   to the virtual wire clock;
//! * a DBMS fragment that exhausts its retry budget is **re-planned** —
//!   the transfer operator flips and the fragment runs on middleware
//!   operators over plain base-table fetches;
//! * fatal faults surface as one clean classified error, never a panic
//!   and never a partial result;
//! * all of it is visible as `retry` / `fault` / `replan` span events in
//!   `EXPLAIN ANALYZE`.
//!
//! Seeds come from `TANGO_CHAOS_SEED` (the CI chaos job sweeps several)
//! with a fixed default set, so every failure here is reproducible by
//! exporting the seed the log names.

use std::sync::Arc;
use std::time::Duration;
use tango::algebra::{tup, Attr, Relation, Schema, SortSpec, Type, Value};
use tango::minidb::{
    Database, ErrorClass, Fault, FaultPlan, Link, LinkProfile, RetryPolicy, WireMode,
};
use tango::Tango;

/// The seeds this run sweeps: `TANGO_CHAOS_SEED` overrides (one seed,
/// decimal or `0x…` hex) so CI can shard and failures can be replayed.
fn seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("TANGO_CHAOS_SEED") {
        let s = s.trim();
        let parsed = match s.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => s.parse(),
        };
        return vec![parsed.unwrap_or_else(|_| panic!("bad TANGO_CHAOS_SEED: {s}"))];
    }
    vec![0xA11CE, 0x5EED5, 0xC0FFEE]
}

/// A wire slow enough that batching matters (prefetch 8 ⇒ a Query-1 run
/// makes a dozen-plus round trips for the chaos schedules to hit).
fn chaos_profile() -> LinkProfile {
    LinkProfile {
        roundtrip_latency_us: 100.0,
        bytes_per_sec: 4.0 * 1024.0 * 1024.0,
        row_prefetch: 8,
        mode: WireMode::Virtual,
    }
}

/// Deterministic POSITION (120 rows) + EMPLOYEE (40 rows) — an LCG, not
/// `rand`, so the fixture can never drift under a shim change.
fn seed_db() -> Database {
    let db = Database::new(Link::new(chaos_profile()));
    let position = Schema::with_inferred_period(vec![
        Attr::new("PosID", Type::Int),
        Attr::new("EmpID", Type::Int),
        Attr::new("PayRate", Type::Double),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
    ]);
    let employee =
        Schema::new(vec![Attr::new("EmpID", Type::Int), Attr::new("EmpName", Type::Str)]);
    db.create_table("POSITION", position).unwrap();
    db.create_table("EMPLOYEE", employee).unwrap();

    let mut state = 0x1234_5678_9ABC_DEF0u64;
    let mut next = move |m: u64| -> i64 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) % m) as i64
    };
    let rows: Vec<_> = (0..120)
        .map(|_| {
            let t1 = next(60);
            tup![
                1 + next(7),
                1 + next(40),
                Value::Double(next(200) as f64 / 10.0),
                t1,
                t1 + 1 + next(25)
            ]
        })
        .collect();
    db.insert_rows("POSITION", rows).unwrap();
    db.insert_rows("EMPLOYEE", (1..=40).map(|i: i64| tup![i, format!("emp{i}")]).collect())
        .unwrap();
    db.analyze("POSITION").unwrap();
    db.analyze("EMPLOYEE").unwrap();
    db.link().reset();
    db
}

const QUERY1: &str = "VALIDTIME SELECT PosID, COUNT(PosID) AS Cnt FROM POSITION \
                      GROUP BY PosID ORDER BY PosID";

/// A session with the relation cache off: every run in this file must
/// exercise the wire — which is the thing under test — rather than be
/// served from a middleware-resident copy. (Cache population safety
/// under chaos is covered by `tests/caching.rs`.)
fn wire_session(db: &Database) -> Tango {
    let mut tango = Tango::connect(db.clone());
    tango.options_mut().cache_budget = None;
    tango
}

/// The benchmark's four query shapes (Section 5 flavours): temporal
/// aggregation, nested aggregation + temporal join, temporal self-join,
/// and a conventional join.
fn queries() -> Vec<String> {
    vec![
        QUERY1.to_string(),
        "VALIDTIME SELECT P.PosID, Cnt, P.EmpID FROM \
           (VALIDTIME SELECT PosID, COUNT(PosID) AS Cnt FROM POSITION GROUP BY PosID) A, \
           POSITION P WHERE A.PosID = P.PosID AND P.PayRate > 10 \
           AND T1 < 40 AND T2 > 5 ORDER BY P.PosID"
            .to_string(),
        "VALIDTIME SELECT A.PosID, A.EmpID, B.EmpID FROM POSITION A, POSITION B \
         WHERE A.PosID = B.PosID AND A.T1 < 30 AND B.T1 < 30 ORDER BY A.PosID"
            .to_string(),
        "SELECT P.PosID, E.EmpName FROM POSITION P, EMPLOYEE E \
         WHERE P.EmpID = E.EmpID ORDER BY P.PosID"
            .to_string(),
    ]
}

/// Transient-only chaos under a fault budget smaller than the retry
/// budget: every query must come back **byte-identical** to the
/// fault-free run, for every seed.
#[test]
fn seeded_chaos_schedules_leave_results_identical() {
    let db = seed_db();
    let mut tango = wire_session(&db);
    let baselines: Vec<Relation> = queries().iter().map(|q| tango.query(q).unwrap().0).collect();

    let mut total_faults = 0u64;
    for seed in seeds() {
        // budget 3 < default max_attempts 4: a retry loop always wins
        let plan = Arc::new(
            FaultPlan::random(seed, 0.2)
                .with_budget(3)
                .with_spikes(0.1, Duration::from_millis(2))
                .with_throttle(0.1, 4.0),
        );
        db.link().set_injector(plan.clone());
        for (q, base) in queries().iter().zip(&baselines) {
            let (rel, _) = tango
                .query(q)
                .unwrap_or_else(|e| panic!("seed {seed:#x}: chaos run failed: {e}\nquery: {q}"));
            assert!(
                rel.list_eq(base),
                "seed {seed:#x}: chaos result differs from baseline\nquery: {q}\n\
                 baseline:\n{base}\nchaos:\n{rel}"
            );
        }
        db.link().clear_injector();
        total_faults += plan.faults_injected();
    }
    assert!(total_faults > 0, "no chaos schedule ever fired — raise the probabilities");
}

/// A transient blip on the statement submission is retried transparently
/// and shows up as `fault`/`retry` span events and `wire_*` counters in
/// `EXPLAIN ANALYZE`.
#[test]
fn retry_events_are_visible_in_explain_analyze() {
    let db = seed_db();
    let mut tango = wire_session(&db);
    let optimized = tango.optimize(QUERY1).unwrap();
    let (baseline, _) = tango.execute_physical(&optimized.plan).unwrap();

    let rt = db.link().roundtrips();
    db.link()
        .set_injector(Arc::new(FaultPlan::scripted([(rt + 1, Fault::Transient("blip".into()))])));
    let (rel, exec) = tango.execute_physical(&optimized.plan).unwrap();
    db.link().clear_injector();

    assert!(rel.list_eq(&baseline), "a retried run must not change bytes");
    let text = optimized.explain_analyze(&exec, true);
    assert!(text.contains("wire_faults 1"), "{text}");
    assert!(text.contains("wire_retries 1"), "{text}");
    assert!(text.contains("events: fault retry"), "{text}");
    assert_eq!(tango.conn().wire_faults(), 1);
    assert_eq!(tango.conn().wire_retries(), 1);
}

/// Exhausting the retry budget on the `TRANSFER^M` submission re-plans
/// the DBMS fragment onto middleware operators: the query still
/// succeeds, the result multiset and ordering are preserved, and the
/// `replan` is recorded on the span.
#[test]
fn exhausted_retries_replan_and_match_baseline() {
    let db = seed_db();
    let mut tango = wire_session(&db);
    let optimized = tango.optimize(QUERY1).unwrap();
    let (baseline, _) = tango.execute_physical(&optimized.plan).unwrap();

    tango.conn_mut().set_retry_policy(RetryPolicy { max_attempts: 3, ..RetryPolicy::default() });
    let rt = db.link().roundtrips();
    // all three attempts of the submission fail; the fallback's own
    // fetch (round trip rt+4 onwards) is clean
    db.link().set_injector(Arc::new(FaultPlan::scripted([
        (rt + 1, Fault::Transient("chaos".into())),
        (rt + 2, Fault::Disconnect),
        (rt + 3, Fault::Transient("chaos".into())),
    ])));
    let (rel, exec) = tango.execute_physical(&optimized.plan).unwrap();
    db.link().clear_injector();

    assert!(
        rel.multiset_eq(&baseline),
        "re-planned result differs\nbaseline:\n{baseline}\nreplanned:\n{rel}"
    );
    assert!(rel.is_sorted_by(&SortSpec::by(["PosID"])), "ORDER BY lost in re-plan:\n{rel}");

    let text = optimized.explain_analyze(&exec, true);
    assert!(text.contains("replans 1"), "{text}");
    assert!(text.contains("wire_faults 3"), "{text}");
    assert!(text.contains("replan"), "{text}");
    assert_eq!(tango.conn().wire_faults(), 3);
    assert_eq!(tango.conn().wire_retries(), 2); // two backoffs before giving up
}

/// A fatal fault surfaces as one clean, classified error — no panic, no
/// partial result, no leaked temp tables — and the session keeps working
/// once the fault clears.
#[test]
fn fatal_faults_surface_cleanly_and_the_session_survives() {
    let db = seed_db();
    let mut tango = wire_session(&db);
    let (baseline, _) = tango.query(QUERY1).unwrap();
    let tables_before = db.table_names().len();

    let rt = db.link().roundtrips();
    db.link().set_injector(Arc::new(FaultPlan::scripted([(
        rt + 1,
        Fault::Fatal("ORA-00600: internal error".into()),
    )])));
    let err = tango.query(QUERY1).map(|_| ()).unwrap_err();
    assert_eq!(err.wire_class(), Some(ErrorClass::Fatal), "{err}");
    assert!(err.to_string().contains("fatal"), "{err}");
    assert_eq!(tango.conn().wire_retries(), 0, "fatal failures must never be retried");
    db.link().clear_injector();

    assert_eq!(db.table_names().len(), tables_before, "temp tables leaked by the failed run");
    let (again, _) = tango.query(QUERY1).unwrap();
    assert!(again.list_eq(&baseline), "session unusable after a cleared fault");
}

/// Once rows have been emitted, a failed fetch must **propagate** — a
/// mid-stream re-plan would silently restart the result.
#[test]
fn no_replan_after_rows_were_emitted() {
    let db = seed_db();
    let mut tango = wire_session(&db);
    tango.query(QUERY1).unwrap(); // warm catalog + plan caches
    tango.conn_mut().set_retry_policy(RetryPolicy::none());

    // rt+1 is the submission; rt+3 lands inside the row-fetch batches
    let rt = db.link().roundtrips();
    db.link()
        .set_injector(Arc::new(FaultPlan::scripted([(rt + 3, Fault::Transient("drop".into()))])));
    let err = tango.query(QUERY1).map(|_| ()).unwrap_err();
    db.link().clear_injector();
    assert_eq!(err.wire_class(), Some(ErrorClass::Transient), "{err}");
}

/// Fault injection disabled (never installed, or installed-then-cleared,
/// or installed but empty) adds **zero** wire time: the virtual clock
/// charges the exact same duration for the same query.
#[test]
fn disabled_injection_is_free_on_the_wire_clock() {
    let db = seed_db();
    let mut tango = wire_session(&db);
    tango.query(QUERY1).unwrap(); // warm catalog so runs are comparable

    let cost_of_run = |tango: &mut Tango, db: &Database| -> Duration {
        let before = db.link().total();
        tango.query(QUERY1).unwrap();
        db.link().total() - before
    };

    let never_installed = cost_of_run(&mut tango, &db);

    db.link().set_injector(Arc::new(FaultPlan::scripted([])));
    let empty_injector = cost_of_run(&mut tango, &db);

    db.link().clear_injector();
    let after_clear = cost_of_run(&mut tango, &db);

    assert!(!db.link().faults_enabled());
    assert_eq!(never_installed, empty_injector, "consulting an empty plan charged wire time");
    assert_eq!(never_installed, after_clear, "clearing the injector left residual cost");
}
