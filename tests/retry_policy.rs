//! Property tests for the connection's retry machinery: the backoff
//! schedule is monotone, capped and jitter-banded for *every* policy;
//! the attempt budget is never exceeded against an always-failing link;
//! fatal faults are never retried; and statement timeouts fire within
//! one transfer of the configured budget on a throttled link.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use tango::algebra::{tup, Attr, Schema, Type};
use tango::minidb::{
    Connection, Database, ErrorClass, Fault, FaultPlan, Link, LinkProfile, RetryPolicy, WireMode,
};

fn tiny_db(profile: LinkProfile) -> Database {
    let db = Database::new(Link::new(profile));
    db.create_table("T", Schema::new(vec![Attr::new("X", Type::Int)])).unwrap();
    db.insert_rows("T", (0..20).map(|i: i64| tup![i]).collect()).unwrap();
    db.analyze("T").unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// For any seed/base/cap, the un-jittered schedule is monotone
    /// non-decreasing and never exceeds the cap, and the jittered wait
    /// is a pure function of (seed, attempt) inside `[(1−j)·base, base]`.
    #[test]
    fn backoff_is_monotone_capped_and_jitter_banded(
        seed in 0u64..u64::MAX,
        base_us in 1u64..5_000,
        cap_us in 1u64..200_000,
        jitter in 0.0f64..1.0,
    ) {
        let p = RetryPolicy {
            base_backoff: Duration::from_micros(base_us),
            max_backoff: Duration::from_micros(cap_us),
            jitter,
            seed,
            ..RetryPolicy::default()
        };
        prop_assert_eq!(p.base_backoff_for(0), Duration::ZERO);
        let mut prev = Duration::ZERO;
        for attempt in 1..40u32 {
            let base = p.base_backoff_for(attempt);
            prop_assert!(base >= prev, "schedule regressed at attempt {}", attempt);
            prop_assert!(base <= p.max_backoff, "cap exceeded at attempt {}", attempt);
            prev = base;

            let waited = p.backoff_for(attempt);
            prop_assert!(waited <= base);
            // mul_f64 rounds to whole nanoseconds: allow 1ns of slack
            let floor = base.mul_f64(1.0 - jitter).saturating_sub(Duration::from_nanos(1));
            prop_assert!(waited >= floor, "attempt {}: {:?} below jitter band", attempt, waited);
            prop_assert_eq!(waited, p.backoff_for(attempt), "jitter must be deterministic");
        }
    }

    /// Against a link that fails every round trip, a statement makes
    /// exactly `max_attempts` attempts — no more, no fewer — and the
    /// exhaustion surfaces as a transient failure.
    #[test]
    fn attempts_never_exceed_the_budget(max_attempts in 1u32..6) {
        let db = tiny_db(LinkProfile::instant());
        let mut conn = Connection::new(db.clone());
        conn.set_retry_policy(RetryPolicy { max_attempts, ..RetryPolicy::default() });
        db.link().set_injector(Arc::new(FaultPlan::random(1, 1.0)));
        let err = conn.query("SELECT X FROM T").map(|_| ()).unwrap_err();
        db.link().clear_injector();
        prop_assert_eq!(err.class(), ErrorClass::Transient);
        prop_assert_eq!(conn.wire_faults(), u64::from(max_attempts));
        prop_assert_eq!(conn.wire_retries(), u64::from(max_attempts - 1));
    }

    /// A fatal fault is never retried, whatever the attempt budget.
    #[test]
    fn fatal_faults_get_zero_retries(max_attempts in 1u32..8) {
        let db = tiny_db(LinkProfile::instant());
        let mut conn = Connection::new(db.clone());
        conn.set_retry_policy(RetryPolicy { max_attempts, ..RetryPolicy::default() });
        let rt = db.link().roundtrips();
        db.link().set_injector(Arc::new(
            FaultPlan::scripted([(rt + 1, Fault::Fatal("auth revoked".into()))]),
        ));
        let err = conn.query("SELECT X FROM T").map(|_| ()).unwrap_err();
        db.link().clear_injector();
        prop_assert_eq!(err.class(), ErrorClass::Fatal);
        prop_assert_eq!(conn.wire_retries(), 0);
        prop_assert_eq!(conn.wire_faults(), 1);
    }

    /// On a heavily throttled link, a statement timeout fires, is
    /// classified as `Timeout`, and overshoots the budget by at most one
    /// (throttled) transfer — the check runs after each round trip, so
    /// the budget can never be exceeded by more than the transfer that
    /// crossed it.
    #[test]
    fn timeout_fires_within_one_transfer_of_the_budget(budget_ms in 1u64..20) {
        let profile = LinkProfile {
            roundtrip_latency_us: 1_000.0,
            bytes_per_sec: 4.0 * 1024.0 * 1024.0,
            row_prefetch: 8,
            mode: WireMode::Virtual,
        };
        let db = tiny_db(profile);
        let mut conn = Connection::new(db.clone());
        let budget = Duration::from_millis(budget_ms);
        conn.set_retry_policy(RetryPolicy::none().with_timeout(budget));
        db.link().set_injector(Arc::new(FaultPlan::scripted([]).with_throttle(1.0, 50.0)));
        let err = conn.query("SELECT X FROM T").map(|_| ()).unwrap_err();
        db.link().clear_injector();
        prop_assert_eq!(err.class(), ErrorClass::Timeout);
        prop_assert_eq!(conn.wire_timeouts(), 1);
        // one throttled round trip ≈ 50 × 1ms (+ throttled payload time);
        // the total charge must stay under budget + one such transfer
        let one_transfer = Duration::from_millis(52);
        prop_assert!(
            conn.wire_time() <= budget + one_transfer,
            "overshoot: spent {:?} against budget {:?}",
            conn.wire_time(),
            budget
        );
    }
}

/// Timeouts also catch slow *fetches*: a budget generous enough to admit
/// the submission still trips once throttled row batches pile up.
#[test]
fn timeout_counts_accumulated_fetch_time() {
    let profile = LinkProfile {
        roundtrip_latency_us: 1_000.0,
        bytes_per_sec: 4.0 * 1024.0 * 1024.0,
        row_prefetch: 2,
        mode: WireMode::Virtual,
    };
    let db = tiny_db(profile);
    let mut conn = Connection::new(db.clone());
    // submission (1ms unthrottled-equivalent ≈ 10ms throttled) fits; the
    // 10 throttled fetch batches (20 rows / prefetch 2) cannot
    conn.set_retry_policy(RetryPolicy::none().with_timeout(Duration::from_millis(30)));
    db.link().set_injector(Arc::new(FaultPlan::scripted([]).with_throttle(1.0, 10.0)));
    let mut cur = conn.query("SELECT X FROM T").expect("submission fits the budget");
    let mut fetched = 0;
    let err = loop {
        match cur.fetch() {
            Ok(Some(_)) => fetched += 1,
            Ok(None) => panic!("drained {fetched} rows without tripping the timeout"),
            Err(e) => break e,
        }
    };
    db.link().clear_injector();
    assert_eq!(err.class(), ErrorClass::Timeout, "{err}");
    assert!(fetched > 0, "timeout should strike mid-stream, not on the first batch");
    assert_eq!(conn.wire_timeouts(), 1);
}
