//! Differential suite for batch-at-a-time execution: pulling whole
//! batches ([`Cursor::next_batch`]) must agree **byte for byte** with
//! pulling single rows ([`Cursor::next`]) — for every XXL operator on
//! randomized inputs, for full middleware plans end to end, and under
//! seeded chaos schedules on the simulated wire.
//!
//! All tests here mutate the process-wide batch-size knob, so they
//! serialize on one mutex and always restore the default before
//! releasing it.

use proptest::prelude::*;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tango::algebra::{
    tup, AggFunc, AggSpec, Attr, Expr, ProjItem, Relation, Schema, SortSpec, Type, Value,
    DEFAULT_BATCH_ROWS,
};
use tango::minidb::{Database, FaultPlan, Link, LinkProfile, WireMode};
use tango::xxl::{
    collect, collect_batched, set_batch_rows, BoxCursor, Coalesce, DupElim, ExecOpts, ExternalSort,
    Filter, MergeJoin, Project, Sort, TemporalAggregate, TemporalDiff, TemporalMergeJoin, VecScan,
};
use tango::Tango;

/// Serializes access to the process-wide batch-size knob.
static KNOB: Mutex<()> = Mutex::new(());

/// Batch sizes every differential sweeps: the row-at-a-time degenerate
/// case, sizes that straddle group/prefetch boundaries, and the default.
const SIZES: [usize; 5] = [1, 2, 3, 7, DEFAULT_BATCH_ROWS];

fn with_knob<R>(f: impl FnOnce() -> R) -> R {
    let _g = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    let r = f();
    set_batch_rows(DEFAULT_BATCH_ROWS);
    r
}

/// Row vs batch on the same cursor constructor, across all of [`SIZES`].
fn assert_differential(label: &str, make: &dyn Fn() -> BoxCursor) {
    with_knob(|| {
        let row = collect(make()).unwrap(); // pure `next()` pulls
        for bs in SIZES {
            set_batch_rows(bs);
            let batched = collect_batched(make()).unwrap();
            assert!(
                batched.list_eq(&row),
                "{label}: batch size {bs} differs from row-at-a-time\nrow:\n{row}\nbatch:\n{batched}"
            );
            assert_eq!(
                batched.schema().names().collect::<Vec<_>>(),
                row.schema().names().collect::<Vec<_>>(),
                "{label}: schema drifted at batch size {bs}"
            );
        }
    })
}

type Row = (i64, i64, i32, i32); // (PosID, EmpID, T1, duration)

/// Temporal POSITION-shaped relation from raw proptest rows.
fn temporal_rel(raw: &[Row]) -> Relation {
    let schema = Arc::new(Schema::with_inferred_period(vec![
        Attr::new("PosID", Type::Int),
        Attr::new("EmpID", Type::Int),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
    ]));
    let rows = raw.iter().map(|&(p, e, a, d)| tup![p, e, a, a + d]).collect();
    Relation::new(schema, rows)
}

fn scan(rel: &Relation) -> BoxCursor {
    Box::new(VecScan::new(rel.clone()))
}

fn sorted_by(rel: &Relation, cols: &[&str]) -> Relation {
    let mut r = rel.clone();
    r.sort_by(&SortSpec::by(cols.iter().map(|c| c.to_string())));
    r
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Every bulk operator: filter, project, sorts, dedup.
    #[test]
    fn bulk_operators_agree(
        raw in proptest::collection::vec((0i64..5, 0i64..4, 0i32..30, 1i32..10), 0..40),
    ) {
        let rel = temporal_rel(&raw);
        assert_differential("FILTER^M", &|| {
            Box::new(Filter::new(scan(&rel), Expr::eq(Expr::col("PosID"), Expr::lit(1))))
        });
        assert_differential("PROJECT^M", &|| {
            Box::new(
                Project::new(
                    scan(&rel),
                    vec![ProjItem::col("EmpID"), ProjItem::named(Expr::col("PosID"), "P")],
                )
                .unwrap(),
            )
        });
        assert_differential("SORT^M", &|| {
            Box::new(Sort::new(scan(&rel), SortSpec::by(["PosID", "T1"])))
        });
        for run in [2usize, 7] {
            assert_differential("XSORT^M", &|| {
                Box::new(ExternalSort::new(scan(&rel), SortSpec::by(["PosID", "T1"]), run))
            });
        }
        assert_differential("DUPELIM^M", &|| Box::new(DupElim::new(scan(&rel))));
    }

    /// The stream-merging operators, whose batch path goes through the
    /// `BatchBuffered` input adapter: joins, aggregation, coalescing,
    /// temporal difference.
    #[test]
    fn merging_operators_agree(
        left in proptest::collection::vec((0i64..4, 0i64..4, 0i32..25, 1i32..10), 0..30),
        right in proptest::collection::vec((0i64..4, 0i64..4, 0i32..25, 1i32..10), 0..30),
    ) {
        let l = sorted_by(&temporal_rel(&left), &["PosID", "T1"]);
        let r = sorted_by(&temporal_rel(&right), &["PosID", "T1"]);
        let eq = [("PosID".to_string(), "PosID".to_string())];
        assert_differential("MERGEJOIN^M", &|| {
            Box::new(MergeJoin::new(scan(&l), scan(&r), &eq).unwrap())
        });
        assert_differential("TMERGEJOIN^M", &|| {
            Box::new(TemporalMergeJoin::new(scan(&l), scan(&r), &eq).unwrap())
        });
        assert_differential("TAGGR^M", &|| {
            Box::new(
                TemporalAggregate::new(
                    scan(&l),
                    vec!["PosID".into()],
                    vec![AggSpec::new(AggFunc::Count, Some("PosID"), "Cnt")],
                )
                .unwrap(),
            )
        });
        // coalescing and difference need value order: all value
        // attributes then T1
        let lv = sorted_by(&l, &["PosID", "EmpID", "T1"]);
        let rv = sorted_by(&r, &["PosID", "EmpID", "T1"]);
        assert_differential("COALESCE^M", &|| Box::new(Coalesce::new(scan(&lv)).unwrap()));
        assert_differential("TDIFF^M", &|| {
            Box::new(TemporalDiff::new(scan(&lv), scan(&rv)).unwrap())
        });
    }
}

// -------------------------------------------------------------- parallel

/// Wire-codec encoding of a whole relation: the strictest equality there
/// is — any drift in value *variants* (Int vs Date), float bits or null
/// placement changes the bytes even when `total_cmp` would not notice.
fn encode_rel(rel: &Relation) -> Vec<u8> {
    let mut buf = Vec::new();
    for t in rel.tuples() {
        tango::algebra::codec::encode_tuple(t, &mut buf);
    }
    buf
}

/// Morsel-parallel differential: the cursor built with any
/// (workers × batch_rows) combination must be byte-identical (through
/// the wire codec) to the sequential default.
fn assert_parallel_differential(label: &str, make: &dyn Fn(ExecOpts) -> BoxCursor) {
    let base = collect(make(ExecOpts { batch_rows: DEFAULT_BATCH_ROWS, workers: 1 })).unwrap();
    let base_bytes = encode_rel(&base);
    for workers in [1usize, 2, 8] {
        for batch_rows in [1usize, 1024] {
            let opts = ExecOpts { batch_rows, workers };
            let got = collect(make(opts)).unwrap();
            assert!(
                got.list_eq(&base),
                "{label}: workers={workers} batch={batch_rows} changed the result\n\
                 base:\n{base}\ngot:\n{got}"
            );
            assert_eq!(
                encode_rel(&got),
                base_bytes,
                "{label}: workers={workers} batch={batch_rows} drifted at the byte level"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Every morsel-parallel operator, workers 1/2/8 × batch 1/1024:
    /// byte-identical to the sequential run.
    #[test]
    fn parallel_operators_agree(
        left in proptest::collection::vec((0i64..5, 0i64..4, 0i32..25, 1i32..10), 0..40),
        right in proptest::collection::vec((0i64..5, 0i64..4, 0i32..25, 1i32..10), 0..40),
    ) {
        let l = sorted_by(&temporal_rel(&left), &["PosID", "T1"]);
        let r = sorted_by(&temporal_rel(&right), &["PosID", "T1"]);
        let eq = [("PosID".to_string(), "PosID".to_string())];
        assert_parallel_differential("SORT^M", &|o| {
            Box::new(Sort::with_opts(scan(&l), SortSpec::by(["EmpID", "T1"]), o))
        });
        assert_parallel_differential("XSORT^M", &|o| {
            Box::new(ExternalSort::with_opts(scan(&l), SortSpec::by(["EmpID", "T1"]), 7, o))
        });
        assert_parallel_differential("MERGEJOIN^M", &|o| {
            Box::new(MergeJoin::with_opts(scan(&l), scan(&r), &eq, o).unwrap())
        });
        assert_parallel_differential("TMERGEJOIN^M", &|o| {
            Box::new(TemporalMergeJoin::with_opts(scan(&l), scan(&r), &eq, o).unwrap())
        });
        assert_parallel_differential("TAGGR^M", &|o| {
            Box::new(
                TemporalAggregate::with_opts(
                    scan(&l),
                    vec!["PosID".into()],
                    vec![
                        AggSpec::new(AggFunc::Count, Some("PosID"), "Cnt"),
                        AggSpec::new(AggFunc::Sum, Some("EmpID"), "S"),
                    ],
                    o,
                )
                .unwrap(),
            )
        });
        let lv = sorted_by(&l, &["PosID", "EmpID", "T1"]);
        assert_parallel_differential("COALESCE^M", &|o| {
            Box::new(Coalesce::with_opts(scan(&lv), o).unwrap())
        });
    }
}

/// Dynamic morsel claiming must not leak into results: repeated parallel
/// runs of the same cursor are byte-identical.
#[test]
fn parallel_runs_are_deterministic() {
    let mut x = 7u64;
    let raw: Vec<Row> = (0..3000)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (
                ((x >> 33) % 64) as i64,
                ((x >> 21) % 16) as i64,
                ((x >> 11) % 50) as i32,
                1 + ((x >> 5) % 20) as i32,
            )
        })
        .collect();
    let rel = sorted_by(&temporal_rel(&raw), &["PosID", "T1"]);
    let opts = ExecOpts { batch_rows: DEFAULT_BATCH_ROWS, workers: 8 };
    let make = || -> BoxCursor {
        Box::new(
            TemporalAggregate::with_opts(
                Box::new(Sort::with_opts(scan(&rel), SortSpec::by(["PosID", "T1"]), opts)),
                vec!["PosID".into()],
                vec![
                    AggSpec::new(AggFunc::Count, None, "Cnt"),
                    AggSpec::new(AggFunc::Avg, Some("EmpID"), "A"),
                ],
                opts,
            )
            .unwrap(),
        )
    };
    let first = encode_rel(&collect(make()).unwrap());
    for run in 1..4 {
        let again = encode_rel(&collect(make()).unwrap());
        assert_eq!(first, again, "parallel run {run} was not byte-identical");
    }
}

/// The per-session knobs (`TangoOptions::workers` / `batch_rows`) end to
/// end: parallel sessions answer every figure query byte-identically to
/// the sequential baseline, with exact row accounting.
#[test]
fn parallel_sessions_agree_with_sequential() {
    let db = seed_db();
    let mut tango = Tango::connect(db);
    let baselines: Vec<Vec<u8>> =
        queries().iter().map(|q| encode_rel(&tango.query(q).unwrap().0)).collect();
    for workers in [2usize, 8] {
        for batch_rows in [Some(1usize), Some(1024), None] {
            tango.options_mut().workers = workers;
            tango.options_mut().batch_rows = batch_rows;
            for (q, base) in queries().iter().zip(&baselines) {
                let (rel, report) = tango.query(q).unwrap();
                assert_eq!(
                    &encode_rel(&rel),
                    base,
                    "workers={workers} batch_rows={batch_rows:?} changed the answer\nquery: {q}"
                );
                assert_eq!(report.exec.rows, rel.len(), "row accounting, query {q}");
            }
        }
    }
}

// ---------------------------------------------------------------- engine

/// A wire slow enough that the prefetch/batch interplay matters (same
/// shape as the resilience fixture).
fn wire_profile() -> LinkProfile {
    LinkProfile {
        roundtrip_latency_us: 100.0,
        bytes_per_sec: 4.0 * 1024.0 * 1024.0,
        row_prefetch: 8,
        mode: WireMode::Virtual,
    }
}

/// Deterministic POSITION (120 rows) + EMPLOYEE (40 rows), LCG-seeded —
/// the same fixture the chaos suite uses.
fn seed_db() -> Database {
    let db = Database::new(Link::new(wire_profile()));
    let position = Schema::with_inferred_period(vec![
        Attr::new("PosID", Type::Int),
        Attr::new("EmpID", Type::Int),
        Attr::new("PayRate", Type::Double),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
    ]);
    let employee =
        Schema::new(vec![Attr::new("EmpID", Type::Int), Attr::new("EmpName", Type::Str)]);
    db.create_table("POSITION", position).unwrap();
    db.create_table("EMPLOYEE", employee).unwrap();

    let mut state = 0x1234_5678_9ABC_DEF0u64;
    let mut next = move |m: u64| -> i64 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) % m) as i64
    };
    let rows: Vec<_> = (0..120)
        .map(|_| {
            let t1 = next(60);
            tup![
                1 + next(7),
                1 + next(40),
                Value::Double(next(200) as f64 / 10.0),
                t1,
                t1 + 1 + next(25)
            ]
        })
        .collect();
    db.insert_rows("POSITION", rows).unwrap();
    db.insert_rows("EMPLOYEE", (1..=40).map(|i: i64| tup![i, format!("emp{i}")]).collect())
        .unwrap();
    db.analyze("POSITION").unwrap();
    db.analyze("EMPLOYEE").unwrap();
    db.link().reset();
    db
}

/// The plan shapes of Figures 7, 9 and 11(a): temporal aggregation,
/// nested aggregation + temporal join, temporal self-join, and a
/// conventional join.
fn queries() -> Vec<String> {
    vec![
        "VALIDTIME SELECT PosID, COUNT(PosID) AS Cnt FROM POSITION \
         GROUP BY PosID ORDER BY PosID"
            .to_string(),
        "VALIDTIME SELECT P.PosID, Cnt, P.EmpID FROM \
           (VALIDTIME SELECT PosID, COUNT(PosID) AS Cnt FROM POSITION GROUP BY PosID) A, \
           POSITION P WHERE A.PosID = P.PosID AND P.PayRate > 10 \
           AND T1 < 40 AND T2 > 5 ORDER BY P.PosID"
            .to_string(),
        "VALIDTIME SELECT A.PosID, A.EmpID, B.EmpID FROM POSITION A, POSITION B \
         WHERE A.PosID = B.PosID AND A.T1 < 30 AND B.T1 < 30 ORDER BY A.PosID"
            .to_string(),
        "SELECT P.PosID, E.EmpName FROM POSITION P, EMPLOYEE E \
         WHERE P.EmpID = E.EmpID ORDER BY P.PosID"
            .to_string(),
    ]
}

/// Full middleware plans (optimizer → transfer wire → XXL stack → trace)
/// must deliver identical bytes at every batch size, including sizes
/// that do not divide the wire prefetch.
#[test]
fn middleware_plans_agree_row_vs_batch() {
    let db = seed_db();
    let mut tango = Tango::connect(db);
    with_knob(|| {
        for q in queries() {
            set_batch_rows(1);
            let (row, _) = tango.query(&q).unwrap();
            for bs in [2usize, 3, 8, 50, DEFAULT_BATCH_ROWS] {
                set_batch_rows(bs);
                let (batch, report) = tango.query(&q).unwrap();
                assert!(
                    batch.list_eq(&row),
                    "batch size {bs} changed the answer\nquery: {q}\nrow:\n{row}\nbatch:\n{batch}"
                );
                // row accounting stays exact regardless of batch size
                assert_eq!(report.exec.rows, row.len(), "batch size {bs}, query {q}");
            }
        }
    })
}

/// The external-sort plan (middleware sort-memory budget) under the
/// batch pull path: byte-identical at every batch size.
#[test]
fn external_sort_plan_agrees_row_vs_batch() {
    let db = seed_db();
    let mut tango = Tango::connect(db);
    let mut f = *tango.factors();
    f.p_sd = 1e6; // force the ordering into the middleware
    tango.set_factors(f);
    tango.options_mut().opt.mid_sort_budget = Some(64);
    let q = "VALIDTIME SELECT PosID, COUNT(PosID) AS Cnt FROM POSITION \
             GROUP BY PosID ORDER BY PosID";
    let optimized = tango.optimize(q).unwrap();
    assert!(optimized.explain().contains("XSORT^M"), "{}", optimized.explain());
    with_knob(|| {
        set_batch_rows(1);
        let (row, _) = tango.execute_physical(&optimized.plan).unwrap();
        for bs in [3usize, 8, DEFAULT_BATCH_ROWS] {
            set_batch_rows(bs);
            let (batch, _) = tango.execute_physical(&optimized.plan).unwrap();
            assert!(batch.list_eq(&row), "batch size {bs}\nrow:\n{row}\nbatch:\n{batch}");
        }
    })
}

/// Seeded chaos schedules (latency spikes, throttles, transient faults
/// under the retry budget) must leave row- and batch-mode results
/// byte-identical to the fault-free baseline.
#[test]
fn chaos_schedules_agree_row_vs_batch() {
    let db = seed_db();
    let mut tango = Tango::connect(db.clone());
    let queries = &queries()[..2]; // aggregation + join cover both wires
    let baselines: Vec<Relation> = queries.iter().map(|q| tango.query(q).unwrap().0).collect();

    with_knob(|| {
        for seed in [0xA11CEu64, 0x5EED5, 0xC0FFEE] {
            let plan = Arc::new(
                FaultPlan::random(seed, 0.2)
                    .with_budget(3)
                    .with_spikes(0.1, Duration::from_millis(2))
                    .with_throttle(0.1, 4.0),
            );
            for bs in [1usize, 8, DEFAULT_BATCH_ROWS] {
                set_batch_rows(bs);
                db.link().set_injector(plan.clone());
                for (q, base) in queries.iter().zip(&baselines) {
                    let (rel, _) = tango.query(q).unwrap_or_else(|e| {
                        panic!("seed {seed:#x} batch {bs}: chaos run failed: {e}\nquery: {q}")
                    });
                    assert!(
                        rel.list_eq(base),
                        "seed {seed:#x} batch {bs}: chaos result differs\nquery: {q}"
                    );
                }
                db.link().clear_injector();
            }
        }
    })
}
