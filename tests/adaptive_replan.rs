//! Mid-query adaptive re-optimization at pipeline breakers, pinned by a
//! misestimate-rescue suite.
//!
//! The headline scenario is the paper's Section 3.3 `Overlaps`
//! misestimate: treating the two temporal conjuncts of an overlap
//! predicate as independent over-estimates the selection by well over an
//! order of magnitude (`OptOptions::naive_overlaps` re-creates the naive
//! estimator). Under that belief the optimizer ships *both* join inputs
//! to a middleware merge join; the truth (a tiny selection) wants the
//! join in the DBMS with only the small result on the wire. The
//! misestimate monitor at the first pipeline breaker must notice the
//! divergence, re-optimize the unexecuted remainder over the observed
//! cardinalities, and splice the flipped plan in — without changing a
//! single result byte.

use proptest::prelude::*;
use std::sync::{Arc, Mutex, MutexGuard};
use tango::algebra::{tup, Attr, Schema, SortSpec, Type, Value};
use tango::minidb::{
    Connection, Database, Fault, FaultPlan, Link, LinkProfile, RetryPolicy, WireMode,
};
use tango::Tango;

/// Valid-time domain of the fixture (days).
const DOMAIN: i64 = 5_000;

/// The rescue query: a conventional join of the versioned `POSITION`
/// table against the wide one-row-per-position `POSINFO`, filtered to
/// the versions whose period overlaps `[2500, 2520]` — a window narrow
/// enough (20 days out of 5000) that the joint estimate is tiny while
/// the naive product of the two conjuncts stays near 25%. The two
/// temporal conjuncts are exactly the pattern the joint `Overlaps`
/// estimator recognizes (`T1 <= B AND T2 >= A`). `(PosID, T1)` is unique
/// in `POSITION` and `POSINFO` is keyed by `PosID`, so the ORDER BY is a
/// total order and byte-for-byte comparison is meaningful.
const RESCUE_SQL: &str = "SELECT P.PosID, P.T1, I.Info FROM POSITION P, POSINFO I \
     WHERE P.PosID = I.PosID AND P.T1 <= 2520 AND P.T2 >= 2500 \
     ORDER BY P.PosID, P.T1";

/// A wire slow enough that shipping the un-filtered `POSINFO` dossiers
/// to the middleware is the dominant cost of the pinned bad plan.
fn slow_wire() -> LinkProfile {
    LinkProfile {
        roundtrip_latency_us: 200.0,
        bytes_per_sec: 256.0 * 1024.0,
        row_prefetch: 16,
        mode: WireMode::Virtual,
    }
}

/// `POSITION(PosID, EmpID, PayRate, T1, T2)`: `versions` short-lived
/// versions per position, strided over the domain so `(PosID, T1)` is
/// unique. `POSINFO(PosID, Info)`: one wide dossier row per position.
/// Deterministic xorshift so the fixture can never drift.
fn rescue_db(profile: LinkProfile, positions: usize, versions: usize) -> Database {
    let db = Database::new(Link::new(profile));
    let position = Schema::with_inferred_period(vec![
        Attr::new("PosID", Type::Int),
        Attr::new("EmpID", Type::Int),
        Attr::new("PayRate", Type::Double),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
    ]);
    db.create_table("POSITION", position).unwrap();
    let posinfo = Schema::new(vec![Attr::new("PosID", Type::Int), Attr::new("Info", Type::Str)]);
    db.create_table("POSINFO", posinfo).unwrap();

    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut step = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let stride = DOMAIN / versions as i64;
    let mut rows = Vec::with_capacity(positions * versions);
    for p in 0..positions as i64 {
        for v in 0..versions as i64 {
            // each version lives in its own stratum of the domain, so T1
            // is unique per position; durations are 1..40 days
            let t1 = v * stride + (step() % (stride as u64 - 40).max(1)) as i64;
            let t2 = t1 + 1 + (step() % 39) as i64;
            let emp = (step() % (positions as u64 * 2)) as i64;
            rows.push(tup![p, emp, Value::Double((step() % 100) as f64 / 2.0), t1, t2]);
        }
    }
    db.insert_rows("POSITION", rows).unwrap();
    let dossier: Vec<_> = (0..positions as i64)
        .map(|p| tup![p, Value::Str(format!("dossier-{p:06}-{}", "x".repeat(140)))])
        .collect();
    db.insert_rows("POSINFO", dossier).unwrap();
    let conn = Connection::new(db.clone());
    conn.execute("ANALYZE TABLE POSITION COMPUTE STATISTICS").unwrap();
    conn.execute("ANALYZE TABLE POSINFO COMPUTE STATISTICS").unwrap();
    db
}

/// Cost factors fitted to the fixture's slow virtual wire — pinned, not
/// measured by `calibrate()`, so the chosen plans (and hence the
/// assertions below) never depend on how loaded the test machine is.
/// The values approximate a calibration run against [`slow_wire`]:
/// transfers are expensive per byte, DBMS-side work is cheap.
fn rescue_factors() -> tango::core::cost::CostFactors {
    tango::core::cost::CostFactors {
        p_tm: 5.0,
        p_td: 4.5,
        p_td_fixed: 200.0,
        p_jd: 0.06,
        p_mjm: 0.02,
        ..Default::default()
    }
}

/// A session with the cache disabled (every run pays the true wire
/// cost, so wire-time comparisons are meaningful) and the estimator and
/// re-plan threshold set as requested.
fn session(db: &Database, naive: bool, ratio: Option<f64>) -> Tango {
    let mut tango = Tango::connect(db.clone());
    tango.options_mut().cache_budget = None;
    tango.options_mut().opt.naive_overlaps = naive;
    tango.options_mut().opt.replan_ratio = ratio;
    tango
}

/// [`session`] with the pinned wire-fitted cost factors.
fn session_with(
    db: &Database,
    factors: tango::core::cost::CostFactors,
    naive: bool,
    ratio: Option<f64>,
) -> Tango {
    let mut tango = session(db, naive, ratio);
    tango.set_factors(factors);
    tango
}

/// All `cardinality-replan` events in an execution report.
fn replan_events(report: &tango::core::engine::ExecReport) -> Vec<String> {
    report
        .steps
        .iter()
        .flat_map(|s| s.events.iter())
        .filter(|e| e.kind == "cardinality-replan")
        .map(|e| e.detail.clone())
        .collect()
}

/// The observed est-vs-actual divergence, parsed from a
/// `cardinality-replan` event detail of the form `"... (20.3x off) ..."`.
fn parse_divergence(detail: &str) -> f64 {
    let start = detail.find('(').expect("detail has divergence") + 1;
    let end = detail[start..].find("x off").expect("detail has divergence") + start;
    detail[start..end].parse().expect("divergence is a number")
}

// ---------------------------------------------------------------------
// The headline rescue
// ---------------------------------------------------------------------

/// Seeded misestimate → bad plan → mid-query flip → identical bytes,
/// and the adaptive run beats the pinned bad plan on the (virtual,
/// deterministic) wire.
#[test]
fn misestimate_rescue_flips_placement_mid_query() {
    let db = rescue_db(slow_wire(), 200, 30);
    let factors = rescue_factors();

    // ground truth: accurate joint estimator, no adaptivity
    let (truth, truth_report) = session_with(&db, factors, false, None).query(RESCUE_SQL).unwrap();
    assert!(!truth.is_empty(), "fixture selects nothing");
    // 200 positions x 30 versions; the narrow window should keep well
    // under a tenth of them
    assert!(truth.len() < 600, "window selection should be small, got {} rows", truth.len());

    // the naive estimator must actually change the chosen plan: the bad
    // plan ships both inputs to a middleware merge join
    let (pinned, pinned_report) = session_with(&db, factors, true, None).query(RESCUE_SQL).unwrap();
    let pinned_plan = pinned_report.optimized.explain();
    assert!(
        pinned_plan.contains("MERGEJOIN^M"),
        "naive estimate should pick the middleware join, got:\n{pinned_plan}"
    );
    assert!(
        pinned.list_eq(&truth),
        "pinned bad plan answer differs\ntruth:\n{truth}\npinned:\n{pinned}"
    );

    // the adaptive run starts from the same bad plan, notices the
    // misestimate at the first breaker, and flips the join to the DBMS
    let mut adaptive = session_with(&db, factors, true, Some(8.0));
    let (rescued, report) = adaptive.query(RESCUE_SQL).unwrap();
    assert!(
        rescued.list_eq(&truth),
        "adaptive answer differs\ntruth:\n{truth}\nadaptive:\n{rescued}"
    );

    let events = replan_events(&report.exec);
    assert_eq!(events.len(), 1, "expected exactly one cardinality re-plan, got {events:?}");
    assert!(parse_divergence(&events[0]) >= 8.0, "divergence below threshold: {}", events[0]);

    let final_plan = report.optimized.explain();
    assert!(
        final_plan.contains("MATSCAN^M"),
        "executed plan should show the staged breaker:\n{final_plan}"
    );
    assert!(
        final_plan.contains("JOIN^D") && final_plan.contains("TRANSFER^D"),
        "re-plan should flip the join into the DBMS:\n{final_plan}"
    );
    assert!(
        !final_plan.contains("MERGEJOIN^M"),
        "middleware join should be gone after the flip:\n{final_plan}"
    );

    let analyze = report.optimized.explain_analyze(&report.exec, true);
    assert!(analyze.contains("cardinality-replan"), "{analyze}");
    assert!(analyze.contains("replans 1"), "{analyze}");

    // the rescue must actually pay off: strictly less virtual wire time
    // than the pinned bad plan (both sessions ran cache-disabled on the
    // same deterministic link model)
    assert!(
        report.exec.wire < pinned_report.exec.wire,
        "adaptive wire {:?} should beat pinned bad plan wire {:?}",
        report.exec.wire,
        pinned_report.exec.wire
    );
    // and it should land in the neighbourhood of the plan the optimizer
    // would have chosen with accurate estimates
    assert!(
        report.exec.wire < 2 * truth_report.exec.wire.max(std::time::Duration::from_micros(1)),
        "rescued wire {:?} far from the good plan's {:?}",
        report.exec.wire,
        truth_report.exec.wire
    );
}

/// With accurate estimates nothing diverges, so the monitor must stay
/// quiet: zero `cardinality-replan` events, same answer.
#[test]
fn accurate_estimates_never_replan() {
    let db = rescue_db(slow_wire(), 60, 12);
    let (truth, _) = session(&db, false, None).query(RESCUE_SQL).unwrap();

    let mut tango = session(&db, false, Some(8.0));
    let (rel, report) = tango.query(RESCUE_SQL).unwrap();
    assert!(rel.list_eq(&truth), "adaptive run changed the answer");
    assert!(
        replan_events(&report.exec).is_empty(),
        "accurate estimates must not trigger a re-plan:\n{}",
        report.optimized.explain_analyze(&report.exec, true)
    );
    assert!(!report.exec.steps.iter().any(|s| s.counters.iter().any(|c| c.0 == "replans")));
}

// ---------------------------------------------------------------------
// Threshold knob
// ---------------------------------------------------------------------

/// `replan_ratio: None` disables adaptivity entirely: no staging, no
/// `MATSCAN^M`, the classic pipelined executor runs.
#[test]
fn threshold_none_disables_adaptivity() {
    let db = rescue_db(slow_wire(), 60, 12);
    let (truth, _) = session(&db, false, None).query(RESCUE_SQL).unwrap();

    let mut tango = session(&db, true, None);
    let (rel, report) = tango.query(RESCUE_SQL).unwrap();
    assert!(rel.list_eq(&truth));
    let analyze = report.optimized.explain_analyze(&report.exec, true);
    assert!(!analyze.contains("MATSCAN^M"), "no staging when disabled:\n{analyze}");
    assert!(!analyze.contains("cardinality-replan"), "{analyze}");
}

/// The threshold is a strict boundary: a ratio just above the observed
/// divergence must not trigger, one just below must. The observed
/// divergence is read back from a triggering run's event detail, so the
/// test tracks the fixture instead of hard-coding an estimate.
#[test]
fn threshold_boundary_is_sharp() {
    let db = rescue_db(slow_wire(), 60, 12);
    let (truth, _) = session(&db, false, None).query(RESCUE_SQL).unwrap();

    // learn the divergence from an always-triggering run
    let (_, probe) = session(&db, true, Some(1.01)).query(RESCUE_SQL).unwrap();
    let events = replan_events(&probe.exec);
    assert!(!events.is_empty(), "probe run should trigger");
    let divergence = parse_divergence(&events[0]);
    assert!(divergence > 2.0, "fixture divergence suspiciously small: {divergence}");

    // just over the observed divergence: monitored, but never fires
    let (rel, report) = session(&db, true, Some(divergence + 0.2)).query(RESCUE_SQL).unwrap();
    assert!(rel.list_eq(&truth));
    assert!(
        replan_events(&report.exec).is_empty(),
        "ratio {} must not fire on divergence {divergence}",
        divergence + 0.2
    );

    // just under: fires exactly once
    let (rel, report) =
        session(&db, true, Some((divergence - 0.2).max(1.0))).query(RESCUE_SQL).unwrap();
    assert!(rel.list_eq(&truth));
    assert_eq!(
        replan_events(&report.exec).len(),
        1,
        "ratio {} must fire on divergence {divergence}",
        divergence - 0.2
    );
}

// ---------------------------------------------------------------------
// Interaction with wire faults
// ---------------------------------------------------------------------

/// A breaker that already fault-degraded mid-drain must not also
/// cardinality-replan over the same observation: no span ever carries
/// both a `replan` and a `cardinality-replan` event, the answer is
/// byte-identical, and no rows are lost.
#[test]
fn fault_degrade_suppresses_cardinality_replan() {
    let db = rescue_db(slow_wire(), 60, 12);
    let (truth, _) = session(&db, true, Some(8.0)).query(RESCUE_SQL).unwrap();

    let mut tango = session(&db, true, Some(8.0));
    tango.conn_mut().set_retry_policy(RetryPolicy { max_attempts: 3, ..RetryPolicy::default() });
    // warm the catalog so the scripted faults land on the staged
    // breaker's fragment submission, not on metadata fetches
    tango.optimize(RESCUE_SQL).unwrap();
    let rt = db.link().roundtrips();
    // exhaust the retry budget of the first submission: the staged
    // breaker fault-degrades (its span gets a `replan` event) before the
    // misestimate monitor looks at it
    db.link().set_injector(Arc::new(FaultPlan::scripted([
        (rt + 1, Fault::Transient("chaos".into())),
        (rt + 2, Fault::Disconnect),
        (rt + 3, Fault::Transient("chaos".into())),
    ])));
    let (rel, report) = tango.query(RESCUE_SQL).unwrap();
    db.link().clear_injector();

    assert!(
        rel.multiset_eq(&truth),
        "rows lost or invented under faults\ntruth:\n{truth}\ngot:\n{rel}"
    );
    assert!(rel.is_sorted_by(&SortSpec::by(["PosID", "T1"])), "ORDER BY lost:\n{rel}");
    for step in &report.exec.steps {
        let degraded = step.events.iter().any(|e| e.kind == "replan");
        let cardinality = step.events.iter().any(|e| e.kind == "cardinality-replan");
        assert!(
            !(degraded && cardinality),
            "step {} double-replanned over one observation:\n{}",
            step.label,
            report.optimized.explain_analyze(&report.exec, true)
        );
    }
}

/// Transient faults that are absorbed by retries must not disturb the
/// adaptive path: the re-plan still happens and the answer still
/// matches, for several chaos schedules.
#[test]
fn retried_faults_leave_the_rescue_intact() {
    let db = rescue_db(slow_wire(), 60, 12);
    let (truth, _) = session(&db, false, None).query(RESCUE_SQL).unwrap();

    for lag in [1u64, 3, 7] {
        let mut tango = session(&db, true, Some(8.0));
        let rt = db.link().roundtrips();
        db.link().set_injector(Arc::new(FaultPlan::scripted([(
            rt + lag,
            Fault::Transient("chaos".into()),
        )])));
        let (rel, report) = tango.query(RESCUE_SQL).unwrap();
        db.link().clear_injector();
        assert!(rel.list_eq(&truth), "answer drifted under a transient fault at roundtrip +{lag}");
        assert!(
            replan_events(&report.exec).len() <= 1,
            "more than one cardinality re-plan under fault at +{lag}:\n{}",
            report.optimized.explain_analyze(&report.exec, true)
        );
    }
}

// ---------------------------------------------------------------------
// Differential property: adaptive ≡ non-adaptive
// ---------------------------------------------------------------------

/// `set_batch_rows` is process-global; serialize the sections that
/// change it so parallel tests in this binary never observe a torn
/// setting.
fn batch_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Query shapes whose plans exercise every pipeline-breaker kind the
/// stager knows: `TRANSFER^M` (conventional join), `TAGGR^M` (temporal
/// aggregation), and the middleware sorts that appear between a join and
/// an aggregate (`SORT^M`, or `XSORT^M` under a small sort budget).
/// Each returns `(sql, order)` — the ORDER BY may not be a total order,
/// so the differential compares multisets plus sortedness.
fn breaker_queries() -> Vec<(&'static str, SortSpec)> {
    vec![
        (RESCUE_SQL, SortSpec::by(["PosID", "T1"])),
        (
            "VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION \
             GROUP BY PosID ORDER BY PosID",
            SortSpec::by(["PosID"]),
        ),
        (
            "VALIDTIME SELECT A.PosID, A.EmpID, B.EmpID FROM POSITION A, POSITION B \
             WHERE A.PosID = B.PosID AND A.T1 < 2500 AND B.T1 < 2500 ORDER BY A.PosID",
            SortSpec::by(["PosID"]),
        ),
        (
            "VALIDTIME SELECT P.PosID, C, P.EmpID FROM \
               (VALIDTIME SELECT PosID, COUNT(PosID) AS C FROM POSITION GROUP BY PosID) A, \
               POSITION P WHERE A.PosID = P.PosID AND P.PayRate > 5 ORDER BY P.PosID",
            SortSpec::by(["PosID"]),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// For random thresholds, estimator modes, sort budgets and batch
    /// sizes, the adaptive executor returns exactly what the classic
    /// executor returns, for every breaker kind.
    #[test]
    fn adaptive_matches_non_adaptive(
        ratio_pick in 0usize..4,
        naive_pick in 0usize..2,
        budget_pick in 0usize..2,
        batch_pick in 0usize..2,
    ) {
        let ratio = [Some(1.2), Some(4.0), Some(8.0), Some(1e9)][ratio_pick];
        let naive = naive_pick == 1;
        let tiny_sort_budget = budget_pick == 1;
        let batch = [1usize, 1024][batch_pick];
        let db = rescue_db(LinkProfile::instant(), 12, 6);

        let _guard = batch_lock();
        let before = tango::xxl::batch_rows();
        tango::xxl::set_batch_rows(batch);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for (sql, order) in breaker_queries() {
                let mut base = session(&db, naive, None);
                if tiny_sort_budget {
                    base.options_mut().opt.mid_sort_budget = Some(16);
                }
                let (expected, _) = base.query(sql).unwrap();

                let mut adaptive = session(&db, naive, ratio);
                if tiny_sort_budget {
                    adaptive.options_mut().opt.mid_sort_budget = Some(16);
                }
                let (got, report) = adaptive.query(sql).unwrap();
                assert!(
                    got.multiset_eq(&expected),
                    "adaptive(ratio {ratio:?}, naive {naive}, batch {batch}) diverged on {sql}\n\
                     expected:\n{expected}\ngot:\n{got}\nplan:\n{}",
                    report.optimized.explain()
                );
                assert!(
                    got.is_sorted_by(&order),
                    "adaptive lost the delivery order on {sql}:\n{got}"
                );
            }
        }));
        tango::xxl::set_batch_rows(before);
        drop(_guard);
        if let Err(panic) = outcome {
            std::panic::resume_unwind(panic);
        }
    }
}
