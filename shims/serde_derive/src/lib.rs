//! No-op stand-ins for serde's `Serialize`/`Deserialize` derives.
//!
//! The workspace builds in an offline environment, and nothing in it
//! actually serializes through serde (there is no `serde_json` or
//! similar): the derives on data types are declarative only. These
//! macros accept the same attribute grammar (`#[serde(...)]`) and emit
//! empty marker impls so trait bounds keep working.

use proc_macro::{TokenStream, TokenTree};

/// Extract the identifier following `struct` or `enum` from the item.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input.clone() {
        // non-identifiers (`#[derive(...)]` groups etc.) are skipped
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return Some(s);
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_kw = true;
            }
        }
    }
    None
}

/// Does the item declare generic parameters right after its name?
fn is_generic(input: &TokenStream) -> bool {
    let mut saw_name = false;
    let mut saw_kw = false;
    for tt in input.clone() {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw && !saw_name {
                    saw_name = true;
                    continue;
                }
                if s == "struct" || s == "enum" || s == "union" {
                    saw_kw = true;
                }
            }
            TokenTree::Punct(p) if saw_name => return p.as_char() == '<',
            TokenTree::Group(_) if saw_name => return false,
            _ => {}
        }
    }
    false
}

fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    // Generic types would need bound plumbing; nothing in this workspace
    // derives serde traits on generic types, so emit nothing for them.
    let Some(name) = type_name(&input) else {
        return TokenStream::new();
    };
    if is_generic(&input) {
        return TokenStream::new();
    }
    format!("impl {trait_path} for {name} {{}}").parse().unwrap()
}

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize")
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize<'static>")
}
