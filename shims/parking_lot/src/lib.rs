//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! locks exposing parking_lot's guard-returning (non-`Result`) API.
//! Poisoned locks panic, matching the way parking_lot's absence of
//! poisoning is typically relied on in correct code.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion wrapping [`std::sync::Mutex`].
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock wrapping [`std::sync::RwLock`].
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.0.try_read().ok()
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.0.try_write().ok()
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_rwlock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }
}
