//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements exactly the surface this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range` over
//! integer and float ranges — on top of xoshiro256** seeded through
//! splitmix64. Deterministic across platforms, which the benchmark and
//! data-generation code relies on.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: 64 bits at a time.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Sample a bool with the given probability of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the "standard" distribution.
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for i64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the shim's `SmallRng` is the same generator.
    pub type SmallRng = StdRng;
}

/// A generator seeded from the system clock (subset of `rand::thread_rng`).
pub fn thread_rng() -> rngs::StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    rngs::StdRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let v: f64 = a.gen();
            assert!((0.0..1.0).contains(&v));
            let i = a.gen_range(-5i32..7);
            assert!((-5..7).contains(&i));
            let j = a.gen_range(3u64..=9);
            assert!((3..=9).contains(&j));
            let u = a.gen_range(0usize..10);
            assert!(u < 10);
        }
    }
}
