//! Marker-trait stand-in for `serde`, used because this workspace builds
//! offline and nothing in it performs actual serde serialization (there
//! is no `serde_json` dependency). The real crate can be swapped back in
//! by pointing the workspace dependency at crates.io.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
