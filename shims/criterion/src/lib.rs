//! Offline mini-`criterion`: a wall-clock micro-benchmark runner
//! exposing the subset of the criterion 0.5 API this workspace uses
//! (`bench_function`, `benchmark_group`, `bench_with_input`,
//! `Throughput::Bytes`, `criterion_group!`/`criterion_main!`).
//!
//! No statistical analysis or HTML reports: each benchmark is timed
//! over `sample_size` samples after a short warm-up and the median
//! per-iteration time is printed, which is enough to compare operator
//! implementations while building offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    // Volatile read of a pointer to the value defeats const-folding
    // without touching the value itself.
    unsafe {
        let ret = std::ptr::read_volatile(&x);
        std::mem::forget(x);
        ret
    }
}

/// Declared throughput of a benchmark, used to report MB/s.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{param}") }
    }

    /// Build an id from just the parameter value.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId { id: param.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last: Duration,
}

impl Bencher {
    /// Time `f`, auto-scaling the iteration count so each sample runs
    /// long enough to measure, and record the median sample time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up + calibration: find an iteration count that takes
        // at least ~1ms per sample (capped to keep total time sane).
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let el = t0.elapsed();
            if el >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 4).min(1 << 20);
        }
        let mut samples: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t0.elapsed() / iters as u32);
        }
        samples.sort();
        self.last = samples[samples.len() / 2];
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(name: &str, median: Duration, throughput: Option<Throughput>) {
    let mut line = format!("{name:<40} {:>12}", fmt_duration(median));
    if let Some(Throughput::Bytes(b)) = throughput {
        let secs = median.as_secs_f64();
        if secs > 0.0 {
            line.push_str(&format!("  {:>10.1} MiB/s", b as f64 / secs / (1024.0 * 1024.0)));
        }
    } else if let Some(Throughput::Elements(n)) = throughput {
        let secs = median.as_secs_f64();
        if secs > 0.0 {
            line.push_str(&format!("  {:>10.0} elem/s", n as f64 / secs));
        }
    }
    println!("{line}");
}

/// Benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, last: Duration::ZERO };
        f(&mut b);
        report(name, b.last, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string(), throughput: None }
    }

    /// No-op hook called by `criterion_main!` after all groups run.
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the throughput of subsequent benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(1);
        self
    }

    /// Run a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: self.parent.sample_size, last: Duration::ZERO };
        f(&mut b);
        report(&format!("{}/{name}", self.name), b.last, self.throughput);
        self
    }

    /// Run a parameterized benchmark: `f` receives the bencher and `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: self.parent.sample_size, last: Duration::ZERO };
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), b.last, self.throughput);
        self
    }

    /// Close the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Emit a `main` that runs the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(1024));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, n| b.iter(|| n * 2));
        g.finish();
    }
}
