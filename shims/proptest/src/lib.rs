//! Offline mini-`proptest`: a randomized property-testing harness with
//! the subset of the proptest 1.x API this workspace uses.
//!
//! Differences from the real crate (acceptable for an offline build):
//!
//! * **No shrinking.** A failing case panics with the assertion message
//!   but does not minimize the input.
//! * **String strategies** support simple patterns only: sequences of
//!   literal characters and character classes (`[a-z0-9]`, ranges
//!   allowed) with `{lo,hi}` / `{n}` / `*` / `+` / `?` quantifiers.
//! * Deterministic: each test's RNG is seeded from its own name, so
//!   failures reproduce across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;
use std::rc::Rc;

/// The RNG driving generation (deterministic per test).
pub type TestRng = StdRng;

/// Runner configuration (subset of `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// A value generator (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (enables recursion and heterogeneous
    /// unions). The result is cheaply cloneable.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| s.generate(rng)))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build a union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ---------------------------------------------------------------------
// String pattern strategies: `"[ -~]{0,120}"` etc.
// ---------------------------------------------------------------------

enum Atom {
    Lit(char),
    Class(Vec<(char, char)>),
}

struct Quantified {
    atom: Atom,
    lo: usize,
    hi: usize,
}

fn parse_pattern(pat: &str) -> Vec<Quantified> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' && i + 1 < chars.len() {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                i += 1; // consume ']'
                Atom::Class(ranges)
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Lit(chars[i - 1])
            }
            '.' => {
                i += 1;
                Atom::Class(vec![(' ', '~')])
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        // quantifier?
        let (lo, hi) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
                    let close = close.unwrap_or(chars.len() - 1);
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    if let Some((a, b)) = body.split_once(',') {
                        (a.trim().parse().unwrap_or(0), b.trim().parse().unwrap_or(8))
                    } else {
                        let n = body.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        out.push(Quantified { atom, lo, hi });
    }
    out
}

fn gen_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Lit(c) => *c,
        Atom::Class(ranges) => {
            if ranges.is_empty() {
                return ' ';
            }
            let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
            let (lo, hi) = (lo as u32, (hi as u32).max(lo as u32));
            char::from_u32(rng.gen_range(lo..=hi)).unwrap_or(lo as u8 as char)
        }
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let parts = parse_pattern(self);
        let mut s = String::new();
        for q in &parts {
            let n = if q.hi > q.lo { rng.gen_range(q.lo..=q.hi) } else { q.lo };
            for _ in 0..n {
                s.push(gen_atom(&q.atom, rng));
            }
        }
        s
    }
}

// ---------------------------------------------------------------------
// Modules mirroring the real crate layout
// ---------------------------------------------------------------------

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Rng, Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (subset of `proptest::sample`).
pub mod sample {
    use super::{Rng, Strategy, TestRng};

    /// Strategy choosing uniformly among the given items.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs at least one item");
        Select { items }
    }

    /// Strategy returned by [`select`].
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.gen_range(0..self.items.len())].clone()
        }
    }
}

/// Alias namespace mirroring `proptest::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Test-runner support used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use super::{SeedableRng, TestRng};

    /// Seed an RNG deterministically from the test's name so each
    /// property gets an independent, reproducible stream.
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }
}

/// Everything a property test needs (subset of `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random instantiations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    let _ = __case;
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Property assertion (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion (no shrinking: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion (no shrinking: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_generates_within_class() {
        let mut rng = crate::test_runner::rng_for("string_pattern");
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-c]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
        #[test]
        fn ranges_and_vecs(x in -5i32..5, v in prop::collection::vec((0i64..3, 0f64..1.0), 1..10)) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 10);
            for (a, b) in v {
                prop_assert!((0..3).contains(&a));
                prop_assert!((0.0..1.0).contains(&b));
            }
        }

        #[test]
        fn oneof_and_map(e in prop_oneof![Just(0i64), (1i64..10).prop_map(|x| x * 100)]) {
            prop_assert!(e == 0 || (100..1000).contains(&e));
        }
    }
}
