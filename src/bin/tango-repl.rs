//! An interactive temporal-SQL shell on top of the TANGO middleware.
//!
//! ```text
//! cargo run --release --bin tango-repl            # Figure 3 sample data
//! cargo run --release --bin tango-repl -- --uis   # 20k-row UIS dataset
//! ```
//!
//! Statements ending in `;` are executed. `VALIDTIME` queries go through
//! the middleware (optimizer + mixed execution); everything else —
//! including DDL, DML and plain SELECTs typed with a leading `\d` — can
//! talk to the DBMS directly.
//!
//! `EXPLAIN <query>` shows the middleware's chosen plan with site
//! placement and estimated rows; `EXPLAIN ANALYZE <query>` also runs it
//! and annotates each operator with actual rows, exclusive time and
//! operator counters, followed by the optimizer's search trace.
//! (For statements the middleware doesn't optimize, `EXPLAIN` is passed
//! through to the DBMS.) Meta commands:
//!
//! * `\plan <query>`    — optimize only, show the chosen physical plan
//! * `\explain <sql>`   — the DBMS's own EXPLAIN for conventional SQL
//! * `\calibrate`       — run cost-factor calibration
//! * `\factors`         — show the current cost factors
//! * `\workers [n]`     — show/set the morsel worker pool (0 = auto)
//! * `\batch [n]`       — show/set this session's batch size
//! * `\rewrites [p,..]` — show/set the rewrite rule packs applied
//!   between parse and optimize (`\rewrites none` clears; see
//!   `docs/REWRITES.md`)
//! * `\cache`           — relation-cache report (residency, hit/refresh
//!   counters, pending delta-log bytes)
//! * `\tables`          — list tables
//! * `\quit`

use std::io::{BufRead, Write};
use tango::core::Tango;
use tango::minidb::{Connection, Database, Link, LinkProfile};
use tango::uis::{figure3, generate_employee, generate_position, UisConfig};

fn main() {
    let use_uis = std::env::args().any(|a| a == "--uis");
    let db = Database::new(Link::new(LinkProfile::default()));
    let conn = Connection::new(db.clone());

    if use_uis {
        let cfg = UisConfig { position_rows: 20_000, employee_rows: 8_000, seed: 0xEC1 };
        eprintln!(
            "loading UIS dataset ({} positions, {} employees) ...",
            cfg.position_rows, cfg.employee_rows
        );
        let pos = generate_position(&cfg);
        let emp = generate_employee(&cfg);
        db.create_table("POSITION", pos.schema().as_ref().clone()).unwrap();
        db.insert_rows("POSITION", pos.into_tuples()).unwrap();
        db.create_table("EMPLOYEE", emp.schema().as_ref().clone()).unwrap();
        db.insert_rows("EMPLOYEE", emp.into_tuples()).unwrap();
        conn.execute("CREATE INDEX EMP_PK ON EMPLOYEE (EmpID)").unwrap();
    } else {
        eprintln!("loading the Figure 3 sample (POSITION with 3 rows) ...");
        let pos = figure3::position();
        db.create_table("POSITION", pos.schema().as_ref().clone()).unwrap();
        db.insert_rows("POSITION", pos.into_tuples()).unwrap();
    }
    conn.execute("ANALYZE TABLE POSITION COMPUTE STATISTICS").unwrap();
    if use_uis {
        conn.execute("ANALYZE TABLE EMPLOYEE COMPUTE STATISTICS").unwrap();
    }

    let mut tango = Tango::connect(db.clone());
    eprintln!("TANGO temporal middleware — type \\quit to exit, \\plan <q> to inspect plans.");
    eprintln!("try: VALIDTIME SELECT PosID, COUNT(PosID) AS Cnt FROM POSITION GROUP BY PosID ORDER BY PosID;");

    let stdin = std::io::stdin();
    let mut buf = String::new();
    loop {
        if buf.is_empty() {
            print!("tango> ");
        } else {
            print!("   ... ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('\\') && buf.is_empty() {
            if handle_meta(line, &mut tango, &conn) {
                break;
            }
            continue;
        }
        buf.push_str(line);
        buf.push(' ');
        if !line.ends_with(';') {
            continue;
        }
        let stmt = buf.trim().trim_end_matches(';').trim().to_string();
        buf.clear();
        run_statement(&stmt, &mut tango, &conn, &db);
    }
}

fn handle_meta(line: &str, tango: &mut Tango, conn: &Connection) -> bool {
    let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
    match cmd {
        "\\quit" | "\\q" => return true,
        "\\calibrate" => match tango.calibrate() {
            Ok(cal) => {
                println!(
                    "calibrated: p_tm={:.3} p_td={:.3} p_taggm1={:.4} p_taggd1={:.3} p_jd={:.4}",
                    cal.factors.p_tm, cal.factors.p_td, cal.factors.p_taggm1,
                    cal.factors.p_taggd1, cal.factors.p_jd
                );
            }
            Err(e) => println!("calibration failed: {e}"),
        },
        "\\factors" => {
            let f = tango.factors();
            println!(
                "p_tm={:.3} p_td={:.3} p_td_fixed={:.0} p_sem={:.4} p_sm={:.4} p_sd={:.4}",
                f.p_tm, f.p_td, f.p_td_fixed, f.p_sem, f.p_sm, f.p_sd
            );
            println!(
                "p_taggm1={:.4} p_taggm2={:.4} p_taggd1={:.3} p_taggd2={:.3} p_mjm={:.4} p_jd={:.4}",
                f.p_taggm1, f.p_taggm2, f.p_taggd1, f.p_taggd2, f.p_mjm, f.p_jd
            );
        }
        "\\workers" => {
            let rest = rest.trim().trim_end_matches(';');
            if rest.is_empty() {
                println!("workers = {} (0 = auto)", tango.options().workers);
            } else {
                match rest.parse::<usize>() {
                    Ok(n) => {
                        tango.options_mut().workers = n;
                        println!("workers = {n}");
                    }
                    Err(_) => println!("usage: \\workers <n>  (0 = auto, 1 = sequential)"),
                }
            }
        }
        "\\batch" => {
            let rest = rest.trim().trim_end_matches(';');
            if rest.is_empty() {
                match tango.options().batch_rows {
                    Some(n) => println!("batch_rows = {n}"),
                    None => println!("batch_rows = default ({})", tango::xxl::batch_rows()),
                }
            } else {
                match rest.parse::<usize>() {
                    Ok(n) => {
                        tango.options_mut().batch_rows = Some(n.max(1));
                        println!("batch_rows = {}", n.max(1));
                    }
                    Err(_) => println!("usage: \\batch <rows>  (1 = row-at-a-time)"),
                }
            }
        }
        "\\rewrites" => {
            let rest = rest.trim().trim_end_matches(';');
            if !rest.is_empty() {
                let packs: Vec<String> = if rest.eq_ignore_ascii_case("none")
                    || rest.eq_ignore_ascii_case("off")
                {
                    Vec::new()
                } else {
                    rest.split(',').map(|p| p.trim().to_string()).filter(|p| !p.is_empty()).collect()
                };
                tango.options_mut().rewrite_packs = packs;
            }
            if tango.options().rewrite_packs.is_empty() {
                println!("rewrites = off (try \\rewrites temporal-normalize,subquery-to-join,compat)");
            } else {
                match tango.rewriter() {
                    Ok(Some(rw)) => {
                        for p in rw.packs() {
                            println!(
                                "  {} ({} rule{}): {}",
                                p.name,
                                p.rules.len(),
                                if p.rules.len() == 1 { "" } else { "s" },
                                p.description
                            );
                        }
                    }
                    Ok(None) => {}
                    Err(e) => {
                        println!("error: {e}");
                        tango.options_mut().rewrite_packs = Vec::new();
                        println!("rewrites = off");
                    }
                }
            }
        }
        "\\cache" => print!("{}", tango.cache_report()),
        "\\tables" => {
            for t in conn.database().table_names() {
                let rows = conn
                    .table_stats(&t)
                    .map(|s| format!("{} rows (analyzed)", s.rows as u64))
                    .unwrap_or_else(|| "not analyzed".to_string());
                println!("  {t}: {rows}");
            }
        }
        "\\plan" => match tango.optimize(rest.trim_end_matches(';')) {
            Ok(q) => {
                println!(
                    "estimated {:.1}ms over {} classes / {} elements:\n{}",
                    q.est_cost_us / 1e3,
                    q.classes,
                    q.elements,
                    q.explain()
                );
            }
            Err(e) => println!("error: {e}"),
        },
        "\\explain" => match conn.query(&format!("EXPLAIN {}", rest.trim_end_matches(';'))) {
            Ok(mut cur) => {
                while let Ok(Some(row)) = cur.fetch() {
                    println!("{}", row[0]);
                }
            }
            Err(e) => println!("error: {e}"),
        },
        other => println!("unknown meta command {other} (try \\quit, \\plan, \\explain, \\calibrate, \\factors, \\workers, \\batch, \\rewrites, \\cache, \\tables)"),
    }
    false
}

fn run_statement(stmt: &str, tango: &mut Tango, conn: &Connection, _db: &Database) {
    let head = stmt.split_whitespace().next().unwrap_or("").to_uppercase();
    match head.as_str() {
        "SELECT" | "VALIDTIME" => match tango.query(stmt) {
            Ok((rel, report)) => {
                println!("{rel}");
                println!(
                    "({:.1}ms optimize + {:.1}ms compute + {:.1}ms wire; plan: {})",
                    report.optimized.optimize_time.as_secs_f64() * 1e3,
                    report.exec.wall.as_secs_f64() * 1e3,
                    report.exec.wire.as_secs_f64() * 1e3,
                    report.optimized.explain().lines().next().unwrap_or("").trim(),
                );
            }
            Err(e) => println!("error: {e}"),
        },
        "EXPLAIN" => {
            let (req, inner) = tango::core::tsql::strip_explain(stmt);
            let inner_head = inner.split_whitespace().next().unwrap_or("").to_uppercase();
            match (req, inner_head.as_str()) {
                (Some(tango::core::tsql::Explain::Analyze), "SELECT" | "VALIDTIME") => {
                    match tango.explain_analyze(inner) {
                        Ok((text, report)) => {
                            print!("{text}");
                            print!("{}", report.optimized.optimizer_trace());
                        }
                        Err(e) => println!("error: {e}"),
                    }
                }
                (Some(tango::core::tsql::Explain::Plan), "SELECT" | "VALIDTIME") => {
                    match tango.explain(inner) {
                        Ok(text) => print!("{text}"),
                        Err(e) => println!("error: {e}"),
                    }
                }
                // not middleware-optimizable: the DBMS's own EXPLAIN
                _ => match conn.query(stmt) {
                    Ok(mut cur) => {
                        while let Ok(Some(row)) = cur.fetch() {
                            println!("{}", row[0]);
                        }
                    }
                    Err(e) => println!("error: {e}"),
                },
            }
        }
        _ => match conn.execute(stmt) {
            Ok(o) => println!("ok ({} rows affected)", o.rows_affected),
            Err(e) => println!("error: {e}"),
        },
    }
}
