//! # TANGO — temporal middleware for conventional DBMSs
//!
//! Umbrella crate re-exporting the whole TANGO workspace: a reproduction
//! of *“Adaptable Query Optimization and Evaluation in Temporal
//! Middleware”* (Slivinskas, Jensen & Snodgrass, SIGMOD 2001).
//!
//! Start with [`core::session::Tango`] (re-exported as [`Tango`]) — see
//! `examples/quickstart.rs` for a complete tour.

pub use tango_algebra as algebra;
pub use tango_core as core;
pub use tango_minidb as minidb;
pub use tango_stats as stats;
pub use tango_uis as uis;
pub use tango_xxl as xxl;
pub use volcano;

pub use tango_core::session::{Tango, TangoOptions};
