//! Day-granularity dates.
//!
//! The paper models time values as days; we represent a date as the number
//! of days since the Unix epoch (1970-01-01) in a proleptic Gregorian
//! calendar. The civil-from-days / days-from-civil conversions use Howard
//! Hinnant's well-known constant-time algorithms, so no external date crate
//! is needed.

use crate::error::{AlgebraError, Result};

/// Days since 1970-01-01 (may be negative).
pub type Day = i32;

/// The "until changed" / forever sentinel used for open-ended periods
/// (e.g. a position that is still occupied). Large enough to sort after
/// every real date yet leave headroom for arithmetic.
pub const FOREVER: Day = i32::MAX / 2;

/// Convert a civil date to a day number. Months are 1-12, days 1-31.
pub fn days_from_civil(y: i32, m: u32, d: u32) -> Day {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64; // [0, 399]
    let mp = ((m + 9) % 12) as i64; // [0, 11], Mar=0
    let doy = (153 * mp + 2) / 5 + (d as i64 - 1); // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era as i64 * 146_097 + doe - 719_468) as Day
}

/// Convert a day number back to a civil `(year, month, day)` triple.
pub fn civil_from_days(z: Day) -> (i32, u32, u32) {
    let z = z as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

/// Shorthand for [`days_from_civil`]; handy in tests and workload code.
pub fn day(y: i32, m: u32, d: u32) -> Day {
    days_from_civil(y, m, d)
}

/// Parse a `YYYY-MM-DD` literal into a day number, validating ranges.
pub fn parse_date(s: &str) -> Result<Day> {
    let mut parts = s.splitn(3, '-');
    let err = || AlgebraError::BadDate(s.to_string());
    // A leading '-' would make the year part empty; we only accept CE years.
    let y: i32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
    let m: u32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
    let d: u32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return Err(err());
    }
    let days = days_from_civil(y, m, d);
    // Round-trip to reject e.g. Feb 30.
    if civil_from_days(days) != (y, m, d) {
        return Err(err());
    }
    Ok(days)
}

/// Render a day number as `YYYY-MM-DD`; the forever sentinel prints as
/// `9999-12-31` so generated SQL stays parseable.
pub fn format_date(d: Day) -> String {
    if d >= FOREVER {
        return "9999-12-31".to_string();
    }
    let (y, m, dd) = civil_from_days(d);
    format!("{y:04}-{m:02}-{dd:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        assert_eq!(days_from_civil(2000, 1, 1), 10_957);
        assert_eq!(days_from_civil(1995, 1, 1), 9_131);
        // The paper's example: 1995-01-01 .. 2000-01-01 spans 1826 days,
        // so T1 ranges over 1826 - 7 = 1819 distinct start values.
        assert_eq!(days_from_civil(2000, 1, 1) - days_from_civil(1995, 1, 1), 1826);
    }

    #[test]
    fn round_trip_many() {
        for z in (-200_000..200_000).step_by(17) {
            let (y, m, d) = civil_from_days(z);
            assert_eq!(days_from_civil(y, m, d), z);
        }
    }

    #[test]
    fn parse_and_format() {
        assert_eq!(parse_date("1997-02-01").unwrap(), day(1997, 2, 1));
        assert_eq!(format_date(day(1997, 2, 1)), "1997-02-01");
        assert!(parse_date("1997-02-30").is_err());
        assert!(parse_date("1997-13-01").is_err());
        assert!(parse_date("nonsense").is_err());
        assert_eq!(format_date(FOREVER), "9999-12-31");
    }

    #[test]
    fn leap_years() {
        assert_eq!(parse_date("2000-02-29").unwrap(), day(2000, 2, 29));
        assert!(parse_date("1900-02-29").is_err()); // 1900 is not a leap year
        assert!(parse_date("1996-02-29").is_ok());
    }
}
