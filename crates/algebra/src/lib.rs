//! # tango-algebra
//!
//! The temporal relational algebra foundation shared by every TANGO
//! component: the middleware optimizer and execution engine
//! (`tango-core`), the query-processing algorithm library (`tango-xxl`),
//! the embedded DBMS substrate (`tango-minidb`), and the statistics
//! machinery (`tango-stats`).
//!
//! The data model follows the paper (Slivinskas, Jensen & Snodgrass,
//! SIGMOD 2001): relations are *lists* of tuples — duplicates and order
//! are significant — over schemas that may carry a valid-time period
//! represented by a pair of day-granularity attributes `T1`/`T2` with
//! closed-open semantics `[T1, T2)`.
//!
//! The crate provides:
//!
//! * [`Value`], [`Type`] — the scalar domain (integers, doubles, strings,
//!   dates; SQL-style three-valued `NULL`s),
//! * [`date`] — a proleptic-Gregorian day codec (`Day` = days since
//!   1970-01-01),
//! * [`Period`] — closed-open time periods and their algebra,
//! * [`Schema`], [`Tuple`], [`Relation`] — list-semantics relations with
//!   the paper's two equivalence notions (list and multiset equality),
//! * [`Batch`] — a run of consecutive tuples sharing one schema, the
//!   unit of the engine's vectorized (batch-at-a-time) execution,
//! * [`Expr`] — scalar expressions with SQL rendering (used both for
//!   predicate evaluation and by the Translator-To-SQL),
//! * [`SortSpec`] — sort orders and the `IsPrefixOf` predicate of rules
//!   T10/T12,
//! * [`Logical`] — the logical operator tree produced by the temporal-SQL
//!   parser and transformed by the optimizer.

pub mod batch;
pub mod codec;
pub mod date;
pub mod error;
pub mod expr;
pub mod interval;
pub mod logical;
pub mod order;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use batch::{Batch, Bitmap, Column, DEFAULT_BATCH_ROWS};
pub use date::Day;
pub use error::{AlgebraError, Result};
pub use expr::{ArithOp, CmpOp, Expr};
pub use interval::Period;
pub use logical::{AggFunc, AggSpec, Logical, ProjItem, SchemaSource};
pub use order::{sort_tuples, BatchKeys, SortKey, SortSpec};
pub use relation::Relation;
pub use schema::{Attr, Schema};
pub use tuple::{IntoValue, Tuple};
pub use value::{Type, Value};
