//! Error type shared by the algebra layer.

use std::fmt;

/// Errors raised while constructing or evaluating algebra objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgebraError {
    /// A column name could not be resolved against a schema.
    UnknownColumn(String),
    /// A column name matched more than one attribute.
    AmbiguousColumn(String),
    /// An operation was applied to values of incompatible types.
    TypeMismatch(String),
    /// An expression was evaluated before being bound to a schema.
    Unbound(String),
    /// A malformed date literal or out-of-range date component.
    BadDate(String),
    /// Generic schema-level violation (e.g. missing period attributes).
    Schema(String),
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            AlgebraError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            AlgebraError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            AlgebraError::Unbound(m) => write!(f, "unbound expression: {m}"),
            AlgebraError::BadDate(m) => write!(f, "bad date: {m}"),
            AlgebraError::Schema(m) => write!(f, "schema error: {m}"),
        }
    }
}

impl std::error::Error for AlgebraError {}

/// Convenience alias used throughout the algebra layer.
pub type Result<T> = std::result::Result<T, AlgebraError>;
