//! Tuples: fixed-arity value vectors.

use crate::interval::Period;
use crate::schema::Schema;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// A tuple of scalar values. Tuples do not carry their schema; the
/// enclosing relation or cursor does.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tuple(pub Vec<Value>);

impl Tuple {
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values)
    }

    pub fn values(&self) -> &[Value] {
        &self.0
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    pub fn set(&mut self, i: usize, v: Value) {
        self.0[i] = v;
    }

    /// Extract the valid-time period using the schema's period indices.
    /// Returns `None` for non-temporal schemas or null time attributes.
    pub fn period(&self, schema: &Schema) -> Option<Period> {
        let (i1, i2) = schema.period()?;
        Some(Period::new(self.0[i1].as_day()?, self.0[i2].as_day()?))
    }

    /// Total wire/memory size estimate in bytes.
    pub fn byte_size(&self) -> usize {
        self.0.iter().map(Value::byte_size).sum()
    }

    /// Project onto the given indices (cloning values).
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple(indices.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Concatenate two tuples (join output construction).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.len() + other.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v)
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple(v)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Build a tuple from heterogeneous literals:
/// `tup![1, "Tom", date(1995,1,1)]`.
#[macro_export]
macro_rules! tup {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::IntoValue::into_value($v)),*])
    };
}

/// Conversion helper backing the [`tup!`] macro.
pub trait IntoValue {
    fn into_value(self) -> Value;
}

impl IntoValue for Value {
    fn into_value(self) -> Value {
        self
    }
}
impl IntoValue for i64 {
    fn into_value(self) -> Value {
        Value::Int(self)
    }
}
impl IntoValue for i32 {
    fn into_value(self) -> Value {
        Value::Int(self as i64)
    }
}
impl IntoValue for f64 {
    fn into_value(self) -> Value {
        Value::Double(self)
    }
}
impl IntoValue for &str {
    fn into_value(self) -> Value {
        Value::Str(self.to_string())
    }
}
impl IntoValue for String {
    fn into_value(self) -> Value {
        Value::Str(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attr;
    use crate::value::Type;

    #[test]
    fn tup_macro_and_period() {
        let s = Schema::with_inferred_period(vec![
            Attr::new("PosID", Type::Int),
            Attr::new("T1", Type::Int),
            Attr::new("T2", Type::Int),
        ]);
        let t = tup![1, 2, 20];
        assert_eq!(t.period(&s), Some(Period::new(2, 20)));
        assert_eq!(t.project(&[0]).values(), &[Value::Int(1)]);
    }

    #[test]
    fn concat_preserves_order() {
        let a = tup![1, "x"];
        let b = tup![2.5];
        assert_eq!(
            a.concat(&b).values(),
            &[Value::Int(1), Value::Str("x".into()), Value::Double(2.5)]
        );
    }
}
