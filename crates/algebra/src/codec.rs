//! Compact binary tuple codec.
//!
//! Used by the mini-DBMS "wire" (the simulated JDBC link encodes every
//! row it ships) and by the external-sort spill files in `tango-xxl`.
//! The format is self-describing per value: a one-byte tag followed by a
//! fixed- or length-prefixed payload.

use crate::error::{AlgebraError, Result};
use crate::tuple::Tuple;
use crate::value::Value;

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_DOUBLE: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_DATE: u8 = 4;

/// Append the encoding of `v` to `buf`.
pub fn encode_value(v: &Value, buf: &mut Vec<u8>) {
    match v {
        Value::Null => buf.push(TAG_NULL),
        Value::Int(i) => {
            buf.push(TAG_INT);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Double(d) => {
            buf.push(TAG_DOUBLE);
            buf.extend_from_slice(&d.to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(TAG_STR);
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
        Value::Date(d) => {
            buf.push(TAG_DATE);
            buf.extend_from_slice(&d.to_le_bytes());
        }
    }
}

/// Append the encoding of a whole tuple (arity-prefixed).
pub fn encode_tuple(t: &Tuple, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&(t.len() as u16).to_le_bytes());
    for v in t.values() {
        encode_value(v, buf);
    }
}

/// Decoding cursor over a byte slice.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    pub fn is_done(&self) -> bool {
        self.pos >= self.buf.len()
    }

    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(AlgebraError::Schema("codec: truncated buffer".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn decode_value(&mut self) -> Result<Value> {
        let tag = self.take(1)?[0];
        Ok(match tag {
            TAG_NULL => Value::Null,
            TAG_INT => Value::Int(i64::from_le_bytes(self.take(8)?.try_into().unwrap())),
            TAG_DOUBLE => Value::Double(f64::from_le_bytes(self.take(8)?.try_into().unwrap())),
            TAG_STR => {
                let len = u32::from_le_bytes(self.take(4)?.try_into().unwrap()) as usize;
                let bytes = self.take(len)?;
                Value::Str(String::from_utf8_lossy(bytes).into_owned())
            }
            TAG_DATE => Value::Date(i32::from_le_bytes(self.take(4)?.try_into().unwrap())),
            other => return Err(AlgebraError::Schema(format!("codec: bad tag {other}"))),
        })
    }

    pub fn decode_tuple(&mut self) -> Result<Tuple> {
        let arity = u16::from_le_bytes(self.take(2)?.try_into().unwrap()) as usize;
        let mut vs = Vec::with_capacity(arity);
        for _ in 0..arity {
            vs.push(self.decode_value()?);
        }
        Ok(Tuple::new(vs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;

    #[test]
    fn round_trip() {
        let t = tup![1, 2.5, "héllo", Value::Null, Value::Date(9131)];
        let mut buf = Vec::new();
        encode_tuple(&t, &mut buf);
        encode_tuple(&t, &mut buf);
        let mut d = Decoder::new(&buf);
        assert_eq!(d.decode_tuple().unwrap(), t);
        assert_eq!(d.decode_tuple().unwrap(), t);
        assert!(d.is_done());
    }

    #[test]
    fn truncation_detected() {
        let t = tup![42];
        let mut buf = Vec::new();
        encode_tuple(&t, &mut buf);
        buf.truncate(buf.len() - 1);
        let mut d = Decoder::new(&buf);
        assert!(d.decode_tuple().is_err());
    }
}
