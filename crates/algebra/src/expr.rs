//! Scalar expressions.
//!
//! One expression type serves three masters: predicate/projection
//! evaluation in the middleware algorithms, selectivity analysis in the
//! optimizer, and SQL rendering in the Translator-To-SQL (the `Display`
//! impl emits valid SQL for the mini-DBMS dialect).

use crate::batch::{Batch, Bitmap, Column};
use crate::date::format_date;
use crate::error::{AlgebraError, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn eval(self, o: Ordering) -> bool {
        match self {
            CmpOp::Eq => o == Ordering::Equal,
            CmpOp::Ne => o != Ordering::Equal,
            CmpOp::Lt => o == Ordering::Less,
            CmpOp::Le => o != Ordering::Greater,
            CmpOp::Gt => o == Ordering::Greater,
            CmpOp::Ge => o != Ordering::Less,
        }
    }

    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }

    pub fn sql(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl ArithOp {
    pub fn sql(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// A scalar expression over one tuple. Column references carry both the
/// source name (for SQL rendering and optimizer analysis) and, once
/// [`Expr::bind`] has run, the resolved index (for evaluation).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    Col {
        name: String,
        index: Option<usize>,
    },
    Lit(Value),
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    Greatest(Vec<Expr>),
    Least(Vec<Expr>),
    /// `IS NULL` (`negated = true` for `IS NOT NULL`).
    IsNull(Box<Expr>, bool),
}

impl Expr {
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col { name: name.into(), index: None }
    }

    pub fn lit(v: impl crate::tuple::IntoValue) -> Expr {
        Expr::Lit(v.into_value())
    }

    pub fn cmp(op: CmpOp, l: Expr, r: Expr) -> Expr {
        Expr::Cmp(op, Box::new(l), Box::new(r))
    }

    pub fn eq(l: Expr, r: Expr) -> Expr {
        Expr::cmp(CmpOp::Eq, l, r)
    }

    pub fn and(l: Expr, r: Expr) -> Expr {
        Expr::And(Box::new(l), Box::new(r))
    }

    pub fn or(l: Expr, r: Expr) -> Expr {
        Expr::Or(Box::new(l), Box::new(r))
    }

    /// Named to match [`Expr::and`]/[`Expr::or`]; this is a constructor,
    /// not the `std::ops::Not` trait.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Expr {
        Expr::Not(Box::new(e))
    }

    /// Conjoin a list of predicates; `None` for an empty list.
    pub fn and_all(mut preds: Vec<Expr>) -> Option<Expr> {
        let mut acc = preds.pop()?;
        while let Some(p) = preds.pop() {
            acc = Expr::and(p, acc);
        }
        Some(acc)
    }

    /// Split a predicate into its top-level conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::And(l, r) => {
                let mut v = l.conjuncts();
                v.extend(r.conjuncts());
                v
            }
            other => vec![other],
        }
    }

    /// The `Overlaps(a, b)` predicate of Section 3.3 over period columns:
    /// `t1 < b AND t2 > a`.
    pub fn overlaps(t1: &str, t2: &str, a: Expr, b: Expr) -> Expr {
        Expr::and(Expr::cmp(CmpOp::Lt, Expr::col(t1), b), Expr::cmp(CmpOp::Gt, Expr::col(t2), a))
    }

    /// Resolve every column reference against `schema`.
    pub fn bind(&mut self, schema: &Schema) -> Result<()> {
        self.try_visit_mut(&mut |e| {
            if let Expr::Col { name, index } = e {
                *index = Some(schema.index_of(name)?);
            }
            Ok(())
        })
    }

    /// A bound copy of this expression.
    pub fn bound(&self, schema: &Schema) -> Result<Expr> {
        let mut e = self.clone();
        e.bind(schema)?;
        Ok(e)
    }

    fn try_visit_mut(&mut self, f: &mut impl FnMut(&mut Expr) -> Result<()>) -> Result<()> {
        f(self)?;
        match self {
            Expr::Col { .. } | Expr::Lit(_) => Ok(()),
            Expr::Cmp(_, l, r) | Expr::And(l, r) | Expr::Or(l, r) | Expr::Arith(_, l, r) => {
                l.try_visit_mut(f)?;
                r.try_visit_mut(f)
            }
            Expr::Not(e) | Expr::IsNull(e, _) => e.try_visit_mut(f),
            Expr::Greatest(es) | Expr::Least(es) => {
                es.iter_mut().try_for_each(|e| e.try_visit_mut(f))
            }
        }
    }

    /// Visit every node (read-only).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Col { .. } | Expr::Lit(_) => {}
            Expr::Cmp(_, l, r) | Expr::And(l, r) | Expr::Or(l, r) | Expr::Arith(_, l, r) => {
                l.visit(f);
                r.visit(f);
            }
            Expr::Not(e) | Expr::IsNull(e, _) => e.visit(f),
            Expr::Greatest(es) | Expr::Least(es) => es.iter().for_each(|e| e.visit(f)),
        }
    }

    /// The set of column names referenced — the paper's `attr(P)` function
    /// (preconditions of rules E1/E5).
    pub fn columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Col { name, .. } = e {
                if !out.iter().any(|n: &String| n.eq_ignore_ascii_case(name)) {
                    out.push(name.clone());
                }
            }
        });
        out
    }

    /// Number of atomic comparisons — the `f(P)` coefficient of the
    /// `FILTER^M` cost formula (Figure 6).
    pub fn complexity(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |e| {
            if matches!(e, Expr::Cmp(..) | Expr::IsNull(..)) {
                n += 1;
            }
        });
        n.max(1)
    }

    /// Evaluate against a tuple. Column references must be bound.
    pub fn eval(&self, t: &Tuple) -> Result<Value> {
        match self {
            Expr::Col { name, index } => match index {
                Some(i) => Ok(t[*i].clone()),
                None => Err(AlgebraError::Unbound(name.clone())),
            },
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Cmp(op, l, r) => {
                let lv = l.eval(t)?;
                let rv = r.eval(t)?;
                Ok(match lv.sql_cmp(&rv) {
                    Some(o) => Value::Int(op.eval(o) as i64),
                    None => Value::Null,
                })
            }
            Expr::And(l, r) => {
                let a = l.eval_bool(t)?;
                let b = r.eval_bool(t)?;
                Ok(tvl(match (a, b) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                }))
            }
            Expr::Or(l, r) => {
                let a = l.eval_bool(t)?;
                let b = r.eval_bool(t)?;
                Ok(tvl(match (a, b) {
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                }))
            }
            Expr::Not(e) => Ok(tvl(e.eval_bool(t)?.map(|b| !b))),
            Expr::Arith(op, l, r) => {
                let lv = l.eval(t)?;
                let rv = r.eval(t)?;
                match op {
                    ArithOp::Add => lv.add(&rv),
                    ArithOp::Sub => lv.sub(&rv),
                    ArithOp::Mul => lv.mul(&rv),
                    ArithOp::Div => lv.div(&rv),
                }
            }
            Expr::Greatest(es) => fold_extreme(es, t, Ordering::Greater),
            Expr::Least(es) => fold_extreme(es, t, Ordering::Less),
            Expr::IsNull(e, negated) => {
                let v = e.eval(t)?;
                Ok(Value::Int((v.is_null() != *negated) as i64))
            }
        }
    }

    /// Evaluate as a three-valued boolean (`None` = SQL UNKNOWN).
    pub fn eval_bool(&self, t: &Tuple) -> Result<Option<bool>> {
        Ok(match self.eval(t)? {
            Value::Null => None,
            Value::Int(i) => Some(i != 0),
            Value::Double(d) => Some(d != 0.0),
            _ => None,
        })
    }

    /// Predicate check: UNKNOWN filters the tuple out, as in SQL WHERE.
    pub fn matches(&self, t: &Tuple) -> Result<bool> {
        Ok(self.eval_bool(t)?.unwrap_or(false))
    }

    /// Vectorized three-valued predicate evaluation over a columnar batch:
    /// one tri-state per row (0 = FALSE, 1 = TRUE, 2 = UNKNOWN), agreeing
    /// with [`Expr::eval_bool`] row by row. Returns `None` when the batch
    /// is row-layout or the expression shape has no columnar kernel
    /// (callers fall back to row-at-a-time evaluation). Kernels cover the
    /// filter shapes the optimizer pushes into the middleware: column-vs-
    /// literal comparisons, AND/OR/NOT over them, and `IS [NOT] NULL`.
    pub fn eval_batch_tri(&self, b: &Batch) -> Option<Vec<u8>> {
        let (cols, offset, len) = b.columns()?;
        self.tri_kernel(cols, offset, len)
    }

    fn tri_kernel(&self, cols: &[Column], offset: usize, len: usize) -> Option<Vec<u8>> {
        match self {
            Expr::Lit(v) => {
                let t = match v {
                    Value::Null => 2,
                    Value::Int(i) => (*i != 0) as u8,
                    Value::Double(d) => (*d != 0.0) as u8,
                    _ => 2,
                };
                Some(vec![t; len])
            }
            Expr::Cmp(op, l, r) => {
                let (i, lit, op) = match (&**l, &**r) {
                    (Expr::Col { index: Some(i), .. }, Expr::Lit(v)) => (*i, v, *op),
                    (Expr::Lit(v), Expr::Col { index: Some(i), .. }) => (*i, v, op.flip()),
                    _ => return None,
                };
                Some(cmp_col_lit(&cols[i], offset, len, op, lit))
            }
            Expr::And(l, r) => {
                let a = l.tri_kernel(cols, offset, len)?;
                let b = r.tri_kernel(cols, offset, len)?;
                Some(
                    a.iter()
                        .zip(&b)
                        .map(|(&x, &y)| {
                            if x == 0 || y == 0 {
                                0
                            } else if x == 2 || y == 2 {
                                2
                            } else {
                                1
                            }
                        })
                        .collect(),
                )
            }
            Expr::Or(l, r) => {
                let a = l.tri_kernel(cols, offset, len)?;
                let b = r.tri_kernel(cols, offset, len)?;
                Some(
                    a.iter()
                        .zip(&b)
                        .map(|(&x, &y)| {
                            if x == 1 || y == 1 {
                                1
                            } else if x == 2 || y == 2 {
                                2
                            } else {
                                0
                            }
                        })
                        .collect(),
                )
            }
            Expr::Not(e) => {
                let mut a = e.tri_kernel(cols, offset, len)?;
                for t in &mut a {
                    *t = match *t {
                        0 => 1,
                        1 => 0,
                        other => other,
                    };
                }
                Some(a)
            }
            Expr::IsNull(e, negated) => match &**e {
                Expr::Col { index: Some(i), .. } => {
                    let col = &cols[*i];
                    Some((0..len).map(|r| (col.is_valid(offset + r) == *negated) as u8).collect())
                }
                _ => None,
            },
            _ => None,
        }
    }
}

/// Compare every row of `col` in `[offset, offset + len)` against a
/// literal, reproducing [`Value::sql_cmp`] + [`CmpOp::eval`] per row.
fn cmp_col_lit(col: &Column, offset: usize, len: usize, op: CmpOp, lit: &Value) -> Vec<u8> {
    if lit.is_null() {
        return vec![2; len];
    }
    let tri = |o: Ordering| op.eval(o) as u8;
    fn mask_nulls(mut out: Vec<u8>, valid: &Option<Arc<Bitmap>>, offset: usize) -> Vec<u8> {
        if let Some(bm) = valid {
            for (r, slot) in out.iter_mut().enumerate() {
                if !bm.get(offset + r) {
                    *slot = 2;
                }
            }
        }
        out
    }
    match col {
        Column::Int { vals, valid } | Column::Date { vals, valid } => {
            let range = &vals[offset..offset + len];
            let out = match lit.as_int() {
                // Both sides integer-like: exact i64 comparison.
                Some(k) => range.iter().map(|v| tri(v.cmp(&k))).collect(),
                None => match lit {
                    Value::Double(d) => {
                        range.iter().map(|v| tri((*v as f64).total_cmp(d))).collect()
                    }
                    _ => vec![2; len], // strings never compare with numbers
                },
            };
            mask_nulls(out, valid, offset)
        }
        Column::Double { vals, valid } => {
            let out = match lit.as_f64() {
                Some(y) => {
                    vals[offset..offset + len].iter().map(|x| tri(x.total_cmp(&y))).collect()
                }
                None => vec![2; len],
            };
            mask_nulls(out, valid, offset)
        }
        Column::Str { codes, dict, valid } => {
            let out = match lit {
                // Compare each distinct dictionary entry once, then fan the
                // verdicts out over the codes.
                Value::Str(s) => {
                    let per: Vec<u8> =
                        dict.iter().map(|e| tri(e.as_str().cmp(s.as_str()))).collect();
                    codes[offset..offset + len].iter().map(|&c| per[c as usize]).collect()
                }
                _ => vec![2; len],
            };
            mask_nulls(out, valid, offset)
        }
        Column::Mixed { vals } => vals[offset..offset + len]
            .iter()
            .map(|v| match v.sql_cmp(lit) {
                Some(o) => tri(o),
                None => 2,
            })
            .collect(),
    }
}

fn tvl(b: Option<bool>) -> Value {
    match b {
        Some(b) => Value::Int(b as i64),
        None => Value::Null,
    }
}

fn fold_extreme(es: &[Expr], t: &Tuple, want: Ordering) -> Result<Value> {
    let mut best: Option<Value> = None;
    for e in es {
        let v = e.eval(t)?;
        if v.is_null() {
            return Ok(Value::Null); // SQL GREATEST/LEAST: any NULL => NULL
        }
        best = Some(match best {
            None => v,
            Some(b) => {
                if v.sql_cmp(&b) == Some(want) {
                    v
                } else {
                    b
                }
            }
        });
    }
    Ok(best.unwrap_or(Value::Null))
}

impl fmt::Display for Expr {
    /// Renders the expression as SQL in the mini-DBMS dialect.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col { name, .. } => write!(f, "{name}"),
            Expr::Lit(Value::Str(s)) => write!(f, "'{}'", s.replace('\'', "''")),
            Expr::Lit(Value::Date(d)) => write!(f, "DATE '{}'", format_date(*d)),
            Expr::Lit(v) => write!(f, "{v}"),
            // parenthesized so nested comparisons (booleans compared as
            // integers) re-parse unambiguously
            Expr::Cmp(op, l, r) => write!(f, "({l} {} {r})", op.sql()),
            Expr::And(l, r) => write!(f, "({l} AND {r})"),
            Expr::Or(l, r) => write!(f, "({l} OR {r})"),
            // wrapped so the NOT's scope survives re-parsing even in
            // operand position (SQL's NOT binds looser than arithmetic)
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::Arith(op, l, r) => write!(f, "({l} {} {r})", op.sql()),
            Expr::Greatest(es) => write_fn(f, "GREATEST", es),
            Expr::Least(es) => write_fn(f, "LEAST", es),
            Expr::IsNull(e, false) => write!(f, "({e} IS NULL)"),
            Expr::IsNull(e, true) => write!(f, "({e} IS NOT NULL)"),
        }
    }
}

fn write_fn(f: &mut fmt::Formatter<'_>, name: &str, es: &[Expr]) -> fmt::Result {
    write!(f, "{name}(")?;
    for (i, e) in es.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{e}")?;
    }
    write!(f, ")")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attr, Schema};
    use crate::tup;
    use crate::value::Type;

    fn schema() -> Schema {
        Schema::new(vec![
            Attr::new("A", Type::Int),
            Attr::new("B", Type::Int),
            Attr::new("S", Type::Str),
        ])
    }

    #[test]
    fn bind_and_eval() {
        let e = Expr::and(
            Expr::cmp(CmpOp::Lt, Expr::col("A"), Expr::col("B")),
            Expr::cmp(CmpOp::Eq, Expr::col("S"), Expr::lit("x")),
        )
        .bound(&schema())
        .unwrap();
        assert!(e.matches(&tup![1, 2, "x"]).unwrap());
        assert!(!e.matches(&tup![3, 2, "x"]).unwrap());
        assert!(!e.matches(&tup![1, 2, "y"]).unwrap());
    }

    #[test]
    fn three_valued_logic() {
        let e = Expr::cmp(CmpOp::Eq, Expr::col("A"), Expr::lit(1)).bound(&schema()).unwrap();
        let t = Tuple::new(vec![Value::Null, Value::Int(0), Value::Str("".into())]);
        assert_eq!(e.eval_bool(&t).unwrap(), None);
        assert!(!e.matches(&t).unwrap());
        // NULL OR TRUE = TRUE
        let e2 = Expr::or(e.clone(), Expr::lit(1)).bound(&schema()).unwrap();
        assert_eq!(e2.eval_bool(&t).unwrap(), Some(true));
    }

    #[test]
    fn greatest_least() {
        let e = Expr::Greatest(vec![Expr::col("A"), Expr::col("B")]).bound(&schema()).unwrap();
        assert_eq!(e.eval(&tup![3, 7, ""]).unwrap(), Value::Int(7));
        let e = Expr::Least(vec![Expr::col("A"), Expr::col("B")]).bound(&schema()).unwrap();
        assert_eq!(e.eval(&tup![3, 7, ""]).unwrap(), Value::Int(3));
    }

    #[test]
    fn sql_rendering() {
        let e = Expr::and(
            Expr::cmp(CmpOp::Lt, Expr::col("T1"), Expr::lit(Value::Date(0))),
            Expr::cmp(CmpOp::Eq, Expr::col("S"), Expr::lit("o'brien")),
        );
        assert_eq!(e.to_string(), "((T1 < DATE '1970-01-01') AND (S = 'o''brien'))");
    }

    #[test]
    fn columns_and_complexity() {
        let e = Expr::overlaps("T1", "T2", Expr::lit(5), Expr::lit(10));
        assert_eq!(e.columns(), vec!["T1".to_string(), "T2".to_string()]);
        assert_eq!(e.complexity(), 2);
    }

    #[test]
    fn conjunct_split_and_join() {
        let e = Expr::and_all(vec![Expr::lit(1), Expr::lit(2), Expr::lit(3)]).unwrap();
        assert_eq!(e.conjuncts().len(), 3);
    }

    #[test]
    fn unbound_eval_errors() {
        let e = Expr::col("A");
        assert!(e.eval(&tup![1]).is_err());
    }

    #[test]
    fn batch_tri_matches_eval_bool() {
        use crate::batch::Batch;
        use std::sync::Arc;
        let schema = schema();
        let mut rows = Vec::new();
        let mut x: u64 = 3;
        for _ in 0..123 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = match x % 5 {
                0 => Value::Null,
                _ => Value::Int(((x >> 20) % 10) as i64),
            };
            let b = Value::Int(((x >> 7) % 10) as i64);
            let s = match (x >> 11) % 4 {
                0 => Value::Null,
                k => Value::Str(format!("s{k}")),
            };
            rows.push(Tuple::new(vec![a, b, s]));
        }
        let preds = vec![
            Expr::cmp(CmpOp::Lt, Expr::col("A"), Expr::lit(5)),
            Expr::cmp(CmpOp::Ge, Expr::lit(4), Expr::col("B")),
            Expr::eq(Expr::col("S"), Expr::lit("s2")),
            Expr::and(
                Expr::cmp(CmpOp::Gt, Expr::col("A"), Expr::lit(1)),
                Expr::not(Expr::eq(Expr::col("S"), Expr::lit("s1"))),
            ),
            Expr::or(
                Expr::IsNull(Box::new(Expr::col("A")), false),
                Expr::cmp(CmpOp::Ne, Expr::col("B"), Expr::lit(3)),
            ),
            Expr::cmp(CmpOp::Le, Expr::col("A"), Expr::lit(Value::Double(3.5))),
        ];
        let batch = Batch::new(Arc::new(schema.clone()), rows.clone()).columnarize();
        for p in preds {
            let p = p.bound(&schema).unwrap();
            let tri = p.eval_batch_tri(&batch).expect("kernel supported");
            for (r, t) in rows.iter().enumerate() {
                let want = match p.eval_bool(t).unwrap() {
                    Some(true) => 1,
                    Some(false) => 0,
                    None => 2,
                };
                assert_eq!(tri[r], want, "{p} row {r}");
            }
        }
    }
}
