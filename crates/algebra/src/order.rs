//! Sort orders and the `IsPrefixOf` predicate used by rules T10–T12.

use crate::batch::Batch;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// One sort key: column name plus direction.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SortKey {
    pub col: String,
    pub desc: bool,
}

impl SortKey {
    pub fn asc(col: impl Into<String>) -> Self {
        SortKey { col: col.into(), desc: false }
    }

    pub fn desc(col: impl Into<String>) -> Self {
        SortKey { col: col.into(), desc: true }
    }
}

impl fmt::Display for SortKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.col, if self.desc { " DESC" } else { "" })
    }
}

/// A lexicographic sort specification. The empty spec means "no required
/// order" / "order unknown".
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct SortSpec(pub Vec<SortKey>);

impl SortSpec {
    pub fn none() -> Self {
        SortSpec(Vec::new())
    }

    pub fn by<I, S>(cols: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        SortSpec(cols.into_iter().map(SortKey::asc).collect())
    }

    pub fn keys(&self) -> &[SortKey] {
        &self.0
    }

    pub fn is_none(&self) -> bool {
        self.0.is_empty()
    }

    /// The paper's `IsPrefixOf(A, B)` predicate: `self` is a prefix of
    /// `other` (column names compared case-insensitively, directions must
    /// match).
    pub fn is_prefix_of(&self, other: &SortSpec) -> bool {
        self.0.len() <= other.0.len()
            && self
                .0
                .iter()
                .zip(&other.0)
                .all(|(a, b)| a.col.eq_ignore_ascii_case(&b.col) && a.desc == b.desc)
    }

    /// Does a relation known to be ordered by `self` satisfy a requirement
    /// of order `required`? (Rule T10: `sort_A(r) -> r` when
    /// `IsPrefixOf(A, Order(r))`.)
    pub fn satisfies(&self, required: &SortSpec) -> bool {
        required.is_prefix_of(self)
    }

    /// Resolve column names to indices against a schema; keys that fail to
    /// resolve are dropped (the order they promised cannot be expressed over
    /// this schema).
    pub fn resolve(&self, schema: &Schema) -> Vec<(usize, bool)> {
        self.0.iter().filter_map(|k| schema.index_of(&k.col).ok().map(|i| (i, k.desc))).collect()
    }

    /// Comparator over tuples for this spec (resolved against `schema`).
    pub fn comparator(&self, schema: &Schema) -> impl Fn(&Tuple, &Tuple) -> Ordering {
        let keys = self.resolve(schema);
        move |a: &Tuple, b: &Tuple| {
            for &(i, desc) in &keys {
                let o = a[i].total_cmp(&b[i]);
                let o = if desc { o.reverse() } else { o };
                if o != Ordering::Equal {
                    return o;
                }
            }
            Ordering::Equal
        }
    }

    /// Restrict this order to the columns present in `schema` — the order
    /// that survives a projection. Stops at the first missing column since
    /// lexicographic order beyond a dropped key is meaningless.
    pub fn project_onto(&self, schema: &Schema) -> SortSpec {
        let mut keys = Vec::new();
        for k in &self.0 {
            if schema.has(&k.col) {
                keys.push(k.clone());
            } else {
                break;
            }
        }
        SortSpec(keys)
    }
}

impl fmt::Display for SortSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, k) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}")?;
        }
        Ok(())
    }
}

/// Stable sort of `tuples` by `spec`, equivalent to sorting with
/// [`SortSpec::comparator`] but with the sort keys extracted once per row
/// instead of coerced on every comparison.
///
/// A key column whose values are all integer-like (`Int`/`Date`) orders
/// as plain `i64` under `total_cmp`, so those columns are pulled into a
/// contiguous `i64` array up front; any other column falls back to
/// per-comparison `total_cmp` on the tuples themselves.
pub fn sort_tuples(tuples: &mut Vec<Tuple>, spec: &SortSpec, schema: &Schema) {
    let keys = spec.resolve(schema);
    if keys.is_empty() || tuples.len() < 2 {
        return;
    }
    enum Col {
        Ints(Vec<i64>),
        Generic(usize),
    }
    let cols: Vec<(Col, bool)> = keys
        .iter()
        .map(|&(i, desc)| {
            let mut ints = Vec::with_capacity(tuples.len());
            for t in tuples.iter() {
                match t[i].as_int() {
                    Some(v) => ints.push(v),
                    None => return (Col::Generic(i), desc),
                }
            }
            (Col::Ints(ints), desc)
        })
        .collect();
    // An ascending integer-like key negated sorts like the descending
    // key, so any all-integer prefix packs into plain `i64` fields. The
    // one unrepresentable negation, i64::MIN, forces the generic path.
    let packed = |col: &(Col, bool)| match col {
        (Col::Ints(v), false) => Some(v.clone()),
        (Col::Ints(v), true) if v.iter().all(|&x| x != i64::MIN) => {
            Some(v.iter().map(|&x| -x).collect())
        }
        _ => None,
    };
    let order: Vec<u32> = match &cols[..] {
        // Fully packed one- and two-key sorts: the hot shapes (sorting
        // on (group, T1) dominates the middleware operators). Sorting
        // Copy key tuples beats an index sort through the comparator.
        [a] => match packed(a) {
            Some(k) => {
                let mut keyed: Vec<(i64, u32)> = k.into_iter().zip(0u32..).collect();
                keyed.sort_unstable();
                keyed.into_iter().map(|(_, i)| i).collect()
            }
            None => sort_indices(tuples, &cols),
        },
        [a, b] => match (packed(a), packed(b)) {
            (Some(ka), Some(kb)) => {
                let mut keyed: Vec<(i64, i64, u32)> =
                    ka.into_iter().zip(kb).zip(0u32..).map(|((a, b), i)| (a, b, i)).collect();
                keyed.sort_unstable();
                keyed.into_iter().map(|(_, _, i)| i).collect()
            }
            _ => sort_indices(tuples, &cols),
        },
        _ => sort_indices(tuples, &cols),
    };
    fn sort_indices(tuples: &[Tuple], cols: &[(Col, bool)]) -> Vec<u32> {
        let mut order: Vec<u32> = (0..tuples.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            for (col, desc) in cols {
                let o = match col {
                    Col::Ints(v) => v[a].cmp(&v[b]),
                    Col::Generic(i) => tuples[a][*i].total_cmp(&tuples[b][*i]),
                };
                let o = if *desc { o.reverse() } else { o };
                if o != Ordering::Equal {
                    return o;
                }
            }
            a.cmp(&b) // equal keys keep input order, making the sort stable
        });
        order
    }
    let mut src: Vec<Option<Tuple>> = std::mem::take(tuples).into_iter().map(Some).collect();
    tuples.extend(order.into_iter().map(|i| src[i as usize].take().unwrap()));
}

/// Sort keys extracted once from a (usually columnar) batch: the flat-array
/// equivalent of [`sort_tuples`]'s per-row key extraction. Comparisons,
/// permutation sorts and parallel chunk merges all run over these arrays
/// without touching tuples.
///
/// Ordering semantics are identical to [`SortSpec::comparator`]
/// (`total_cmp`, stable on ties), so a permutation produced here applied
/// via [`Batch::gather`] yields exactly the rows `sort_tuples` would.
pub struct BatchKeys {
    cols: Vec<(KeyVals, bool)>,
}

enum KeyVals {
    /// All rows integer-like (`Int`/`Date`): exact `i64` ordering.
    Ints(Vec<i64>),
    /// Anything else: materialized values compared with `total_cmp`.
    Vals(Vec<Value>),
}

impl BatchKeys {
    /// Extract the key columns of `spec` from `batch` (resolved against
    /// `schema`, which may differ from `batch.schema()` for qualified
    /// names). Unresolvable keys are dropped, mirroring
    /// [`SortSpec::resolve`].
    pub fn extract(batch: &Batch, spec: &SortSpec, schema: &Schema) -> BatchKeys {
        let n = batch.len();
        let cols = spec
            .resolve(schema)
            .into_iter()
            .map(|(i, desc)| {
                if let Some(flat) = batch.int_col(i) {
                    return (KeyVals::Ints(flat.to_vec()), desc);
                }
                let mut ints = Vec::with_capacity(n);
                for r in 0..n {
                    match batch.value_at(r, i).as_int() {
                        Some(v) => ints.push(v),
                        None => {
                            let vals = (0..n).map(|r| batch.value_at(r, i)).collect();
                            return (KeyVals::Vals(vals), desc);
                        }
                    }
                }
                (KeyVals::Ints(ints), desc)
            })
            .collect();
        BatchKeys { cols }
    }

    /// No usable sort keys: the permutation is the identity.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Compare rows `a` and `b` under the extracted keys.
    pub fn cmp(&self, a: usize, b: usize) -> Ordering {
        for (col, desc) in &self.cols {
            let o = match col {
                KeyVals::Ints(v) => v[a].cmp(&v[b]),
                KeyVals::Vals(v) => v[a].total_cmp(&v[b]),
            };
            let o = if *desc { o.reverse() } else { o };
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    }

    /// Stable sort permutation of rows `[lo, hi)`: returned indices applied
    /// in order visit the range's rows in key order, ties in input order.
    pub fn sort_range(&self, lo: usize, hi: usize) -> Vec<u32> {
        // Packed one- and two-key all-integer sorts mirror the hot shapes
        // of `sort_tuples` (descending keys negate; i64::MIN can't negate,
        // so it falls back to the index sort).
        let packed = |col: &(KeyVals, bool)| match col {
            (KeyVals::Ints(v), false) => Some(v[lo..hi].to_vec()),
            (KeyVals::Ints(v), true) if v[lo..hi].iter().all(|&x| x != i64::MIN) => {
                Some(v[lo..hi].iter().map(|&x| -x).collect())
            }
            _ => None,
        };
        match &self.cols[..] {
            [a] => {
                if let Some(k) = packed(a) {
                    let mut keyed: Vec<(i64, u32)> = k.into_iter().zip(lo as u32..).collect();
                    keyed.sort_unstable();
                    return keyed.into_iter().map(|(_, i)| i).collect();
                }
            }
            [a, b] => {
                if let (Some(ka), Some(kb)) = (packed(a), packed(b)) {
                    let mut keyed: Vec<(i64, i64, u32)> = ka
                        .into_iter()
                        .zip(kb)
                        .zip(lo as u32..)
                        .map(|((a, b), i)| (a, b, i))
                        .collect();
                    keyed.sort_unstable();
                    return keyed.into_iter().map(|(_, _, i)| i).collect();
                }
            }
            _ => {}
        }
        let mut order: Vec<u32> = (lo as u32..hi as u32).collect();
        order.sort_unstable_by(|&a, &b| self.cmp(a as usize, b as usize).then_with(|| a.cmp(&b)));
        order
    }

    /// Merge sorted chunk permutations into one, breaking key ties by
    /// global row index. For chunks covering contiguous ascending ranges
    /// this reproduces the exact stable permutation [`Self::sort_range`]
    /// would produce over the union — the invariant that makes parallel
    /// chunked sorts byte-identical to sequential ones.
    pub fn merge(&self, chunks: Vec<Vec<u32>>) -> Vec<u32> {
        let total = chunks.iter().map(Vec::len).sum();
        let mut pos = vec![0usize; chunks.len()];
        let mut out: Vec<u32> = Vec::with_capacity(total);
        loop {
            let mut best: Option<(usize, u32)> = None;
            for (c, ch) in chunks.iter().enumerate() {
                if pos[c] < ch.len() {
                    let idx = ch[pos[c]];
                    best = match best {
                        None => Some((c, idx)),
                        Some((bc, bi)) => {
                            if self.cmp(idx as usize, bi as usize).then(idx.cmp(&bi))
                                == Ordering::Less
                            {
                                Some((c, idx))
                            } else {
                                Some((bc, bi))
                            }
                        }
                    };
                }
            }
            match best {
                Some((c, i)) => {
                    out.push(i);
                    pos[c] += 1;
                }
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_semantics() {
        let ab = SortSpec::by(["A", "B"]);
        let a = SortSpec::by(["A"]);
        let abc = SortSpec::by(["a", "b", "c"]);
        assert!(a.is_prefix_of(&ab));
        assert!(ab.is_prefix_of(&abc)); // case-insensitive
        assert!(!ab.is_prefix_of(&a));
        assert!(abc.satisfies(&ab));
        assert!(!a.satisfies(&ab));
        assert!(SortSpec::none().is_prefix_of(&a));
        assert!(a.satisfies(&SortSpec::none()));
    }

    #[test]
    fn direction_matters() {
        let asc = SortSpec::by(["A"]);
        let desc = SortSpec(vec![SortKey::desc("A")]);
        assert!(!asc.is_prefix_of(&desc));
    }

    #[test]
    fn batch_keys_match_sort_tuples() {
        use crate::schema::Attr;
        use crate::value::Type;
        use std::sync::Arc;
        let schema =
            Arc::new(Schema::new(vec![Attr::new("A", Type::Int), Attr::new("B", Type::Str)]));
        let mut x: u64 = 7;
        let mut rows = Vec::new();
        for _ in 0..257 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = ((x >> 33) % 17) as i64;
            let b = format!("s{}", (x >> 13) % 5);
            rows.push(Tuple(vec![Value::Int(a), Value::Str(b)]));
        }
        for spec in [
            SortSpec(vec![SortKey::asc("A"), SortKey::desc("B")]),
            SortSpec(vec![SortKey::desc("A")]),
            SortSpec::by(["B", "A"]),
        ] {
            let mut expect = rows.clone();
            sort_tuples(&mut expect, &spec, &schema);
            let b = Batch::new(schema.clone(), rows.clone()).columnarize();
            let keys = BatchKeys::extract(&b, &spec, &schema);
            let perm = keys.sort_range(0, b.len());
            assert_eq!(b.gather(&perm).into_rows(), expect);
            // Chunked sorts + merge reproduce the sequential permutation.
            let chunks =
                vec![keys.sort_range(0, 100), keys.sort_range(100, 200), keys.sort_range(200, 257)];
            assert_eq!(keys.merge(chunks), perm);
        }
    }
}
