//! Sort orders and the `IsPrefixOf` predicate used by rules T10–T12.

use crate::schema::Schema;
use crate::tuple::Tuple;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// One sort key: column name plus direction.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SortKey {
    pub col: String,
    pub desc: bool,
}

impl SortKey {
    pub fn asc(col: impl Into<String>) -> Self {
        SortKey { col: col.into(), desc: false }
    }

    pub fn desc(col: impl Into<String>) -> Self {
        SortKey { col: col.into(), desc: true }
    }
}

impl fmt::Display for SortKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.col, if self.desc { " DESC" } else { "" })
    }
}

/// A lexicographic sort specification. The empty spec means "no required
/// order" / "order unknown".
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct SortSpec(pub Vec<SortKey>);

impl SortSpec {
    pub fn none() -> Self {
        SortSpec(Vec::new())
    }

    pub fn by<I, S>(cols: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        SortSpec(cols.into_iter().map(SortKey::asc).collect())
    }

    pub fn keys(&self) -> &[SortKey] {
        &self.0
    }

    pub fn is_none(&self) -> bool {
        self.0.is_empty()
    }

    /// The paper's `IsPrefixOf(A, B)` predicate: `self` is a prefix of
    /// `other` (column names compared case-insensitively, directions must
    /// match).
    pub fn is_prefix_of(&self, other: &SortSpec) -> bool {
        self.0.len() <= other.0.len()
            && self
                .0
                .iter()
                .zip(&other.0)
                .all(|(a, b)| a.col.eq_ignore_ascii_case(&b.col) && a.desc == b.desc)
    }

    /// Does a relation known to be ordered by `self` satisfy a requirement
    /// of order `required`? (Rule T10: `sort_A(r) -> r` when
    /// `IsPrefixOf(A, Order(r))`.)
    pub fn satisfies(&self, required: &SortSpec) -> bool {
        required.is_prefix_of(self)
    }

    /// Resolve column names to indices against a schema; keys that fail to
    /// resolve are dropped (the order they promised cannot be expressed over
    /// this schema).
    pub fn resolve(&self, schema: &Schema) -> Vec<(usize, bool)> {
        self.0.iter().filter_map(|k| schema.index_of(&k.col).ok().map(|i| (i, k.desc))).collect()
    }

    /// Comparator over tuples for this spec (resolved against `schema`).
    pub fn comparator(&self, schema: &Schema) -> impl Fn(&Tuple, &Tuple) -> Ordering {
        let keys = self.resolve(schema);
        move |a: &Tuple, b: &Tuple| {
            for &(i, desc) in &keys {
                let o = a[i].total_cmp(&b[i]);
                let o = if desc { o.reverse() } else { o };
                if o != Ordering::Equal {
                    return o;
                }
            }
            Ordering::Equal
        }
    }

    /// Restrict this order to the columns present in `schema` — the order
    /// that survives a projection. Stops at the first missing column since
    /// lexicographic order beyond a dropped key is meaningless.
    pub fn project_onto(&self, schema: &Schema) -> SortSpec {
        let mut keys = Vec::new();
        for k in &self.0 {
            if schema.has(&k.col) {
                keys.push(k.clone());
            } else {
                break;
            }
        }
        SortSpec(keys)
    }
}

impl fmt::Display for SortSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, k) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}")?;
        }
        Ok(())
    }
}

/// Stable sort of `tuples` by `spec`, equivalent to sorting with
/// [`SortSpec::comparator`] but with the sort keys extracted once per row
/// instead of coerced on every comparison.
///
/// A key column whose values are all integer-like (`Int`/`Date`) orders
/// as plain `i64` under `total_cmp`, so those columns are pulled into a
/// contiguous `i64` array up front; any other column falls back to
/// per-comparison `total_cmp` on the tuples themselves.
pub fn sort_tuples(tuples: &mut Vec<Tuple>, spec: &SortSpec, schema: &Schema) {
    let keys = spec.resolve(schema);
    if keys.is_empty() || tuples.len() < 2 {
        return;
    }
    enum Col {
        Ints(Vec<i64>),
        Generic(usize),
    }
    let cols: Vec<(Col, bool)> = keys
        .iter()
        .map(|&(i, desc)| {
            let mut ints = Vec::with_capacity(tuples.len());
            for t in tuples.iter() {
                match t[i].as_int() {
                    Some(v) => ints.push(v),
                    None => return (Col::Generic(i), desc),
                }
            }
            (Col::Ints(ints), desc)
        })
        .collect();
    // An ascending integer-like key negated sorts like the descending
    // key, so any all-integer prefix packs into plain `i64` fields. The
    // one unrepresentable negation, i64::MIN, forces the generic path.
    let packed = |col: &(Col, bool)| match col {
        (Col::Ints(v), false) => Some(v.clone()),
        (Col::Ints(v), true) if v.iter().all(|&x| x != i64::MIN) => {
            Some(v.iter().map(|&x| -x).collect())
        }
        _ => None,
    };
    let order: Vec<u32> = match &cols[..] {
        // Fully packed one- and two-key sorts: the hot shapes (sorting
        // on (group, T1) dominates the middleware operators). Sorting
        // Copy key tuples beats an index sort through the comparator.
        [a] => match packed(a) {
            Some(k) => {
                let mut keyed: Vec<(i64, u32)> = k.into_iter().zip(0u32..).collect();
                keyed.sort_unstable();
                keyed.into_iter().map(|(_, i)| i).collect()
            }
            None => sort_indices(tuples, &cols),
        },
        [a, b] => match (packed(a), packed(b)) {
            (Some(ka), Some(kb)) => {
                let mut keyed: Vec<(i64, i64, u32)> =
                    ka.into_iter().zip(kb).zip(0u32..).map(|((a, b), i)| (a, b, i)).collect();
                keyed.sort_unstable();
                keyed.into_iter().map(|(_, _, i)| i).collect()
            }
            _ => sort_indices(tuples, &cols),
        },
        _ => sort_indices(tuples, &cols),
    };
    fn sort_indices(tuples: &[Tuple], cols: &[(Col, bool)]) -> Vec<u32> {
        let mut order: Vec<u32> = (0..tuples.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            for (col, desc) in cols {
                let o = match col {
                    Col::Ints(v) => v[a].cmp(&v[b]),
                    Col::Generic(i) => tuples[a][*i].total_cmp(&tuples[b][*i]),
                };
                let o = if *desc { o.reverse() } else { o };
                if o != Ordering::Equal {
                    return o;
                }
            }
            a.cmp(&b) // equal keys keep input order, making the sort stable
        });
        order
    }
    let mut src: Vec<Option<Tuple>> = std::mem::take(tuples).into_iter().map(Some).collect();
    tuples.extend(order.into_iter().map(|i| src[i as usize].take().unwrap()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_semantics() {
        let ab = SortSpec::by(["A", "B"]);
        let a = SortSpec::by(["A"]);
        let abc = SortSpec::by(["a", "b", "c"]);
        assert!(a.is_prefix_of(&ab));
        assert!(ab.is_prefix_of(&abc)); // case-insensitive
        assert!(!ab.is_prefix_of(&a));
        assert!(abc.satisfies(&ab));
        assert!(!a.satisfies(&ab));
        assert!(SortSpec::none().is_prefix_of(&a));
        assert!(a.satisfies(&SortSpec::none()));
    }

    #[test]
    fn direction_matters() {
        let asc = SortSpec::by(["A"]);
        let desc = SortSpec(vec![SortKey::desc("A")]);
        assert!(!asc.is_prefix_of(&desc));
    }
}
