//! The logical operator tree.
//!
//! This is the algebra the temporal-SQL parser produces and the TANGO
//! optimizer transforms. Operators carry *names*, not resolved indices;
//! binding to physical schemas happens when plans are lowered to
//! algorithms or translated to SQL.
//!
//! Operator inventory (paper Sections 2–4): `Get` (base relation),
//! `Select` (σ), `Project` (π), `Sort`, `Join` (⋈), `TJoin` (⋈ᵀ, temporal
//! join intersecting periods), `Product` (×), `TAggr` (ξᵀ, temporal
//! aggregation), plus the extension operators the paper lists as
//! candidates (`DupElim`, `Coalesce`, `Diff`) and the two transfer
//! operators `TransferM` (T^M) and `TransferD` (T^D).

use crate::error::{AlgebraError, Result};
use crate::expr::Expr;
use crate::order::SortSpec;
use crate::schema::{Attr, Schema};
use crate::value::Type;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Source of base-relation schemas (implemented by catalogs).
pub trait SchemaSource {
    fn table_schema(&self, name: &str) -> Result<Schema>;
}

/// A projection item: an expression plus its output name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProjItem {
    pub expr: Expr,
    pub alias: String,
}

impl ProjItem {
    pub fn col(name: impl Into<String>) -> Self {
        let name = name.into();
        let alias = name.rsplit('.').next().unwrap_or(&name).to_string();
        ProjItem { expr: Expr::col(name), alias }
    }

    pub fn named(expr: Expr, alias: impl Into<String>) -> Self {
        ProjItem { expr, alias: alias.into() }
    }
}

/// Aggregate functions supported by temporal aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn sql(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }
}

/// One aggregate specification: function, argument column (`None` means
/// `COUNT(*)`), output alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AggSpec {
    pub func: AggFunc,
    pub arg: Option<String>,
    pub alias: String,
}

impl AggSpec {
    pub fn new(func: AggFunc, arg: Option<&str>, alias: &str) -> Self {
        AggSpec { func, arg: arg.map(str::to_string), alias: alias.to_string() }
    }

    pub fn count_star(alias: &str) -> Self {
        AggSpec::new(AggFunc::Count, None, alias)
    }
}

impl fmt::Display for AggSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            Some(a) => write!(f, "{}({a}) AS {}", self.func.sql(), self.alias),
            None => write!(f, "{}(*) AS {}", self.func.sql(), self.alias),
        }
    }
}

/// The logical operator tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Logical {
    /// Base relation stored in the DBMS.
    Get { table: String },
    /// σ_pred
    Select { pred: Expr, input: Box<Logical> },
    /// π_items
    Project { items: Vec<ProjItem>, input: Box<Logical> },
    /// Explicit sort (list-producing).
    Sort { keys: SortSpec, input: Box<Logical> },
    /// Equi-join ⋈ on `eq` column pairs (left, right).
    Join { eq: Vec<(String, String)>, left: Box<Logical>, right: Box<Logical> },
    /// Temporal join ⋈ᵀ: equi-join plus period overlap; the output period
    /// is the intersection.
    TJoin { eq: Vec<(String, String)>, left: Box<Logical>, right: Box<Logical> },
    /// Cartesian product ×.
    Product { left: Box<Logical>, right: Box<Logical> },
    /// Temporal aggregation ξᵀ.
    TAggr { group_by: Vec<String>, aggs: Vec<AggSpec>, input: Box<Logical> },
    /// Duplicate elimination (extension operator).
    DupElim { input: Box<Logical> },
    /// Temporal coalescing (extension operator).
    Coalesce { input: Box<Logical> },
    /// Multiset difference (extension operator).
    Diff { left: Box<Logical>, right: Box<Logical> },
    /// T^M: move the relation from the DBMS to the middleware.
    TransferM { input: Box<Logical> },
    /// T^D: move the relation from the middleware into the DBMS.
    TransferD { input: Box<Logical> },
}

impl Logical {
    pub fn get(table: impl Into<String>) -> Logical {
        Logical::Get { table: table.into() }
    }

    pub fn select(self, pred: Expr) -> Logical {
        Logical::Select { pred, input: Box::new(self) }
    }

    pub fn project(self, items: Vec<ProjItem>) -> Logical {
        Logical::Project { items, input: Box::new(self) }
    }

    pub fn project_cols<'a>(self, cols: impl IntoIterator<Item = &'a str>) -> Logical {
        self.project(cols.into_iter().map(ProjItem::col).collect())
    }

    pub fn sort(self, keys: SortSpec) -> Logical {
        Logical::Sort { keys, input: Box::new(self) }
    }

    pub fn join(self, other: Logical, eq: Vec<(String, String)>) -> Logical {
        Logical::Join { eq, left: Box::new(self), right: Box::new(other) }
    }

    pub fn tjoin(self, other: Logical, eq: Vec<(String, String)>) -> Logical {
        Logical::TJoin { eq, left: Box::new(self), right: Box::new(other) }
    }

    pub fn taggr(self, group_by: Vec<String>, aggs: Vec<AggSpec>) -> Logical {
        Logical::TAggr { group_by, aggs, input: Box::new(self) }
    }

    pub fn transfer_m(self) -> Logical {
        Logical::TransferM { input: Box::new(self) }
    }

    pub fn transfer_d(self) -> Logical {
        Logical::TransferD { input: Box::new(self) }
    }

    /// A short operator name for plan displays.
    pub fn name(&self) -> &'static str {
        match self {
            Logical::Get { .. } => "GET",
            Logical::Select { .. } => "SELECT",
            Logical::Project { .. } => "PROJECT",
            Logical::Sort { .. } => "SORT",
            Logical::Join { .. } => "JOIN",
            Logical::TJoin { .. } => "TJOIN",
            Logical::Product { .. } => "PRODUCT",
            Logical::TAggr { .. } => "TAGGR",
            Logical::DupElim { .. } => "DUPELIM",
            Logical::Coalesce { .. } => "COALESCE",
            Logical::Diff { .. } => "DIFF",
            Logical::TransferM { .. } => "T^M",
            Logical::TransferD { .. } => "T^D",
        }
    }

    pub fn children(&self) -> Vec<&Logical> {
        match self {
            Logical::Get { .. } => vec![],
            Logical::Select { input, .. }
            | Logical::Project { input, .. }
            | Logical::Sort { input, .. }
            | Logical::TAggr { input, .. }
            | Logical::DupElim { input }
            | Logical::Coalesce { input }
            | Logical::TransferM { input }
            | Logical::TransferD { input } => vec![input],
            Logical::Join { left, right, .. }
            | Logical::TJoin { left, right, .. }
            | Logical::Product { left, right }
            | Logical::Diff { left, right } => vec![left, right],
        }
    }

    /// Derive the output schema, resolving base relations through `src`.
    pub fn output_schema(&self, src: &dyn SchemaSource) -> Result<Schema> {
        match self {
            Logical::Get { table } => src.table_schema(table),
            Logical::Select { input, .. }
            | Logical::Sort { input, .. }
            | Logical::DupElim { input }
            | Logical::Coalesce { input }
            | Logical::TransferM { input }
            | Logical::TransferD { input } => input.output_schema(src),
            Logical::Diff { left, .. } => left.output_schema(src),
            Logical::Project { items, input } => {
                let in_schema = input.output_schema(src)?;
                let mut attrs = Vec::with_capacity(items.len());
                for it in items {
                    let ty = infer_type(&it.expr, &in_schema)?;
                    attrs.push(Attr::new(it.alias.clone(), ty));
                }
                Ok(Schema::with_inferred_period(attrs))
            }
            Logical::Join { left, right, .. } | Logical::Product { left, right } => {
                let l = left.output_schema(src)?;
                let r = right.output_schema(src)?;
                Ok(concat_schemas(&l, &r))
            }
            Logical::TJoin { eq, left, right } => {
                let l = left.output_schema(src)?;
                let r = right.output_schema(src)?;
                tjoin_schema(eq, &l, &r)
            }
            Logical::TAggr { group_by, aggs, input } => {
                let in_schema = input.output_schema(src)?;
                taggr_schema(group_by, aggs, &in_schema)
            }
        }
    }

    /// Count operators in the tree (used in optimizer reporting).
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }
}

/// Infer the result type of an expression over a schema.
pub fn infer_type(e: &Expr, schema: &Schema) -> Result<Type> {
    Ok(match e {
        Expr::Col { name, .. } => schema.attr(schema.index_of(name)?).ty,
        Expr::Lit(v) => v.ty().unwrap_or(Type::Int),
        Expr::Cmp(..) | Expr::IsNull(..) => Type::Int,
        Expr::And(..) | Expr::Or(..) | Expr::Not(..) => Type::Int,
        Expr::Arith(_, l, r) => {
            let lt = infer_type(l, schema)?;
            let rt = infer_type(r, schema)?;
            match (lt, rt) {
                (Type::Date, _) | (_, Type::Date) => Type::Date,
                (Type::Double, _) | (_, Type::Double) => Type::Double,
                (Type::Int, Type::Int) => Type::Int,
                _ => {
                    return Err(AlgebraError::TypeMismatch(format!(
                        "arithmetic over {lt} and {rt}"
                    )))
                }
            }
        }
        Expr::Greatest(es) | Expr::Least(es) => {
            let first = es
                .first()
                .ok_or_else(|| AlgebraError::TypeMismatch("empty GREATEST/LEAST".into()))?;
            infer_type(first, schema)?
        }
    })
}

/// Concatenate two schemas (join/product output), renaming clashing names
/// with a `_2` suffix so the result stays unambiguous.
pub fn concat_schemas(l: &Schema, r: &Schema) -> Schema {
    let mut attrs: Vec<Attr> = l.attrs().to_vec();
    for a in r.attrs() {
        let clash = attrs.iter().any(|b| b.name.eq_ignore_ascii_case(&a.name));
        let name = if clash { format!("{}_2", a.name) } else { a.name.clone() };
        attrs.push(Attr::new(name, a.ty));
    }
    Schema::with_inferred_period(attrs)
}

/// Temporal join output schema: left non-period attributes, right
/// non-period attributes minus its equi-join columns, then `T1`/`T2`
/// (the intersected period). Matches the SQL of Figure 5.
pub fn tjoin_schema(eq: &[(String, String)], l: &Schema, r: &Schema) -> Result<Schema> {
    let (lt1, lt2) = l
        .period()
        .ok_or_else(|| AlgebraError::Schema("temporal join over non-temporal left input".into()))?;
    let (rt1, rt2) = r.period().ok_or_else(|| {
        AlgebraError::Schema("temporal join over non-temporal right input".into())
    })?;
    let mut attrs = Vec::new();
    for (i, a) in l.attrs().iter().enumerate() {
        if i != lt1 && i != lt2 {
            attrs.push(a.clone());
        }
    }
    for (i, a) in r.attrs().iter().enumerate() {
        if i == rt1 || i == rt2 {
            continue;
        }
        let is_join_col = eq.iter().any(|(_, rc)| r.index_of(rc).map(|j| j == i).unwrap_or(false));
        if is_join_col {
            continue;
        }
        let clash = attrs.iter().any(|b| b.name.eq_ignore_ascii_case(&a.name));
        let name = if clash { format!("{}_2", a.name) } else { a.name.clone() };
        attrs.push(Attr::new(name, a.ty));
    }
    let t_ty = l.attr(lt1).ty;
    attrs.push(Attr::new("T1", t_ty));
    attrs.push(Attr::new("T2", t_ty));
    Schema::temporal(attrs, "T1", "T2")
}

/// Temporal aggregation output schema: grouping attributes, `T1`, `T2`,
/// then the aggregate aliases (the shape of Figure 3(c)).
pub fn taggr_schema(group_by: &[String], aggs: &[AggSpec], input: &Schema) -> Result<Schema> {
    let (t1, _) = input.period().ok_or_else(|| {
        AlgebraError::Schema("temporal aggregation over non-temporal input".into())
    })?;
    let mut attrs = Vec::new();
    for g in group_by {
        let i = input.index_of(g)?;
        attrs.push(Attr::new(input.attr(i).bare_name().to_string(), input.attr(i).ty));
    }
    let t_ty = input.attr(t1).ty;
    attrs.push(Attr::new("T1", t_ty));
    attrs.push(Attr::new("T2", t_ty));
    for a in aggs {
        let ty = match a.func {
            AggFunc::Count => Type::Int,
            AggFunc::Avg => Type::Double,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => match &a.arg {
                Some(c) => input.attr(input.index_of(c)?).ty,
                None => Type::Int,
            },
        };
        attrs.push(Attr::new(a.alias.clone(), ty));
    }
    Schema::temporal(attrs, "T1", "T2")
}

impl fmt::Display for Logical {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(op: &Logical, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
            write!(f, "{}{}", "  ".repeat(depth), op.name())?;
            match op {
                Logical::Get { table } => write!(f, " {table}")?,
                Logical::Select { pred, .. } => write!(f, " [{pred}]")?,
                Logical::Project { items, .. } => {
                    let cols: Vec<String> = items
                        .iter()
                        .map(|i| {
                            if matches!(&i.expr, Expr::Col { name, .. } if name.rsplit('.').next() == Some(i.alias.as_str()) || name == &i.alias)
                            {
                                i.alias.clone()
                            } else {
                                format!("{} AS {}", i.expr, i.alias)
                            }
                        })
                        .collect();
                    write!(f, " [{}]", cols.join(", "))?
                }
                Logical::Sort { keys, .. } => write!(f, " [{keys}]")?,
                Logical::Join { eq, .. } | Logical::TJoin { eq, .. } => {
                    let conds: Vec<String> = eq.iter().map(|(l, r)| format!("{l}={r}")).collect();
                    write!(f, " [{}]", conds.join(" AND "))?
                }
                Logical::TAggr { group_by, aggs, .. } => {
                    let a: Vec<String> = aggs.iter().map(ToString::to_string).collect();
                    write!(f, " [group by {}; {}]", group_by.join(", "), a.join(", "))?
                }
                _ => {}
            }
            writeln!(f)?;
            for c in op.children() {
                go(c, f, depth + 1)?;
            }
            Ok(())
        }
        go(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct Src(HashMap<String, Schema>);

    impl SchemaSource for Src {
        fn table_schema(&self, name: &str) -> Result<Schema> {
            self.0
                .get(&name.to_uppercase())
                .cloned()
                .ok_or_else(|| AlgebraError::UnknownColumn(name.to_string()))
        }
    }

    fn src() -> Src {
        let pos = Schema::with_inferred_period(vec![
            Attr::new("PosID", Type::Int),
            Attr::new("EmpName", Type::Str),
            Attr::new("T1", Type::Date),
            Attr::new("T2", Type::Date),
        ]);
        let mut m = HashMap::new();
        m.insert("POSITION".to_string(), pos);
        Src(m)
    }

    #[test]
    fn figure4_initial_plan_schema() {
        // taggr(POSITION) tjoin POSITION, as in the Section 2.2 example
        let agg = Logical::get("POSITION").taggr(
            vec!["PosID".into()],
            vec![AggSpec::new(AggFunc::Count, Some("PosID"), "COUNTofPosID")],
        );
        let s = agg.output_schema(&src()).unwrap();
        assert_eq!(s.names().collect::<Vec<_>>(), vec!["PosID", "T1", "T2", "COUNTofPosID"]);
        assert!(s.is_temporal());

        let joined =
            agg.tjoin(Logical::get("POSITION"), vec![("PosID".to_string(), "PosID".to_string())]);
        let s = joined.output_schema(&src()).unwrap();
        // left (agg) non-period attrs, right non-period attrs minus join col, T1, T2
        assert_eq!(
            s.names().collect::<Vec<_>>(),
            vec!["PosID", "COUNTofPosID", "EmpName", "T1", "T2"]
        );
        assert!(s.is_temporal());
    }

    #[test]
    fn join_schema_renames_clashes() {
        let j = Logical::get("POSITION")
            .join(Logical::get("POSITION"), vec![("PosID".to_string(), "PosID".to_string())]);
        let s = j.output_schema(&src()).unwrap();
        assert_eq!(
            s.names().collect::<Vec<_>>(),
            vec!["PosID", "EmpName", "T1", "T2", "PosID_2", "EmpName_2", "T1_2", "T2_2"]
        );
    }

    #[test]
    fn project_schema_infers_types() {
        let p = Logical::get("POSITION").project(vec![
            ProjItem::col("PosID"),
            ProjItem::named(
                Expr::Arith(
                    crate::expr::ArithOp::Sub,
                    Box::new(Expr::col("T2")),
                    Box::new(Expr::col("T1")),
                ),
                "Dur",
            ),
        ]);
        let s = p.output_schema(&src()).unwrap();
        assert_eq!(s.attr(0).ty, Type::Int);
        assert_eq!(s.attr(1).ty, Type::Date); // date arithmetic stays date-typed
        assert!(!s.is_temporal());
    }

    #[test]
    fn display_renders_tree() {
        let plan = Logical::get("POSITION")
            .taggr(vec!["PosID".into()], vec![AggSpec::count_star("C")])
            .transfer_m();
        let out = plan.to_string();
        assert!(out.contains("T^M"));
        assert!(out.contains("TAGGR"));
        assert!(out.contains("GET POSITION"));
    }
}
