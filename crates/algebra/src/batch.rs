//! Batches: the unit of vectorized (batch-at-a-time) execution.
//!
//! A [`Batch`] is a run of consecutive tuples from one stream, sharing a
//! single [`Schema`] handle. Batches have two physical representations:
//!
//! * **Rows** — a plain `Vec<Tuple>`: the layout produced by scans and the
//!   (simulated) wire, and consumed by the row-at-a-time fallback and the
//!   codec. Cheap to build, no conversion cost.
//! * **Columnar** — typed column vectors ([`Column`]: `i64` ints/dates,
//!   `f64` doubles, dictionary-encoded strings) with a packed validity
//!   [`Bitmap`], shared via `Arc` so slicing is zero-copy. Pipeline
//!   breakers (sort, TAGGR, parallel joins) columnarize once and run their
//!   hot loops — key extraction, group-boundary detection, interval sweeps
//!   — over the flat arrays.
//!
//! Interval (period) attributes are ordinary `Int`/`Date` columns, so a
//! columnar batch naturally exposes a period as a flat `(start: i64,
//! end: i64)` pair of vectors which the temporal sweep loops index
//! directly ([`Batch::int_col`]).
//!
//! Materialization round-trips exactly: `Int` and `Date` columns stay
//! distinct (the wire codec tags them differently even though they compare
//! equal), doubles keep their bit patterns, and nulls are tracked per
//! column in the validity bitmap.

use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// The default number of rows per batch. Large enough to amortize
/// per-batch overhead, small enough to keep a batch cache-resident.
pub const DEFAULT_BATCH_ROWS: usize = 1024;

/// Packed validity bitmap: bit `i` set means row `i` holds a value,
/// cleared means NULL.
#[derive(Debug, Clone, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    pub fn push(&mut self, valid: bool) {
        let (w, b) = (self.len / 64, self.len % 64);
        if b == 0 {
            self.words.push(0);
        }
        if valid {
            self.words[w] |= 1 << b;
        }
        self.len += 1;
    }

    pub fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of valid (non-null) rows in `from..to`.
    pub fn count_valid(&self, from: usize, to: usize) -> usize {
        (from..to).filter(|&i| self.get(i)).count()
    }
}

/// One typed column of a columnar batch. Buffers are `Arc`-shared so
/// slicing and column projection are zero-copy. `valid: None` means every
/// row is non-null.
#[derive(Debug, Clone)]
pub enum Column {
    /// `Value::Int` rows as flat `i64`s (null slots hold 0).
    Int { vals: Arc<Vec<i64>>, valid: Option<Arc<Bitmap>> },
    /// `Value::Date` rows widened to `i64` day numbers; materialization
    /// narrows back to `Day` (`i32`).
    Date { vals: Arc<Vec<i64>>, valid: Option<Arc<Bitmap>> },
    /// `Value::Double` rows, bit-exact.
    Double { vals: Arc<Vec<f64>>, valid: Option<Arc<Bitmap>> },
    /// Dictionary-encoded strings: `codes[i]` indexes into `dict`.
    Str { codes: Arc<Vec<u32>>, dict: Arc<Vec<String>>, valid: Option<Arc<Bitmap>> },
    /// Fallback for mixed-variant columns (e.g. `Int` and `Date` rows in
    /// one attribute): exact `Value`s, no flat fast path.
    Mixed { vals: Arc<Vec<Value>> },
}

impl Column {
    /// Build a column from exact values, picking the tightest layout that
    /// round-trips every variant.
    pub fn from_values(vals: Vec<Value>) -> Column {
        use crate::value::Type;
        let mut kind: Option<Type> = None;
        let mut uniform = true;
        let mut any_null = false;
        let mut any_val = false;
        for v in &vals {
            match v.ty() {
                None => any_null = true,
                Some(t) => {
                    any_val = true;
                    match kind {
                        None => kind = Some(t),
                        Some(k) if k == t => {}
                        Some(_) => {
                            uniform = false;
                            break;
                        }
                    }
                }
            }
        }
        if !uniform || !any_val {
            return Column::Mixed { vals: Arc::new(vals) };
        }
        let valid = |any_null: bool, vals: &[Value]| {
            if !any_null {
                return None;
            }
            let mut bm = Bitmap::default();
            for v in vals {
                bm.push(!v.is_null());
            }
            Some(Arc::new(bm))
        };
        match kind.unwrap() {
            Type::Int => {
                let valid = valid(any_null, &vals);
                let out = vals.iter().map(|v| v.as_int().unwrap_or(0)).collect();
                Column::Int { vals: Arc::new(out), valid }
            }
            Type::Date => {
                let valid = valid(any_null, &vals);
                let out = vals.iter().map(|v| v.as_int().unwrap_or(0)).collect();
                Column::Date { vals: Arc::new(out), valid }
            }
            Type::Double => {
                let valid = valid(any_null, &vals);
                let out = vals
                    .iter()
                    .map(|v| match v {
                        Value::Double(d) => *d,
                        _ => 0.0,
                    })
                    .collect();
                Column::Double { vals: Arc::new(out), valid }
            }
            Type::Str => {
                let valid = valid(any_null, &vals);
                let mut dict: Vec<String> = Vec::new();
                let mut by_str: HashMap<String, u32> = HashMap::new();
                let mut codes = Vec::with_capacity(vals.len());
                for v in vals {
                    match v {
                        Value::Str(s) => {
                            let code = match by_str.get(&s) {
                                Some(&c) => c,
                                None => {
                                    let c = dict.len() as u32;
                                    by_str.insert(s.clone(), c);
                                    dict.push(s);
                                    c
                                }
                            };
                            codes.push(code);
                        }
                        _ => codes.push(0),
                    }
                }
                // An all-null Str column can have an empty dict; make code 0
                // resolvable anyway.
                if dict.is_empty() {
                    dict.push(String::new());
                }
                Column::Str { codes: Arc::new(codes), dict: Arc::new(dict), valid }
            }
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Column::Int { vals, .. } | Column::Date { vals, .. } => vals.len(),
            Column::Double { vals, .. } => vals.len(),
            Column::Str { codes, .. } => codes.len(),
            Column::Mixed { vals } => vals.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether row `i` (absolute index) is non-null.
    pub fn is_valid(&self, i: usize) -> bool {
        match self {
            Column::Int { valid, .. }
            | Column::Date { valid, .. }
            | Column::Double { valid, .. }
            | Column::Str { valid, .. } => valid.as_ref().map(|b| b.get(i)).unwrap_or(true),
            Column::Mixed { vals } => !vals[i].is_null(),
        }
    }

    /// Materialize row `i` (absolute index) as an exact `Value`.
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            Column::Int { vals, valid } => match valid.as_ref().map(|b| b.get(i)).unwrap_or(true) {
                true => Value::Int(vals[i]),
                false => Value::Null,
            },
            Column::Date { vals, valid } => {
                match valid.as_ref().map(|b| b.get(i)).unwrap_or(true) {
                    true => Value::Date(vals[i] as crate::date::Day),
                    false => Value::Null,
                }
            }
            Column::Double { vals, valid } => {
                match valid.as_ref().map(|b| b.get(i)).unwrap_or(true) {
                    true => Value::Double(vals[i]),
                    false => Value::Null,
                }
            }
            Column::Str { codes, dict, valid } => {
                match valid.as_ref().map(|b| b.get(i)).unwrap_or(true) {
                    true => Value::Str(dict[codes[i] as usize].clone()),
                    false => Value::Null,
                }
            }
            Column::Mixed { vals } => vals[i].clone(),
        }
    }

    /// Wire-size estimate of row `i` (absolute index).
    fn byte_at(&self, i: usize) -> usize {
        match self {
            Column::Int { valid, .. } => {
                if valid.as_ref().map(|b| b.get(i)).unwrap_or(true) {
                    8
                } else {
                    1
                }
            }
            Column::Date { valid, .. } => {
                if valid.as_ref().map(|b| b.get(i)).unwrap_or(true) {
                    4
                } else {
                    1
                }
            }
            Column::Double { valid, .. } => {
                if valid.as_ref().map(|b| b.get(i)).unwrap_or(true) {
                    8
                } else {
                    1
                }
            }
            Column::Str { codes, dict, valid } => {
                if valid.as_ref().map(|b| b.get(i)).unwrap_or(true) {
                    2 + dict[codes[i] as usize].len()
                } else {
                    1
                }
            }
            Column::Mixed { vals } => vals[i].byte_size(),
        }
    }

    fn range_bytes(&self, from: usize, to: usize) -> usize {
        match self {
            Column::Int { valid, .. } | Column::Double { valid, .. } => match valid {
                None => (to - from) * 8,
                Some(b) => {
                    let v = b.count_valid(from, to);
                    v * 8 + (to - from - v)
                }
            },
            Column::Date { valid, .. } => match valid {
                None => (to - from) * 4,
                Some(b) => {
                    let v = b.count_valid(from, to);
                    v * 4 + (to - from - v)
                }
            },
            Column::Str { .. } | Column::Mixed { .. } => (from..to).map(|i| self.byte_at(i)).sum(),
        }
    }

    /// Gather rows at absolute indices `idx` into a fresh column. Str
    /// dictionaries are shared, not rebuilt.
    pub fn gather(&self, idx: &[u32]) -> Column {
        fn regather(valid: &Option<Arc<Bitmap>>, idx: &[u32]) -> Option<Arc<Bitmap>> {
            let bm = valid.as_ref()?;
            let mut out = Bitmap::default();
            let mut any_null = false;
            for &i in idx {
                let v = bm.get(i as usize);
                any_null |= !v;
                out.push(v);
            }
            if any_null {
                Some(Arc::new(out))
            } else {
                None
            }
        }
        match self {
            Column::Int { vals, valid } => Column::Int {
                vals: Arc::new(idx.iter().map(|&i| vals[i as usize]).collect()),
                valid: regather(valid, idx),
            },
            Column::Date { vals, valid } => Column::Date {
                vals: Arc::new(idx.iter().map(|&i| vals[i as usize]).collect()),
                valid: regather(valid, idx),
            },
            Column::Double { vals, valid } => Column::Double {
                vals: Arc::new(idx.iter().map(|&i| vals[i as usize]).collect()),
                valid: regather(valid, idx),
            },
            Column::Str { codes, dict, valid } => Column::Str {
                codes: Arc::new(idx.iter().map(|&i| codes[i as usize]).collect()),
                dict: dict.clone(),
                valid: regather(valid, idx),
            },
            Column::Mixed { vals } => Column::Mixed {
                vals: Arc::new(idx.iter().map(|&i| vals[i as usize].clone()).collect()),
            },
        }
    }
}

#[derive(Debug, Clone)]
enum Repr {
    Rows(Vec<Tuple>),
    Cols { cols: Arc<Vec<Column>>, offset: usize, len: usize },
}

/// A batch of tuples sharing one schema, in row or columnar layout.
#[derive(Debug, Clone)]
pub struct Batch {
    schema: Arc<Schema>,
    repr: Repr,
    /// Wire/memory size estimate, computed once at construction.
    bytes: usize,
}

impl Batch {
    /// Wrap `rows` (all conforming to `schema`) as a row-layout batch.
    pub fn new(schema: Arc<Schema>, rows: Vec<Tuple>) -> Self {
        let bytes = rows.iter().map(Tuple::byte_size).sum();
        Batch { schema, repr: Repr::Rows(rows), bytes }
    }

    /// Wrap typed columns (all the same length) as a columnar batch.
    pub fn from_columns(schema: Arc<Schema>, cols: Vec<Column>) -> Self {
        let len = cols.first().map(Column::len).unwrap_or(0);
        debug_assert!(cols.iter().all(|c| c.len() == len));
        let bytes = cols.iter().map(|c| c.range_bytes(0, len)).sum();
        Batch { schema, repr: Repr::Cols { cols: Arc::new(cols), offset: 0, len }, bytes }
    }

    /// The schema shared by every row of the batch.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    pub fn is_columnar(&self) -> bool {
        matches!(self.repr, Repr::Cols { .. })
    }

    /// The rows of the batch when in row layout (scans, wire transfers).
    /// Columnar batches return `None`; use [`Batch::tuple_at`] or
    /// [`Batch::into_rows`] to materialize.
    pub fn as_rows(&self) -> Option<&[Tuple]> {
        match &self.repr {
            Repr::Rows(rows) => Some(rows),
            Repr::Cols { .. } => None,
        }
    }

    /// The columns, base offset and length when in columnar layout.
    /// Row indices passed to [`Column`] accessors are absolute, i.e.
    /// `offset..offset + len`.
    pub fn columns(&self) -> Option<(&[Column], usize, usize)> {
        match &self.repr {
            Repr::Cols { cols, offset, len } => Some((cols, *offset, *len)),
            Repr::Rows(_) => None,
        }
    }

    /// Convert to columnar layout (no-op if already columnar). Values are
    /// moved out of the owned tuples, so strings are not copied (beyond
    /// one dictionary entry per distinct string).
    pub fn columnarize(self) -> Self {
        match self.repr {
            Repr::Cols { .. } => self,
            Repr::Rows(rows) => {
                let width = self.schema.len();
                let mut per_col: Vec<Vec<Value>> =
                    (0..width).map(|_| Vec::with_capacity(rows.len())).collect();
                for t in rows {
                    for (c, v) in t.0.into_iter().enumerate().take(width) {
                        per_col[c].push(v);
                    }
                }
                let cols = per_col.into_iter().map(Column::from_values).collect();
                Batch::from_columns(self.schema, cols)
            }
        }
    }

    /// Concatenate batches into one columnar batch. Contiguous slices of a
    /// shared column set (as produced by [`Batch::slice`]) are reassembled
    /// zero-copy.
    pub fn concat(schema: Arc<Schema>, batches: Vec<Batch>) -> Batch {
        if batches.is_empty() {
            return Batch::new(schema, Vec::new()).columnarize();
        }
        if batches.len() == 1 {
            return batches.into_iter().next().unwrap().columnarize();
        }
        // Zero-copy path: contiguous slices over one shared column set.
        let contiguous = {
            let mut ok = true;
            let mut expect: Option<(&Arc<Vec<Column>>, usize)> = None;
            for b in &batches {
                match (&b.repr, expect) {
                    (Repr::Cols { cols, offset, len }, None) => expect = Some((cols, offset + len)),
                    (Repr::Cols { cols, offset, len }, Some((base, at)))
                        if Arc::ptr_eq(cols, base) && *offset == at =>
                    {
                        expect = Some((base, offset + len));
                    }
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            ok
        };
        if contiguous {
            let (first_off, mut total) = match &batches[0].repr {
                Repr::Cols { offset, len, .. } => (*offset, *len),
                _ => unreachable!(),
            };
            for b in &batches[1..] {
                if let Repr::Cols { len, .. } = &b.repr {
                    total += len;
                }
            }
            let bytes = batches.iter().map(|b| b.bytes).sum();
            let cols = match batches.into_iter().next().unwrap().repr {
                Repr::Cols { cols, .. } => cols,
                _ => unreachable!(),
            };
            return Batch {
                schema,
                repr: Repr::Cols { cols, offset: first_off, len: total },
                bytes,
            };
        }
        // General path: rebuild per-column value vectors (moving values out
        // of row batches, materializing columnar ones).
        let width = schema.len();
        let rows_total: usize = batches.iter().map(Batch::len).sum();
        let mut per_col: Vec<Vec<Value>> =
            (0..width).map(|_| Vec::with_capacity(rows_total)).collect();
        for b in batches {
            match b.repr {
                Repr::Rows(rows) => {
                    for t in rows {
                        for (c, v) in t.0.into_iter().enumerate().take(width) {
                            per_col[c].push(v);
                        }
                    }
                }
                Repr::Cols { cols, offset, len } => {
                    for (c, col) in cols.iter().enumerate().take(width) {
                        for i in offset..offset + len {
                            per_col[c].push(col.value_at(i));
                        }
                    }
                }
            }
        }
        let cols = per_col.into_iter().map(Column::from_values).collect();
        Batch::from_columns(schema, cols)
    }

    /// Materialize row `i` (batch-relative) as a `Tuple`.
    pub fn tuple_at(&self, i: usize) -> Tuple {
        match &self.repr {
            Repr::Rows(rows) => rows[i].clone(),
            Repr::Cols { cols, offset, .. } => {
                Tuple(cols.iter().map(|c| c.value_at(offset + i)).collect())
            }
        }
    }

    /// Materialize the value at (`row`, `col`), batch-relative.
    pub fn value_at(&self, row: usize, col: usize) -> Value {
        match &self.repr {
            Repr::Rows(rows) => rows[row].0[col].clone(),
            Repr::Cols { cols, offset, .. } => cols[col].value_at(offset + row),
        }
    }

    /// Flat `i64` view of an `Int`/`Date` column with no nulls in scope —
    /// the hot-path accessor for sort keys, group boundaries and interval
    /// endpoints. `None` when the batch is row-layout, the column is not
    /// integer-typed, or it contains nulls.
    pub fn int_col(&self, col: usize) -> Option<&[i64]> {
        match &self.repr {
            Repr::Rows(_) => None,
            Repr::Cols { cols, offset, len } => match &cols[col] {
                Column::Int { vals, valid: None } | Column::Date { vals, valid: None } => {
                    Some(&vals[*offset..offset + len])
                }
                _ => None,
            },
        }
    }

    /// Zero-copy sub-range `[from, from + n)` of a columnar batch (row
    /// batches copy).
    pub fn slice(&self, from: usize, n: usize) -> Batch {
        match &self.repr {
            Repr::Rows(rows) => Batch::new(self.schema.clone(), rows[from..from + n].to_vec()),
            Repr::Cols { cols, offset, len } => {
                debug_assert!(from + n <= *len);
                let bytes =
                    cols.iter().map(|c| c.range_bytes(offset + from, offset + from + n)).sum();
                Batch {
                    schema: self.schema.clone(),
                    repr: Repr::Cols { cols: cols.clone(), offset: offset + from, len: n },
                    bytes,
                }
            }
        }
    }

    /// Gather rows at batch-relative indices `idx` into a fresh batch.
    pub fn gather(&self, idx: &[u32]) -> Batch {
        match &self.repr {
            Repr::Rows(rows) => Batch::new(
                self.schema.clone(),
                idx.iter().map(|&i| rows[i as usize].clone()).collect(),
            ),
            Repr::Cols { cols, offset, .. } => {
                let abs: Vec<u32> = idx.iter().map(|&i| i + *offset as u32).collect();
                let cols = cols.iter().map(|c| c.gather(&abs)).collect();
                Batch::from_columns(self.schema.clone(), cols)
            }
        }
    }

    /// Keep only the named column indices (zero-copy for columnar batches).
    pub fn select_columns(&self, idx: &[usize], schema: Arc<Schema>) -> Option<Batch> {
        match &self.repr {
            Repr::Rows(_) => None,
            Repr::Cols { cols, offset, len } => {
                let picked: Vec<Column> = idx.iter().map(|&i| cols[i].clone()).collect();
                let bytes = picked.iter().map(|c| c.range_bytes(*offset, offset + len)).sum();
                Some(Batch {
                    schema,
                    repr: Repr::Cols { cols: Arc::new(picked), offset: *offset, len: *len },
                    bytes,
                })
            }
        }
    }

    /// Consume the batch, yielding its rows (materializing if columnar).
    pub fn into_rows(self) -> Vec<Tuple> {
        match self.repr {
            Repr::Rows(rows) => rows,
            Repr::Cols { cols, offset, len } => (0..len)
                .map(|i| Tuple(cols.iter().map(|c| c.value_at(offset + i)).collect()))
                .collect(),
        }
    }

    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Rows(rows) => rows.len(),
            Repr::Cols { len, .. } => *len,
        }
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total wire/memory size estimate of all rows, in bytes. Cached at
    /// construction — O(1) per call.
    pub fn byte_size(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attr;
    use crate::tup;
    use crate::value::Type;

    fn abc_schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Attr::new("A", Type::Int),
            Attr::new("B", Type::Str),
            Attr::new("C", Type::Double),
        ]))
    }

    #[test]
    fn batch_accessors() {
        let schema = Arc::new(Schema::new(vec![Attr::new("A", Type::Int)]));
        let b = Batch::new(schema.clone(), vec![tup![1], tup![2]]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.schema().len(), 1);
        assert_eq!(b.byte_size(), b.as_rows().unwrap().iter().map(Tuple::byte_size).sum::<usize>());
        assert_eq!(b.into_rows(), vec![tup![1], tup![2]]);
    }

    #[test]
    fn columnar_round_trip_is_exact() {
        let schema = abc_schema();
        let rows = vec![
            Tuple(vec![Value::Int(1), Value::Str("x".into()), Value::Double(1.5)]),
            Tuple(vec![Value::Null, Value::Str("x".into()), Value::Double(-0.0)]),
            Tuple(vec![Value::Int(3), Value::Null, Value::Double(f64::NAN)]),
        ];
        let b = Batch::new(schema, rows.clone()).columnarize();
        assert!(b.is_columnar());
        let back = b.clone().into_rows();
        assert_eq!(back.len(), rows.len());
        for (got, want) in back.iter().zip(&rows) {
            for (g, w) in got.0.iter().zip(&want.0) {
                // Bit-exact, variant-exact comparison (Value::eq is looser).
                assert_eq!(format!("{g:?}"), format!("{w:?}"));
            }
        }
        assert_eq!(b.byte_size(), rows.iter().map(Tuple::byte_size).sum::<usize>());
    }

    #[test]
    fn int_and_date_stay_distinct() {
        let schema = Arc::new(Schema::new(vec![Attr::new("D", Type::Date)]));
        let b = Batch::new(schema, vec![Tuple(vec![Value::Date(5)])]).columnarize();
        assert!(matches!(b.tuple_at(0).0[0], Value::Date(5)));
        // Mixed Int/Date column falls back to exact values.
        let schema = Arc::new(Schema::new(vec![Attr::new("D", Type::Int)]));
        let b = Batch::new(schema, vec![Tuple(vec![Value::Int(5)]), Tuple(vec![Value::Date(5)])])
            .columnarize();
        assert!(matches!(b.tuple_at(0).0[0], Value::Int(5)));
        assert!(matches!(b.tuple_at(1).0[0], Value::Date(5)));
        assert!(b.int_col(0).is_none());
    }

    #[test]
    fn slice_and_concat_zero_copy() {
        let schema = abc_schema();
        let rows: Vec<Tuple> = (0..100)
            .map(|i| {
                Tuple(vec![
                    Value::Int(i),
                    Value::Str(format!("s{}", i % 3)),
                    Value::Double(i as f64),
                ])
            })
            .collect();
        let b = Batch::new(schema.clone(), rows.clone()).columnarize();
        let s1 = b.slice(0, 40);
        let s2 = b.slice(40, 60);
        assert_eq!(s1.len(), 40);
        assert_eq!(s1.byte_size() + s2.byte_size(), b.byte_size());
        let whole = Batch::concat(schema, vec![s1, s2]);
        assert_eq!(whole.len(), 100);
        assert_eq!(whole.into_rows(), rows);
    }

    #[test]
    fn concat_mixed_reprs() {
        let schema = abc_schema();
        let mk = |lo: i64, hi: i64| -> Vec<Tuple> {
            (lo..hi)
                .map(|i| Tuple(vec![Value::Int(i), Value::Str("k".into()), Value::Double(0.5)]))
                .collect()
        };
        let b1 = Batch::new(schema.clone(), mk(0, 10));
        let b2 = Batch::new(schema.clone(), mk(10, 20)).columnarize();
        let out = Batch::concat(schema.clone(), vec![b1, b2]);
        assert_eq!(out.len(), 20);
        assert_eq!(out.into_rows(), mk(0, 20));
    }

    #[test]
    fn gather_and_int_col() {
        let schema =
            Arc::new(Schema::new(vec![Attr::new("T1", Type::Int), Attr::new("T2", Type::Int)]));
        let rows: Vec<Tuple> =
            (0..10).map(|i| Tuple(vec![Value::Int(i), Value::Int(i + 10)])).collect();
        let b = Batch::new(schema, rows).columnarize();
        assert_eq!(b.int_col(0).unwrap(), (0..10).collect::<Vec<i64>>().as_slice());
        let g = b.gather(&[3, 1, 4]);
        assert_eq!(g.int_col(0).unwrap(), &[3, 1, 4]);
        assert_eq!(g.int_col(1).unwrap(), &[13, 11, 14]);
        assert_eq!(g.byte_size(), 3 * 16);
    }

    #[test]
    fn nulls_round_trip_through_gather_and_slice() {
        let schema = Arc::new(Schema::new(vec![Attr::new("A", Type::Int)]));
        let rows =
            vec![Tuple(vec![Value::Int(1)]), Tuple(vec![Value::Null]), Tuple(vec![Value::Int(3)])];
        let b = Batch::new(schema, rows.clone()).columnarize();
        assert!(b.int_col(0).is_none()); // nulls present
        assert_eq!(b.slice(1, 2).into_rows(), rows[1..3].to_vec());
        assert_eq!(
            b.gather(&[2, 1, 0]).into_rows(),
            vec![rows[2].clone(), rows[1].clone(), rows[0].clone()]
        );
    }
}
