//! Batches: the unit of vectorized (batch-at-a-time) execution.
//!
//! A [`Batch`] is a run of consecutive tuples from one stream, sharing a
//! single [`Schema`] handle. Operators that process batches amortize
//! per-tuple costs — virtual dispatch, trace accounting, wire
//! bookkeeping — over [`DEFAULT_BATCH_ROWS`] tuples at a time.

use crate::schema::Schema;
use crate::tuple::Tuple;
use std::sync::Arc;

/// The default number of rows per batch. Large enough to amortize
/// per-batch overhead, small enough to keep a batch cache-resident.
pub const DEFAULT_BATCH_ROWS: usize = 1024;

/// A batch of tuples sharing one schema.
#[derive(Debug, Clone)]
pub struct Batch {
    schema: Arc<Schema>,
    rows: Vec<Tuple>,
}

impl Batch {
    /// Wrap `rows` (all conforming to `schema`) as a batch.
    pub fn new(schema: Arc<Schema>, rows: Vec<Tuple>) -> Self {
        Batch { schema, rows }
    }

    /// The schema shared by every row of the batch.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The rows of the batch, in stream order.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Consume the batch, yielding its rows.
    pub fn into_rows(self) -> Vec<Tuple> {
        self.rows
    }

    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total wire/memory size estimate of all rows, in bytes.
    pub fn byte_size(&self) -> usize {
        self.rows.iter().map(Tuple::byte_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attr;
    use crate::tup;
    use crate::value::Type;

    #[test]
    fn batch_accessors() {
        let schema = Arc::new(Schema::new(vec![Attr::new("A", Type::Int)]));
        let b = Batch::new(schema.clone(), vec![tup![1], tup![2]]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.schema().len(), 1);
        assert_eq!(b.byte_size(), b.rows().iter().map(Tuple::byte_size).sum::<usize>());
        assert_eq!(b.into_rows(), vec![tup![1], tup![2]]);
    }
}
