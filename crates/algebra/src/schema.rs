//! Relation schemas.

use crate::error::{AlgebraError, Result};
use crate::value::Type;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A named, typed attribute. Names may be qualified (`"P.PosID"`); lookup
/// resolves both qualified and bare forms.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attr {
    pub name: String,
    pub ty: Type,
}

impl Attr {
    pub fn new(name: impl Into<String>, ty: Type) -> Self {
        Attr { name: name.into(), ty }
    }

    /// The attribute name without any `alias.` qualifier.
    pub fn bare_name(&self) -> &str {
        self.name.rsplit('.').next().unwrap_or(&self.name)
    }
}

/// The schema of a relation: an attribute list, plus (for temporal
/// relations) which attribute pair forms the valid-time period `[T1, T2)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attrs: Vec<Attr>,
    /// Indices of the `(T1, T2)` period attributes, if temporal.
    period: Option<(usize, usize)>,
}

impl Schema {
    pub fn new(attrs: Vec<Attr>) -> Self {
        Schema { attrs, period: None }
    }

    /// Build a temporal schema; `t1`/`t2` are resolved by name and must
    /// exist.
    pub fn temporal(attrs: Vec<Attr>, t1: &str, t2: &str) -> Result<Self> {
        let mut s = Schema { attrs, period: None };
        let i1 = s.index_of(t1)?;
        let i2 = s.index_of(t2)?;
        s.period = Some((i1, i2));
        Ok(s)
    }

    /// Convention used across TANGO: a schema with attributes named `T1`
    /// and `T2` is temporal.
    pub fn with_inferred_period(attrs: Vec<Attr>) -> Self {
        let mut s = Schema { attrs, period: None };
        let i1 = s.index_of("T1").ok();
        let i2 = s.index_of("T2").ok();
        if let (Some(i1), Some(i2)) = (i1, i2) {
            s.period = Some((i1, i2));
        }
        s
    }

    pub fn attrs(&self) -> &[Attr] {
        &self.attrs
    }

    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    pub fn period(&self) -> Option<(usize, usize)> {
        self.period
    }

    pub fn is_temporal(&self) -> bool {
        self.period.is_some()
    }

    pub fn attr(&self, i: usize) -> &Attr {
        &self.attrs[i]
    }

    /// Resolve a (possibly qualified) column name, case-insensitively.
    ///
    /// Resolution order: exact match on the full name, then match on the
    /// bare (unqualified) part. A bare name matching several qualified
    /// attributes is ambiguous.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        let eq = |a: &str, b: &str| a.eq_ignore_ascii_case(b);
        if let Some(i) = self.attrs.iter().position(|a| eq(&a.name, name)) {
            return Ok(i);
        }
        let bare = name.rsplit('.').next().unwrap_or(name);
        let mut hits = self.attrs.iter().enumerate().filter(|(_, a)| eq(a.bare_name(), bare));
        match (hits.next(), hits.next()) {
            (Some((i, _)), None) => Ok(i),
            (Some(_), Some(_)) => Err(AlgebraError::AmbiguousColumn(name.to_string())),
            _ => Err(AlgebraError::UnknownColumn(name.to_string())),
        }
    }

    pub fn has(&self, name: &str) -> bool {
        self.index_of(name).is_ok()
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.attrs.iter().map(|a| a.name.as_str())
    }

    /// Rough per-tuple width estimate (bytes) from attribute types; strings
    /// count a default payload of 16 bytes. Used when real statistics are
    /// unavailable.
    pub fn est_tuple_bytes(&self) -> usize {
        self.attrs
            .iter()
            .map(|a| match a.ty {
                Type::Int => 8,
                Type::Double => 8,
                Type::Date => 4,
                Type::Str => 18,
            })
            .sum()
    }

    /// Return a copy where every attribute is qualified with `alias.`
    /// (replacing any existing qualifier). The period marker is preserved.
    pub fn qualified(&self, alias: &str) -> Schema {
        Schema {
            attrs: self
                .attrs
                .iter()
                .map(|a| Attr::new(format!("{alias}.{}", a.bare_name()), a.ty))
                .collect(),
            period: self.period,
        }
    }

    /// Return a copy with all qualifiers stripped.
    pub fn unqualified(&self) -> Schema {
        Schema {
            attrs: self.attrs.iter().map(|a| Attr::new(a.bare_name().to_string(), a.ty)).collect(),
            period: self.period,
        }
    }

    pub fn shared(self) -> Arc<Schema> {
        Arc::new(self)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", a.name, a.ty)?;
            if let Some((t1, t2)) = self.period {
                if i == t1 {
                    write!(f, " /*T1*/")?;
                } else if i == t2 {
                    write!(f, " /*T2*/")?;
                }
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos_schema() -> Schema {
        Schema::with_inferred_period(vec![
            Attr::new("PosID", Type::Int),
            Attr::new("EmpName", Type::Str),
            Attr::new("T1", Type::Date),
            Attr::new("T2", Type::Date),
        ])
    }

    #[test]
    fn inferred_period() {
        let s = pos_schema();
        assert_eq!(s.period(), Some((2, 3)));
        assert!(s.is_temporal());
    }

    #[test]
    fn lookup_case_insensitive_and_qualified() {
        let s = pos_schema().qualified("P");
        assert_eq!(s.index_of("P.PosID").unwrap(), 0);
        assert_eq!(s.index_of("posid").unwrap(), 0);
        assert_eq!(s.index_of("p.empname").unwrap(), 1);
        assert!(s.index_of("nope").is_err());
    }

    #[test]
    fn ambiguity_detected() {
        let mut attrs = pos_schema().qualified("A").attrs().to_vec();
        attrs.extend(pos_schema().qualified("B").attrs().to_vec());
        let s = Schema::new(attrs);
        assert!(matches!(s.index_of("PosID"), Err(AlgebraError::AmbiguousColumn(_))));
        assert_eq!(s.index_of("A.PosID").unwrap(), 0);
        assert_eq!(s.index_of("B.PosID").unwrap(), 4);
    }
}
