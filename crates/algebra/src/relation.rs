//! Relations with list semantics.

use crate::order::SortSpec;
use crate::schema::Schema;
use crate::tuple::Tuple;
use std::fmt;
use std::sync::Arc;

/// A relation: a *list* of tuples over a schema. Duplicates and order are
/// significant, matching the paper's foundation where expressions may be
/// equivalent as lists or merely as multisets.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Arc<Schema>,
    tuples: Vec<Tuple>,
}

impl Relation {
    pub fn new(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Self {
        Relation { schema, tuples }
    }

    pub fn empty(schema: Arc<Schema>) -> Self {
        Relation { schema, tuples: Vec::new() }
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    pub fn push(&mut self, t: Tuple) {
        debug_assert_eq!(t.len(), self.schema.len());
        self.tuples.push(t);
    }

    /// Total payload size in bytes — the `size(r)` statistic of the cost
    /// formulas is `cardinality(r) * avg_tuple_size`, which equals this.
    pub fn byte_size(&self) -> usize {
        self.tuples.iter().map(Tuple::byte_size).sum()
    }

    pub fn avg_tuple_bytes(&self) -> f64 {
        if self.tuples.is_empty() {
            self.schema.est_tuple_bytes() as f64
        } else {
            self.byte_size() as f64 / self.tuples.len() as f64
        }
    }

    /// Sort in place by the given specification (stable).
    pub fn sort_by(&mut self, spec: &SortSpec) {
        crate::order::sort_tuples(&mut self.tuples, spec, &self.schema);
    }

    /// Is the relation sorted according to `spec`?
    pub fn is_sorted_by(&self, spec: &SortSpec) -> bool {
        let cmp = spec.comparator(&self.schema);
        self.tuples.windows(2).all(|w| cmp(&w[0], &w[1]) != std::cmp::Ordering::Greater)
    }

    /// List equivalence: same tuples in the same order (the paper's
    /// strongest equality, `≡_L`).
    pub fn list_eq(&self, other: &Relation) -> bool {
        self.tuples == other.tuples
    }

    /// Multiset equivalence: same tuples with the same multiplicities,
    /// order ignored (`≡_M`).
    pub fn multiset_eq(&self, other: &Relation) -> bool {
        if self.tuples.len() != other.tuples.len() {
            return false;
        }
        let canon = |r: &Relation| {
            let mut ts = r.tuples.clone();
            ts.sort_by(|a, b| {
                a.values()
                    .iter()
                    .zip(b.values())
                    .map(|(x, y)| x.total_cmp(y))
                    .find(|o| *o != std::cmp::Ordering::Equal)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            ts
        };
        canon(self) == canon(other)
    }
}

impl fmt::Display for Relation {
    /// ASCII table rendering (handy in examples and EXPLAIN output).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self.schema.names().map(str::to_string).collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rows: Vec<Vec<String>> = self
            .tuples
            .iter()
            .map(|t| t.values().iter().map(ToString::to_string).collect())
            .collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>| {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        line(f)?;
        write!(f, "|")?;
        for (h, w) in headers.iter().zip(&widths) {
            write!(f, " {h:w$} |")?;
        }
        writeln!(f)?;
        line(f)?;
        for row in &rows {
            write!(f, "|")?;
            for (c, w) in row.iter().zip(&widths) {
                write!(f, " {c:w$} |")?;
            }
            writeln!(f)?;
        }
        line(f)?;
        write!(f, "{} tuple(s)", self.tuples.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attr;
    use crate::tup;
    use crate::value::Type;

    fn rel(tuples: Vec<Tuple>) -> Relation {
        let s = Schema::new(vec![Attr::new("A", Type::Int), Attr::new("B", Type::Str)]).shared();
        Relation::new(s, tuples)
    }

    #[test]
    fn list_vs_multiset_equivalence() {
        let r1 = rel(vec![tup![1, "x"], tup![2, "y"]]);
        let r2 = rel(vec![tup![2, "y"], tup![1, "x"]]);
        assert!(!r1.list_eq(&r2));
        assert!(r1.multiset_eq(&r2));
        // duplicates matter for multisets
        let r3 = rel(vec![tup![1, "x"], tup![1, "x"]]);
        let r4 = rel(vec![tup![1, "x"]]);
        assert!(!r3.multiset_eq(&r4));
    }

    #[test]
    fn sorting() {
        let mut r = rel(vec![tup![3, "c"], tup![1, "a"], tup![2, "b"]]);
        let spec = SortSpec::by(["A"]);
        assert!(!r.is_sorted_by(&spec));
        r.sort_by(&spec);
        assert!(r.is_sorted_by(&spec));
        assert_eq!(r.tuples()[0], tup![1, "a"]);
    }
}
