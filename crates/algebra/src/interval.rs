//! Closed-open time periods `[start, end)` at day granularity.

use crate::date::Day;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A valid-time period with closed-open semantics: a tuple with period
/// `[t1, t2)` holds at every day `t` with `t1 <= t < t2`. The paper's
/// POSITION example ("Tom occupied position 1 from day 2 through day 19,
/// with T1=2, T2=20") follows exactly this convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Period {
    pub start: Day,
    pub end: Day,
}

impl Period {
    pub fn new(start: Day, end: Day) -> Self {
        Period { start, end }
    }

    /// A period is valid when it is non-empty.
    pub fn is_valid(&self) -> bool {
        self.start < self.end
    }

    pub fn duration(&self) -> i64 {
        (self.end as i64 - self.start as i64).max(0)
    }

    /// The `Overlaps` predicate of Section 3.3:
    /// `T1 < other.end AND T2 > other.start`.
    pub fn overlaps(&self, other: &Period) -> bool {
        self.start < other.end && self.end > other.start
    }

    /// Timeslice membership: does the period contain day `t`?
    /// (`T1 <= t AND T2 > t`.)
    pub fn contains(&self, t: Day) -> bool {
        self.start <= t && self.end > t
    }

    /// Intersection used by the temporal join: `[GREATEST(T1, T1'),
    /// LEAST(T2, T2'))`; `None` when empty.
    pub fn intersect(&self, other: &Period) -> Option<Period> {
        let p = Period::new(self.start.max(other.start), self.end.min(other.end));
        p.is_valid().then_some(p)
    }

    /// Are the two periods adjacent or overlapping (coalescible)?
    pub fn meets_or_overlaps(&self, other: &Period) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Smallest period covering both (only meaningful when
    /// [`Self::meets_or_overlaps`]).
    pub fn merge(&self, other: &Period) -> Period {
        Period::new(self.start.min(other.start), self.end.max(other.end))
    }

    /// Set difference `self - other`, yielding 0, 1 or 2 fragments.
    pub fn subtract(&self, other: &Period) -> Vec<Period> {
        let mut out = Vec::new();
        let left = Period::new(self.start, self.end.min(other.start));
        let right = Period::new(self.start.max(other.end), self.end);
        if left.is_valid() {
            out.push(left);
        }
        if right.is_valid() {
            out.push(right);
        }
        out
    }
}

impl fmt::Display for Period {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn overlap_basics() {
        let a = Period::new(2, 20);
        let b = Period::new(5, 25);
        assert!(a.overlaps(&b));
        assert_eq!(a.intersect(&b), Some(Period::new(5, 20)));
        assert!(!Period::new(0, 5).overlaps(&Period::new(5, 10))); // closed-open: touching != overlap
        assert!(Period::new(0, 5).meets_or_overlaps(&Period::new(5, 10)));
    }

    #[test]
    fn contains_is_closed_open() {
        let p = Period::new(2, 20);
        assert!(p.contains(2));
        assert!(p.contains(19));
        assert!(!p.contains(20));
        assert!(!p.contains(1));
    }

    #[test]
    fn subtract_cases() {
        let p = Period::new(0, 10);
        assert_eq!(p.subtract(&Period::new(3, 6)), vec![Period::new(0, 3), Period::new(6, 10)]);
        assert_eq!(p.subtract(&Period::new(-5, 5)), vec![Period::new(5, 10)]);
        assert_eq!(p.subtract(&Period::new(-5, 15)), vec![]);
        assert_eq!(p.subtract(&Period::new(20, 30)), vec![Period::new(0, 10)]);
    }

    proptest! {
        #[test]
        fn overlap_symmetric(a0 in -100i32..100, a1 in -100i32..100, b0 in -100i32..100, b1 in -100i32..100) {
            let a = Period::new(a0.min(a1), a0.max(a1) + 1);
            let b = Period::new(b0.min(b1), b0.max(b1) + 1);
            prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
            prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        }

        #[test]
        fn intersect_iff_overlaps(a0 in -100i32..100, al in 1i32..50, b0 in -100i32..100, bl in 1i32..50) {
            let a = Period::new(a0, a0 + al);
            let b = Period::new(b0, b0 + bl);
            prop_assert_eq!(a.overlaps(&b), a.intersect(&b).is_some());
        }

        #[test]
        fn subtract_preserves_days(a0 in -50i32..50, al in 1i32..30, b0 in -50i32..50, bl in 1i32..30) {
            let a = Period::new(a0, a0 + al);
            let b = Period::new(b0, b0 + bl);
            let kept: i64 = a.subtract(&b).iter().map(|p| p.duration()).sum();
            let cut = a.intersect(&b).map_or(0, |p| p.duration());
            prop_assert_eq!(kept + cut, a.duration());
        }
    }
}
