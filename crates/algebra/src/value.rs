//! Scalar values and their types.

use crate::date::{format_date, Day};
use crate::error::{AlgebraError, Result};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Attribute types understood by TANGO and the mini-DBMS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Type {
    Int,
    Double,
    Str,
    Date,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "INT"),
            Type::Double => write!(f, "DOUBLE"),
            Type::Str => write!(f, "VARCHAR"),
            Type::Date => write!(f, "DATE"),
        }
    }
}

/// A scalar value. `Null` follows SQL three-valued-logic conventions in
/// comparisons (see [`Value::sql_cmp`]); for sorting and grouping a total
/// order is provided ([`Value::total_cmp`]) in which `Null` sorts first.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum Value {
    Null,
    Int(i64),
    Double(f64),
    Str(String),
    Date(Day),
}

impl Value {
    /// The type of this value, if not null.
    pub fn ty(&self) -> Option<Type> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(Type::Int),
            Value::Double(_) => Some(Type::Double),
            Value::Str(_) => Some(Type::Str),
            Value::Date(_) => Some(Type::Date),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view used for mixed comparisons and arithmetic. Dates are
    /// numeric at day granularity, which lets temporal predicates compare
    /// date columns against integer day literals (the paper's examples use
    /// both representations interchangeably).
    fn as_num(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            Value::Date(d) => Some(*d as f64),
            _ => None,
        }
    }

    /// Integer view (exact) when the value is integer-like.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Date(d) => Some(*d as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        self.as_num()
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_day(&self) -> Option<Day> {
        match self {
            Value::Date(d) => Some(*d),
            Value::Int(i) => i32::try_from(*i).ok(),
            _ => None,
        }
    }

    /// SQL comparison: returns `None` if either side is `NULL` or the types
    /// are incomparable (strings never compare with numbers).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => {
                // Prefer exact integer comparison when both sides are
                // integer-like; fall back to f64.
                if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
                    Some(x.cmp(&y))
                } else {
                    let x = a.as_num()?;
                    let y = b.as_num()?;
                    Some(x.total_cmp(&y))
                }
            }
        }
    }

    /// Total order used for sorting, grouping and multiset comparison:
    /// `NULL` first, then numerics/dates by numeric value, then strings.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Double(_) | Value::Date(_) => 1,
                Value::Str(_) => 2,
            }
        }
        match rank(self).cmp(&rank(other)) {
            Ordering::Equal => match (self, other) {
                (Value::Null, Value::Null) => Ordering::Equal,
                (Value::Str(a), Value::Str(b)) => a.cmp(b),
                (a, b) => {
                    if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
                        x.cmp(&y)
                    } else {
                        a.as_num().unwrap_or(f64::NAN).total_cmp(&b.as_num().unwrap_or(f64::NAN))
                    }
                }
            },
            o => o,
        }
    }

    /// SQL equality (`None` when either side is null).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Addition with numeric coercion; date + int = date.
    pub fn add(&self, other: &Value) -> Result<Value> {
        self.arith(other, "+", |a, b| a + b)
    }

    pub fn sub(&self, other: &Value) -> Result<Value> {
        self.arith(other, "-", |a, b| a - b)
    }

    pub fn mul(&self, other: &Value) -> Result<Value> {
        self.arith(other, "*", |a, b| a * b)
    }

    pub fn div(&self, other: &Value) -> Result<Value> {
        if matches!(other.as_num(), Some(x) if x == 0.0) {
            return Ok(Value::Null); // SQL-style: division by zero yields NULL here
        }
        self.arith(other, "/", |a, b| a / b)
    }

    fn arith(&self, other: &Value, op: &str, f: impl Fn(f64, f64) -> f64) -> Result<Value> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Date(d), b) if op == "+" || op == "-" => {
                let delta = b
                    .as_int()
                    .ok_or_else(|| AlgebraError::TypeMismatch(format!("DATE {op} {other}")))?;
                let delta = if op == "-" { -delta } else { delta };
                Ok(Value::Date(*d + delta as Day))
            }
            (a, b) => {
                if let (Value::Int(_), Value::Int(_)) = (a, b) {
                    let (x, y) = (a.as_int().unwrap(), b.as_int().unwrap());
                    let r = match op {
                        "+" => x.wrapping_add(y),
                        "-" => x.wrapping_sub(y),
                        "*" => x.wrapping_mul(y),
                        "/" => x / y,
                        _ => unreachable!(),
                    };
                    return Ok(Value::Int(r));
                }
                let x = a
                    .as_num()
                    .ok_or_else(|| AlgebraError::TypeMismatch(format!("{a} {op} {b}")))?;
                let y = b
                    .as_num()
                    .ok_or_else(|| AlgebraError::TypeMismatch(format!("{a} {op} {b}")))?;
                Ok(Value::Double(f(x, y)))
            }
        }
    }

    /// Approximate in-memory/wire width in bytes; used by `size(r)` in the
    /// cost formulas (cardinality × average tuple size).
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Double(_) => 8,
            Value::Date(_) => 4,
            Value::Str(s) => 2 + s.len(),
        }
    }

    /// A hashable, totally ordered key view of this value (floats keyed by
    /// their `total_cmp` bit pattern). Used for hash joins and grouping.
    pub fn key(&self) -> Key {
        match self {
            Value::Null => Key::Null,
            Value::Int(i) => Key::Num(*i),
            Value::Double(d) => {
                if d.fract() == 0.0 && *d >= i64::MIN as f64 && *d <= i64::MAX as f64 {
                    // Integral doubles key like ints so mixed-type equi
                    // joins agree with sql_cmp.
                    Key::Num(*d as i64)
                } else {
                    // Map to a sortable integer key (total_cmp bit trick).
                    let bits = d.to_bits() as i64;
                    let norm = if bits < 0 { !bits } else { bits | i64::MIN };
                    Key::Float(norm)
                }
            }
            Value::Date(d) => Key::Num(*d as i64),
            Value::Str(s) => Key::Str(s.clone()),
        }
    }
}

/// Hashable key form of [`Value`]. Integer-like values (ints, dates and
/// integral doubles) share the `Num` variant so `Int(5)` and `Date(5)`
/// join/group together, mirroring the numeric comparison semantics.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Key {
    Null,
    Num(i64),
    Float(i64),
    Str(String),
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.key().hash(state)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{}", format_date(*d)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(Value::Int(3).sql_cmp(&Value::Double(3.5)), Some(Ordering::Less));
        assert_eq!(Value::Date(10).sql_cmp(&Value::Int(10)), Some(Ordering::Equal));
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_groups_types() {
        let mut vs = vec![
            Value::Str("b".into()),
            Value::Int(2),
            Value::Null,
            Value::Double(1.5),
            Value::Str("a".into()),
        ];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Double(1.5),
                Value::Int(2),
                Value::Str("a".into()),
                Value::Str("b".into()),
            ]
        );
    }

    #[test]
    fn date_arithmetic() {
        assert_eq!(Value::Date(100).add(&Value::Int(1)).unwrap(), Value::Date(101));
        assert_eq!(Value::Date(100).sub(&Value::Int(7)).unwrap(), Value::Date(93));
    }

    #[test]
    fn division_by_zero_is_null() {
        assert_eq!(Value::Int(1).div(&Value::Int(0)).unwrap(), Value::Null);
    }

    #[test]
    fn keys_agree_with_equality() {
        assert_eq!(Value::Int(5).key(), Value::Date(5).key());
        assert_ne!(Value::Int(5).key(), Value::Int(6).key());
        assert_eq!(Value::Str("x".into()).key(), Value::Str("x".into()).key());
    }
}
