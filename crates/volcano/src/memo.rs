//! The memo: equivalence classes (groups) of class elements (expressions).

use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

/// An equivalence class identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub usize);

/// A class-element identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub usize);

/// A memoized expression: an operator over child groups.
#[derive(Debug, Clone)]
pub struct MExpr<O> {
    pub op: O,
    pub children: Vec<GroupId>,
    pub group: GroupId,
}

/// What an instantiation of the optimizer generator must provide.
pub trait Semantics: Sized {
    /// Logical operator payload.
    type Op: Clone + Eq + Hash + Debug;
    /// Logical properties of a group (schema, statistics, ...).
    type Props: Clone;
    /// Required physical properties (ordering, site, ...).
    type PhysProps: Clone + Eq + Hash + Debug;
    /// Physical algorithm instances appearing in final plans.
    type Algo: Clone + Debug;

    /// Derive logical properties of an operator from its children's.
    fn derive_props(&self, op: &Self::Op, children: &[&Self::Props]) -> Self::Props;

    /// Candidate physical implementations of `op` that *deliver*
    /// `required`. Implementations that cannot deliver the requirement
    /// must not be returned.
    fn implementations(
        &self,
        op: &Self::Op,
        child_props: &[&Self::Props],
        props: &Self::Props,
        required: &Self::PhysProps,
    ) -> Vec<crate::search::Implementation<Self>>;

    /// Property enforcers applicable when `required` cannot (or should not
    /// only) be delivered natively: each wraps a plan optimized for the
    /// enforcer's weaker `inner_required`.
    fn enforcers(
        &self,
        props: &Self::Props,
        required: &Self::PhysProps,
    ) -> Vec<crate::search::Enforcer<Self>>;
}

/// The paper distinguishes transformations that preserve list equality
/// (`≡_L` / `→_L`) from those that only preserve multiset equality
/// (`≡_M` / `→_M`). The engine records the kind for reporting and
/// verification; correctness of ordering is guaranteed separately by the
/// physical-property mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleKind {
    List,
    Multiset,
}

/// A transformation rule. `apply` may inspect the whole memo (needed for
/// multi-level patterns like T7: `T^M(T^D(r)) → r`) and returns zero or
/// more equivalent expression trees for the group of `expr`.
pub trait Rule<S: Semantics> {
    fn name(&self) -> &'static str;
    fn kind(&self) -> RuleKind;
    fn apply(&self, memo: &Memo<S>, expr: ExprId) -> Vec<NewExpr<S::Op>>;
}

/// A tree of new operators over existing groups, produced by a rule.
#[derive(Debug, Clone)]
pub enum NewExpr<O> {
    Op(O, Vec<NewExpr<O>>),
    Group(GroupId),
}

struct Group<S: Semantics> {
    exprs: Vec<ExprId>,
    props: S::Props,
    /// Per-group dedup of (op, children).
    dedup: HashMap<(S::Op, Vec<GroupId>), ExprId>,
}

/// The memo structure.
pub struct Memo<S: Semantics> {
    sem: S,
    groups: Vec<Group<S>>,
    exprs: Vec<MExpr<S::Op>>,
    /// Global (op, children) -> group containing it, for subtree sharing.
    global: HashMap<(S::Op, Vec<GroupId>), GroupId>,
    rule_fires: Vec<(&'static str, usize)>,
    /// Hard cap on expression count (runaway-rule backstop).
    pub max_exprs: usize,
}

impl<S: Semantics> Memo<S> {
    pub fn new(sem: S) -> Self {
        Memo {
            sem,
            groups: Vec::new(),
            exprs: Vec::new(),
            global: HashMap::new(),
            rule_fires: Vec::new(),
            max_exprs: 200_000,
        }
    }

    pub fn semantics(&self) -> &S {
        &self.sem
    }

    /// Number of equivalence classes.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Number of class elements.
    pub fn expr_count(&self) -> usize {
        self.exprs.len()
    }

    pub fn expr(&self, id: ExprId) -> &MExpr<S::Op> {
        &self.exprs[id.0]
    }

    pub fn props(&self, g: GroupId) -> &S::Props {
        &self.groups[g.0].props
    }

    pub fn exprs_in(&self, g: GroupId) -> &[ExprId] {
        &self.groups[g.0].exprs
    }

    /// Per-rule successful application counts.
    pub fn rule_fires(&self) -> impl Iterator<Item = (&'static str, usize)> + '_ {
        let mut m: HashMap<&'static str, usize> = HashMap::new();
        for (n, c) in &self.rule_fires {
            *m.entry(n).or_default() += c;
        }
        m.into_iter()
    }

    /// Insert an initial expression tree, returning its (root) group.
    pub fn insert_root(&mut self, tree: NewExpr<S::Op>) -> GroupId {
        self.insert_tree(tree, None)
    }

    /// Insert a tree; if `target` is given, the root expression joins that
    /// group (rule results), otherwise it lands in the group of an
    /// identical existing expression or a fresh group.
    fn insert_tree(&mut self, tree: NewExpr<S::Op>, target: Option<GroupId>) -> GroupId {
        match tree {
            NewExpr::Group(g) => g,
            NewExpr::Op(op, kids) => {
                let child_groups: Vec<GroupId> =
                    kids.into_iter().map(|k| self.insert_tree(k, None)).collect();
                self.insert_expr(op, child_groups, target)
            }
        }
    }

    fn insert_expr(
        &mut self,
        op: S::Op,
        children: Vec<GroupId>,
        target: Option<GroupId>,
    ) -> GroupId {
        let key = (op.clone(), children.clone());
        let group = match target {
            Some(g) => g,
            None => {
                if let Some(&g) = self.global.get(&key) {
                    return g; // identical subtree already memoized
                }
                // fresh group with derived properties
                let child_props: Vec<&S::Props> =
                    children.iter().map(|&c| &self.groups[c.0].props).collect();
                let props = self.sem.derive_props(&op, &child_props);
                let g = GroupId(self.groups.len());
                self.groups.push(Group { exprs: Vec::new(), props, dedup: HashMap::new() });
                g
            }
        };
        if self.groups[group.0].dedup.contains_key(&key) {
            return group;
        }
        let id = ExprId(self.exprs.len());
        self.exprs.push(MExpr { op, children, group });
        self.groups[group.0].exprs.push(id);
        self.groups[group.0].dedup.insert(key.clone(), id);
        self.global.entry(key).or_insert(group);
        group
    }

    /// Exhaustively apply the transformation rules: every rule is applied
    /// once to every expression (including expressions the rules
    /// themselves produce), Volcano style, until a fixpoint or the
    /// expression cap.
    pub fn explore(&mut self, rules: &[Box<dyn Rule<S>>]) {
        let mut next = 0usize;
        while next < self.exprs.len() && self.exprs.len() < self.max_exprs {
            let expr_id = ExprId(next);
            next += 1;
            let group = self.exprs[next - 1].group;
            for rule in rules {
                let produced = rule.apply(self, expr_id);
                if !produced.is_empty() {
                    self.rule_fires.push((rule.name(), produced.len()));
                }
                for tree in produced {
                    self.insert_tree(tree, Some(group));
                    if self.exprs.len() >= self.max_exprs {
                        return;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod memo_tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum Op {
        Leaf(u32),
        Chain,
    }

    struct Sem;

    impl Semantics for Sem {
        type Op = Op;
        type Props = usize; // depth
        type PhysProps = ();
        type Algo = ();

        fn derive_props(&self, op: &Op, children: &[&usize]) -> usize {
            match op {
                Op::Leaf(_) => 0,
                Op::Chain => children.iter().map(|d| **d).max().unwrap_or(0) + 1,
            }
        }

        fn implementations(
            &self,
            _: &Op,
            _: &[&usize],
            _: &usize,
            _: &(),
        ) -> Vec<crate::search::Implementation<Self>> {
            vec![]
        }

        fn enforcers(&self, _: &usize, _: &()) -> Vec<crate::search::Enforcer<Self>> {
            vec![]
        }
    }

    /// A rule that grows forever: the expression cap must stop it.
    struct Grower;

    impl Rule<Sem> for Grower {
        fn name(&self) -> &'static str {
            "grower"
        }

        fn kind(&self) -> RuleKind {
            RuleKind::Multiset
        }

        fn apply(&self, memo: &Memo<Sem>, expr: ExprId) -> Vec<NewExpr<Op>> {
            let e = memo.expr(expr);
            // wraps everything in ever-deeper chains of fresh leaves
            let tag = memo.expr_count() as u32;
            match e.op {
                Op::Leaf(_) | Op::Chain => {
                    vec![NewExpr::Op(Op::Chain, vec![NewExpr::Op(Op::Leaf(tag), vec![])])]
                }
            }
        }
    }

    #[test]
    fn runaway_rules_hit_the_cap() {
        let mut memo = Memo::new(Sem);
        memo.max_exprs = 500;
        memo.insert_root(NewExpr::Op(Op::Leaf(0), vec![]));
        memo.explore(&[Box::new(Grower) as Box<dyn Rule<Sem>>]);
        assert!(memo.expr_count() >= 500);
        assert!(memo.expr_count() < 520, "cap should stop growth promptly");
    }

    #[test]
    fn logical_props_derive_through_shared_subtrees() {
        let mut memo = Memo::new(Sem);
        let leaf = NewExpr::Op(Op::Leaf(1), vec![]);
        let g = memo.insert_root(NewExpr::Op(Op::Chain, vec![NewExpr::Op(Op::Chain, vec![leaf])]));
        assert_eq!(*memo.props(g), 2);
        // inserting the identical tree again changes nothing
        let leaf = NewExpr::Op(Op::Leaf(1), vec![]);
        let g2 = memo.insert_root(NewExpr::Op(Op::Chain, vec![NewExpr::Op(Op::Chain, vec![leaf])]));
        assert_eq!(g, g2);
        assert_eq!(memo.group_count(), 3);
        assert_eq!(memo.expr_count(), 3);
    }
}
