//! # volcano
//!
//! A from-scratch, generic reimplementation of the Volcano optimizer
//! generator (Graefe & McKenna, ICDE 1993) — the search engine TANGO's
//! middleware optimizer is built on.
//!
//! The crate is *generic*: it knows nothing about relations, cost
//! formulas, or SQL. An instantiation supplies a [`Semantics`]
//! implementation describing
//!
//! * the logical operator type and how logical properties (schema,
//!   statistics) are derived,
//! * the physical algorithms implementing each operator, with their
//!   per-child required physical properties and costs,
//! * *enforcers* — algorithms that fix up physical properties (sorting
//!   for orderings; in TANGO, the `T^M`/`T^D` transfer algorithms enforce
//!   the *site* property, which is how the middleware "appropriately
//!   inserts transfer operations into query plans"),
//!
//! plus a set of [`Rule`]s generating equivalent expressions.
//!
//! Terminology matches the paper's description of Volcano: a memo *group*
//! is an **equivalence class**; a memo expression is a **class element**.
//! [`Memo::group_count`] / [`Memo::expr_count`] reproduce the
//! classes/elements measurements reported for each query in Section 5.2.

pub mod memo;
pub mod search;

pub use memo::{ExprId, GroupId, MExpr, Memo, NewExpr, Rule, RuleKind, Semantics};
pub use search::{optimize, Best, Enforcer, Implementation, PhysPlan, SearchStats};

#[cfg(test)]
mod toy_tests {
    //! A miniature instantiation: a commutative binary `Add` over leaf
    //! numbers with "cheap" and "pricey" implementations, verifying rule
    //! application, deduplication, and cost-based search.

    use super::*;
    use std::collections::HashMap;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum Op {
        Leaf(i64),
        Add,
    }

    #[derive(Clone, Debug)]
    struct Props {
        magnitude: f64,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Req {
        Any,
        Fancy,
    }

    struct Toy;

    impl Semantics for Toy {
        type Op = Op;
        type Props = Props;
        type PhysProps = Req;
        type Algo = String;

        fn derive_props(&self, op: &Op, children: &[&Props]) -> Props {
            match op {
                Op::Leaf(n) => Props { magnitude: *n as f64 },
                Op::Add => Props { magnitude: children.iter().map(|p| p.magnitude).sum() },
            }
        }

        fn implementations(
            &self,
            op: &Op,
            _child_props: &[&Props],
            props: &Props,
            required: &Req,
        ) -> Vec<Implementation<Self>> {
            match (op, required) {
                (Op::Leaf(n), Req::Any) => vec![Implementation {
                    algo: format!("load({n})"),
                    child_required: vec![],
                    cost: 1.0,
                }],
                (Op::Add, Req::Any) => vec![
                    Implementation {
                        algo: "add_cheap".into(),
                        child_required: vec![Req::Any, Req::Any],
                        cost: props.magnitude,
                    },
                    Implementation {
                        algo: "add_pricey".into(),
                        child_required: vec![Req::Any, Req::Any],
                        cost: props.magnitude * 10.0,
                    },
                ],
                // nothing natively provides Fancy
                _ => vec![],
            }
        }

        fn enforcers(&self, _props: &Props, required: &Req) -> Vec<Enforcer<Self>> {
            match required {
                Req::Fancy => {
                    vec![Enforcer { algo: "fancify".into(), inner_required: Req::Any, cost: 2.5 }]
                }
                Req::Any => vec![],
            }
        }
    }

    /// Add is commutative.
    struct Commute;

    impl Rule<Toy> for Commute {
        fn name(&self) -> &'static str {
            "commute-add"
        }

        fn kind(&self) -> RuleKind {
            RuleKind::Multiset
        }

        fn apply(&self, memo: &Memo<Toy>, expr: ExprId) -> Vec<NewExpr<Op>> {
            let e = memo.expr(expr);
            if e.op == Op::Add {
                vec![NewExpr::Op(
                    Op::Add,
                    vec![NewExpr::Group(e.children[1]), NewExpr::Group(e.children[0])],
                )]
            } else {
                vec![]
            }
        }
    }

    #[test]
    fn memo_dedups_and_rules_fire_once() {
        let sem = Toy;
        let tree = NewExpr::Op(
            Op::Add,
            vec![NewExpr::Op(Op::Leaf(1), vec![]), NewExpr::Op(Op::Leaf(2), vec![])],
        );
        let mut memo = Memo::new(sem);
        let root = memo.insert_root(tree);
        assert_eq!(memo.group_count(), 3);
        assert_eq!(memo.expr_count(), 3);
        let rules: Vec<Box<dyn Rule<Toy>>> = vec![Box::new(Commute)];
        memo.explore(&rules);
        // commuted form adds exactly one new expression; applying the rule
        // to the commuted form reproduces the original (dedup).
        assert_eq!(memo.group_count(), 3);
        assert_eq!(memo.expr_count(), 4);
        assert_eq!(memo.exprs_in(root).len(), 2);
    }

    #[test]
    fn search_picks_cheapest_and_uses_enforcers() {
        let sem = Toy;
        let tree = NewExpr::Op(
            Op::Add,
            vec![NewExpr::Op(Op::Leaf(1), vec![]), NewExpr::Op(Op::Leaf(2), vec![])],
        );
        let mut memo = Memo::new(sem);
        let root = memo.insert_root(tree);
        let mut stats = SearchStats::default();
        let best = optimize(&memo, root, Req::Any, &mut stats).expect("plan");
        assert_eq!(best.plan.algo, "add_cheap");
        assert!((best.cost - (3.0 + 1.0 + 1.0)).abs() < 1e-9);

        let fancy = optimize(&memo, root, Req::Fancy, &mut stats).expect("plan");
        assert_eq!(fancy.plan.algo, "fancify");
        assert_eq!(fancy.plan.children[0].algo, "add_cheap");
        assert!((fancy.cost - (best.cost + 2.5)).abs() < 1e-9);
    }

    #[test]
    fn identical_subtrees_share_groups() {
        let sem = Toy;
        let leaf = || NewExpr::Op(Op::Leaf(7), vec![]);
        let tree = NewExpr::Op(Op::Add, vec![leaf(), leaf()]);
        let mut memo = Memo::new(sem);
        memo.insert_root(tree);
        // leaf(7) appears once: 2 groups, 2 exprs
        assert_eq!(memo.group_count(), 2);
        assert_eq!(memo.expr_count(), 2);
    }

    #[test]
    fn rule_fire_counts_tracked() {
        let sem = Toy;
        let tree = NewExpr::Op(
            Op::Add,
            vec![NewExpr::Op(Op::Leaf(1), vec![]), NewExpr::Op(Op::Leaf(2), vec![])],
        );
        let mut memo = Memo::new(sem);
        memo.insert_root(tree);
        let rules: Vec<Box<dyn Rule<Toy>>> = vec![Box::new(Commute)];
        memo.explore(&rules);
        let fires: HashMap<&str, usize> = memo.rule_fires().collect();
        assert_eq!(fires["commute-add"], 2); // original + commuted form
    }
}

#[cfg(test)]
mod enforcer_cycle_tests {
    //! Regression: bidirectional enforcers (TANGO's `T^M`/`T^D` site
    //! transfers) create cycles in the `(group, required)` graph. A frame
    //! truncated by the cycle guard is evaluated *relative to the
    //! requirements on the stack* — memoizing its answer used to poison
    //! later lookups of the same pair from clean contexts, hiding
    //! feasible (and cheaper) plans.

    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum Op {
        /// Lives natively at `Home` only (like a mid-query
        /// materialization residing in the middleware).
        Leaf,
        Wrap,
    }

    #[derive(Clone, Debug)]
    struct Props;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Req {
        /// `Home`, plus an ordering only the `sort` enforcer delivers.
        HomeSorted,
        Home,
        Away,
    }

    struct Sites;

    impl Semantics for Sites {
        type Op = Op;
        type Props = Props;
        type PhysProps = Req;
        type Algo = String;

        fn derive_props(&self, _op: &Op, _children: &[&Props]) -> Props {
            Props
        }

        fn implementations(
            &self,
            op: &Op,
            _child_props: &[&Props],
            _props: &Props,
            required: &Req,
        ) -> Vec<Implementation<Self>> {
            match (op, required) {
                (Op::Leaf, Req::Home | Req::HomeSorted) => {
                    vec![Implementation { algo: "leaf".into(), child_required: vec![], cost: 1.0 }]
                }
                // the away-side wrap is far cheaper than the home-side
                // one — reachable only if `(Leaf, Away)` stays feasible
                (Op::Wrap, Req::Home) => vec![Implementation {
                    algo: "wrap_home".into(),
                    child_required: vec![Req::Home],
                    cost: 100.0,
                }],
                (Op::Wrap, Req::Away) => vec![Implementation {
                    algo: "wrap_away".into(),
                    child_required: vec![Req::Away],
                    cost: 0.5,
                }],
                _ => vec![],
            }
        }

        fn enforcers(&self, _props: &Props, required: &Req) -> Vec<Enforcer<Self>> {
            match required {
                Req::HomeSorted => {
                    vec![Enforcer { algo: "sort".into(), inner_required: Req::Home, cost: 0.1 }]
                }
                Req::Home => {
                    vec![Enforcer {
                        algo: "ship_home".into(),
                        inner_required: Req::Away,
                        cost: 5.0,
                    }]
                }
                Req::Away => {
                    vec![Enforcer {
                        algo: "ship_away".into(),
                        inner_required: Req::Home,
                        cost: 5.0,
                    }]
                }
            }
        }
    }

    /// `(Leaf, Away)` is first reached through the in-progress chain
    /// `(Leaf, Home) → ship_home → (Leaf, Away) → ship_away → (Leaf,
    /// Home)` and pruned; when `wrap_away` later asks for the same pair
    /// from a clean stack, the answer must be recomputed, not replayed.
    #[test]
    fn cycle_prune_is_not_memoized() {
        let tree = NewExpr::Op(Op::Wrap, vec![NewExpr::Op(Op::Leaf, vec![])]);
        let mut memo = Memo::new(Sites);
        let root = memo.insert_root(tree);
        let mut stats = SearchStats::default();
        let best = optimize(&memo, root, Req::HomeSorted, &mut stats).expect("plan");
        assert!(stats.cycles_pruned > 0, "fixture never exercised the cycle guard");
        // sort(ship_home(wrap_away(ship_away(leaf)))) = 0.1+5+0.5+5+1
        assert!(
            (best.cost - 11.6).abs() < 1e-9,
            "poisoned memo hid the away-side plan: cost {} plan {:?}",
            best.cost,
            best.plan
        );
        assert_eq!(best.plan.algo, "sort");
        assert_eq!(best.plan.children[0].algo, "ship_home");
        assert_eq!(best.plan.children[0].children[0].algo, "wrap_away");
        assert_eq!(best.plan.children[0].children[0].children[0].algo, "ship_away");
    }
}
