//! Cost-based physical search over a memo.
//!
//! Top-down optimization with memoization on (group, required physical
//! properties) — the second phase of the paper's two-phase optimizer
//! ("for each algebraic operation in a plan, it assumes that each of the
//! algorithms available for computing that operation is being used, and
//! it estimates the consequent cost").

use crate::memo::{ExprId, GroupId, Memo, Semantics};
use std::collections::HashMap;

/// A candidate physical implementation of one logical operator.
pub struct Implementation<S: Semantics> {
    pub algo: S::Algo,
    /// Physical properties required from each child, in order.
    pub child_required: Vec<S::PhysProps>,
    /// The algorithm's own cost (children costs are added by the search).
    pub cost: f64,
}

/// A property enforcer: wraps a plan for the *same group* optimized under
/// the (weaker) `inner_required`.
pub struct Enforcer<S: Semantics> {
    pub algo: S::Algo,
    pub inner_required: S::PhysProps,
    pub cost: f64,
}

/// A complete physical plan.
#[derive(Debug, Clone)]
pub struct PhysPlan<A> {
    pub algo: A,
    pub children: Vec<PhysPlan<A>>,
}

impl<A> PhysPlan<A> {
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(PhysPlan::node_count).sum::<usize>()
    }
}

/// The winner for one (group, required) pair.
#[derive(Debug)]
pub struct Best<S: Semantics> {
    pub cost: f64,
    pub plan: PhysPlan<S::Algo>,
    /// Which class element the plan's root implements.
    pub expr: ExprId,
}

impl<S: Semantics> Clone for Best<S> {
    fn clone(&self) -> Self {
        Best { cost: self.cost, plan: self.plan.clone(), expr: self.expr }
    }
}

/// Search-effort accounting.
#[derive(Debug, Default, Clone)]
pub struct SearchStats {
    pub optimize_calls: usize,
    pub implementations_considered: usize,
    pub enforcers_considered: usize,
    /// `(group, required)` pairs answered from the memoization table
    /// without a fresh search.
    pub cache_hits: usize,
    /// Enforcer cycles pruned during the search.
    pub cycles_pruned: usize,
}

/// Find the cheapest physical plan for `group` delivering `required`.
pub fn optimize<S: Semantics>(
    memo: &Memo<S>,
    group: GroupId,
    required: S::PhysProps,
    stats: &mut SearchStats,
) -> Option<Best<S>> {
    let mut ctx = Ctx { memo, table: HashMap::new(), in_progress: Vec::new(), pruned: 0, stats };
    ctx.optimize(group, required)
}

struct Ctx<'a, S: Semantics> {
    memo: &'a Memo<S>,
    table: HashMap<(GroupId, S::PhysProps), Option<Best<S>>>,
    /// Guard against enforcer cycles.
    in_progress: Vec<(GroupId, S::PhysProps)>,
    /// Total cycle prunes so far; frames compare before/after to learn
    /// whether their own evaluation was truncated by a prune.
    pruned: usize,
    stats: &'a mut SearchStats,
}

impl<S: Semantics> Ctx<'_, S> {
    fn optimize(&mut self, group: GroupId, required: S::PhysProps) -> Option<Best<S>> {
        let key = (group, required.clone());
        if let Some(hit) = self.table.get(&key) {
            self.stats.cache_hits += 1;
            return hit.clone();
        }
        if self.in_progress.contains(&key) {
            // cycle via enforcers: prune this path. The outcome of every
            // frame on the stack now depends on the truncation, so none
            // of them may be memoized (see below).
            self.pruned += 1;
            self.stats.cycles_pruned += 1;
            return None;
        }
        self.in_progress.push(key.clone());
        self.stats.optimize_calls += 1;
        let pruned_before = self.pruned;

        let mut best: Option<Best<S>> = None;
        let props = self.memo.props(group);

        // 1. native implementations of every class element
        for &eid in self.memo.exprs_in(group) {
            let e = self.memo.expr(eid);
            let child_props: Vec<&S::Props> =
                e.children.iter().map(|&c| self.memo.props(c)).collect();
            let impls =
                self.memo.semantics().implementations(&e.op, &child_props, props, &required);
            for imp in impls {
                self.stats.implementations_considered += 1;
                debug_assert_eq!(imp.child_required.len(), e.children.len());
                let mut cost = imp.cost;
                let mut children = Vec::with_capacity(e.children.len());
                let mut feasible = true;
                for (&cg, creq) in e.children.iter().zip(&imp.child_required) {
                    match self.optimize(cg, creq.clone()) {
                        Some(b) => {
                            cost += b.cost;
                            children.push(b.plan);
                        }
                        None => {
                            feasible = false;
                            break;
                        }
                    }
                }
                if !feasible {
                    continue;
                }
                if best.as_ref().is_none_or(|b| cost < b.cost) {
                    best =
                        Some(Best { cost, plan: PhysPlan { algo: imp.algo, children }, expr: eid });
                }
            }
        }

        // 2. enforcers wrapping a weaker requirement on the same group
        for enf in self.memo.semantics().enforcers(props, &required) {
            self.stats.enforcers_considered += 1;
            if enf.inner_required == required {
                continue; // would recurse forever
            }
            if let Some(inner) = self.optimize(group, enf.inner_required.clone()) {
                let cost = enf.cost + inner.cost;
                if best.as_ref().is_none_or(|b| cost < b.cost) {
                    let expr = inner.expr;
                    best = Some(Best {
                        cost,
                        plan: PhysPlan { algo: enf.algo, children: vec![inner.plan] },
                        expr,
                    });
                }
            }
        }

        self.in_progress.pop();
        // Memoize only results computed from a clean stack. A frame that
        // saw a cycle prune anywhere beneath it was evaluated *relative
        // to the requirements currently in progress*: the pruned branch
        // may be perfectly feasible (and cheaper) when the same
        // `(group, required)` pair is reached from a different context,
        // so caching the truncated answer would poison later lookups.
        if self.pruned == pruned_before {
            self.table.insert(key, best.clone());
        }
        best
    }
}
