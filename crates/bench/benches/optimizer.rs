//! Optimization-time benchmarks — the paper's claim that "for the tested
//! queries, the middleware optimization overhead was very small"
//! (Section 5.3). Each benchmark runs the full pipeline: parse the
//! temporal SQL, explore the memo, and search for the best plan.

use criterion::{criterion_group, criterion_main, Criterion};
use tango_algebra::date::day;
use tango_bench::plans::{q1_sql, q2_sql, q3_sql, q4_sql};
use tango_bench::{load_uis, uis_link_profile};
use tango_uis::UisConfig;

fn bench_optimize(c: &mut Criterion) {
    let cfg = UisConfig::small(0xEC1);
    let mut setup = load_uis(&cfg, uis_link_profile(), false);
    setup.tango.refresh_statistics().unwrap();

    let queries: Vec<(&str, String)> = vec![
        ("query1", q1_sql("POSITION")),
        ("query2", q2_sql(day(1983, 1, 1), day(1996, 1, 1))),
        ("query3", q3_sql(day(1996, 1, 1))),
        ("query4", q4_sql("POSITION")),
    ];
    let mut g = c.benchmark_group("optimize");
    for (name, sql) in queries {
        g.bench_function(name, |b| {
            b.iter(|| {
                let q = setup.tango.optimize(&sql).unwrap();
                (q.classes, q.elements)
            })
        });
    }
    g.finish();

    // parser alone
    let sql = q2_sql(day(1983, 1, 1), day(1996, 1, 1));
    c.bench_function("parse_tsql_query2", |b| b.iter(|| setup.tango.parse(&sql).unwrap().size()));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_optimize
}
criterion_main!(benches);
