//! Mini-DBMS throughput benchmarks: scan, filter, hash join, sort,
//! aggregation and the bulk loader — the substrate's side of the cost
//! model (`p_scan`, `p_jd`, `p_sd`, `p_td`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tango_algebra::{tup, Attr, Schema, Tuple, Type};
use tango_minidb::{Connection, Database, Link, LinkProfile};

fn setup(n: usize) -> Connection {
    // instant wire: measure the engine, not the simulated link
    let conn = Connection::new(Database::new(Link::new(LinkProfile::instant())));
    conn.execute("CREATE TABLE T (K INT, V INT, S VARCHAR(16), T1 INT, T2 INT)").unwrap();
    let mut x = 0xDEADBEEFu64;
    let rows: Vec<Tuple> = (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t1 = (x % 9000) as i64;
            tup![
                (x % (n as u64 / 8 + 1)) as i64,
                (x % 1_000_000) as i64,
                format!("s{:06}", x % 100_000),
                t1,
                t1 + 1 + (x % 200) as i64
            ]
        })
        .collect();
    conn.database().insert_rows("T", rows).unwrap();
    conn.execute("ANALYZE TABLE T COMPUTE STATISTICS").unwrap();
    conn
}

fn bench_queries(c: &mut Criterion) {
    let n = 20_000;
    let conn = setup(n);
    let bytes = conn.table_stats("T").unwrap().size_bytes() as u64;

    let cases = [
        ("scan", "SELECT K, V, S, T1, T2 FROM T"),
        ("filter", "SELECT K, V FROM T WHERE V < 500000 AND T1 > 1000"),
        ("sort", "SELECT K, V FROM T ORDER BY K, T1"),
        ("hash_join", "SELECT A.K, B.V FROM T A, T B WHERE A.K = B.K AND A.V < 100000"),
        ("group_by", "SELECT K, COUNT(*) AS C, MIN(T1) AS M FROM T GROUP BY K"),
        ("union_distinct", "SELECT K, T1 AS P FROM T UNION SELECT K, T2 FROM T"),
    ];
    let mut g = c.benchmark_group("minidb");
    g.throughput(Throughput::Bytes(bytes));
    for (name, sql) in cases {
        g.bench_with_input(BenchmarkId::from_parameter(name), &sql, |b, sql| {
            b.iter(|| conn.query_all(sql).unwrap().len())
        });
    }
    g.finish();
}

fn bench_loader(c: &mut Criterion) {
    let schema = Schema::new(vec![Attr::new("A", Type::Int), Attr::new("B", Type::Str)]);
    let rows: Vec<Tuple> = (0..10_000).map(|i| tup![i as i64, format!("row{i}")]).collect();
    let bytes: usize = rows.iter().map(Tuple::byte_size).sum();
    let mut g = c.benchmark_group("loader");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.bench_function("direct_path_10k", |b| {
        b.iter(|| {
            let conn = Connection::new(Database::new(Link::new(LinkProfile::instant())));
            conn.load_direct("L", schema.clone(), rows.clone()).unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_queries, bench_loader
}
criterion_main!(benches);
