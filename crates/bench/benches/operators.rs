//! Criterion micro-benchmarks for the middleware algorithm library —
//! per-operator throughput backing the Figure 6 cost formulas (each
//! operator's time should scale ~linearly in `size(r)`, which is exactly
//! what the `p` factors assume).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use tango_algebra::codec::{encode_tuple, Decoder};
use tango_algebra::{tup, AggFunc, AggSpec, Attr, Relation, Schema, SortSpec, Type};
use tango_xxl::{collect, MergeJoin, Sort, TemporalAggregate, TemporalMergeJoin, VecScan};

fn temporal_relation(n: usize, groups: usize) -> Relation {
    let schema = Arc::new(Schema::with_inferred_period(vec![
        Attr::new("G", Type::Int),
        Attr::new("V", Type::Int),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
    ]));
    let mut rows = Vec::with_capacity(n);
    let mut x = 0x9E3779B97F4A7C15u64;
    for i in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let t1 = (x % 10_000) as i64;
        rows.push(tup![
            (i % groups.max(1)) as i64,
            (x % 1000) as i64,
            t1,
            t1 + 1 + (x % 300) as i64
        ]);
    }
    let mut rel = Relation::new(schema, rows);
    rel.sort_by(&SortSpec::by(["G", "T1"]));
    rel
}

fn bench_taggr(c: &mut Criterion) {
    let mut g = c.benchmark_group("taggr_m");
    for n in [1_000usize, 10_000, 50_000] {
        let rel = temporal_relation(n, n / 8);
        g.throughput(Throughput::Bytes(rel.byte_size() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &rel, |b, rel| {
            b.iter(|| {
                let agg = TemporalAggregate::new(
                    Box::new(VecScan::new(rel.clone())),
                    vec!["G".into()],
                    vec![AggSpec::new(AggFunc::Count, Some("G"), "C")],
                )
                .unwrap();
                collect(Box::new(agg)).unwrap().len()
            })
        });
    }
    g.finish();
}

fn bench_temporal_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("tmergejoin_m");
    for n in [1_000usize, 10_000, 50_000] {
        let rel = temporal_relation(n, n / 8);
        g.throughput(Throughput::Bytes(2 * rel.byte_size() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &rel, |b, rel| {
            b.iter(|| {
                let j = TemporalMergeJoin::new(
                    Box::new(VecScan::new(rel.clone())),
                    Box::new(VecScan::new(rel.clone())),
                    &[("G".to_string(), "G".to_string())],
                )
                .unwrap();
                collect(Box::new(j)).unwrap().len()
            })
        });
    }
    g.finish();
}

fn bench_merge_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("mergejoin_m");
    for n in [10_000usize, 50_000] {
        let rel = temporal_relation(n, n / 2);
        g.throughput(Throughput::Bytes(2 * rel.byte_size() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &rel, |b, rel| {
            b.iter(|| {
                let j = MergeJoin::new(
                    Box::new(VecScan::new(rel.clone())),
                    Box::new(VecScan::new(rel.clone())),
                    &[("G".to_string(), "G".to_string())],
                )
                .unwrap();
                collect(Box::new(j)).unwrap().len()
            })
        });
    }
    g.finish();
}

fn bench_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("sort_m");
    for n in [10_000usize, 100_000] {
        let mut rel = temporal_relation(n, 64);
        rel.sort_by(&SortSpec::by(["V"])); // unsort w.r.t. the bench key
        g.throughput(Throughput::Bytes(rel.byte_size() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &rel, |b, rel| {
            b.iter(|| {
                let s = Sort::new(Box::new(VecScan::new(rel.clone())), SortSpec::by(["G", "T1"]));
                collect(Box::new(s)).unwrap().len()
            })
        });
    }
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let rel = temporal_relation(50_000, 1_000);
    let mut buf = Vec::new();
    for t in rel.tuples() {
        encode_tuple(t, &mut buf);
    }
    let mut g = c.benchmark_group("wire_codec");
    g.throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_function("encode_50k", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            for t in rel.tuples() {
                encode_tuple(t, &mut out);
            }
            out.len()
        })
    });
    g.bench_function("decode_50k", |b| {
        b.iter(|| {
            let mut d = Decoder::new(&buf);
            let mut n = 0;
            while !d.is_done() {
                d.decode_tuple().unwrap();
                n += 1;
            }
            n
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_taggr, bench_temporal_join, bench_merge_join, bench_sort, bench_codec
}
criterion_main!(benches);
