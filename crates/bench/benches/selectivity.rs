//! Estimator micro-benchmarks: the Section 3.3 temporal selectivity
//! functions and full statistics derivation must be cheap enough to run
//! thousands of times inside the optimizer's search.

use criterion::{criterion_group, criterion_main, Criterion};
use tango_algebra::{Attr, Expr, Schema, Type, Value};
use tango_stats::stats::AttrStats;
use tango_stats::{overlaps_cardinality, Histogram, RelationStats};

fn stats_with_histograms(buckets: usize) -> RelationStats {
    let vals: Vec<f64> = (0..100_000).map(|i| (i % 1819) as f64).collect();
    let mut s = RelationStats { rows: 100_000.0, avg_tuple_bytes: 40.0, ..Default::default() };
    for col in ["T1", "T2"] {
        s.set_attr(
            col,
            AttrStats {
                min: Some(0.0),
                max: Some(1819.0),
                distinct: 1819,
                histogram: Histogram::build(vals.clone(), buckets),
                avg_width: 4.0,
                ..Default::default()
            },
        );
    }
    s.set_attr(
        "PosID",
        AttrStats {
            min: Some(1.0),
            max: Some(20_000.0),
            distinct: 16_000,
            avg_width: 8.0,
            ..Default::default()
        },
    );
    s
}

fn bench_estimators(c: &mut Criterion) {
    let s = stats_with_histograms(20);
    c.bench_function("overlaps_cardinality_hist20", |b| {
        b.iter(|| overlaps_cardinality(700.0, 760.0, &s, "T1", "T2"))
    });
    let s_nohist = {
        let mut x = s.clone();
        for a in x.attrs.values_mut() {
            a.histogram = None;
        }
        x
    };
    c.bench_function("overlaps_cardinality_uniform", |b| {
        b.iter(|| overlaps_cardinality(700.0, 760.0, &s_nohist, "T1", "T2"))
    });

    let schema = Schema::with_inferred_period(vec![
        Attr::new("PosID", Type::Int),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
    ]);
    let pred = Expr::and(
        Expr::overlaps("T1", "T2", Expr::Lit(Value::Int(700)), Expr::Lit(Value::Int(760))),
        Expr::eq(Expr::col("PosID"), Expr::lit(42)),
    );
    c.bench_function("derive_select", |b| {
        b.iter(|| tango_stats::cardinality::derive_select(&pred, &s, &schema).rows)
    });

    let tjoin = tango_algebra::Logical::TJoin {
        eq: vec![("PosID".to_string(), "PosID".to_string())],
        left: Box::new(tango_algebra::Logical::Get { table: "_".into() }),
        right: Box::new(tango_algebra::Logical::Get { table: "_".into() }),
    };
    let out_schema = tango_algebra::logical::tjoin_schema(
        &[("PosID".to_string(), "PosID".to_string())],
        &schema,
        &schema,
    )
    .unwrap();
    c.bench_function("derive_tjoin", |b| {
        b.iter(|| {
            tango_stats::derive_stats(&tjoin, &[&s, &s], &[&schema, &schema], &out_schema).rows
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_estimators
}
criterion_main!(benches);
