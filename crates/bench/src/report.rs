//! Plain-text result tables (the figure series, as rows/columns) and the
//! machine-readable per-operator JSON log emitted alongside them.

use std::fmt::Write as _;
use std::time::Duration;
use tango_core::engine::ExecReport;

/// A result table: one row per x-axis value, one column per plan/series.
pub struct Table {
    pub title: String,
    pub x_label: String,
    pub columns: Vec<String>,
    pub rows: Vec<(String, Vec<Option<Duration>>)>,
    pub notes: Vec<String>,
}

impl Table {
    pub fn new(title: &str, x_label: &str, columns: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            x_label: x_label.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, x: impl ToString, cells: Vec<Option<Duration>>) {
        assert_eq!(cells.len(), self.columns.len());
        self.rows.push((x.to_string(), cells));
    }

    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render with seconds to two decimals, like the paper's plots.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let mut widths: Vec<usize> = Vec::new();
        widths.push(
            self.rows.iter().map(|(x, _)| x.len()).chain([self.x_label.len()]).max().unwrap_or(8),
        );
        for (i, c) in self.columns.iter().enumerate() {
            let w = self
                .rows
                .iter()
                .map(|(_, cells)| fmt_cell(&cells[i]).len())
                .chain([c.len()])
                .max()
                .unwrap_or(8);
            widths.push(w);
        }
        let _ = write!(out, "{:w$}", self.x_label, w = widths[0]);
        for (c, w) in self.columns.iter().zip(&widths[1..]) {
            let _ = write!(out, "  {c:>w$}");
        }
        let _ = writeln!(out);
        for (x, cells) in &self.rows {
            let _ = write!(out, "{x:w$}", w = widths[0]);
            for (cell, w) in cells.iter().zip(&widths[1..]) {
                let _ = write!(out, "  {:>w$}", fmt_cell(cell));
            }
            let _ = writeln!(out);
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }

    /// CSV form (for plotting).
    pub fn csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label);
        for c in &self.columns {
            let _ = write!(out, ",{c}");
        }
        let _ = writeln!(out);
        for (x, cells) in &self.rows {
            let _ = write!(out, "{x}");
            for cell in cells {
                match cell {
                    Some(d) => {
                        let _ = write!(out, ",{:.4}", d.as_secs_f64());
                    }
                    None => {
                        let _ = write!(out, ",");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Print to stdout and save a CSV under `target/figures/`.
    pub fn emit(&self, file_stem: &str) {
        println!("{}", self.render());
        let dir = std::path::Path::new("target/figures");
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(dir.join(format!("{file_stem}.csv")), self.csv());
    }
}

fn fmt_cell(c: &Option<Duration>) -> String {
    match c {
        Some(d) => format!("{:.2}s", d.as_secs_f64()),
        None => "-".to_string(),
    }
}

/// Collects per-run [`ExecReport`]s and writes them as one JSON array
/// (`[{series, x, report}, ...]`) under `target/figures/<stem>.ops.json`
/// — the machine-readable counterpart of each figure, with per-operator
/// rows/bytes/times from the trace layer.
#[derive(Default)]
pub struct JsonLog {
    entries: Vec<String>,
}

impl JsonLog {
    pub fn new() -> JsonLog {
        JsonLog::default()
    }

    /// Record one run: `series` is the plan/column name, `x` the x-axis
    /// value of the figure.
    pub fn push(&mut self, series: &str, x: impl ToString, report: &ExecReport) {
        use tango_trace::json;
        let entry = json::Object::new()
            .string("series", series)
            .string("x", &x.to_string())
            .raw("report", &report.to_json())
            .build();
        self.entries.push(entry);
    }

    pub fn to_json(&self) -> String {
        format!("[{}]", self.entries.join(","))
    }

    /// Write `target/figures/<file_stem>.ops.json`.
    pub fn emit(&self, file_stem: &str) {
        let dir = std::path::Path::new("target/figures");
        let _ = std::fs::create_dir_all(dir);
        let path = dir.join(format!("{file_stem}.ops.json"));
        let _ = std::fs::write(&path, self.to_json());
        eprintln!("  per-operator JSON: {}", path.display());
    }
}
