//! # tango-bench
//!
//! The experiment harness for the performance study of Section 5 of the
//! paper. One binary per table/figure:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig8_query1` | Figure 8 — Query 1 (temporal aggregation), 3 plans × POSITION sizes |
//! | `fig10_query2` | Figure 10(a/b) — Query 2, 6 plans × selection-window end |
//! | `fig11a_query3` | Figure 11(a) — Query 3 (temporal self-join), 2 plans × start bound |
//! | `fig11b_query4` | Figure 11(b) — Query 4 (regular join), 3 plans × POSITION sizes |
//! | `sec33_selectivity` | Section 3.3 worked example — naive vs proposed estimator |
//! | `wire_faults` | Chaos overhead — fault-probability sweep, retries/re-plans vs. cost |
//! | `optimizer_stats` | Section 5.2 — classes/elements and chosen plan per query |
//! | `calibration_study` | Ablation — default vs calibrated factors vs feedback |
//! | `batch_ablation` | Ablation — batch-at-a-time vs row-at-a-time wall time (`BENCH_batch.json`) |
//! | `cache_ablation` | Ablation — Query 2 cold vs warm through the relation cache (`BENCH_cache.json`) |
//! | `concurrency_bench` | Serving tier — shared vs per-session cache under N threads × M clients (`BENCH_concurrency.json`) |
//!
//! Reported times are wall-clock plus the simulated wire time (the
//! virtual JDBC link), matching how the paper's numbers include both
//! computation and transfer.

pub mod plans;
pub mod report;
pub mod setup;

pub use report::{JsonLog, Table};
pub use setup::{load_uis, uis_link_profile, Setup};

use std::time::Duration;
use tango_core::engine::ExecReport;
use tango_core::phys::PhysNode;
use tango_core::Tango;

/// Execute a fixed physical plan, returning (total time, result rows).
/// Total time = compute wall time + virtual wire time, like the paper's
/// measurements.
pub fn time_plan(tango: &mut Tango, plan: &PhysNode) -> (Duration, usize) {
    let (t, rows, _) = time_plan_report(tango, plan);
    (t, rows)
}

/// Like [`time_plan`], but also returns the per-operator execution
/// report (for the machine-readable JSON emitted next to each figure).
pub fn time_plan_report(tango: &mut Tango, plan: &PhysNode) -> (Duration, usize, ExecReport) {
    match tango.execute_physical(plan) {
        Ok((rel, report)) => (report.total(), rel.len(), report),
        Err(e) => panic!("plan failed: {e}\n{}", plan.render()),
    }
}

/// Optimize + execute a temporal-SQL query (the "optimizer's choice"
/// rows of the figures; includes optimization time, as in the paper).
pub fn time_query(tango: &mut Tango, sql: &str) -> (Duration, usize, String) {
    let (t, rows, explain, _) = time_query_report(tango, sql);
    (t, rows, explain)
}

/// Like [`time_query`], but also returns the execution report.
pub fn time_query_report(tango: &mut Tango, sql: &str) -> (Duration, usize, String, ExecReport) {
    match tango.query(sql) {
        Ok((rel, report)) => {
            let t = report.total();
            (t, rel.len(), report.optimized.explain(), report.exec)
        }
        Err(e) => panic!("query failed: {e}\nsql: {sql}"),
    }
}
