//! Hand-built physical plans replicating the exact plan shapes of
//! Figures 7, 9 and the Query 3/4 plan pairs of the paper, plus the
//! temporal-SQL texts used for the "optimizer's choice" series.

use std::sync::Arc;
use tango_algebra::date::format_date;
use tango_algebra::{AggFunc, AggSpec, CmpOp, Day, Expr, ProjItem, SortSpec, Value};
use tango_core::phys::{Algo, PhysNode};
use tango_minidb::Connection;

/// PhysNode builder that derives schemas as it stacks algorithms.
pub struct PlanBuilder {
    conn: Connection,
}

impl PlanBuilder {
    pub fn new(conn: &Connection) -> Self {
        PlanBuilder { conn: conn.clone() }
    }

    pub fn scan(&self, table: &str) -> PhysNode {
        let schema =
            self.conn.table_schema(table).unwrap_or_else(|| panic!("unknown table {table}"));
        PhysNode {
            algo: Algo::ScanD(table.to_string()),
            schema: Arc::new(schema),
            children: vec![],
        }
    }

    pub fn un(&self, algo: Algo, child: PhysNode) -> PhysNode {
        let schema = Arc::new(
            algo.output_schema(&[child.schema.as_ref()])
                .unwrap_or_else(|e| panic!("schema derivation failed for {}: {e}", algo.label())),
        );
        PhysNode { algo, schema, children: vec![child] }
    }

    pub fn bin(&self, algo: Algo, l: PhysNode, r: PhysNode) -> PhysNode {
        let schema = Arc::new(
            algo.output_schema(&[l.schema.as_ref(), r.schema.as_ref()])
                .unwrap_or_else(|e| panic!("schema derivation failed for {}: {e}", algo.label())),
        );
        PhysNode { algo, schema, children: vec![l, r] }
    }
}

fn eqp(l: &str, r: &str) -> Vec<(String, String)> {
    vec![(l.to_string(), r.to_string())]
}

fn count_agg() -> (Vec<String>, Vec<AggSpec>) {
    (vec!["PosID".to_string()], vec![AggSpec::new(AggFunc::Count, Some("PosID"), "Cnt")])
}

/// The overlap window predicate `T1 < end AND T2 > start`.
pub fn window_pred(start: Day, end: Day) -> Expr {
    Expr::overlaps("T1", "T2", Expr::Lit(Value::Date(start)), Expr::Lit(Value::Date(end)))
}

pub fn payrate_pred() -> Expr {
    Expr::cmp(CmpOp::Gt, Expr::col("PayRate"), Expr::lit(Value::Double(10.0)))
}

fn proj_cols(cols: &[&str]) -> Vec<ProjItem> {
    cols.iter().map(|c| ProjItem::col(*c)).collect()
}

// ====================================================================
// Query 1 (Figure 7): temporal aggregation over POSITION, sorted output
// ====================================================================

pub fn q1_sql(table: &str) -> String {
    format!(
        "VALIDTIME SELECT PosID, COUNT(PosID) AS Cnt FROM {table} \
         GROUP BY PosID ORDER BY PosID"
    )
}

/// The three plans of Figure 7.
pub fn q1_plans(b: &PlanBuilder, table: &str) -> Vec<(&'static str, PhysNode)> {
    let (group_by, aggs) = count_agg();
    let dbms_proj =
        |b: &PlanBuilder| b.un(Algo::ProjectD(proj_cols(&["PosID", "T1", "T2"])), b.scan(table));
    let sort_keys = SortSpec::by(["PosID", "T1"]);

    // Plan 1: sort in the DBMS, aggregate in the middleware
    let p1 = b.un(
        Algo::TAggrM { group_by: group_by.clone(), aggs: aggs.clone() },
        b.un(Algo::TransferM, b.un(Algo::SortD(sort_keys.clone()), dbms_proj(b))),
    );

    // Plan 2: sort and aggregate in the middleware
    let p2 = b.un(
        Algo::TAggrM { group_by: group_by.clone(), aggs: aggs.clone() },
        b.un(Algo::SortM(sort_keys.clone()), b.un(Algo::TransferM, dbms_proj(b))),
    );

    // Plan 3: everything in the DBMS (constant-period SQL)
    let p3 = b.un(
        Algo::TransferM,
        b.un(
            Algo::SortD(SortSpec::by(["PosID", "T1"])),
            b.un(Algo::TAggrD { group_by, aggs }, dbms_proj(b)),
        ),
    );
    vec![("plan1 (sortD+taggrM)", p1), ("plan2 (sortM+taggrM)", p2), ("plan3 (all DBMS)", p3)]
}

// ====================================================================
// Query 2 (Figure 9): window + payrate selection, taggr ⋈ᵀ POSITION
// ====================================================================

pub fn q2_sql(start: Day, end: Day) -> String {
    format!(
        "VALIDTIME SELECT P.PosID, Cnt, P.EmpID FROM \
           (VALIDTIME SELECT PosID, COUNT(PosID) AS Cnt FROM POSITION GROUP BY PosID) A, \
           POSITION P \
         WHERE A.PosID = P.PosID AND P.PayRate > 10 \
           AND T1 < DATE '{}' AND T2 > DATE '{}' \
         ORDER BY P.PosID",
        format_date(end),
        format_date(start),
    )
}

/// The six plans discussed for Query 2 (four shown in Figure 9 plus the
/// unpushed-selection and all-DBMS variants).
pub fn q2_plans(b: &PlanBuilder, start: Day, end: Day) -> Vec<(&'static str, PhysNode)> {
    let (group_by, aggs) = count_agg();
    let win = window_pred(start, end);
    let sortspec = SortSpec::by(["PosID", "T1"]);

    // aggregation-side argument: σ_w then project to (PosID, T1, T2)
    let a_side = |filtered: bool| {
        let scan = b.scan("POSITION");
        let input = if filtered { b.un(Algo::FilterD(win.clone()), scan) } else { scan };
        b.un(Algo::ProjectD(proj_cols(&["PosID", "T1", "T2"])), input)
    };
    // middleware temporal aggregation over a DBMS-sorted argument
    let agg_m = |filtered: bool| {
        b.un(
            Algo::TAggrM { group_by: group_by.clone(), aggs: aggs.clone() },
            b.un(Algo::TransferM, b.un(Algo::SortD(sortspec.clone()), a_side(filtered))),
        )
    };
    // join-side POSITION: σ_w ∧ payrate in the DBMS
    let p_side = || b.un(Algo::FilterD(Expr::and(win.clone(), payrate_pred())), b.scan("POSITION"));
    let eq = eqp("PosID", "PosID");

    // Plan 1: taggr in the middleware; join, sort in the DBMS
    let p1 = b.un(
        Algo::TransferM,
        b.un(
            Algo::SortD(SortSpec::by(["PosID"])),
            b.bin(Algo::TJoinD(eq.clone()), b.un(Algo::TransferD, agg_m(true)), p_side()),
        ),
    );

    // Plan 2: + temporal join in the middleware (right side sorted in DBMS)
    let p2 = b.bin(
        Algo::TMergeJoinM(eq.clone()),
        agg_m(true),
        b.un(Algo::TransferM, b.un(Algo::SortD(SortSpec::by(["PosID"])), p_side())),
    );

    // Plan 3: + sorting in the middleware
    let p3 = b.bin(
        Algo::TMergeJoinM(eq.clone()),
        agg_m(true),
        b.un(Algo::SortM(SortSpec::by(["PosID"])), b.un(Algo::TransferM, p_side())),
    );

    // Plan 4: + selection in the middleware (whole base relation crosses
    // the wire)
    let p4 = b.bin(
        Algo::TMergeJoinM(eq.clone()),
        agg_m(true),
        b.un(
            Algo::SortM(SortSpec::by(["PosID"])),
            b.un(
                Algo::FilterM(Expr::and(win.clone(), payrate_pred())),
                b.un(Algo::TransferM, b.scan("POSITION")),
            ),
        ),
    );

    // Plan 5: like Plan 1, but no selection on the aggregation argument
    let p5 = b.un(
        Algo::TransferM,
        b.un(
            Algo::SortD(SortSpec::by(["PosID"])),
            b.bin(Algo::TJoinD(eq.clone()), b.un(Algo::TransferD, agg_m(false)), p_side()),
        ),
    );

    // Plan 6: everything in the DBMS
    let p6 = b.un(
        Algo::TransferM,
        b.un(
            Algo::SortD(SortSpec::by(["PosID"])),
            b.bin(Algo::TJoinD(eq), b.un(Algo::TAggrD { group_by, aggs }, a_side(true)), p_side()),
        ),
    );

    vec![
        ("plan1 (taggrM)", p1),
        ("plan2 (taggrM+tjoinM)", p2),
        ("plan3 (+sortM)", p3),
        ("plan4 (+filterM)", p4),
        ("plan5 (no arg filter)", p5),
        ("plan6 (all DBMS)", p6),
    ]
}

// ====================================================================
// Query 3 (Figure 11a): temporal self-join
// ====================================================================

pub fn q3_sql(bound: Day) -> String {
    format!(
        "VALIDTIME SELECT A.PosID, A.EmpID, B.EmpID FROM POSITION A, POSITION B \
         WHERE A.PosID = B.PosID AND A.T1 < DATE '{0}' AND B.T1 < DATE '{0}' \
         ORDER BY A.PosID",
        format_date(bound),
    )
}

pub fn q3_plans(b: &PlanBuilder, bound: Day) -> Vec<(&'static str, PhysNode)> {
    let sel = Expr::cmp(CmpOp::Lt, Expr::col("T1"), Expr::Lit(Value::Date(bound)));
    let side = || {
        b.un(
            Algo::ProjectD(proj_cols(&["PosID", "EmpID", "T1", "T2"])),
            b.un(Algo::FilterD(sel.clone()), b.scan("POSITION")),
        )
    };
    let eq = eqp("PosID", "PosID");

    // Plan 1: all in the DBMS
    let p1 = b.un(
        Algo::TransferM,
        b.un(Algo::SortD(SortSpec::by(["PosID"])), b.bin(Algo::TJoinD(eq.clone()), side(), side())),
    );

    // Plan 2: temporal join in the middleware (both sides sorted in the
    // DBMS; the merge output needs no final sort)
    let sorted_side = || b.un(Algo::TransferM, b.un(Algo::SortD(SortSpec::by(["PosID"])), side()));
    let p2 = b.bin(Algo::TMergeJoinM(eq), sorted_side(), sorted_side());

    vec![("plan1 (all DBMS)", p1), ("plan2 (tjoinM)", p2)]
}

// ====================================================================
// Query 4 (Figure 11b): regular join POSITION ⋈ EMPLOYEE
// ====================================================================

pub fn q4_sql(pos_table: &str) -> String {
    format!(
        "SELECT P.PosID, E.EmpName, E.Address FROM {pos_table} P, EMPLOYEE E \
         WHERE P.EmpID = E.EmpID ORDER BY P.PosID"
    )
}

/// Plan 1 of Figure 11(b): sort + merge join + projection in the
/// middleware. Plans 2/3 are forced DBMS join methods — issued as hinted
/// SQL (`/*+ USE_NL */`, `/*+ USE_MERGE */`) exactly like the paper used
/// Oracle hints; see the `fig11b_query4` binary.
pub fn q4_plan1(b: &PlanBuilder, pos_table: &str) -> PhysNode {
    let pos = b.un(Algo::ProjectD(proj_cols(&["PosID", "EmpID"])), b.scan(pos_table));
    let emp = b.un(Algo::ProjectD(proj_cols(&["EmpID", "EmpName", "Address"])), b.scan("EMPLOYEE"));
    let join = b.bin(
        Algo::MergeJoinM(eqp("EmpID", "EmpID")),
        b.un(Algo::SortM(SortSpec::by(["EmpID"])), b.un(Algo::TransferM, pos)),
        b.un(Algo::SortM(SortSpec::by(["EmpID"])), b.un(Algo::TransferM, emp)),
    );
    b.un(
        Algo::SortM(SortSpec::by(["PosID"])),
        b.un(Algo::ProjectM(proj_cols(&["PosID", "EmpName", "Address"])), join),
    )
}

/// Hinted SQL for the DBMS-side plans of Query 4.
pub fn q4_dbms_sql(pos_table: &str, hint: &str) -> String {
    format!(
        "SELECT {hint} P.PosID AS PosID, E.EmpName AS EmpName, E.Address AS Address \
         FROM {pos_table} P, EMPLOYEE E WHERE P.EmpID = E.EmpID ORDER BY PosID"
    )
}

/// Which site each interesting operator landed on — used to classify the
/// optimizer's chosen plan against the fixed plan shapes.
pub fn placement_summary(plan: &PhysNode) -> String {
    let has = |f: &dyn Fn(&Algo) -> bool| plan.any(f);
    let mut parts = Vec::new();
    if has(&|a| matches!(a, Algo::TAggrM { .. })) {
        parts.push("taggr=M");
    }
    if has(&|a| matches!(a, Algo::TAggrD { .. })) {
        parts.push("taggr=D");
    }
    if has(&|a| matches!(a, Algo::TMergeJoinM(_))) {
        parts.push("tjoin=M");
    }
    if has(&|a| matches!(a, Algo::TJoinD(_))) {
        parts.push("tjoin=D");
    }
    if has(&|a| matches!(a, Algo::MergeJoinM(_))) {
        parts.push("join=M");
    }
    if has(&|a| matches!(a, Algo::JoinD(_))) {
        parts.push("join=D");
    }
    if has(&|a| matches!(a, Algo::SortM(_))) {
        parts.push("sort=M");
    }
    if has(&|a| matches!(a, Algo::SortD(_))) {
        parts.push("sort=D");
    }
    if has(&|a| matches!(a, Algo::FilterM(_))) {
        parts.push("filter=M");
    }
    if has(&|a| matches!(a, Algo::TransferD)) {
        parts.push("T^D");
    }
    parts.join(" ")
}
