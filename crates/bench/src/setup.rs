//! Experiment environment: database + UIS data + calibrated middleware.

use tango_algebra::Relation;
use tango_core::Tango;
use tango_minidb::{Connection, Database, Link, LinkProfile, WireMode};
use tango_uis::{generate_employee, generate_position, UisConfig};

/// The link profile used by all experiments: a LAN-ish simulated JDBC
/// connection (Section 3.2 discusses the row-prefetch setting; 50 is a
/// typical JDBC default).
pub fn uis_link_profile() -> LinkProfile {
    LinkProfile {
        roundtrip_latency_us: 500.0,
        bytes_per_sec: 4.0 * 1024.0 * 1024.0,
        row_prefetch: 50,
        mode: WireMode::Virtual,
    }
}

/// A ready experiment environment.
pub struct Setup {
    pub db: Database,
    pub conn: Connection,
    pub tango: Tango,
    pub position: Relation,
    pub employee: Relation,
}

/// Load the UIS dataset **server-side** (base relations pre-exist in the
/// DBMS; loading them does not cross the middleware wire), ANALYZE
/// everything, and calibrate the middleware's cost factors.
pub fn load_uis(cfg: &UisConfig, profile: LinkProfile, calibrate: bool) -> Setup {
    let db = Database::new(Link::new(profile));
    let conn = Connection::new(db.clone());
    let position = generate_position(cfg);
    let employee = generate_employee(cfg);

    db.create_table("POSITION", position.schema().as_ref().clone()).unwrap();
    db.insert_rows("POSITION", position.tuples().to_vec()).unwrap();
    db.create_table("EMPLOYEE", employee.schema().as_ref().clone()).unwrap();
    db.insert_rows("EMPLOYEE", employee.tuples().to_vec()).unwrap();
    // primary-key index on EMPLOYEE.EmpID (Oracle's USE_NL relies on it)
    conn.execute("CREATE INDEX EMP_PK ON EMPLOYEE (EmpID)").unwrap();
    db.analyze("POSITION").unwrap();
    db.analyze("EMPLOYEE").unwrap();

    let mut tango = Tango::connect(db.clone());
    if calibrate {
        tango.calibrate().expect("calibration failed");
    }
    db.link().reset();
    Setup { db, conn, tango, position, employee }
}

/// Register a size variant of POSITION (first `n` tuples) as table
/// `name`, ANALYZE it, and refresh the middleware statistics.
pub fn load_position_variant(setup: &mut Setup, name: &str, n: usize) {
    let sub = Relation::new(
        setup.position.schema().clone(),
        setup.position.tuples()[..n.min(setup.position.len())].to_vec(),
    );
    let _ = setup.db.drop_table(name, true);
    setup.db.create_table(name, sub.schema().as_ref().clone()).unwrap();
    setup.db.insert_rows(name, sub.into_tuples()).unwrap();
    setup.db.analyze(name).unwrap();
    setup.tango.refresh_statistics().unwrap();
    setup.db.link().reset();
}
