//! Figure 11(a) — Query 3: "For each position in POSITION starting
//! before <bound>, show all pairs of employees that occupied that
//! position during the same time. Sort by position."
//!
//! A temporal self-join. Expected shape (paper): plan 1 (all DBMS) wins
//! while the selection is tight; as the bound moves late enough that the
//! join result outgrows its arguments, plan 2 (middleware temporal join)
//! wins — the DBMS plan pays to sort and transfer the large result.
//! The optimizer's choice flips from plan 1 to plan 2 along the way; the
//! paper reports mis-choices in the middle range caused by the uniform
//! join-attribute assumption over the skewed PosID distribution.
//!
//! Usage: `cargo run --release -p tango-bench --bin fig11a_query3 [--small]`

use tango_algebra::date::day;
use tango_bench::plans::{placement_summary, q3_plans, q3_sql, PlanBuilder};
use tango_bench::{
    load_uis, time_plan_report, time_query_report, uis_link_profile, JsonLog, Table,
};
use tango_uis::UisConfig;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let cfg = if small { UisConfig::small(0xEC1) } else { UisConfig::default() };
    let years: Vec<i32> =
        if small { vec![1990, 2000] } else { (0..9).map(|i| 1984 + 2 * i).collect() };

    eprintln!("loading UIS ({} POSITION rows) + calibrating ...", cfg.position_rows);
    let mut setup = load_uis(&cfg, uis_link_profile(), true);

    let mut table = Table::new(
        "Figure 11(a) — Query 3 (temporal self-join), time by start bound",
        "T1 <",
        &["plan1 (all DBMS)", "plan2 (tjoinM)", "optimizer"],
    );

    let mut ops = JsonLog::new();
    for &y in &years {
        let bound = day(y, 1, 1);
        let b = PlanBuilder::new(&setup.conn);
        let mut cells = Vec::new();
        let mut result_rows = 0;
        for (name, plan) in q3_plans(&b, bound) {
            setup.db.link().reset();
            let (t, rows, report) = time_plan_report(&mut setup.tango, &plan);
            ops.push(name, y, &report);
            result_rows = rows;
            cells.push(Some(t));
        }
        setup.db.link().reset();
        let (t, _, _, report) = time_query_report(&mut setup.tango, &q3_sql(bound));
        ops.push("optimizer", y, &report);
        cells.push(Some(t));
        let chosen = setup.tango.optimize(&q3_sql(bound)).unwrap();
        let ests: Vec<String> = q3_plans(&b, bound)
            .iter()
            .map(|(n, p)| format!("{n}={:.2}s", setup.tango.estimate_physical(p).unwrap() / 1e6))
            .collect();
        eprintln!(
            "  bound={y}: result rows={result_rows} chosen [{}] est[{}] classes={} elements={}",
            placement_summary(&chosen.plan),
            ests.join(" "),
            chosen.classes,
            chosen.elements
        );
        table.row(y, cells);
    }
    table.note("paper: plan 2 overtakes plan 1 once the result outgrows the arguments");
    table.emit("fig11a_query3");
    ops.emit("fig11a_query3");
}
