//! Ablation A3 — how much do calibration and runtime feedback matter?
//!
//! Three optimizer configurations are compared on Query 2 and Query 3
//! plan choice:
//!
//! 1. **default factors** (uncalibrated ballparks),
//! 2. **calibrated** (the Du-et-al-style probing of `crate::calibrate`),
//! 3. **calibrated + feedback** (factors re-fitted from observed
//!    per-algorithm runtimes after each query — the "adaptable" loop).
//!
//! For each configuration the chosen plan is executed and compared with
//! the best fixed plan, giving a "regret" figure.
//!
//! Usage: `cargo run --release -p tango-bench --bin calibration_study [--small]`

use std::time::Duration;
use tango_algebra::date::day;
use tango_bench::plans::{placement_summary, q2_plans, q2_sql, q3_plans, q3_sql, PlanBuilder};
use tango_bench::{load_uis, time_plan, uis_link_profile};
use tango_core::cost::CostFactors;
use tango_uis::UisConfig;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let cfg = if small { UisConfig::small(0xEC1) } else { UisConfig::default() };
    eprintln!("loading UIS ({} POSITION rows) ...", cfg.position_rows);
    let mut setup = load_uis(&cfg, uis_link_profile(), false);

    let q2_end = day(1996, 1, 1);
    let q3_bound = day(1996, 1, 1);
    let b = PlanBuilder::new(&setup.conn);

    // best fixed plans as the yardstick
    let mut best_q2: Option<(&str, Duration)> = None;
    for (name, plan) in q2_plans(&b, day(1983, 1, 1), q2_end) {
        setup.db.link().reset();
        let (t, _) = time_plan(&mut setup.tango, &plan);
        if best_q2.is_none_or(|(_, bt)| t < bt) {
            best_q2 = Some((name, t));
        }
    }
    let mut best_q3: Option<(&str, Duration)> = None;
    for (name, plan) in q3_plans(&b, q3_bound) {
        setup.db.link().reset();
        let (t, _) = time_plan(&mut setup.tango, &plan);
        if best_q3.is_none_or(|(_, bt)| t < bt) {
            best_q3 = Some((name, t));
        }
    }
    let (bq2_name, bq2_t) = best_q2.unwrap();
    let (bq3_name, bq3_t) = best_q3.unwrap();
    println!("best fixed plans: Q2 {bq2_name} ({bq2_t:.2?}); Q3 {bq3_name} ({bq3_t:.2?})\n");

    let run = |setup: &mut tango_bench::Setup, label: &str| {
        for (qname, sql, best) in
            [("Q2", q2_sql(day(1983, 1, 1), q2_end), bq2_t), ("Q3", q3_sql(q3_bound), bq3_t)]
        {
            setup.db.link().reset();
            let (rel, report) = setup.tango.query(&sql).expect("query failed");
            let t = report.total();
            println!(
                "{label:24} {qname}: {:.2}s (best fixed {:.2}s, regret {:+.0}%) rows={} [{}]",
                t.as_secs_f64(),
                best.as_secs_f64(),
                (t.as_secs_f64() / best.as_secs_f64() - 1.0) * 100.0,
                rel.len(),
                placement_summary(&report.optimized.plan),
            );
        }
    };

    // 1. defaults
    setup.tango.set_factors(CostFactors::default());
    run(&mut setup, "default factors");

    // 2. calibrated
    setup.tango.calibrate().expect("calibration failed");
    run(&mut setup, "calibrated");

    // 3. calibrated + feedback (run the queries a few times, adapting)
    setup.tango.options_mut().feedback = true;
    for _ in 0..2 {
        let _ = setup.tango.query(&q2_sql(day(1983, 1, 1), q2_end));
        let _ = setup.tango.query(&q3_sql(q3_bound));
    }
    run(&mut setup, "calibrated + feedback");
    let f = setup.tango.factors();
    println!(
        "\nfinal factors: p_tm={:.3} p_td={:.3} p_sm={:.4} p_sd={:.4} p_taggm1={:.4} p_taggd1={:.3} p_mjm={:.4} p_jd={:.4}",
        f.p_tm, f.p_td, f.p_sm, f.p_sd, f.p_taggm1, f.p_taggd1, f.p_mjm, f.p_jd
    );
}
