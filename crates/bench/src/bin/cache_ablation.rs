//! Cache ablation — Figure 10's Query 2, cold vs warm through the
//! middleware-resident relation cache.
//!
//! The cold run pays the full wire bill of the chosen plan; the warm
//! runs find every DBMS fragment already resident in the middleware, so
//! each `TRANSFER^M` is served from the cache (`cache hit`) and the
//! query never touches the wire. The optimizer sees residency too
//! (`p_cached` pricing), so
//! the warm plan may differ from the cold one — both placements are
//! recorded.
//!
//! Usage: `cargo run --release -p tango-bench --bin cache_ablation \
//!         [--small] [--check]`
//!
//! Writes `BENCH_cache.json` in the working directory; `--check` exits
//! non-zero unless every warm run is at least [`REQUIRED_SPEEDUP`]×
//! faster than its cold run **and** issues zero wire round trips.

use std::time::Duration;
use tango_algebra::date::day;
use tango_bench::plans::{placement_summary, q2_sql};
use tango_bench::{load_uis, time_query_report, uis_link_profile, Table};
use tango_trace::json::Object;
use tango_uis::UisConfig;

const WARM_RUNS: usize = 3;
const REQUIRED_SPEEDUP: f64 = 1.5;

struct Sample {
    end_year: i32,
    rows: usize,
    cold: Duration,
    warm: Duration,
    cold_round_trips: u64,
    warm_round_trips: u64,
    cold_plan: String,
    warm_plan: String,
}

impl Sample {
    fn speedup(&self) -> f64 {
        self.cold.as_secs_f64() / self.warm.as_secs_f64().max(1e-9)
    }
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let check = std::env::args().any(|a| a == "--check");
    let cfg = if small { UisConfig::small(0xCAC4E) } else { UisConfig::default() };
    let years: Vec<i32> =
        if small { vec![1986, 1994, 2000] } else { vec![1986, 1990, 1994, 1998, 2000] };
    let start = day(1983, 1, 1);

    eprintln!("loading UIS ({} POSITION rows) + calibrating ...", cfg.position_rows);
    let mut setup = load_uis(&cfg, uis_link_profile(), true);

    let mut table =
        Table::new("Cache ablation — Query 2, cold vs warm", "window end", &["cold", "warm"]);

    let mut failed = false;
    let mut samples = Vec::new();
    for &y in &years {
        let sql = q2_sql(start, day(y, 1, 1));

        // Cold: empty cache, every transfer crosses the wire.
        setup.tango.clear_cache();
        setup.db.link().reset();
        let cold_plan = placement_summary(&setup.tango.optimize(&sql).unwrap().plan);
        let (cold, cold_rows, _, _) = time_query_report(&mut setup.tango, &sql);
        let cold_round_trips = setup.db.link().roundtrips();

        // Warm: the fragments now reside in the middleware. Best of
        // WARM_RUNS, but *every* run must stay off the wire.
        let warm_plan = placement_summary(&setup.tango.optimize(&sql).unwrap().plan);
        let mut warm = Duration::MAX;
        let mut warm_round_trips = 0;
        for _ in 0..WARM_RUNS {
            let before = setup.db.link().roundtrips();
            let (t, rows, _, _) = time_query_report(&mut setup.tango, &sql);
            assert_eq!(rows, cold_rows, "warm result size differs from cold at {y}");
            warm = warm.min(t);
            warm_round_trips = warm_round_trips.max(setup.db.link().roundtrips() - before);
        }

        let s = Sample {
            end_year: y,
            rows: cold_rows,
            cold,
            warm,
            cold_round_trips,
            warm_round_trips,
            cold_plan,
            warm_plan,
        };
        eprintln!(
            "  end {y}: cold {:>9.3}ms ({} round trips)  warm {:>9.3}ms ({} round trips)  {:.2}x",
            s.cold.as_secs_f64() * 1e3,
            s.cold_round_trips,
            s.warm.as_secs_f64() * 1e3,
            s.warm_round_trips,
            s.speedup(),
        );
        if s.cold_plan != s.warm_plan {
            eprintln!("    plan flip: cold [{}] -> warm [{}]", s.cold_plan, s.warm_plan);
        }
        if s.speedup() < REQUIRED_SPEEDUP {
            eprintln!("    FAIL: warm speedup {:.2}x < {REQUIRED_SPEEDUP}x", s.speedup());
            failed = true;
        }
        if s.warm_round_trips > 0 {
            eprintln!("    FAIL: warm run touched the wire ({} round trips)", s.warm_round_trips);
            failed = true;
        }
        table.row(y, vec![Some(s.cold), Some(s.warm)]);
        samples.push(s);
    }

    let stats = setup.tango.cache().stats();
    table.note(format!(
        "cache after the sweep: {} hits, {} misses, {} bytes resident",
        stats.hits,
        stats.misses,
        setup.tango.cache().bytes()
    ));
    table.emit("cache_ablation");

    let window_objs: Vec<String> = samples
        .iter()
        .map(|s| {
            Object::new()
                .number("end_year", s.end_year as f64)
                .number("rows", s.rows as f64)
                .number("cold_us", s.cold.as_secs_f64() * 1e6)
                .number("warm_us", s.warm.as_secs_f64() * 1e6)
                .number("speedup", s.speedup())
                .number("cold_round_trips", s.cold_round_trips as f64)
                .number("warm_round_trips", s.warm_round_trips as f64)
                .string("cold_plan", &s.cold_plan)
                .string("warm_plan", &s.warm_plan)
                .build()
        })
        .collect();
    let json = Object::new()
        .string("bench", "cache_ablation")
        .number("position_rows", cfg.position_rows as f64)
        .number("required_speedup", REQUIRED_SPEEDUP)
        .raw("windows", &format!("[{}]", window_objs.join(",")))
        .raw(
            "cache",
            &Object::new()
                .number("hits", stats.hits as f64)
                .number("misses", stats.misses as f64)
                .number("insertions", stats.insertions as f64)
                .number("evictions", stats.evictions as f64)
                .number("bytes", setup.tango.cache().bytes() as f64)
                .build(),
        )
        .build();
    std::fs::write("BENCH_cache.json", &json).expect("write BENCH_cache.json");
    eprintln!("wrote BENCH_cache.json");

    if check && failed {
        std::process::exit(1);
    }
}
