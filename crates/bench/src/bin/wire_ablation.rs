//! Wire-profile ablation — Section 3.2 of the paper observes that
//! `TRANSFER^M` "is also affected by the row-prefetch setting, which
//! specifies the number of tuples fetched at a time by JDBC", and that
//! transfer costs drive the middleware/DBMS split.
//!
//! This harness sweeps (a) the JDBC row-prefetch and (b) the link
//! bandwidth, showing how each changes the measured transfer time and —
//! more interestingly — how the *optimizer's placement decision* for
//! Query 1 flips as transfers get cheaper or dearer (on an instant wire
//! even the DBMS's awful temporal aggregation would lose to shipping
//! nothing; on a slow one the middleware must earn its transfers).
//!
//! Usage: `cargo run --release -p tango-bench --bin wire_ablation`

use std::time::Instant;
use tango_bench::plans::{placement_summary, q1_sql};
use tango_bench::setup::load_uis;
use tango_minidb::{LinkProfile, WireMode};
use tango_uis::UisConfig;

fn main() {
    let cfg = UisConfig { position_rows: 20_000, employee_rows: 8_000, seed: 0xEC1 };

    println!("== row-prefetch sweep: TRANSFER^M of POSITION ({} rows) ==", cfg.position_rows);
    println!("{:>9} {:>12} {:>12} {:>12}", "prefetch", "roundtrips", "wire", "total");
    for prefetch in [1usize, 10, 50, 200, 1000] {
        let profile = LinkProfile {
            roundtrip_latency_us: 500.0,
            bytes_per_sec: 4.0 * 1024.0 * 1024.0,
            row_prefetch: prefetch,
            mode: WireMode::Virtual,
        };
        let setup = load_uis(&cfg, profile, false);
        setup.db.link().reset();
        let t0 = Instant::now();
        let r = setup.conn.query_all("SELECT PosID, EmpID, T1, T2 FROM POSITION").unwrap();
        let wall = t0.elapsed();
        let wire = setup.db.link().total();
        println!(
            "{prefetch:>9} {:>12} {:>11.2}s {:>11.2}s",
            r.len().div_ceil(prefetch),
            wire.as_secs_f64(),
            (wall + wire).as_secs_f64()
        );
    }

    println!("\n== bandwidth sweep: Query 1 placement decision ==");
    println!("{:>12} {:>10} {:>12}  chosen placement", "bytes/sec", "p_tm", "est. cost");
    for mbps in [0.5f64, 2.0, 8.0, 64.0, 1e6] {
        let profile = LinkProfile {
            roundtrip_latency_us: if mbps >= 1e6 { 0.0 } else { 500.0 },
            bytes_per_sec: mbps * 1024.0 * 1024.0,
            row_prefetch: 50,
            mode: WireMode::Virtual,
        };
        let mut setup = load_uis(&cfg, profile, true);
        let q = setup.tango.optimize(&q1_sql("POSITION")).unwrap();
        let label = if mbps >= 1e6 { "(instant)".to_string() } else { format!("{mbps} MB/s") };
        println!(
            "{label:>12} {:>10.3} {:>10.0}ms  {}",
            setup.tango.factors().p_tm,
            q.est_cost_us / 1e3,
            placement_summary(&q.plan)
        );
    }
    println!(
        "\nSlower wires raise the calibrated p_tm, making the optimizer keep more \
         work in the DBMS; faster wires pull it into the middleware."
    );
}
