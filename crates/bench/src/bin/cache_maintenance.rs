//! Cache maintenance — steady-state throughput under write mixes,
//! drop-on-write vs refresh-by-delta.
//!
//! A serving loop re-runs two warm cacheable fragments (a selection
//! chain and a `TAGGR^D` aggregate over POSITION) while a writer dirties
//! the base table on 1 % / 10 % / 30 % of the iterations. With
//! drop-on-write every write evicts the fragments and the next read
//! pays a full refill over the wire; with refresh-by-delta the engine
//! replays the table's delta log over the resident relation (or
//! refetches only the touched aggregate groups), so the warm speedup
//! survives the write.
//!
//! Usage: `cargo run --release -p tango-bench --bin cache_maintenance \
//!         [--small] [--check]`
//!
//! Writes `BENCH_maintenance.json`; `--check` exits non-zero unless
//! refresh-by-delta beats drop-on-write on read throughput at the 10 %
//! write mix (and never serves a different result).

use std::time::Duration;
use tango_algebra::date::day;
use tango_algebra::{tup, CmpOp, Expr, ProjItem, SortSpec, Value};
use tango_bench::plans::PlanBuilder;
use tango_bench::{load_uis, time_plan, uis_link_profile, Table};
use tango_core::phys::{Algo, PhysNode};
use tango_trace::json::Object;
use tango_uis::UisConfig;

const WRITE_MIXES: &[u32] = &[1, 10, 30]; // percent of iterations that write

struct Side {
    reads: u64,
    read_time: Duration,
    stale_serves: u64,
    round_trips: u64,
    refreshes: u64,
    refresh_bails: u64,
    invalidations: u64,
    insertions: u64,
}

impl Side {
    fn qps(&self) -> f64 {
        self.reads as f64 / self.read_time.as_secs_f64().max(1e-9)
    }
}

/// Selection chain, delivered sorted on *every* column so a delta merge
/// is always order-determined.
fn chain_plan(b: &PlanBuilder) -> PhysNode {
    let pred = Expr::cmp(CmpOp::Gt, Expr::col("PayRate"), Expr::lit(Value::Double(10.0)));
    let order = SortSpec::by(["PosID", "EmpID", "Dept", "PosCode", "PayRate", "Hours", "T1", "T2"]);
    b.un(Algo::TransferM, b.un(Algo::SortD(order), b.un(Algo::FilterD(pred), b.scan("POSITION"))))
}

/// Query 1's all-DBMS plan: `TAGGR^D` over POSITION, sorted on
/// (PosID, T1) — unique over the aggregate's constant intervals, so a
/// touched-group refresh is order-determined too.
fn taggr_plan(b: &PlanBuilder) -> PhysNode {
    let group_by = vec!["PosID".to_string()];
    let aggs =
        vec![tango_algebra::AggSpec::new(tango_algebra::AggFunc::Count, Some("PosID"), "Cnt")];
    let proj = ["PosID", "T1", "T2"].iter().map(|c| ProjItem::col(*c)).collect();
    b.un(
        Algo::TransferM,
        b.un(
            Algo::SortD(SortSpec::by(["PosID", "T1"])),
            b.un(Algo::TAggrD { group_by, aggs }, b.un(Algo::ProjectD(proj), b.scan("POSITION"))),
        ),
    )
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let check = std::env::args().any(|a| a == "--check");
    let cfg = if small { UisConfig::small(0xDE17A) } else { UisConfig::default() };
    let iters: u64 = if small { 120 } else { 400 };

    eprintln!("loading UIS ({} POSITION rows) + calibrating ...", cfg.position_rows);
    let mut setup = load_uis(&cfg, uis_link_profile(), true);
    let b = PlanBuilder::new(&setup.conn);
    let plans = [chain_plan(&b), taggr_plan(&b)];

    let mut table = Table::new(
        "Cache maintenance — steady-state read latency under writes",
        "write %",
        &["drop-on-write", "refresh-by-delta"],
    );
    let mut failed = false;
    let mut mix_objs = Vec::new();
    let mut next_id = 900_000i64;

    for &pct in WRITE_MIXES {
        let period = (100 / pct).max(1) as u64; // write every `period` iterations
        let mut sides = Vec::new();
        for refresh_on in [false, true] {
            setup.tango.options_mut().cache_refresh = refresh_on;
            setup.tango.clear_cache();
            setup.db.link().reset();
            // warm both fragments (populate + one earned hit each)
            for plan in &plans {
                time_plan(&mut setup.tango, plan);
                time_plan(&mut setup.tango, plan);
            }
            let rt0 = setup.db.link().roundtrips();
            let stats0 = setup.tango.cache().stats();

            let mut reads = 0u64;
            let mut read_time = Duration::ZERO;
            let mut last_rows = vec![0usize; plans.len()];
            for i in 0..iters {
                if i % period == 0 {
                    next_id += 1;
                    setup
                        .db
                        .insert_rows(
                            "POSITION",
                            vec![tup![
                                next_id,
                                next_id % 977,
                                7,
                                Value::Str("Maint".into()),
                                Value::Double(19.5),
                                40,
                                Value::Date(day(1995, 1, 1)),
                                Value::Date(day(1999, 1, 1))
                            ]],
                        )
                        .unwrap();
                }
                for (p, plan) in plans.iter().enumerate() {
                    let (t, n) = time_plan(&mut setup.tango, plan);
                    read_time += t;
                    reads += 1;
                    last_rows[p] = n;
                }
            }
            let s = setup.tango.cache().stats();
            let round_trips = setup.db.link().roundtrips() - rt0;
            // correctness gate: the last warm answer must match a cold
            // run over this side's final table state
            setup.tango.clear_cache();
            let stale_serves = plans
                .iter()
                .zip(&last_rows)
                .filter(|(plan, &warm)| time_plan(&mut setup.tango, plan).1 != warm)
                .count() as u64;
            sides.push(Side {
                reads,
                read_time,
                stale_serves,
                round_trips,
                refreshes: s.refreshes - stats0.refreshes,
                refresh_bails: s.refresh_bails - stats0.refresh_bails,
                invalidations: s.invalidations - stats0.invalidations,
                insertions: s.insertions - stats0.insertions,
            });
        }
        let (drop, refresh) = (&sides[0], &sides[1]);
        let speedup = refresh.qps() / drop.qps().max(1e-9);
        eprintln!(
            "  {pct:>2}% writes: drop {:>8.1} qps ({} round trips, {} invalidations)  \
             refresh {:>8.1} qps ({} round trips, {} refreshes, {} bails)  {speedup:.2}x",
            drop.qps(),
            drop.round_trips,
            drop.invalidations,
            refresh.qps(),
            refresh.round_trips,
            refresh.refreshes,
            refresh.refresh_bails,
        );
        if refresh.stale_serves + drop.stale_serves > 0 {
            eprintln!(
                "    FAIL: warm results diverged from a cold control \
                 (drop: {}, refresh: {} plans)",
                drop.stale_serves, refresh.stale_serves
            );
            failed = true;
        }
        if pct == 10 && refresh.qps() <= drop.qps() {
            eprintln!(
                "    FAIL: refresh-by-delta must beat drop-on-write at the 10% mix \
                 ({:.1} vs {:.1} qps)",
                refresh.qps(),
                drop.qps()
            );
            failed = true;
        }
        table.row(
            pct as i32,
            vec![
                Some(drop.read_time / drop.reads as u32),
                Some(refresh.read_time / refresh.reads as u32),
            ],
        );
        let side_obj = |s: &Side| {
            Object::new()
                .number("qps", s.qps())
                .number("reads", s.reads as f64)
                .number("read_time_us", s.read_time.as_secs_f64() * 1e6)
                .number("stale_serves", s.stale_serves as f64)
                .number("round_trips", s.round_trips as f64)
                .number("refreshes", s.refreshes as f64)
                .number("refresh_bails", s.refresh_bails as f64)
                .number("invalidations", s.invalidations as f64)
                .number("insertions", s.insertions as f64)
                .build()
        };
        mix_objs.push(
            Object::new()
                .number("write_pct", pct as f64)
                .number("speedup", speedup)
                .raw("drop_on_write", &side_obj(drop))
                .raw("refresh_by_delta", &side_obj(refresh))
                .build(),
        );
    }
    table.note("reads are the mean per-query wall+wire time over the steady-state loop");
    table.emit("cache_maintenance");

    let json = Object::new()
        .string("bench", "cache_maintenance")
        .number("position_rows", cfg.position_rows as f64)
        .number("iterations", iters as f64)
        .raw("mixes", &format!("[{}]", mix_objs.join(",")))
        .build();
    std::fs::write("BENCH_maintenance.json", &json).expect("write BENCH_maintenance.json");
    eprintln!("wrote BENCH_maintenance.json");

    if check && failed {
        std::process::exit(1);
    }
}
