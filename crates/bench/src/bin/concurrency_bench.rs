//! Concurrency bench — the serving tier under hundreds of simulated
//! clients.
//!
//! Sweeps worker threads {1, 2, 4, 8} × cache mode {shared, private} ×
//! workload mix {read-heavy 95/5, mixed 80/20}. Every cell spins up
//! `CLIENTS_PER_THREAD` short-lived sessions per thread (each client
//! connects, runs `OPS_PER_CLIENT` operations, disconnects), measuring
//! queries/sec over the wall clock plus p50/p99 per-query latency
//! (compute + simulated wire, like every other bench). `shared` clients
//! use [`Tango::connect`] — one sharded `MidCache` per database —
//! while `private` clients use [`Tango::connect_private`], the old
//! session-local cache, so the delta is exactly the serving tier.
//!
//! Writes are version-bumping no-op `DELETE`s on POSITION: they leave
//! the data (and therefore every read answer) untouched, but each one
//! advances POSITION's write-version and invalidates every cached
//! POSITION fragment, exercising cross-session invalidation at the
//! configured rate.
//!
//! Usage: `cargo run --release -p tango-bench --bin concurrency_bench \
//!         [--small] [--check]`
//!
//! Writes `BENCH_concurrency.json`; `--check` exits non-zero unless the
//! shared cache beats the private caches on wire round trips at every
//! thread count on the read-heavy mix (and on queries/sec from 4
//! threads up, full scale only — wall-clock at `--small` scale is too
//! noisy to gate CI on).

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};
use tango_bench::{load_uis, uis_link_profile};
use tango_core::cache::CacheStats;
use tango_core::Tango;
use tango_minidb::Connection;
use tango_trace::json::Object;
use tango_uis::UisConfig;

/// Simulated clients handed to each worker thread in a cell.
const CLIENTS_PER_THREAD: usize = 12;
const CLIENTS_PER_THREAD_SMALL: usize = 6;
/// Queries/writes each client issues before disconnecting.
const OPS_PER_CLIENT: usize = 10;
const OPS_PER_CLIENT_SMALL: usize = 8;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// (mix name, write percentage of the op stream).
const MIXES: [(&str, u64); 2] = [("read-heavy", 5), ("mixed", 20)];

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The read pool: narrow temporal aggregations over POSITION (hit by
/// the write churn) and conventional EMPLOYEE lookups (never
/// invalidated), so a mixed cell still has fragments that stay warm.
fn read_pool() -> Vec<String> {
    let mut pool: Vec<String> = [8, 16, 24, 32]
        .iter()
        .map(|k| {
            format!(
                "VALIDTIME SELECT PosID, COUNT(PosID) AS Cnt FROM POSITION \
                 WHERE PosID < {k} GROUP BY PosID ORDER BY PosID"
            )
        })
        .collect();
    for k in [400, 800] {
        pool.push(format!(
            "SELECT EmpID, Dept, Salary FROM EMPLOYEE WHERE EmpID < {k} ORDER BY EmpID"
        ));
    }
    pool
}

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

fn sum_stats(acc: &mut CacheStats, s: &CacheStats) {
    acc.hits += s.hits;
    acc.misses += s.misses;
    acc.bypasses += s.bypasses;
    acc.insertions += s.insertions;
    acc.evictions += s.evictions;
    acc.invalidations += s.invalidations;
    acc.rejections += s.rejections;
    acc.admission_rejects += s.admission_rejects;
    acc.duplicate_populates += s.duplicate_populates;
    acc.refreshes += s.refreshes;
    acc.refresh_bytes += s.refresh_bytes;
    acc.refresh_bails += s.refresh_bails;
}

fn delta_stats(after: &CacheStats, before: &CacheStats) -> CacheStats {
    CacheStats {
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        bypasses: after.bypasses - before.bypasses,
        insertions: after.insertions - before.insertions,
        evictions: after.evictions - before.evictions,
        invalidations: after.invalidations - before.invalidations,
        rejections: after.rejections - before.rejections,
        admission_rejects: after.admission_rejects - before.admission_rejects,
        duplicate_populates: after.duplicate_populates - before.duplicate_populates,
        refreshes: after.refreshes - before.refreshes,
        refresh_bytes: after.refresh_bytes - before.refresh_bytes,
        refresh_bails: after.refresh_bails - before.refresh_bails,
    }
}

struct Cell {
    mix: &'static str,
    mode: &'static str,
    threads: usize,
    clients: usize,
    ops: u64,
    wall: Duration,
    p50_us: u64,
    p99_us: u64,
    round_trips: u64,
    wire: Duration,
    cache: CacheStats,
}

impl Cell {
    fn qps(&self) -> f64 {
        self.ops as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    setup: &tango_bench::Setup,
    mix: &'static str,
    write_pct: u64,
    mode: &'static str,
    threads: usize,
    clients_per_thread: usize,
    ops_per_client: usize,
    pool: &Arc<Vec<String>>,
    expected: &Arc<Vec<usize>>,
    factors: tango_core::cost::CostFactors,
) -> Cell {
    let db = &setup.db;
    // writes staled POSITION's statistics in the previous cell; restore
    // them so every fresh session can collect a usable catalog
    db.analyze("POSITION").unwrap();
    {
        let mut t = Tango::connect(db.clone());
        t.clear_cache();
    }
    let shared_before = Tango::connect(db.clone()).cache().stats();

    // two barriers: every worker finishes its (wire-crossing) session
    // setup before the link meter resets, and no client op runs before
    // the wall clock starts
    let ready = Arc::new(Barrier::new(threads + 1));
    let go = Arc::new(Barrier::new(threads + 1));
    let mut handles = Vec::new();
    for t in 0..threads {
        let db = db.clone();
        let pool = pool.clone();
        let expected = expected.clone();
        let ready = ready.clone();
        let go = go.clone();
        handles.push(thread::spawn(move || {
            // sessions are pre-created (and their catalogs collected)
            // before any writer in the cell can stale the statistics
            let mut sessions: Vec<(usize, Tango)> = (0..clients_per_thread)
                .map(|k| {
                    let client = t * clients_per_thread + k;
                    let mut tango = if mode == "shared" {
                        Tango::connect(db.clone())
                    } else {
                        Tango::connect_private(db.clone())
                    };
                    tango.set_factors(factors);
                    tango.refresh_statistics().unwrap();
                    (client, tango)
                })
                .collect();
            let conn = Connection::new(db.clone());
            ready.wait();
            go.wait();

            let mut latencies_us = Vec::new();
            let mut ops = 0u64;
            let mut private_stats = CacheStats::default();
            for (client, mut tango) in sessions.drain(..) {
                let mut state = splitmix(0xC0_CC0 ^ (write_pct << 48) ^ ((client as u64) << 8));
                for _ in 0..ops_per_client {
                    state = splitmix(state);
                    if state % 100 < write_pct {
                        // no-op delete: bumps POSITION's write-version
                        // (invalidating every cached POSITION fragment)
                        // without changing any answer
                        let ghost = 900_000_000 + state % 1_000;
                        conn.execute(&format!("DELETE FROM POSITION WHERE PosID = {ghost}"))
                            .unwrap();
                    } else {
                        let qi = ((state / 100) as usize) % pool.len();
                        let (rel, report) = tango.query(&pool[qi]).unwrap();
                        assert_eq!(
                            rel.len(),
                            expected[qi],
                            "client {client} got a wrong-sized answer for pool query {qi}"
                        );
                        latencies_us.push(report.total().as_micros() as u64);
                    }
                    ops += 1;
                }
                if mode == "private" {
                    sum_stats(&mut private_stats, &tango.cache().stats());
                }
                // the client disconnects here; a private session's cache
                // dies with it, the shared cache stays warm
            }
            (latencies_us, ops, private_stats)
        }));
    }

    ready.wait();
    db.link().reset();
    let rt_before = db.link().roundtrips(); // the counter is lifetime-cumulative
    go.wait();
    let started = Instant::now();
    let mut latencies_us = Vec::new();
    let mut ops = 0u64;
    let mut private_stats = CacheStats::default();
    for h in handles {
        let (lat, n, stats) = h.join().unwrap();
        latencies_us.extend(lat);
        ops += n;
        sum_stats(&mut private_stats, &stats);
    }
    let wall = started.elapsed();
    latencies_us.sort_unstable();

    let cache = if mode == "shared" {
        delta_stats(&Tango::connect(db.clone()).cache().stats(), &shared_before)
    } else {
        private_stats
    };
    Cell {
        mix,
        mode,
        threads,
        clients: threads * clients_per_thread,
        ops,
        wall,
        p50_us: percentile(&latencies_us, 0.50),
        p99_us: percentile(&latencies_us, 0.99),
        round_trips: db.link().roundtrips() - rt_before,
        wire: db.link().total(),
        cache,
    }
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let check = std::env::args().any(|a| a == "--check");
    let cfg = if small { UisConfig::small(0x5E41) } else { UisConfig::default() };
    let clients_per_thread = if small { CLIENTS_PER_THREAD_SMALL } else { CLIENTS_PER_THREAD };
    let ops_per_client = if small { OPS_PER_CLIENT_SMALL } else { OPS_PER_CLIENT };

    eprintln!("loading UIS ({} POSITION rows) + calibrating ...", cfg.position_rows);
    let setup = load_uis(&cfg, uis_link_profile(), true);
    let factors = *setup.tango.factors();

    // control answers from a cache-off session: the writes are no-ops,
    // so these row counts hold for the whole bench
    let pool = Arc::new(read_pool());
    let expected: Arc<Vec<usize>> = {
        let mut ctl = Tango::connect_private(setup.db.clone());
        ctl.options_mut().cache_budget = None;
        ctl.set_factors(factors);
        Arc::new(pool.iter().map(|q| ctl.query(q).unwrap().0.len()).collect())
    };

    let mut cells: Vec<Cell> = Vec::new();
    let mut failed = false;
    for (mix, write_pct) in MIXES {
        eprintln!("--- mix {mix} ({write_pct}% writes) ---");
        for threads in THREAD_COUNTS {
            for mode in ["shared", "private"] {
                let cell = run_cell(
                    &setup,
                    mix,
                    write_pct,
                    mode,
                    threads,
                    clients_per_thread,
                    ops_per_client,
                    &pool,
                    &expected,
                    factors,
                );
                eprintln!(
                    "  {threads} threads {mode:>7}: {:>8.1} q/s  p50 {:>8.1}ms  p99 {:>8.1}ms  \
                     {:>5} round trips  ({} clients, {} ops)",
                    cell.qps(),
                    cell.p50_us as f64 / 1e3,
                    cell.p99_us as f64 / 1e3,
                    cell.round_trips,
                    cell.clients,
                    cell.ops,
                );
                cells.push(cell);
            }
        }
    }

    // shared vs private on the read-heavy mix: the serving tier must
    // win on the wire at every thread count, and on throughput once
    // enough sessions contend (>= 4 threads)
    for threads in THREAD_COUNTS {
        let find = |mode: &str| {
            cells
                .iter()
                .find(|c| c.mix == "read-heavy" && c.mode == mode && c.threads == threads)
                .unwrap()
        };
        let (shared, private) = (find("shared"), find("private"));
        let qps_ratio = shared.qps() / private.qps().max(1e-9);
        eprintln!(
            "read-heavy @ {threads} threads: shared/private = {:.2}x qps, {} vs {} round trips",
            qps_ratio, shared.round_trips, private.round_trips
        );
        if shared.round_trips >= private.round_trips {
            eprintln!(
                "    FAIL: shared cache did not reduce wire round trips \
                 ({} >= {})",
                shared.round_trips, private.round_trips
            );
            failed = true;
        }
        if !small && threads >= 4 && qps_ratio <= 1.0 {
            eprintln!("    FAIL: shared qps not above private at {threads} threads");
            failed = true;
        }
    }

    let cell_objs: Vec<String> = cells
        .iter()
        .map(|c| {
            Object::new()
                .string("mix", c.mix)
                .string("mode", c.mode)
                .number("threads", c.threads as f64)
                .number("clients", c.clients as f64)
                .number("ops", c.ops as f64)
                .number("wall_ms", c.wall.as_secs_f64() * 1e3)
                .number("qps", c.qps())
                .number("p50_us", c.p50_us as f64)
                .number("p99_us", c.p99_us as f64)
                .number("round_trips", c.round_trips as f64)
                .number("wire_ms", c.wire.as_secs_f64() * 1e3)
                .raw(
                    "cache",
                    &Object::new()
                        .number("hits", c.cache.hits as f64)
                        .number("misses", c.cache.misses as f64)
                        .number("insertions", c.cache.insertions as f64)
                        .number("evictions", c.cache.evictions as f64)
                        .number("invalidations", c.cache.invalidations as f64)
                        .number("admission_rejects", c.cache.admission_rejects as f64)
                        .number("duplicate_populates", c.cache.duplicate_populates as f64)
                        .build(),
                )
                .build()
        })
        .collect();
    let json = Object::new()
        .string("bench", "concurrency")
        .number("position_rows", cfg.position_rows as f64)
        .number("clients_per_thread", clients_per_thread as f64)
        .number("ops_per_client", ops_per_client as f64)
        .number("pool_queries", pool.len() as f64)
        .raw("cells", &format!("[{}]", cell_objs.join(",")))
        .build();
    std::fs::write("BENCH_concurrency.json", &json).expect("write BENCH_concurrency.json");
    eprintln!("wrote BENCH_concurrency.json");

    if check && failed {
        std::process::exit(1);
    }
}
