//! Figure 11(b) — Query 4: "For each position, list the employee name
//! and address." A regular join of POSITION and EMPLOYEE.
//!
//! Three plans: middleware sort-merge join vs DBMS joins with forced
//! methods (the paper set Oracle hints; we pass the same hints to the
//! mini-DBMS). Expected shape (paper): the DBMS plans win — regular
//! operations belong in the DBMS — but the middleware plan stays
//! competitive, showing TANGO's low run-time overhead.
//!
//! Usage: `cargo run --release -p tango-bench --bin fig11b_query4 [--small]`

use std::time::Instant;
use tango_bench::plans::{placement_summary, q4_dbms_sql, q4_plan1, q4_sql, PlanBuilder};
use tango_bench::setup::load_position_variant;
use tango_bench::{
    load_uis, time_plan_report, time_query_report, uis_link_profile, JsonLog, Table,
};
use tango_uis::{UisConfig, POSITION_VARIANTS};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let cfg = if small { UisConfig::small(0xEC1) } else { UisConfig::default() };
    let sizes: Vec<usize> = if small {
        vec![500, 2000]
    } else {
        let mut v = POSITION_VARIANTS.to_vec();
        v.push(cfg.position_rows);
        v
    };

    eprintln!(
        "loading UIS ({} POSITION rows, {} EMPLOYEE rows) + calibrating ...",
        cfg.position_rows, cfg.employee_rows
    );
    let mut setup = load_uis(&cfg, uis_link_profile(), true);

    let mut table = Table::new(
        "Figure 11(b) — Query 4 (regular join), time by POSITION size",
        "rows",
        &["plan1 (join in mid)", "plan2 (DBMS NL)", "plan3 (DBMS merge)", "optimizer"],
    );

    let mut ops = JsonLog::new();
    for &n in &sizes {
        let tname = format!("POS_{n}");
        load_position_variant(&mut setup, &tname, n);
        let b = PlanBuilder::new(&setup.conn);
        let mut cells = Vec::new();

        // Plan 1: middleware sort-merge join
        setup.db.link().reset();
        let (t, _, report) = time_plan_report(&mut setup.tango, &q4_plan1(&b, &tname));
        ops.push("plan1 (join in mid)", n, &report);
        cells.push(Some(t));

        // Plans 2/3: hinted DBMS SQL (wall + wire)
        for hint in ["/*+ USE_NL */", "/*+ USE_MERGE */"] {
            setup.db.link().reset();
            let w0 = setup.conn.link().total();
            let t0 = Instant::now();
            let r = setup.conn.query_all(&q4_dbms_sql(&tname, hint)).expect("hinted query failed");
            let wall = t0.elapsed();
            let wire = setup.conn.link().total().saturating_sub(w0);
            assert!(!r.is_empty());
            cells.push(Some(wall + wire));
        }

        // optimizer's choice via temporal SQL (no hints)
        setup.db.link().reset();
        let (t, _, _, report) = time_query_report(&mut setup.tango, &q4_sql(&tname));
        ops.push("optimizer", n, &report);
        cells.push(Some(t));
        let chosen = setup.tango.optimize(&q4_sql(&tname)).unwrap();
        eprintln!(
            "  n={n}: chosen [{}] classes={} elements={}",
            placement_summary(&chosen.plan),
            chosen.classes,
            chosen.elements
        );
        table.row(n, cells);
        let _ = setup.db.drop_table(&tname, true);
    }
    table.note("paper: DBMS plans best; middleware plan competitive (low TANGO overhead)");
    table.emit("fig11b_query4");
    ops.emit("fig11b_query4");
}
