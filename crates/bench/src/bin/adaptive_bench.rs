//! Adaptivity ablation — the Section 3.3 `Overlaps` misestimate, pinned
//! vs rescued by mid-query re-optimization.
//!
//! The fixture is the misestimate-rescue shape of
//! `tests/adaptive_replan.rs` at bench scale: a versioned `POSITION`
//! table joined against the wide per-position `POSINFO` dossiers over a
//! temporal overlap window. With the naive estimator
//! (`OptOptions::naive_overlaps`) a *narrow* window is over-estimated by
//! more than an order of magnitude, so the optimizer ships both join
//! inputs to a middleware merge join. Three variants run per window:
//!
//! * **pinned** — naive estimates, `replan_ratio = None`: the bad plan
//!   runs to completion.
//! * **adaptive** — naive estimates, the default `replan_ratio`: the
//!   misestimate monitor fires at the first pipeline breaker and flips
//!   the join into the DBMS mid-query.
//! * **oracle** — the joint `Overlaps` estimator: the plan the optimizer
//!   picks when it knows the truth up front (lower bound).
//!
//! Usage: `cargo run --release -p tango-bench --bin adaptive_bench \
//!         [--small] [--check]`
//!
//! Writes `BENCH_adaptive.json`; `--check` exits non-zero unless, on the
//! narrow (misestimated) window, the adaptive run re-plans exactly once,
//! returns the same rows as the pinned run, and beats it on wall+wire
//! time — and, on the wide (well-estimated) window, never re-plans.

use std::time::Duration;
use tango_algebra::{tup, Attr, Schema, Type, Value};
use tango_bench::{time_query_report, Table};
use tango_core::cost::CostFactors;
use tango_core::opt::OptOptions;
use tango_core::Tango;
use tango_minidb::{Connection, Database, Link, LinkProfile, WireMode};
use tango_trace::json::Object;

/// Valid-time domain of the fixture (days).
const DOMAIN: i64 = 5_000;

struct Scale {
    positions: usize,
    versions: usize,
}

struct Window {
    label: &'static str,
    lo: i64,
    hi: i64,
    /// Whether the naive estimate is bad enough that the adaptive run
    /// must rescue (and the pinned run must lose).
    expect_rescue: bool,
}

struct Sample {
    label: &'static str,
    rows: usize,
    pinned: Duration,
    adaptive: Duration,
    oracle: Duration,
    replans: u64,
    pinned_plan: String,
    adaptive_plan: String,
}

impl Sample {
    fn speedup(&self) -> f64 {
        self.pinned.as_secs_f64() / self.adaptive.as_secs_f64().max(1e-9)
    }
}

/// A wire slow enough that shipping the un-filtered `POSINFO` dossiers
/// is the dominant cost of the pinned bad plan. Virtual mode: the wire
/// bill is simulated deterministically, so the comparison is stable on
/// noisy CI runners.
fn slow_wire() -> LinkProfile {
    LinkProfile {
        roundtrip_latency_us: 200.0,
        bytes_per_sec: 256.0 * 1024.0,
        row_prefetch: 16,
        mode: WireMode::Virtual,
    }
}

/// Same deterministic fixture generator as `tests/adaptive_replan.rs`:
/// `versions` strided short-lived versions per position, one wide
/// dossier row per position.
fn rescue_db(scale: &Scale) -> Database {
    let db = Database::new(Link::new(slow_wire()));
    let position = Schema::with_inferred_period(vec![
        Attr::new("PosID", Type::Int),
        Attr::new("EmpID", Type::Int),
        Attr::new("PayRate", Type::Double),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
    ]);
    db.create_table("POSITION", position).unwrap();
    let posinfo = Schema::new(vec![Attr::new("PosID", Type::Int), Attr::new("Info", Type::Str)]);
    db.create_table("POSINFO", posinfo).unwrap();

    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut step = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let stride = DOMAIN / scale.versions as i64;
    let mut rows = Vec::with_capacity(scale.positions * scale.versions);
    for p in 0..scale.positions as i64 {
        for v in 0..scale.versions as i64 {
            let t1 = v * stride + (step() % (stride as u64 - 40).max(1)) as i64;
            let t2 = t1 + 1 + (step() % 39) as i64;
            let emp = (step() % (scale.positions as u64 * 2)) as i64;
            rows.push(tup![p, emp, Value::Double((step() % 100) as f64 / 2.0), t1, t2]);
        }
    }
    db.insert_rows("POSITION", rows).unwrap();
    let dossier: Vec<_> = (0..scale.positions as i64)
        .map(|p| tup![p, Value::Str(format!("dossier-{p:06}-{}", "x".repeat(140)))])
        .collect();
    db.insert_rows("POSINFO", dossier).unwrap();
    let conn = Connection::new(db.clone());
    conn.execute("ANALYZE TABLE POSITION COMPUTE STATISTICS").unwrap();
    conn.execute("ANALYZE TABLE POSINFO COMPUTE STATISTICS").unwrap();
    db
}

fn rescue_sql(w: &Window) -> String {
    format!(
        "SELECT P.PosID, P.T1, I.Info FROM POSITION P, POSINFO I \
         WHERE P.PosID = I.PosID AND P.T1 <= {} AND P.T2 >= {} \
         ORDER BY P.PosID, P.T1",
        w.hi, w.lo
    )
}

/// A fresh session per run: cache disabled so every variant pays the
/// true wire bill, pinned wire-fitted cost factors so placement
/// decisions track the link without depending on how loaded the bench
/// machine is.
fn session(db: &Database, factors: &CostFactors, naive: bool, ratio: Option<f64>) -> Tango {
    let mut tango = Tango::connect(db.clone());
    tango.options_mut().cache_budget = None;
    tango.options_mut().opt.naive_overlaps = naive;
    tango.options_mut().opt.replan_ratio = ratio;
    tango.set_factors(*factors);
    tango
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let check = std::env::args().any(|a| a == "--check");
    let scale = if small {
        Scale { positions: 100, versions: 12 }
    } else {
        Scale { positions: 800, versions: 25 }
    };
    let windows = [
        Window { label: "narrow (misestimated)", lo: 2_500, hi: 2_520, expect_rescue: true },
        Window { label: "wide (well-estimated)", lo: 1_500, hi: 3_500, expect_rescue: false },
    ];

    eprintln!("loading rescue fixture ({} POSITION rows) ...", scale.positions * scale.versions);
    let db = rescue_db(&scale);
    // fitted to slow_wire() (see tests/adaptive_replan.rs) rather than
    // measured by calibrate(), so the chosen plans are deterministic
    let factors = CostFactors {
        p_tm: 5.0,
        p_td: 4.5,
        p_td_fixed: 200.0,
        p_jd: 0.06,
        p_mjm: 0.02,
        ..Default::default()
    };

    let default_ratio = OptOptions::default().replan_ratio;
    let mut table = Table::new(
        "Adaptivity ablation — Overlaps misestimate, pinned vs rescued",
        "window",
        &["pinned", "adaptive", "oracle"],
    );

    let mut failed = false;
    let mut samples = Vec::new();
    for w in &windows {
        let sql = rescue_sql(w);

        let mut pinned_t = session(&db, &factors, true, None);
        let (pinned, pinned_rows, _, _) = time_query_report(&mut pinned_t, &sql);
        let pinned_plan =
            tango_bench::plans::placement_summary(&pinned_t.optimize(&sql).unwrap().plan);

        let mut adaptive_t = session(&db, &factors, true, default_ratio);
        let (adaptive, adaptive_rows, adaptive_explain, adaptive_exec) =
            time_query_report(&mut adaptive_t, &sql);
        let replans: u64 = adaptive_exec
            .steps
            .iter()
            .flat_map(|s| s.events.iter())
            .filter(|e| e.kind == "cardinality-replan")
            .count() as u64;

        let mut oracle_t = session(&db, &factors, false, None);
        let (oracle, oracle_rows, _, _) = time_query_report(&mut oracle_t, &sql);

        assert_eq!(pinned_rows, adaptive_rows, "adaptive result differs at {}", w.label);
        assert_eq!(pinned_rows, oracle_rows, "oracle result differs at {}", w.label);

        let s = Sample {
            label: w.label,
            rows: pinned_rows,
            pinned,
            adaptive,
            oracle,
            replans,
            pinned_plan,
            adaptive_plan: if adaptive_explain.contains("JOIN^D") {
                "join=D (flipped mid-query)".into()
            } else {
                "join=M (kept)".into()
            },
        };
        eprintln!(
            "  {}: pinned {:>9.3}ms  adaptive {:>9.3}ms ({} re-plan{})  oracle {:>9.3}ms  {:.2}x",
            s.label,
            s.pinned.as_secs_f64() * 1e3,
            s.adaptive.as_secs_f64() * 1e3,
            s.replans,
            if s.replans == 1 { "" } else { "s" },
            s.oracle.as_secs_f64() * 1e3,
            s.speedup(),
        );
        if w.expect_rescue {
            if s.replans != 1 {
                eprintln!("    FAIL: expected exactly 1 re-plan, saw {}", s.replans);
                failed = true;
            }
            if s.adaptive >= s.pinned {
                eprintln!(
                    "    FAIL: adaptive {:.3}ms did not beat pinned {:.3}ms",
                    s.adaptive.as_secs_f64() * 1e3,
                    s.pinned.as_secs_f64() * 1e3
                );
                failed = true;
            }
        } else if s.replans != 0 {
            eprintln!("    FAIL: well-estimated window re-planned {} time(s)", s.replans);
            failed = true;
        }
        table.row(s.label, vec![Some(s.pinned), Some(s.adaptive), Some(s.oracle)]);
        samples.push(s);
    }

    table.note(format!(
        "naive Overlaps estimator seeded; replan_ratio = {default_ratio:?}; \
         {} POSITION rows, {} POSINFO dossiers",
        scale.positions * scale.versions,
        scale.positions
    ));
    table.emit("adaptive_bench");

    let window_objs: Vec<String> = samples
        .iter()
        .map(|s| {
            Object::new()
                .string("window", s.label)
                .number("rows", s.rows as f64)
                .number("pinned_us", s.pinned.as_secs_f64() * 1e6)
                .number("adaptive_us", s.adaptive.as_secs_f64() * 1e6)
                .number("oracle_us", s.oracle.as_secs_f64() * 1e6)
                .number("speedup", s.speedup())
                .number("replans", s.replans as f64)
                .string("pinned_plan", &s.pinned_plan)
                .string("adaptive_plan", &s.adaptive_plan)
                .build()
        })
        .collect();
    let json = Object::new()
        .string("bench", "adaptive_bench")
        .number("position_rows", (scale.positions * scale.versions) as f64)
        .number("posinfo_rows", scale.positions as f64)
        .number("replan_ratio", default_ratio.unwrap_or(f64::NAN))
        .raw("windows", &format!("[{}]", window_objs.join(",")))
        .build();
    std::fs::write("BENCH_adaptive.json", &json).expect("write BENCH_adaptive.json");
    eprintln!("wrote BENCH_adaptive.json");

    if check && failed {
        std::process::exit(1);
    }
}
