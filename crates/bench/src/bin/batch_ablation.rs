//! Batch-size ablation — how much of the per-row overhead (virtual
//! dispatch, trace sampling, wire bookkeeping) batch-at-a-time execution
//! amortizes away.
//!
//! Sweeps the process-wide batch size (1 = the row-at-a-time baseline)
//! over the two middleware-heavy fixed plans of the paper's study:
//! Query 1 plan 2 (`SORT^M` + `TAGGR^M`, Figure 7) and Query 3 plan 2
//! (`TMERGEJOIN^M`, Figure 11a). Wire time is identical across sizes by
//! construction (the transfer cursor ships prefetch-aligned batches in
//! both modes), so the interesting number is **wall** time.
//!
//! A second sweep varies the morsel worker count
//! (`TangoOptions::workers` = 1, 2, 4, 8) at the default batch size and
//! verifies the parallel results are **byte-identical** to the
//! sequential run through the wire codec. The host core count is
//! recorded in the JSON (`host_cpus`) so speedups are read in context —
//! on a single-core host the parallel wall times measure scheduling
//! overhead, not speedup; such runs are stamped
//! `scheduling_overhead_only: true` and the worker-speedup check is
//! skipped (the byte-identity and wire-invariance checks still gate).
//!
//! Usage: `cargo run --release -p tango-bench --bin batch_ablation \
//!         [--small] [--check]`
//!
//! Writes `BENCH_batch.json` in the working directory; `--check` exits
//! non-zero if the default batch size is slower than row-at-a-time or if
//! any worker count changes the result bytes or the wire time.

use std::time::Duration;
use tango_algebra::date::day;
use tango_algebra::DEFAULT_BATCH_ROWS;
use tango_bench::plans::{q1_plans, q3_plans, PlanBuilder};
use tango_bench::{load_uis, time_plan_report, uis_link_profile, Table};
use tango_core::phys::PhysNode;
use tango_core::Tango;
use tango_trace::json::Object;
use tango_uis::UisConfig;
use tango_xxl::set_batch_rows;

const SIZES: [usize; 5] = [1, 64, 256, 1024, 4096];
const WORKERS: [usize; 4] = [1, 2, 4, 8];
const RUNS: usize = 3;

struct Sample {
    batch_rows: usize,
    wall: Duration,
    wire: Duration,
    rows: usize,
}

/// Best-of-[`RUNS`] wall time for one plan at one batch size.
fn measure(
    tango: &mut Tango,
    link: &tango_minidb::Link,
    plan: &PhysNode,
    batch_rows: usize,
) -> Sample {
    set_batch_rows(batch_rows);
    let mut best: Option<Sample> = None;
    for _ in 0..RUNS {
        link.reset();
        let (_, rows, report) = time_plan_report(tango, plan);
        if std::env::var_os("TANGO_ABLATION_STEPS").is_some() {
            for s in &report.steps {
                eprintln!(
                    "      [{batch_rows}] {:<24} excl {:>9.3}ms rows {}",
                    s.label,
                    s.exclusive_us / 1e3,
                    s.out_rows
                );
            }
        }
        if best.as_ref().is_none_or(|b| report.wall < b.wall) {
            best = Some(Sample { batch_rows, wall: report.wall, wire: report.wire, rows });
        }
    }
    best.unwrap()
}

/// Best-of-[`RUNS`] wall time for one plan at one morsel worker count
/// (default batch size), plus the wire-codec bytes of the result for the
/// byte-identity check against the sequential run.
fn measure_workers(
    tango: &mut Tango,
    link: &tango_minidb::Link,
    plan: &PhysNode,
    workers: usize,
) -> (Sample, Vec<u8>) {
    tango.options_mut().workers = workers;
    let mut best: Option<Sample> = None;
    let mut bytes = Vec::new();
    for _ in 0..RUNS {
        link.reset();
        let (rel, report) = match tango.execute_physical(plan) {
            Ok(r) => r,
            Err(e) => panic!("plan failed at workers={workers}: {e}\n{}", plan.render()),
        };
        let mut buf = Vec::new();
        for t in rel.tuples() {
            tango_algebra::codec::encode_tuple(t, &mut buf);
        }
        if bytes.is_empty() {
            bytes = buf;
        } else {
            assert_eq!(bytes, buf, "workers={workers}: repeated runs not byte-identical");
        }
        if best.as_ref().is_none_or(|b| report.wall < b.wall) {
            best = Some(Sample {
                batch_rows: workers, // reused as the x-axis of this sweep
                wall: report.wall,
                wire: report.wire,
                rows: rel.len(),
            });
        }
    }
    tango.options_mut().workers = 1;
    (best.unwrap(), bytes)
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let check = std::env::args().any(|a| a == "--check");
    let cfg = if small { UisConfig::small(0xBA7C) } else { UisConfig::default() };
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    eprintln!("loading UIS ({} POSITION rows) ...", cfg.position_rows);
    let mut setup = load_uis(&cfg, uis_link_profile(), false);
    let b = PlanBuilder::new(&setup.conn);

    let plans: Vec<(&'static str, PhysNode)> = vec![
        ("q1 plan2 (sortM+taggrM)", q1_plans(&b, "POSITION").remove(1).1),
        ("q3 plan2 (tjoinM)", q3_plans(&b, day(1990, 1, 1)).remove(1).1),
    ];

    let mut table = Table::new(
        "Batch-size ablation — wall time of the middleware plans",
        "batch",
        &plans.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
    );

    let mut failed = false;
    let mut query_objs = Vec::new();
    let mut per_size: Vec<Vec<Sample>> = Vec::new();
    for (name, plan) in &plans {
        eprintln!("  {name}:");
        let mut samples = Vec::new();
        for bs in SIZES {
            let s = measure(&mut setup.tango, setup.db.link(), plan, bs);
            eprintln!(
                "    batch {:>4}: wall {:>9.3}ms wire {:>9.3}ms rows {}",
                bs,
                s.wall.as_secs_f64() * 1e3,
                s.wire.as_secs_f64() * 1e3,
                s.rows
            );
            samples.push(s);
        }
        assert!(
            samples.iter().all(|s| s.rows == samples[0].rows),
            "{name}: result size varies with batch size"
        );
        let row_wall = samples[0].wall;
        let batch_wall = samples.iter().find(|s| s.batch_rows == DEFAULT_BATCH_ROWS).unwrap().wall;
        let speedup = row_wall.as_secs_f64() / batch_wall.as_secs_f64().max(1e-9);
        eprintln!("    wall speedup at batch {DEFAULT_BATCH_ROWS}: {speedup:.2}x");
        if speedup < 1.0 {
            eprintln!("    FAIL: batch path slower than row path");
            failed = true;
        }

        // morsel worker sweep at the default batch size, gated on
        // byte-identical results and invariant wire time
        set_batch_rows(DEFAULT_BATCH_ROWS);
        let mut worker_samples = Vec::new();
        let mut base_bytes: Vec<u8> = Vec::new();
        let mut base_wire = Duration::ZERO;
        for w in WORKERS {
            let (s, bytes) = measure_workers(&mut setup.tango, setup.db.link(), plan, w);
            eprintln!(
                "    workers {w}: wall {:>9.3}ms wire {:>9.3}ms rows {}",
                s.wall.as_secs_f64() * 1e3,
                s.wire.as_secs_f64() * 1e3,
                s.rows
            );
            if w == 1 {
                base_bytes = bytes;
                base_wire = s.wire;
            } else {
                if bytes != base_bytes {
                    eprintln!("    FAIL: workers={w} changed the result bytes");
                    failed = true;
                }
                if s.wire != base_wire {
                    eprintln!("    FAIL: workers={w} changed the wire time");
                    failed = true;
                }
            }
            worker_samples.push(s);
        }
        let w8 = worker_samples.iter().find(|s| s.batch_rows == 8).unwrap().wall;
        let w_speedup = worker_samples[0].wall.as_secs_f64() / w8.as_secs_f64().max(1e-9);
        if host_cpus == 1 {
            // on a single core the morsel pool can only add scheduling
            // overhead — record the wall times but don't read them as a
            // speedup (and don't gate on one)
            eprintln!(
                "    wall ratio at 8 workers: {w_speedup:.2}x \
                 (single-core host: scheduling overhead only, speedup check skipped)"
            );
        } else {
            eprintln!("    wall speedup at 8 workers: {w_speedup:.2}x");
            if w_speedup < 1.0 {
                eprintln!(
                    "    FAIL: morsel pool slower than sequential on a {host_cpus}-core host"
                );
                failed = true;
            }
        }

        let sizes_json: Vec<String> = samples
            .iter()
            .map(|s| {
                Object::new()
                    .number("batch_rows", s.batch_rows as f64)
                    .number("wall_us", s.wall.as_secs_f64() * 1e6)
                    .number("wire_us", s.wire.as_secs_f64() * 1e6)
                    .number("total_us", (s.wall + s.wire).as_secs_f64() * 1e6)
                    .number("rows", s.rows as f64)
                    .build()
            })
            .collect();
        let workers_json: Vec<String> = worker_samples
            .iter()
            .map(|s| {
                Object::new()
                    .number("workers", s.batch_rows as f64)
                    .number("wall_us", s.wall.as_secs_f64() * 1e6)
                    .number("wire_us", s.wire.as_secs_f64() * 1e6)
                    .number("rows", s.rows as f64)
                    .build()
            })
            .collect();
        query_objs.push(
            Object::new()
                .string("plan", name)
                .raw("sizes", &format!("[{}]", sizes_json.join(",")))
                .number("wall_speedup_at_default", speedup)
                .raw("workers", &format!("[{}]", workers_json.join(",")))
                .number("wall_speedup_at_8_workers", w_speedup)
                .build(),
        );
        per_size.push(samples);
    }
    set_batch_rows(DEFAULT_BATCH_ROWS);

    for (i, bs) in SIZES.iter().enumerate() {
        table.row(*bs, per_size.iter().map(|s| Some(s[i].wall)).collect());
    }
    table.note("wall time only; wire time is batch-size-invariant by construction");
    table.emit("batch_ablation");

    let json = Object::new()
        .string("bench", "batch_ablation")
        .number("position_rows", cfg.position_rows as f64)
        .number("row_prefetch", uis_link_profile().row_prefetch as f64)
        .number("default_batch_rows", DEFAULT_BATCH_ROWS as f64)
        .number("host_cpus", host_cpus as f64)
        // single-core runs: the worker sweep's wall times measure the
        // morsel pool's scheduling overhead, not parallel speedup
        .raw("scheduling_overhead_only", if host_cpus == 1 { "true" } else { "false" })
        .raw("queries", &format!("[{}]", query_objs.join(",")))
        .build();
    std::fs::write("BENCH_batch.json", &json).expect("write BENCH_batch.json");
    eprintln!("wrote BENCH_batch.json");

    if check && failed {
        std::process::exit(1);
    }
}
