//! Rewrite-pack ablation — each checked-in rule pack run against a query
//! spelled the way the pack exists to fix, with and without the pack.
//!
//! Three scenarios, one per pack under `rules/`:
//!
//! * **temporal-normalize** — the Section 3.3 `Overlaps` window spelled
//!   through `NOT (...)` conjuncts. Unrewritten, the joint estimator
//!   cannot see the window, the selectivity product over-estimates, and
//!   the optimizer ships the wide `POSINFO` dossiers to a middleware
//!   merge join. Rewritten to the `T1 <= hi AND T2 >= lo` canonical
//!   form, the joint estimator recognizes the window and the join stays
//!   in the DBMS. Gated (`--check`): identical rows, >= 1 firing, and a
//!   wall-clock win.
//! * **subquery-to-join** — a FROM-subquery correlated through
//!   `NOT (a <> b)`, which the parser cannot classify as a join key, so
//!   the plan is a cartesian product with a post-selection. The pack
//!   normalizes the negation and extracts the equi-join. Gated:
//!   identical rows, >= 1 firing, and a wall-clock win.
//! * **compat** — the exact Figure 5 plain-SQL rendering of `TJOIN^D`
//!   (GREATEST/LEAST intersection items over a strict-overlap
//!   predicate) folded back into the temporal algebra. Gated: identical
//!   rows and >= 1 firing (the win here is plan quality/compatibility,
//!   not wall time, so no timing gate).
//!
//! Usage: `cargo run --release -p tango-bench --bin rewrite_bench \
//!         [--small] [--check]`
//!
//! Writes `BENCH_rewrite.json` (with `host_cpus` stamped, per the
//! `docs/PERFORMANCE.md` convention).

use std::time::Duration;
use tango_algebra::{tup, Attr, Relation, Schema, Type, Value};
use tango_bench::Table;
use tango_core::cost::CostFactors;
use tango_core::Tango;
use tango_minidb::{Connection, Database, Link, LinkProfile, WireMode};
use tango_trace::json::Object;

/// Valid-time domain of the fixtures (days).
const DOMAIN: i64 = 5_000;

/// Same deterministic virtual wire as `adaptive_bench`: slow enough
/// that shipping un-filtered inputs dominates a bad plan, simulated so
/// the comparison is stable on noisy CI runners.
fn slow_wire() -> LinkProfile {
    LinkProfile {
        roundtrip_latency_us: 200.0,
        bytes_per_sec: 256.0 * 1024.0,
        row_prefetch: 16,
        mode: WireMode::Virtual,
    }
}

/// The rescue fixture of `adaptive_bench`: `versions` strided
/// short-lived versions per position, one wide dossier row per position.
fn fixture(positions: usize, versions: usize) -> Database {
    let db = Database::new(Link::new(slow_wire()));
    let position = Schema::with_inferred_period(vec![
        Attr::new("PosID", Type::Int),
        Attr::new("EmpID", Type::Int),
        Attr::new("PayRate", Type::Double),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
    ]);
    db.create_table("POSITION", position).unwrap();
    let posinfo = Schema::new(vec![Attr::new("PosID", Type::Int), Attr::new("Info", Type::Str)]);
    db.create_table("POSINFO", posinfo).unwrap();

    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut step = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let stride = DOMAIN / versions as i64;
    let mut rows = Vec::with_capacity(positions * versions);
    for p in 0..positions as i64 {
        for v in 0..versions as i64 {
            let t1 = v * stride + (step() % (stride as u64 - 40).max(1)) as i64;
            let t2 = t1 + 1 + (step() % 39) as i64;
            let emp = (step() % (positions as u64 * 2)) as i64;
            rows.push(tup![p, emp, Value::Double((step() % 100) as f64 / 2.0), t1, t2]);
        }
    }
    db.insert_rows("POSITION", rows).unwrap();
    let dossier: Vec<_> = (0..positions as i64)
        .map(|p| tup![p, Value::Str(format!("dossier-{p:06}-{}", "x".repeat(140)))])
        .collect();
    db.insert_rows("POSINFO", dossier).unwrap();
    let conn = Connection::new(db.clone());
    conn.execute("ANALYZE TABLE POSITION COMPUTE STATISTICS").unwrap();
    conn.execute("ANALYZE TABLE POSINFO COMPUTE STATISTICS").unwrap();
    db
}

struct Scenario {
    pack: &'static str,
    sql: String,
    db: Database,
    /// Whether `--check` additionally demands a wall-clock win.
    gate_wall: bool,
}

fn scenarios(small: bool) -> Vec<Scenario> {
    // 1. temporal-normalize: the adaptive_bench narrow window, spelled
    //    through NOT so only the rewritten form is estimable jointly.
    let (pos, ver) = if small { (100, 12) } else { (800, 25) };
    let normalize = Scenario {
        pack: "temporal-normalize",
        sql: "SELECT P.PosID, P.T1, I.Info FROM POSITION P, POSINFO I \
              WHERE P.PosID = I.PosID AND NOT (P.T1 > 2520) AND NOT (P.T2 < 2500) \
              ORDER BY P.PosID, P.T1"
            .into(),
        db: fixture(pos, ver),
        gate_wall: true,
    };

    // 2. subquery-to-join: NOT (a <> b) hides the join key from the
    //    parser, leaving a cartesian product for the pack to collapse.
    let (pos, ver) = if small { (120, 3) } else { (400, 4) };
    let subquery = Scenario {
        pack: "subquery-to-join",
        sql: "SELECT P.PosID, P.T1, I.Info \
              FROM (SELECT PosID, Info FROM POSINFO) I, POSITION P \
              WHERE NOT (I.PosID <> P.PosID) ORDER BY P.PosID, P.T1, I.Info"
            .into(),
        db: fixture(pos, ver),
        gate_wall: true,
    };

    // 3. compat: the Figure 5 TJOIN^D rendering, typed by hand.
    let (pos, ver) = if small { (60, 6) } else { (120, 8) };
    let compat = Scenario {
        pack: "compat",
        sql: "SELECT A.PosID, A.EmpID, B.EmpID AS EmpID2, \
              GREATEST(A.T1, B.T1) AS S1, LEAST(A.T2, B.T2) AS S2 \
              FROM POSITION A, POSITION B \
              WHERE A.PosID = B.PosID AND A.T1 < B.T2 AND B.T1 < A.T2 \
              ORDER BY A.PosID, A.EmpID, EmpID2, S1, S2"
            .into(),
        db: fixture(pos, ver),
        gate_wall: false,
    };

    vec![normalize, subquery, compat]
}

/// A fresh session per run: cache disabled so every variant pays the
/// true wire bill, re-planning off so the rewrite (not adaptivity) is
/// the only difference, pinned wire-fitted cost factors.
fn session(db: &Database, packs: &[&str]) -> Tango {
    let mut tango = Tango::connect(db.clone());
    tango.options_mut().cache_budget = None;
    tango.options_mut().opt.replan_ratio = None;
    tango.options_mut().rewrite_packs = packs.iter().map(|p| p.to_string()).collect();
    tango.set_factors(CostFactors {
        p_tm: 5.0,
        p_td: 4.5,
        p_td_fixed: 200.0,
        p_jd: 0.06,
        p_mjm: 0.02,
        ..Default::default()
    });
    tango
}

struct Sample {
    pack: &'static str,
    rows: usize,
    plain: Duration,
    rewritten: Duration,
    plain_cost_us: f64,
    rewritten_cost_us: f64,
    fires: u64,
    plain_plan: String,
    rewritten_plan: String,
}

impl Sample {
    fn speedup(&self) -> f64 {
        self.plain.as_secs_f64() / self.rewritten.as_secs_f64().max(1e-9)
    }
}

fn run(tango: &mut Tango, sql: &str) -> (Duration, Relation, f64, u64, String) {
    let (rel, report) =
        tango.query(sql).unwrap_or_else(|e| panic!("query failed: {e}\nsql: {sql}"));
    let plan = tango_bench::plans::placement_summary(&report.optimized.plan);
    (
        report.total(),
        rel,
        report.optimized.est_cost_us,
        report.optimized.rewrites.total_fires(),
        plan,
    )
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let check = std::env::args().any(|a| a == "--check");
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let mut table = Table::new(
        "Rewrite-pack ablation — each pack vs the plain spelling it fixes",
        "pack",
        &["unrewritten", "rewritten"],
    );

    let mut failed = false;
    let mut samples = Vec::new();
    for sc in scenarios(small) {
        let mut plain_t = session(&sc.db, &[]);
        let (plain, plain_rel, plain_cost, plain_fires, plain_plan) = run(&mut plain_t, &sc.sql);
        assert_eq!(plain_fires, 0, "no packs loaded, yet rules fired");

        let mut rw_t = session(&sc.db, &[sc.pack]);
        let (rewritten, rw_rel, rw_cost, fires, rw_plan) = run(&mut rw_t, &sc.sql);

        let s = Sample {
            pack: sc.pack,
            rows: plain_rel.len(),
            plain,
            rewritten,
            plain_cost_us: plain_cost,
            rewritten_cost_us: rw_cost,
            fires,
            plain_plan,
            rewritten_plan: rw_plan,
        };
        eprintln!(
            "  {}: unrewritten {:>9.3}ms ({})  rewritten {:>9.3}ms ({})  {} firing{}  {:.2}x",
            s.pack,
            s.plain.as_secs_f64() * 1e3,
            s.plain_plan,
            s.rewritten.as_secs_f64() * 1e3,
            s.rewritten_plan,
            s.fires,
            if s.fires == 1 { "" } else { "s" },
            s.speedup(),
        );

        if plain_rel.tuples() != rw_rel.tuples() {
            eprintln!("    FAIL: rewritten result differs from unrewritten");
            failed = true;
        }
        if s.fires == 0 {
            eprintln!("    FAIL: pack {} never fired", s.pack);
            failed = true;
        }
        if sc.gate_wall && s.rewritten >= s.plain {
            eprintln!(
                "    FAIL: rewritten {:.3}ms did not beat unrewritten {:.3}ms",
                s.rewritten.as_secs_f64() * 1e3,
                s.plain.as_secs_f64() * 1e3
            );
            failed = true;
        }
        table.row(s.pack, vec![Some(s.plain), Some(s.rewritten)]);
        samples.push(s);
    }

    table.note(format!(
        "virtual {:.0}KiB/s wire; fresh session per run; re-planning off; host_cpus={host_cpus}",
        slow_wire().bytes_per_sec / 1024.0
    ));
    table.emit("rewrite_bench");

    let scenario_objs: Vec<String> = samples
        .iter()
        .map(|s| {
            Object::new()
                .string("pack", s.pack)
                .number("rows", s.rows as f64)
                .number("unrewritten_us", s.plain.as_secs_f64() * 1e6)
                .number("rewritten_us", s.rewritten.as_secs_f64() * 1e6)
                .number("unrewritten_est_cost_us", s.plain_cost_us)
                .number("rewritten_est_cost_us", s.rewritten_cost_us)
                .number("speedup", s.speedup())
                .number("fires", s.fires as f64)
                .string("unrewritten_plan", &s.plain_plan)
                .string("rewritten_plan", &s.rewritten_plan)
                .build()
        })
        .collect();
    let json = Object::new()
        .string("bench", "rewrite_bench")
        .number("host_cpus", host_cpus as f64)
        .raw("scenarios", &format!("[{}]", scenario_objs.join(",")))
        .build();
    std::fs::write("BENCH_rewrite.json", &json).expect("write BENCH_rewrite.json");
    eprintln!("wrote BENCH_rewrite.json");

    if check && failed {
        std::process::exit(1);
    }
}
