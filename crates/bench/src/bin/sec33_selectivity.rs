//! Section 3.3 — the temporal selectivity worked example.
//!
//! Relation R: 100,000 tuples, 7-day periods uniformly distributed over
//! 1995-01-01 .. 2000-01-01; query `Overlaps(1997-02-01, 1997-02-08)`.
//! The paper: the naive independent-predicate estimate is 24.7 % of the
//! relation — "a factor of 40 too high" — while the proposed
//! `StartBefore - EndBefore` estimate lands at ~0.8 %, close to the
//! actual 0.4–0.8 %.
//!
//! This binary builds the relation *for real*, measures the actual
//! result, and prints the three numbers side by side, plus a sweep over
//! other windows and a skewed-data variant where histograms matter.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tango_algebra::date::{day, format_date};
use tango_stats::stats::AttrStats;
use tango_stats::temporal_sel::naive_overlaps_cardinality;
use tango_stats::Histogram;
use tango_stats::{overlaps_cardinality, RelationStats};

struct Column {
    t1: Vec<f64>,
    t2: Vec<f64>,
}

fn uniform_relation(n: usize, seed: u64) -> Column {
    let mut rng = StdRng::seed_from_u64(seed);
    let lo = day(1995, 1, 1);
    let hi = day(1999, 12, 25); // start so that start+7 <= 2000-01-01
    let mut t1 = Vec::with_capacity(n);
    let mut t2 = Vec::with_capacity(n);
    for _ in 0..n {
        let s = rng.gen_range(lo..=hi) as f64;
        t1.push(s);
        t2.push(s + 7.0);
    }
    Column { t1, t2 }
}

fn stats_of(c: &Column, histogram: bool) -> RelationStats {
    let mut s = RelationStats { rows: c.t1.len() as f64, ..Default::default() };
    let mk = |vals: &[f64]| AttrStats {
        min: vals.iter().copied().reduce(f64::min),
        max: vals.iter().copied().reduce(f64::max),
        distinct: {
            let mut v: Vec<i64> = vals.iter().map(|x| *x as i64).collect();
            v.sort();
            v.dedup();
            v.len() as u64
        },
        histogram: histogram.then(|| Histogram::build(vals.to_vec(), 20).unwrap()),
        ..Default::default()
    };
    s.set_attr("T1", mk(&c.t1));
    s.set_attr("T2", mk(&c.t2));
    s
}

fn actual(c: &Column, a: f64, b: f64) -> f64 {
    c.t1.iter().zip(&c.t2).filter(|&(&s, &e)| s < b && e > a).count() as f64
}

fn main() {
    let n = 100_000;
    let c = uniform_relation(n, 0x533);
    let s = stats_of(&c, false);

    println!("== Section 3.3 — selectivity of temporal predicates ==");
    println!("R: {n} tuples, 7-day periods uniform over 1995-01-01..2000-01-01\n");

    let a = day(1997, 2, 1) as f64;
    let b = day(1997, 2, 8) as f64;
    let act = actual(&c, a, b);
    let naive = naive_overlaps_cardinality(a, b, &s, "T1", "T2");
    let proposed = overlaps_cardinality(a, b, &s, "T1", "T2");
    println!("Overlaps(1997-02-01, 1997-02-08):");
    println!("  actual:   {act:8.0} tuples ({:.2}% of R)", act / n as f64 * 100.0);
    println!(
        "  naive:    {naive:8.0} tuples ({:.2}% of R)  -> {:.0}x off",
        naive / n as f64 * 100.0,
        naive / act
    );
    println!(
        "  proposed: {proposed:8.0} tuples ({:.2}% of R)  -> {:.1}x off",
        proposed / n as f64 * 100.0,
        proposed / act
    );
    println!("  paper:    naive 24.7%, proposed ~0.8%, actual 0.4-0.8% (factor-40 error)\n");

    println!("window sweep (proposed vs naive error factor):");
    println!(
        "{:>12} {:>12} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "A", "B", "actual", "naive", "prop.", "naive-err", "prop-err"
    );
    for (ya, yb) in [(1995, 1995), (1996, 1997), (1997, 1999), (1995, 2000)] {
        let a = day(ya, 6, 1) as f64;
        let b = day(yb, 9, 1) as f64;
        let act = actual(&c, a, b).max(1.0);
        let nv = naive_overlaps_cardinality(a, b, &s, "T1", "T2");
        let pr = overlaps_cardinality(a, b, &s, "T1", "T2");
        println!(
            "{:>12} {:>12} {:>9.0} {:>9.0} {:>9.0} {:>9.1}x {:>9.1}x",
            format_date(a as i32),
            format_date(b as i32),
            act,
            nv,
            pr,
            nv / act,
            pr / act
        );
    }

    // skewed variant: histograms matter
    println!("\nskewed starts (90% in 1995, 10% in 1999), window 1996-01-01..1996-07-01:");
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let mut t1 = Vec::new();
    for _ in 0..(n * 9 / 10) {
        t1.push(rng.gen_range(day(1995, 1, 1)..day(1996, 1, 1)) as f64);
    }
    for _ in 0..(n / 10) {
        t1.push(rng.gen_range(day(1999, 1, 1)..day(2000, 1, 1)) as f64);
    }
    let t2: Vec<f64> = t1.iter().map(|v| v + 30.0).collect();
    let skew = Column { t1, t2 };
    let a = day(1996, 1, 1) as f64;
    let b = day(1996, 7, 1) as f64;
    let act = actual(&skew, a, b);
    let without = overlaps_cardinality(a, b, &stats_of(&skew, false), "T1", "T2");
    let with = overlaps_cardinality(a, b, &stats_of(&skew, true), "T1", "T2");
    println!("  actual:             {act:8.0}");
    println!("  proposed, no hist:  {without:8.0}  ({:.1}x off)", without / act.max(1.0));
    println!("  proposed, histog.:  {with:8.0}  ({:.1}x off)", with / act.max(1.0));
}
