//! Section 5.2 optimizer metrics: for each of the four queries, the
//! number of equivalence classes and class elements generated, the rules
//! fired, the search effort, the optimization time, and the chosen plan.
//!
//! The paper reports (on its rule formulation): Q1 12 classes / 29
//! elements, Q2 142/452, Q3 104/301, Q4 13/30. Our memo is smaller by
//! construction — transfers and sorts are physical-property enforcers
//! rather than memoized operators — so the comparable signal is the
//! *relative* growth from Q1/Q4 (trivial) to Q2/Q3 (pushdown-heavy), and
//! the per-query plan choice.
//!
//! `--no-pushdown` ablates rule groups 3/4 (the paper's "reducing
//! arguments to expensive operations"), showing their effect on the
//! search space and the plan.
//!
//! Usage: `cargo run --release -p tango-bench --bin optimizer_stats [--no-pushdown] [--small]`

use tango_algebra::date::day;
use tango_bench::plans::{placement_summary, q1_sql, q2_sql, q3_sql, q4_sql};
use tango_bench::{load_uis, uis_link_profile};
use tango_uis::UisConfig;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let no_pushdown = std::env::args().any(|a| a == "--no-pushdown");
    let cfg = if small { UisConfig::small(0xEC1) } else { UisConfig::default() };
    eprintln!("loading UIS ({} POSITION rows) ...", cfg.position_rows);
    let mut setup = load_uis(&cfg, uis_link_profile(), true);
    setup.tango.options_mut().opt.pushdown_rules = !no_pushdown;

    let queries: Vec<(&str, String)> = vec![
        ("Query 1 (taggr)", q1_sql("POSITION")),
        ("Query 2 (taggr+tjoin)", q2_sql(day(1983, 1, 1), day(1996, 1, 1))),
        ("Query 3 (self tjoin)", q3_sql(day(1996, 1, 1))),
        ("Query 4 (regular join)", q4_sql("POSITION")),
    ];

    println!(
        "== Optimizer metrics (Section 5.2){} ==",
        if no_pushdown { " — pushdown rules DISABLED" } else { "" }
    );
    println!(
        "{:24} {:>8} {:>9} {:>10} {:>10}  placement",
        "query", "classes", "elements", "opt. time", "est. cost"
    );
    for (name, sql) in queries {
        let q = setup.tango.optimize(&sql).expect("optimize failed");
        println!(
            "{:24} {:>8} {:>9} {:>8.1}ms {:>8.0}ms  {}",
            name,
            q.classes,
            q.elements,
            q.optimize_time.as_secs_f64() * 1e3,
            q.est_cost_us / 1e3,
            placement_summary(&q.plan),
        );
        let mut fires = q.rule_fires.clone();
        fires.sort();
        let fired: Vec<String> = fires.iter().map(|(n, c)| format!("{n}×{c}")).collect();
        if !fired.is_empty() {
            println!("{:24}   rules: {}", "", fired.join(", "));
        }
        println!(
            "{:24}   search: {} optimize calls, {} impls, {} enforcers, {} cache hits",
            "",
            q.search.optimize_calls,
            q.search.implementations_considered,
            q.search.enforcers_considered,
            q.search.cache_hits,
        );
        println!("{:24}   plan:\n{}", "", indent(&q.explain(), 8));
    }
    println!(
        "paper (its rule formulation): Q1 12/29, Q2 142/452, Q3 104/301, Q4 13/30 classes/elements"
    );
}

fn indent(s: &str, n: usize) -> String {
    s.lines().map(|l| format!("{}{l}", " ".repeat(n))).collect::<Vec<_>>().join("\n")
}
