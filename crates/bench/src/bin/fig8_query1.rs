//! Figure 8 — Query 1: "For each position in POSITION, get the number of
//! employees occupying that position at each point of time. Sort the
//! result by the position number."
//!
//! Three plans (Figure 7) over POSITION variants of increasing size.
//! Expected shape (paper): plans 1 and 2 are close and scale gently;
//! plan 3 (temporal aggregation *in the DBMS*) is up to ~10× slower.
//!
//! Usage: `cargo run --release -p tango-bench --bin fig8_query1 [--small]`

use tango_bench::plans::{placement_summary, q1_plans, q1_sql, PlanBuilder};
use tango_bench::setup::load_position_variant;
use tango_bench::{
    load_uis, time_plan_report, time_query_report, uis_link_profile, JsonLog, Table,
};
use tango_uis::{UisConfig, POSITION_VARIANTS};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let cfg = if small { UisConfig::small(0xEC1) } else { UisConfig::default() };
    let sizes: Vec<usize> = if small {
        vec![500, 1000, 2000]
    } else {
        let mut v = POSITION_VARIANTS.to_vec();
        v.push(cfg.position_rows);
        v
    };

    eprintln!("loading UIS ({} POSITION rows) + calibrating ...", cfg.position_rows);
    let mut setup = load_uis(&cfg, uis_link_profile(), true);

    let mut table = Table::new(
        "Figure 8 — Query 1 (temporal aggregation), time by POSITION size",
        "rows",
        &["plan1 (sortD+taggrM)", "plan2 (sortM+taggrM)", "plan3 (all DBMS)", "optimizer"],
    );

    let mut ops = JsonLog::new();
    for &n in &sizes {
        let tname = format!("POS_{n}");
        load_position_variant(&mut setup, &tname, n);
        let b = PlanBuilder::new(&setup.conn);
        let mut cells = Vec::new();
        let mut rows_seen = None;
        for (name, plan) in q1_plans(&b, &tname) {
            setup.db.link().reset();
            let (t, rows, report) = time_plan_report(&mut setup.tango, &plan);
            ops.push(name, n, &report);
            if let Some(r) = rows_seen {
                assert_eq!(r, rows, "plans disagree on the result size");
            }
            rows_seen = Some(rows);
            cells.push(Some(t));
        }
        // the optimizer's own choice, end to end
        setup.db.link().reset();
        let (t, _, explain, report) = time_query_report(&mut setup.tango, &q1_sql(&tname));
        ops.push("optimizer", n, &report);
        cells.push(Some(t));
        let chosen = setup.tango.optimize(&q1_sql(&tname)).unwrap();
        table.row(n, cells);
        eprintln!(
            "  n={n}: chosen [{}] est {:.0}ms classes={} elements={}",
            placement_summary(&chosen.plan),
            chosen.est_cost_us / 1000.0,
            chosen.classes,
            chosen.elements
        );
        let _ = explain;
        let _ = setup.db.drop_table(&tname, true);
    }
    table.note("paper: plans 1-2 close; plan 3 up to ~10x slower (Fig. 8)");
    table.emit("fig8_query1");
    ops.emit("fig8_query1");
}
