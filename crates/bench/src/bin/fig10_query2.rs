//! Figure 10 — Query 2: "Produce a time-varying relation that provides,
//! for each POSITION tuple with pay rate greater than $10, the count of
//! employees that were assigned to the position. Consider the time
//! period between January 1, 1983 and <end>, and sort by position."
//!
//! Six plans; the selection window end is relaxed year by year. Expected
//! shape (paper): all plans similar while the window catches little data
//! (until ~1990, Fig 10a); afterwards plans 4/5 deteriorate (whole-
//! relation transfers), plan 6 deteriorates (DBMS temporal aggregation),
//! plan 1 falls behind plans 2/3 (its `TRANSFER^D` grows), and plan 2
//! wins. Also reproduces the plan-choice comparison with and without
//! histograms on the time attributes.
//!
//! Usage: `cargo run --release -p tango-bench --bin fig10_query2 [--small]`

use tango_algebra::date::day;
use tango_bench::plans::{placement_summary, q2_plans, q2_sql, PlanBuilder};
use tango_bench::{
    load_uis, time_plan_report, time_query_report, uis_link_profile, JsonLog, Table,
};
use tango_uis::UisConfig;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let cfg = if small { UisConfig::small(0xEC1) } else { UisConfig::default() };
    let years: Vec<i32> =
        if small { vec![1986, 1994, 2000] } else { (0..9).map(|i| 1984 + 2 * i).collect() };
    let start = day(1983, 1, 1);

    eprintln!("loading UIS ({} POSITION rows) + calibrating ...", cfg.position_rows);
    let mut setup = load_uis(&cfg, uis_link_profile(), true);

    let names = [
        "plan1 (taggrM)",
        "plan2 (taggrM+tjoinM)",
        "plan3 (+sortM)",
        "plan4 (+filterM)",
        "plan5 (no arg filter)",
        "plan6 (all DBMS)",
        "optimizer",
    ];
    let mut table =
        Table::new("Figure 10 — Query 2, time by selection window end", "window end", &names);

    let mut choice_rows: Vec<(i32, String, String)> = Vec::new();
    let mut ops = JsonLog::new();
    for &y in &years {
        let end = day(y, 1, 1);
        let b = PlanBuilder::new(&setup.conn);
        let mut cells = Vec::new();
        for (name, plan) in q2_plans(&b, start, end) {
            setup.db.link().reset();
            let (t, _rows, report) = time_plan_report(&mut setup.tango, &plan);
            ops.push(name, y, &report);
            cells.push(Some(t));
        }
        setup.db.link().reset();
        let (t, _, _, report) = time_query_report(&mut setup.tango, &q2_sql(start, end));
        ops.push("optimizer", y, &report);
        cells.push(Some(t));
        table.row(y, cells);

        // plan choice with and without histograms (Section 5.2: without
        // histograms the optimizer mis-chose plan 1 for mid-size windows)
        setup.tango.options_mut().use_histograms = true;
        let with_h = setup.tango.optimize(&q2_sql(start, end)).unwrap();
        setup.tango.options_mut().use_histograms = false;
        let without_h = setup.tango.optimize(&q2_sql(start, end)).unwrap();
        setup.tango.options_mut().use_histograms = true;
        choice_rows.push((y, placement_summary(&with_h.plan), placement_summary(&without_h.plan)));
    }
    table.note("paper: flat until ~1990; then plans 4/5 and 6 blow up, plan 2 wins (Fig. 10b)");
    table.emit("fig10_query2");
    ops.emit("fig10_query2");

    println!("\n== Query 2 plan choice: with vs without histograms ==");
    println!("{:>6}  {:40}  {:40}", "end", "with histograms", "without histograms");
    for (y, w, wo) in &choice_rows {
        println!("{y:>6}  {w:40}  {wo:40}");
    }
}
