//! Chaos overhead study — how much does a faulty wire cost?
//!
//! Sweeps the per-round-trip transient-fault probability over the four
//! benchmark queries, with the connection's default retry policy
//! absorbing the faults. For every probability the result multiset is
//! checked against the fault-free baseline (the resilience contract:
//! survivable chaos never changes bytes), and the report shows the price
//! paid for it — injected faults, retries, re-plans, and the total
//! query time inflated by backoff and repeated transfers.
//!
//! Usage: `cargo run --release -p tango-bench --bin wire_faults [seed]`

use std::sync::Arc;
use std::time::Duration;
use tango_algebra::date::day;
use tango_algebra::Relation;
use tango_bench::plans::{q1_sql, q2_sql, q3_sql, q4_sql};
use tango_bench::setup::{load_uis, uis_link_profile};
use tango_minidb::FaultPlan;
use tango_uis::UisConfig;

fn main() {
    let seed: u64 =
        std::env::args().nth(1).map(|s| s.parse().expect("seed must be a u64")).unwrap_or(0xC0FFEE);
    let cfg = UisConfig::small(0xEC1);

    eprintln!("loading UIS ({} POSITION rows) + calibrating ...", cfg.position_rows);
    let mut setup = load_uis(&cfg, uis_link_profile(), true);

    let queries: Vec<(&str, String)> = vec![
        ("Q1 (taggr)", q1_sql("POSITION")),
        ("Q2 (taggr+tjoin)", q2_sql(day(1983, 1, 1), day(1994, 1, 1))),
        ("Q3 (self tjoin)", q3_sql(day(1990, 1, 1))),
        ("Q4 (regular join)", q4_sql("POSITION")),
    ];

    // fault-free baselines
    let mut baselines: Vec<Relation> = Vec::new();
    for (_, sql) in &queries {
        baselines.push(setup.tango.query(sql).unwrap().0);
    }

    println!("chaos sweep (seed {seed:#x}, error budget 3 per run)");
    println!(
        "{:>18} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "query", "p", "faults", "retries", "replans", "time", "overhead"
    );
    for &p in &[0.0f64, 0.02, 0.05, 0.1, 0.2] {
        for ((name, sql), baseline) in queries.iter().zip(&baselines) {
            let plan = Arc::new(
                FaultPlan::random(seed, p)
                    .with_budget(3)
                    .with_spikes(p / 2.0, Duration::from_millis(2)),
            );
            setup.db.link().set_injector(plan.clone());
            let before_retries = setup.tango.conn().wire_retries();
            let (rel, report) =
                setup.tango.query(sql).unwrap_or_else(|e| panic!("{name} failed under p={p}: {e}"));
            setup.db.link().clear_injector();
            assert!(
                rel.multiset_eq(baseline),
                "{name}: chaos at p={p} changed the result — resilience contract broken"
            );

            let replans: u64 = report
                .exec
                .steps
                .iter()
                .flat_map(|s| s.counters.iter())
                .filter(|(k, _)| *k == "replans")
                .map(|(_, v)| *v)
                .sum();
            let faultfree = {
                // re-run clean for the overhead column (virtual clock ⇒
                // deterministic)
                let (_, clean) = setup.tango.query(sql).unwrap();
                clean.total()
            };
            let t = report.total();
            let overhead = t.saturating_sub(faultfree);
            println!(
                "{name:>18} {p:>8.2} {:>8} {:>8} {replans:>8} {:>9.1}ms {:>9.1}ms",
                plan.faults_injected(),
                setup.tango.conn().wire_retries() - before_retries,
                t.as_secs_f64() * 1e3,
                overhead.as_secs_f64() * 1e3,
            );
        }
    }
    println!(
        "\nEvery row above returned the exact baseline multiset: the retry loop \
         (and, past the budget, the middleware re-plan) absorbs survivable chaos; \
         the overhead column is what that insurance costs."
    );
}
