//! `TMERGEJOIN^M` — temporal sort-merge join (⋈ᵀ).
//!
//! Matches tuples with equal join-attribute values whose valid-time
//! periods overlap, producing the intersected period
//! `[GREATEST(T1, T1'), LEAST(T2, T2'))` — the algebraic counterpart of
//! the SQL emitted for DBMS-side temporal joins (Figure 5).
//!
//! Inputs must be sorted on the join attributes; the output is ordered by
//! them, so a query that sorts its result on the join key needs no extra
//! sort after this algorithm (exploited by Queries 2 and 3 in the paper).

use crate::cursor::{BatchBuffered, BoxCursor, Cursor, ExecError, ExecOpts, Result};
use crate::par::{drain_buffered, partition_pairs, run_ordered, ParStats};
use crate::scan::VecScan;
use std::cmp::Ordering;
use std::sync::Arc;
use tango_algebra::logical::tjoin_schema;
use tango_algebra::{Batch, Period, Schema, Tuple, Value};

/// The `TMERGEJOIN^M` cursor: sort-merge temporal equi join — matches on
/// the join attributes *and* overlapping periods, emitting the
/// intersected period. Inputs sorted on the join attributes.
///
/// With `workers > 1` the join materializes both inputs, splits the left
/// side into ~morsel-sized partitions at key-group boundaries, aligns the
/// matching right ranges (both sides are key-sorted, so partitions cover
/// disjoint key ranges), and runs an independent sequential sub-join per
/// partition; outputs are concatenated in partition order, which equals
/// the sequential output exactly.
pub struct TemporalMergeJoin {
    left: BatchBuffered,
    right: BatchBuffered,
    opts: ExecOpts,
    eq: Vec<(String, String)>,
    lkeys: Vec<usize>,
    rkeys: Vec<usize>,
    /// Left attribute indices copied to the output (non-period).
    lkeep: Vec<usize>,
    /// Right attribute indices copied to the output (non-period, non-key).
    rkeep: Vec<usize>,
    lperiod: (usize, usize),
    rperiod: (usize, usize),
    date_typed: bool,
    schema: Arc<Schema>,
    state: Option<State>,
    /// Parallel path: the concatenated partition outputs, served as a scan.
    staged: Option<VecScan>,
    groups: u64,
    par: Option<ParStats>,
}

struct State {
    lgroup: Vec<Tuple>,
    rgroup: Vec<Tuple>,
    /// Periods of the buffered groups, parsed once per group instead of
    /// once per (left, right) pair in the emission loop.
    lper: Vec<Period>,
    rper: Vec<Period>,
    lnext: Option<Tuple>,
    rnext: Option<Tuple>,
    i: usize,
    j: usize,
}

impl TemporalMergeJoin {
    /// Temporal join of `left` and `right` on the `eq` attribute pairs.
    pub fn new(left: BoxCursor, right: BoxCursor, eq: &[(String, String)]) -> Result<Self> {
        Self::with_opts(left, right, eq, ExecOpts::default())
    }

    /// Like [`TemporalMergeJoin::new`] with explicit execution knobs.
    pub fn with_opts(
        left: BoxCursor,
        right: BoxCursor,
        eq: &[(String, String)],
        opts: ExecOpts,
    ) -> Result<Self> {
        let ls = left.schema();
        let rs = right.schema();
        let lperiod = ls
            .period()
            .ok_or_else(|| ExecError::State("temporal join: left input not temporal".into()))?;
        let rperiod = rs
            .period()
            .ok_or_else(|| ExecError::State("temporal join: right input not temporal".into()))?;
        let mut lkeys = Vec::new();
        let mut rkeys = Vec::new();
        for (l, r) in eq {
            lkeys.push(ls.index_of(l)?);
            rkeys.push(rs.index_of(r)?);
        }
        if lkeys.is_empty() {
            return Err(ExecError::State("temporal join requires at least one key".into()));
        }
        let lkeep: Vec<usize> =
            (0..ls.len()).filter(|&i| i != lperiod.0 && i != lperiod.1).collect();
        let rkeep: Vec<usize> = (0..rs.len())
            .filter(|&i| i != rperiod.0 && i != rperiod.1 && !rkeys.contains(&i))
            .collect();
        let eq_owned: Vec<(String, String)> = eq.to_vec();
        let schema = Arc::new(tjoin_schema(&eq_owned, ls, rs)?);
        let date_typed =
            matches!(schema.attr(schema.period().unwrap().0).ty, tango_algebra::Type::Date);
        let (left, right) = (
            BatchBuffered::with_rows(left, opts.batch_rows),
            BatchBuffered::with_rows(right, opts.batch_rows),
        );
        Ok(TemporalMergeJoin {
            left,
            right,
            opts,
            eq: eq_owned,
            lkeys,
            rkeys,
            lkeep,
            rkeep,
            lperiod,
            rperiod,
            date_typed,
            schema,
            state: None,
            staged: None,
            groups: 0,
            par: None,
        })
    }

    /// Parallel path: materialize, partition at key boundaries, run a
    /// sequential sub-join per partition, concatenate in order.
    fn open_parallel(&mut self) -> Result<()> {
        let lrows = drain_buffered(&mut self.left)?;
        let rrows = drain_buffered(&mut self.right)?;
        let (ls, rs) = (self.left.schema().clone(), self.right.schema().clone());
        let (lkeys, rkeys) = (self.lkeys.clone(), self.rkeys.clone());
        let same =
            |a: &Tuple, b: &Tuple| lkeys.iter().all(|&k| a[k].total_cmp(&b[k]) == Ordering::Equal);
        let cmp = |l: &Tuple, r: &Tuple| key_cmp(&lkeys, &rkeys, l, r);
        let parts = partition_pairs(&lrows, &rrows, self.opts.workers, same, cmp);
        let mut lit = lrows.into_iter();
        let mut rit = rrows.into_iter();
        let mut rpos = 0usize;
        let jobs: Vec<_> = parts
            .into_iter()
            .map(|(llo, lhi, rlo, rhi)| {
                let lpart: Vec<Tuple> = lit.by_ref().take(lhi - llo).collect();
                for _ in rpos..rlo {
                    rit.next();
                }
                let rpart: Vec<Tuple> = rit.by_ref().take(rhi - rlo).collect();
                rpos = rhi;
                let (ls, rs, eq) = (ls.clone(), rs.clone(), self.eq.clone());
                move || -> Result<(Vec<Tuple>, u64)> {
                    let mut j = TemporalMergeJoin::new(
                        Box::new(VecScan::from_parts(ls, lpart)),
                        Box::new(VecScan::from_parts(rs, rpart)),
                        &eq,
                    )?;
                    j.open()?;
                    let mut out = Vec::new();
                    while let Some(t) = j.next()? {
                        out.push(t);
                    }
                    let groups = j.groups;
                    j.close()?;
                    Ok((out, groups))
                }
            })
            .collect();
        let (results, stats) = run_ordered(self.opts.workers, jobs);
        let mut rows = Vec::new();
        for res in results {
            let (out, g) = res?;
            self.groups += g;
            rows.extend(out);
        }
        self.par = Some(stats);
        let mut scan = VecScan::from_parts(self.schema.clone(), rows);
        scan.open()?;
        self.staged = Some(scan);
        Ok(())
    }

    /// Read all consecutive tuples sharing the key of `first` from `input`.
    fn read_group(
        input: &mut BatchBuffered,
        first: Tuple,
        keys: &[usize],
    ) -> Result<(Vec<Tuple>, Option<Tuple>)> {
        let mut group = vec![first];
        loop {
            match input.next()? {
                Some(t) => {
                    let same =
                        keys.iter().all(|&k| t[k].total_cmp(&group[0][k]) == Ordering::Equal);
                    if same {
                        group.push(t);
                    } else {
                        return Ok((group, Some(t)));
                    }
                }
                None => return Ok((group, None)),
            }
        }
    }
}

fn key_cmp(lkeys: &[usize], rkeys: &[usize], l: &Tuple, r: &Tuple) -> Ordering {
    for (&li, &ri) in lkeys.iter().zip(rkeys) {
        let o = l[li].total_cmp(&r[ri]);
        if o != Ordering::Equal {
            return o;
        }
    }
    Ordering::Equal
}

fn emit(
    lkeep: &[usize],
    rkeep: &[usize],
    date_typed: bool,
    l: &Tuple,
    r: &Tuple,
    p: Period,
) -> Tuple {
    let mut out = Vec::with_capacity(lkeep.len() + rkeep.len() + 2);
    for &i in lkeep {
        out.push(l[i].clone());
    }
    for &i in rkeep {
        out.push(r[i].clone());
    }
    if date_typed {
        out.push(Value::Date(p.start));
        out.push(Value::Date(p.end));
    } else {
        out.push(Value::Int(p.start as i64));
        out.push(Value::Int(p.end as i64));
    }
    Tuple::new(out)
}

impl Cursor for TemporalMergeJoin {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()?;
        if self.opts.workers > 1 {
            return self.open_parallel();
        }
        let lnext = self.left.next()?;
        let rnext = self.right.next()?;
        self.state = Some(State {
            lgroup: Vec::new(),
            rgroup: Vec::new(),
            lper: Vec::new(),
            rper: Vec::new(),
            lnext,
            rnext,
            i: 0,
            j: 0,
        });
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if let Some(s) = &mut self.staged {
            return s.next();
        }
        // Split borrows up front (same pattern as `MergeJoin::next`): the
        // state, the two inputs and the resolved indices are disjoint
        // fields, so the loop can advance the inputs while reading the
        // buffered groups out of the state.
        let TemporalMergeJoin {
            left,
            right,
            lkeys,
            rkeys,
            lkeep,
            rkeep,
            lperiod,
            rperiod,
            date_typed,
            state,
            groups,
            ..
        } = self;
        let st =
            state.as_mut().ok_or_else(|| ExecError::State("temporal join not opened".into()))?;
        loop {
            // Emit remaining overlapping pairs of the buffered groups,
            // intersecting the periods parsed once per group.
            while st.i < st.lgroup.len() {
                while st.j < st.rgroup.len() {
                    let (i, j) = (st.i, st.j);
                    st.j += 1;
                    if let Some(p) = st.lper[i].intersect(&st.rper[j]) {
                        let out = emit(lkeep, rkeep, *date_typed, &st.lgroup[i], &st.rgroup[j], p);
                        return Ok(Some(out));
                    }
                }
                st.j = 0;
                st.i += 1;
            }
            st.lgroup.clear();
            st.rgroup.clear();
            st.lper.clear();
            st.rper.clear();
            st.i = 0;
            st.j = 0;
            // Align the two inputs on the next common key.
            loop {
                let (Some(l), Some(r)) = (&st.lnext, &st.rnext) else {
                    return Ok(None);
                };
                match key_cmp(lkeys, rkeys, l, r) {
                    Ordering::Less => st.lnext = left.next()?,
                    Ordering::Greater => st.rnext = right.next()?,
                    Ordering::Equal => break,
                }
            }
            // Buffer both groups, parse their periods once, and restart
            // emission.
            let lfirst = st.lnext.take().unwrap();
            let rfirst = st.rnext.take().unwrap();
            let (lg, ln) = Self::read_group(left, lfirst, lkeys)?;
            let (rg, rn) = Self::read_group(right, rfirst, rkeys)?;
            *groups += 1;
            let parse = |g: &[Tuple], (p0, p1): (usize, usize)| -> Vec<Period> {
                g.iter()
                    .map(|t| Period::new(t[p0].as_day().unwrap_or(0), t[p1].as_day().unwrap_or(0)))
                    .collect()
            };
            st.lper = parse(&lg, *lperiod);
            st.rper = parse(&rg, *rperiod);
            st.lgroup = lg;
            st.rgroup = rg;
            st.lnext = ln;
            st.rnext = rn;
        }
    }

    fn next_batch_of(&mut self, max_rows: usize) -> Result<Option<Batch>> {
        if let Some(s) = &mut self.staged {
            return s.next_batch_of(max_rows);
        }
        let max = max_rows.max(1);
        let mut rows = Vec::with_capacity(max.min(tango_algebra::DEFAULT_BATCH_ROWS));
        while rows.len() < max {
            match self.next()? {
                Some(t) => rows.push(t),
                None => break,
            }
        }
        if rows.is_empty() {
            Ok(None)
        } else {
            Ok(Some(Batch::new(self.schema.clone(), rows)))
        }
    }

    fn close(&mut self) -> Result<()> {
        self.state = None;
        self.staged = None;
        self.left.close()?;
        self.right.close()
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        let mut out = vec![("key_groups", self.groups)];
        if let Some(par) = &self.par {
            out.extend(par.counters());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect;
    use crate::taggr::TemporalAggregate;
    use crate::testutil::figure3_position;
    use proptest::prelude::*;
    use tango_algebra::{tup, AggFunc, AggSpec, Attr, Relation, SortSpec, Type};

    /// The Section 2.2 example: temporally join the aggregation result of
    /// Figure 3(c) with POSITION on PosID, producing Figure 3(b).
    #[test]
    fn figure3_query_result() {
        let pos = figure3_position();
        let mut sorted = pos.clone();
        sorted.sort_by(&SortSpec::by(["PosID", "T1"]));
        let agg = TemporalAggregate::new(
            Box::new(VecScan::new(sorted.clone())),
            vec!["PosID".into()],
            vec![AggSpec::new(AggFunc::Count, Some("PosID"), "COUNTofPosID")],
        )
        .unwrap();
        let tj = TemporalMergeJoin::new(
            Box::new(VecScan::new(sorted)),
            Box::new(agg),
            &[("PosID".to_string(), "PosID".to_string())],
        )
        .unwrap();
        let got = collect(Box::new(tj)).unwrap();
        // Figure 3(b), modulo column order: our layout is
        // (PosID, EmpName, COUNTofPosID, T1, T2).
        let expected = vec![
            tup![1, "Tom", 1, 2, 5],
            tup![1, "Tom", 2, 5, 20],
            tup![1, "Jane", 2, 5, 20],
            tup![1, "Jane", 1, 20, 25],
            tup![2, "Tom", 1, 5, 10],
        ];
        assert_eq!(got.tuples(), expected.as_slice());
        assert_eq!(
            got.schema().names().collect::<Vec<_>>(),
            vec!["PosID", "EmpName", "COUNTofPosID", "T1", "T2"]
        );
    }

    fn temporal_rel(vals: &[(i64, i64, i32, i32)]) -> Relation {
        let s = Arc::new(Schema::with_inferred_period(vec![
            Attr::new("K", Type::Int),
            Attr::new("V", Type::Int),
            Attr::new("T1", Type::Int),
            Attr::new("T2", Type::Int),
        ]));
        Relation::new(s, vals.iter().map(|&(k, v, t1, t2)| tup![k, v, t1, t2]).collect())
    }

    proptest! {
        #[test]
        fn agrees_with_nested_loop_reference(
            l in proptest::collection::vec((0i64..5, 0i64..100, 0i32..20, 1i32..10), 0..30),
            r in proptest::collection::vec((0i64..5, 0i64..100, 0i32..20, 1i32..10), 0..30),
        ) {
            let fix = |v: Vec<(i64, i64, i32, i32)>| -> Vec<(i64, i64, i32, i32)> {
                v.into_iter().map(|(k, x, t1, d)| (k, x, t1, t1 + d)).collect()
            };
            let (l, r) = (fix(l), fix(r));
            let mut lr = temporal_rel(&l);
            let mut rr = temporal_rel(&r);
            lr.sort_by(&SortSpec::by(["K"]));
            rr.sort_by(&SortSpec::by(["K"]));
            let tj = TemporalMergeJoin::new(
                Box::new(VecScan::new(lr)),
                Box::new(VecScan::new(rr)),
                &[("K".to_string(), "K".to_string())],
            ).unwrap();
            let got = collect(Box::new(tj)).unwrap();

            let mut expect = Vec::new();
            let mut ls = l; ls.sort();
            let mut rs = r; rs.sort();
            for &(lk, lv, lt1, lt2) in &ls {
                for &(rk, rv, rt1, rt2) in &rs {
                    if lk == rk {
                        if let Some(p) = Period::new(lt1, lt2).intersect(&Period::new(rt1, rt2)) {
                            expect.push(tup![lk, lv, rv, p.start, p.end]);
                        }
                    }
                }
            }
            let schema = got.schema().clone();
            let expected_rel = Relation::new(schema, expect);
            prop_assert!(got.multiset_eq(&expected_rel));
        }

        /// Parallel partitioned join equals the sequential merge exactly
        /// (same rows, same order).
        #[test]
        fn parallel_matches_sequential(
            l in proptest::collection::vec((0i64..5, 0i64..100, 0i32..20, 1i32..10), 0..40),
            r in proptest::collection::vec((0i64..5, 0i64..100, 0i32..20, 1i32..10), 0..40),
        ) {
            let fix = |v: Vec<(i64, i64, i32, i32)>| -> Vec<(i64, i64, i32, i32)> {
                v.into_iter().map(|(k, x, t1, d)| (k, x, t1, t1 + d)).collect()
            };
            let (l, r) = (fix(l), fix(r));
            let mut lr = temporal_rel(&l);
            let mut rr = temporal_rel(&r);
            lr.sort_by(&SortSpec::by(["K"]));
            rr.sort_by(&SortSpec::by(["K"]));
            let mk = |workers: usize| TemporalMergeJoin::with_opts(
                Box::new(VecScan::new(lr.clone())),
                Box::new(VecScan::new(rr.clone())),
                &[("K".to_string(), "K".to_string())],
                crate::cursor::ExecOpts { workers, ..Default::default() },
            ).unwrap();
            let seq = collect(Box::new(mk(1))).unwrap();
            let par = collect(Box::new(mk(8))).unwrap();
            prop_assert!(seq.list_eq(&par));
        }

        #[test]
        fn output_ordered_by_join_key(
            l in proptest::collection::vec((0i64..5, 0i64..10, 0i32..20, 1i32..10), 0..30),
        ) {
            let fixed: Vec<_> = l.into_iter().map(|(k, x, t1, d)| (k, x, t1, t1 + d)).collect();
            let mut rel1 = temporal_rel(&fixed);
            let mut rel2 = temporal_rel(&fixed);
            rel1.sort_by(&SortSpec::by(["K"]));
            rel2.sort_by(&SortSpec::by(["K"]));
            let tj = TemporalMergeJoin::new(
                Box::new(VecScan::new(rel1)),
                Box::new(VecScan::new(rel2)),
                &[("K".to_string(), "K".to_string())],
            ).unwrap();
            let got = collect(Box::new(tj)).unwrap();
            prop_assert!(got.is_sorted_by(&SortSpec::by(["K"])));
        }
    }
}
