//! `PROJECT^M` — middleware projection (generalized: computes scalar
//! expressions, e.g. the `GREATEST`/`LEAST` period construction of a
//! temporal join rendered as a projection). Order-preserving.

use crate::cursor::{BoxCursor, Cursor, ExecError, Result};
use std::sync::Arc;
use tango_algebra::logical::{infer_type, ProjItem};
use tango_algebra::{Attr, Batch, Expr, Schema, Tuple};

/// The `PROJECT^M` cursor: evaluates one scalar expression per output
/// attribute.
pub struct Project {
    input: BoxCursor,
    items: Vec<ProjItem>,
    schema: Arc<Schema>,
    bound: Vec<Expr>,
    /// When every projection item is a bare column reference, the resolved
    /// indices: columnar input batches are answered by a zero-copy column
    /// pick instead of per-row expression evaluation.
    col_pick: Option<Vec<usize>>,
}

impl Project {
    /// Construction derives the output schema from the input cursor's
    /// schema, so it can fail on unknown columns.
    pub fn new(input: BoxCursor, items: Vec<ProjItem>) -> Result<Self> {
        let in_schema = input.schema();
        let mut attrs = Vec::with_capacity(items.len());
        for it in &items {
            attrs.push(Attr::new(it.alias.clone(), infer_type(&it.expr, in_schema)?));
        }
        let schema = Arc::new(Schema::with_inferred_period(attrs));
        Ok(Project { input, items, schema, bound: Vec::new(), col_pick: None })
    }

    /// Projection onto plain columns.
    pub fn cols(input: BoxCursor, cols: &[&str]) -> Result<Self> {
        Project::new(input, cols.iter().map(|c| ProjItem::col(*c)).collect())
    }
}

impl Cursor for Project {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.input.open()?;
        self.bound = self
            .items
            .iter()
            .map(|it| it.expr.bound(self.input.schema()))
            .collect::<tango_algebra::Result<_>>()?;
        self.col_pick = self
            .bound
            .iter()
            .map(|e| match e {
                Expr::Col { index: Some(i), .. } => Some(*i),
                _ => None,
            })
            .collect();
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if self.bound.is_empty() && !self.items.is_empty() {
            return Err(ExecError::State("project not opened".into()));
        }
        match self.input.next()? {
            None => Ok(None),
            Some(t) => {
                let mut out = Vec::with_capacity(self.bound.len());
                for e in &self.bound {
                    out.push(e.eval(&t)?);
                }
                Ok(Some(Tuple::new(out)))
            }
        }
    }

    fn next_batch_of(&mut self, max_rows: usize) -> Result<Option<Batch>> {
        if self.bound.is_empty() && !self.items.is_empty() {
            return Err(ExecError::State("project not opened".into()));
        }
        let Some(b) = self.input.next_batch_of(max_rows)? else {
            return Ok(None);
        };
        if let Some(pick) = &self.col_pick {
            if let Some(out) = b.select_columns(pick, self.schema.clone()) {
                return Ok(Some(out));
            }
        }
        let in_rows = b.into_rows();
        let mut rows = Vec::with_capacity(in_rows.len());
        for t in &in_rows {
            let mut out = Vec::with_capacity(self.bound.len());
            for e in &self.bound {
                out.push(e.eval(t)?);
            }
            rows.push(Tuple::new(out));
        }
        Ok(Some(Batch::new(self.schema.clone(), rows)))
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect;
    use crate::scan::VecScan;
    use crate::testutil::figure3_position;
    use tango_algebra::{tup, ArithOp};

    #[test]
    fn plain_projection() {
        let got = collect(Box::new(
            Project::cols(Box::new(VecScan::new(figure3_position())), &["EmpName", "PosID"])
                .unwrap(),
        ))
        .unwrap();
        assert_eq!(got.tuples()[0], tup!["Tom", 1]);
        assert_eq!(got.schema().names().collect::<Vec<_>>(), vec!["EmpName", "PosID"]);
        assert!(!got.schema().is_temporal());
    }

    #[test]
    fn computed_projection_keeps_period() {
        let items = vec![
            ProjItem::col("PosID"),
            ProjItem::named(
                Expr::Arith(ArithOp::Sub, Box::new(Expr::col("T2")), Box::new(Expr::col("T1"))),
                "Dur",
            ),
            ProjItem::col("T1"),
            ProjItem::col("T2"),
        ];
        let got = collect(Box::new(
            Project::new(Box::new(VecScan::new(figure3_position())), items).unwrap(),
        ))
        .unwrap();
        assert!(got.schema().is_temporal());
        assert_eq!(got.tuples()[0], tup![1, 18, 2, 20]);
    }

    #[test]
    fn unknown_column_rejected_at_construction() {
        assert!(Project::cols(Box::new(VecScan::new(figure3_position())), &["Nope"]).is_err());
    }
}
