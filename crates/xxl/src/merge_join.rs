//! `MERGEJOIN^M` — sort-merge equi join.
//!
//! The paper implements both regular and temporal joins in the middleware
//! as sort-merge joins (Section 4.1, rules T2/T3); inputs must be sorted
//! on their join attributes. The output is ordered by the left input's
//! join attributes, which is why the optimizer can sometimes skip a final
//! sort.

use crate::cursor::{BatchBuffered, BoxCursor, Cursor, ExecError, ExecOpts, Result};
use crate::par::{drain_buffered, partition_pairs, run_ordered, ParStats};
use crate::scan::VecScan;
use std::cmp::Ordering;
use std::sync::Arc;
use tango_algebra::logical::concat_schemas;
use tango_algebra::{Schema, Tuple};

/// The `MERGEJOIN^M` cursor: sort-merge equi join over inputs sorted on
/// the join attributes; output ordered by the left input.
///
/// With `workers > 1` both inputs are materialized, the left side is
/// split at key-group boundaries, each partition joins against its
/// aligned right range on the worker pool, and the partition outputs are
/// concatenated in key order — identical to the sequential output.
pub struct MergeJoin {
    left: BatchBuffered,
    right: BatchBuffered,
    opts: ExecOpts,
    eq: Vec<(String, String)>,
    /// Resolved join-attribute indices (left, right).
    keys: Vec<(usize, usize)>,
    schema: Arc<Schema>,
    state: Option<State>,
    /// Parallel path: the concatenated partition outputs, served as a scan.
    staged: Option<VecScan>,
    groups: u64,
    par: Option<ParStats>,
}

struct State {
    /// Current left tuple under consideration.
    left_cur: Option<Tuple>,
    /// Buffered right group (all right tuples with the current key).
    right_group: Vec<Tuple>,
    /// Lookahead on the right input.
    right_next: Option<Tuple>,
    /// Output position within the current (left tuple × right group).
    emit_idx: usize,
    /// Does the current left tuple match the buffered right group?
    matching: bool,
}

impl MergeJoin {
    /// Join `left` and `right` on the `eq` attribute pairs; both inputs
    /// must be sorted on those attributes.
    pub fn new(left: BoxCursor, right: BoxCursor, eq: &[(String, String)]) -> Result<Self> {
        Self::with_opts(left, right, eq, ExecOpts::default())
    }

    /// Like [`MergeJoin::new`] with explicit execution knobs.
    pub fn with_opts(
        left: BoxCursor,
        right: BoxCursor,
        eq: &[(String, String)],
        opts: ExecOpts,
    ) -> Result<Self> {
        let mut keys = Vec::with_capacity(eq.len());
        for (l, r) in eq {
            keys.push((left.schema().index_of(l)?, right.schema().index_of(r)?));
        }
        if keys.is_empty() {
            return Err(ExecError::State("merge join requires at least one key".into()));
        }
        let schema = Arc::new(concat_schemas(left.schema(), right.schema()));
        let (left, right) = (
            BatchBuffered::with_rows(left, opts.batch_rows),
            BatchBuffered::with_rows(right, opts.batch_rows),
        );
        Ok(MergeJoin {
            left,
            right,
            opts,
            eq: eq.to_vec(),
            keys,
            schema,
            state: None,
            staged: None,
            groups: 0,
            par: None,
        })
    }

    /// Parallel path: materialize, partition at key boundaries, run a
    /// sequential sub-join per partition, concatenate in order.
    fn open_parallel(&mut self) -> Result<()> {
        let lrows = drain_buffered(&mut self.left)?;
        let rrows = drain_buffered(&mut self.right)?;
        let (ls, rs) = (self.left.schema().clone(), self.right.schema().clone());
        let keys = self.keys.clone();
        let same = |a: &Tuple, b: &Tuple| {
            keys.iter().all(|&(li, _)| a[li].total_cmp(&b[li]) == Ordering::Equal)
        };
        let cmp = |l: &Tuple, r: &Tuple| key_cmp(&keys, l, r);
        let parts = partition_pairs(&lrows, &rrows, self.opts.workers, same, cmp);
        let mut lit = lrows.into_iter();
        let mut rit = rrows.into_iter();
        let mut rpos = 0usize;
        let jobs: Vec<_> = parts
            .into_iter()
            .map(|(llo, lhi, rlo, rhi)| {
                let lpart: Vec<Tuple> = lit.by_ref().take(lhi - llo).collect();
                for _ in rpos..rlo {
                    rit.next();
                }
                let rpart: Vec<Tuple> = rit.by_ref().take(rhi - rlo).collect();
                rpos = rhi;
                let (ls, rs, eq) = (ls.clone(), rs.clone(), self.eq.clone());
                move || -> Result<(Vec<Tuple>, u64)> {
                    let mut j = MergeJoin::new(
                        Box::new(VecScan::from_parts(ls, lpart)),
                        Box::new(VecScan::from_parts(rs, rpart)),
                        &eq,
                    )?;
                    j.open()?;
                    let mut out = Vec::new();
                    while let Some(t) = j.next()? {
                        out.push(t);
                    }
                    let groups = j.groups;
                    j.close()?;
                    Ok((out, groups))
                }
            })
            .collect();
        let (results, stats) = run_ordered(self.opts.workers, jobs);
        let mut rows = Vec::new();
        for res in results {
            let (out, g) = res?;
            self.groups += g;
            rows.extend(out);
        }
        self.par = Some(stats);
        let mut scan = VecScan::from_parts(self.schema.clone(), rows);
        scan.open()?;
        self.staged = Some(scan);
        Ok(())
    }
}

fn key_cmp(keys: &[(usize, usize)], l: &Tuple, r: &Tuple) -> Ordering {
    for &(li, ri) in keys {
        let o = l[li].total_cmp(&r[ri]);
        if o != Ordering::Equal {
            return o;
        }
    }
    Ordering::Equal
}

impl Cursor for MergeJoin {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()?;
        if self.opts.workers > 1 {
            return self.open_parallel();
        }
        let left_cur = self.left.next()?;
        let right_next = self.right.next()?;
        self.state = Some(State {
            left_cur,
            right_group: Vec::new(),
            right_next,
            emit_idx: 0,
            matching: false,
        });
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if let Some(s) = &mut self.staged {
            return s.next();
        }
        // Split borrows up front: the merge state, the two inputs and the
        // key indices are disjoint fields, so the loop below can advance
        // the inputs while holding borrowed tuples out of the state — no
        // per-iteration `Tuple` clones.
        let MergeJoin { left, right, keys, state, groups, .. } = self;
        let st = state.as_mut().ok_or_else(|| ExecError::State("merge join not opened".into()))?;
        loop {
            // Emit pending pairs for the current left tuple.
            if st.matching {
                if let Some(l) = &st.left_cur {
                    if st.emit_idx < st.right_group.len() {
                        let out = l.concat(&st.right_group[st.emit_idx]);
                        st.emit_idx += 1;
                        return Ok(Some(out));
                    }
                }
                // Exhausted the group for this left tuple: advance left; if
                // the next left tuple has the same key, replay the group.
                let prev = st.left_cur.take();
                st.left_cur = left.next()?;
                st.emit_idx = 0;
                st.matching = match (&prev, &st.left_cur) {
                    (Some(p), Some(c)) => {
                        keys.iter().all(|&(li, _)| p[li].total_cmp(&c[li]) == Ordering::Equal)
                    }
                    _ => false,
                };
                if st.matching {
                    continue;
                }
            }
            let Some(cur) = st.left_cur.as_ref() else {
                return Ok(None);
            };
            // Advance the right side until its key >= left key, buffering
            // the group when equal.
            if st.right_next.is_none() {
                // No more right tuples can match this or any later left
                // tuple unless a buffered group matches — check group.
                if !st.right_group.is_empty() && key_cmp(keys, cur, &st.right_group[0]).is_eq() {
                    st.matching = true;
                    st.emit_idx = 0;
                    continue;
                }
                return Ok(None);
            }
            // If the buffered group already matches the left key, use it.
            if !st.right_group.is_empty() && key_cmp(keys, cur, &st.right_group[0]).is_eq() {
                st.matching = true;
                st.emit_idx = 0;
                continue;
            }
            let r = st.right_next.as_ref().unwrap();
            match key_cmp(keys, cur, r) {
                Ordering::Less => {
                    // left key too small: advance left
                    st.left_cur = left.next()?;
                    if st.left_cur.is_none() {
                        return Ok(None);
                    }
                }
                Ordering::Greater => {
                    // right key too small: discard and advance right
                    st.right_group.clear();
                    st.right_next = right.next()?;
                }
                Ordering::Equal => {
                    // Buffer the whole right group with this key, moving
                    // the lookahead tuple in rather than cloning it.
                    let first = st.right_next.take().unwrap();
                    let mut group = vec![first];
                    loop {
                        match right.next()? {
                            Some(t)
                                if keys.iter().all(|&(_, ri)| {
                                    group[0][ri].total_cmp(&t[ri]) == Ordering::Equal
                                }) =>
                            {
                                group.push(t)
                            }
                            other => {
                                st.right_next = other;
                                break;
                            }
                        }
                    }
                    *groups += 1;
                    st.right_group = group;
                    st.matching = true;
                    st.emit_idx = 0;
                }
            }
        }
    }

    fn next_batch_of(&mut self, max_rows: usize) -> Result<Option<tango_algebra::Batch>> {
        if let Some(s) = &mut self.staged {
            return s.next_batch_of(max_rows);
        }
        let max = max_rows.max(1);
        let mut rows = Vec::with_capacity(max.min(tango_algebra::DEFAULT_BATCH_ROWS));
        while rows.len() < max {
            match self.next()? {
                Some(t) => rows.push(t),
                None => break,
            }
        }
        if rows.is_empty() {
            Ok(None)
        } else {
            Ok(Some(tango_algebra::Batch::new(self.schema.clone(), rows)))
        }
    }

    fn close(&mut self) -> Result<()> {
        self.state = None;
        self.staged = None;
        self.left.close()?;
        self.right.close()
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        let mut out = vec![("right_groups", self.groups)];
        if let Some(par) = &self.par {
            out.extend(par.counters());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect;
    use crate::scan::VecScan;
    use proptest::prelude::*;
    use tango_algebra::{tup, Attr, Relation, SortSpec, Type};

    fn rel(name_a: &str, name_b: &str, vals: Vec<(i64, i64)>) -> Relation {
        let s =
            Arc::new(Schema::new(vec![Attr::new(name_a, Type::Int), Attr::new(name_b, Type::Int)]));
        Relation::new(s, vals.into_iter().map(|(a, b)| tup![a, b]).collect())
    }

    fn join_pairs(l: Vec<(i64, i64)>, r: Vec<(i64, i64)>) -> Vec<Vec<i64>> {
        let mut lr = rel("K", "X", l);
        let mut rr = rel("K2", "Y", r);
        lr.sort_by(&SortSpec::by(["K"]));
        rr.sort_by(&SortSpec::by(["K2"]));
        let mj = MergeJoin::new(
            Box::new(VecScan::new(lr)),
            Box::new(VecScan::new(rr)),
            &[("K".to_string(), "K2".to_string())],
        )
        .unwrap();
        collect(Box::new(mj))
            .unwrap()
            .tuples()
            .iter()
            .map(|t| t.values().iter().map(|v| v.as_int().unwrap()).collect())
            .collect()
    }

    #[test]
    fn basic_join() {
        let got = join_pairs(vec![(1, 10), (2, 20), (4, 40)], vec![(2, 200), (2, 201), (3, 300)]);
        assert_eq!(got, vec![vec![2, 20, 2, 200], vec![2, 20, 2, 201]]);
    }

    #[test]
    fn duplicate_left_keys_replay_group() {
        let got = join_pairs(vec![(1, 10), (1, 11)], vec![(1, 100), (1, 101)]);
        assert_eq!(got.len(), 4);
    }

    proptest! {
        /// Parallel partitioned join equals the sequential merge exactly.
        #[test]
        fn parallel_matches_sequential(
            l in proptest::collection::vec((0i64..8, 0i64..100), 0..50),
            r in proptest::collection::vec((0i64..8, 0i64..100), 0..50),
        ) {
            let mut lr = rel("K", "X", l);
            let mut rr = rel("K2", "Y", r);
            lr.sort_by(&SortSpec::by(["K"]));
            rr.sort_by(&SortSpec::by(["K2"]));
            let mk = |workers: usize| MergeJoin::with_opts(
                Box::new(VecScan::new(lr.clone())),
                Box::new(VecScan::new(rr.clone())),
                &[("K".to_string(), "K2".to_string())],
                crate::cursor::ExecOpts { workers, ..Default::default() },
            ).unwrap();
            let seq = collect(Box::new(mk(1))).unwrap();
            let par = collect(Box::new(mk(8))).unwrap();
            prop_assert!(seq.list_eq(&par));
        }

        #[test]
        fn agrees_with_nested_loop(
            l in proptest::collection::vec((0i64..8, 0i64..100), 0..40),
            r in proptest::collection::vec((0i64..8, 0i64..100), 0..40),
        ) {
            let got = join_pairs(l.clone(), r.clone());
            // reference: nested loop over sorted inputs
            let mut ls = l; ls.sort();
            let mut rs = r; rs.sort();
            let mut expect = Vec::new();
            for (lk, lx) in &ls {
                for (rk, ry) in &rs {
                    if lk == rk { expect.push(vec![*lk, *lx, *rk, *ry]); }
                }
            }
            let mut got_sorted = got.clone();
            got_sorted.sort();
            expect.sort();
            prop_assert_eq!(got_sorted, expect);
        }
    }
}
