//! Temporal coalescing — merges value-equivalent tuples whose periods
//! overlap or are adjacent into maximal periods. Listed by the paper as a
//! future TANGO operator; Vassilakis (2000) gives optimization rules for
//! sequences of coalescing and temporal selection, which `tango-core`
//! adopts as a transformation rule.
//!
//! The input must be sorted on (all non-temporal attributes, `T1`); the
//! output is sorted the same way.

use crate::cursor::{BatchBuffered, BoxCursor, Cursor, ExecError, ExecOpts, Result};
use std::sync::Arc;
use tango_algebra::{Period, Schema, Tuple, Type, Value};

/// The coalescing cursor: merges value-equivalent tuples with
/// overlapping or adjacent periods into maximal periods.
pub struct Coalesce {
    input: BatchBuffered,
    value_idx: Vec<usize>,
    period: (usize, usize),
    date_typed: bool,
    /// Tuple (value part) and running merged period.
    current: Option<(Tuple, Period)>,
    opened: bool,
    done: bool,
    merged: u64,
}

impl Coalesce {
    /// Build over `input`, which must be temporal and sorted on (value
    /// attributes, `T1`).
    pub fn new(input: BoxCursor) -> Result<Self> {
        Self::with_opts(input, ExecOpts::default())
    }

    /// Like [`Coalesce::new`] with explicit execution knobs (the merge
    /// scan is inherently sequential, so only `batch_rows` applies).
    pub fn with_opts(input: BoxCursor, opts: ExecOpts) -> Result<Self> {
        let input = BatchBuffered::with_rows(input, opts.batch_rows);
        let schema = input.schema();
        let period = schema
            .period()
            .ok_or_else(|| ExecError::State("coalesce: input not temporal".into()))?;
        let value_idx: Vec<usize> =
            (0..schema.len()).filter(|&i| i != period.0 && i != period.1).collect();
        let date_typed = matches!(schema.attr(period.0).ty, Type::Date);
        Ok(Coalesce {
            input,
            value_idx,
            period,
            date_typed,
            current: None,
            opened: false,
            done: false,
            merged: 0,
        })
    }

    fn value_eq(&self, a: &Tuple, b: &Tuple) -> bool {
        self.value_idx.iter().all(|&i| a[i].total_cmp(&b[i]) == std::cmp::Ordering::Equal)
    }

    fn tuple_period(&self, t: &Tuple) -> Option<Period> {
        let p = Period::new(t[self.period.0].as_day()?, t[self.period.1].as_day()?);
        p.is_valid().then_some(p)
    }

    fn finish(&self, base: &Tuple, p: Period) -> Tuple {
        let mut out = base.clone();
        let (v1, v2) = if self.date_typed {
            (Value::Date(p.start), Value::Date(p.end))
        } else {
            (Value::Int(p.start as i64), Value::Int(p.end as i64))
        };
        out.set(self.period.0, v1);
        out.set(self.period.1, v2);
        out
    }
}

impl Cursor for Coalesce {
    fn schema(&self) -> &Arc<Schema> {
        self.input.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.input.open()?;
        self.opened = true;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if !self.opened {
            return Err(ExecError::State("coalesce not opened".into()));
        }
        loop {
            if self.done {
                return Ok(self.current.take().map(|(t, p)| self.finish(&t, p)));
            }
            let nxt = self.input.next()?;
            match nxt {
                None => {
                    self.done = true;
                    continue;
                }
                Some(t) => {
                    let Some(p) = self.tuple_period(&t) else {
                        continue; // skip empty/null periods
                    };
                    match self.current.take() {
                        None => {
                            self.current = Some((t, p));
                        }
                        Some((cur, cp)) => {
                            if self.value_eq(&cur, &t) && cp.meets_or_overlaps(&p) {
                                self.merged += 1;
                                self.current = Some((cur, cp.merge(&p)));
                            } else {
                                let out = self.finish(&cur, cp);
                                self.current = Some((t, p));
                                return Ok(Some(out));
                            }
                        }
                    }
                }
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![("periods_merged", self.merged)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect;
    use crate::scan::VecScan;
    use proptest::prelude::*;
    use tango_algebra::{tup, Attr, Relation, SortSpec};

    fn rel(vals: &[(i64, i32, i32)]) -> Relation {
        let s = Arc::new(Schema::with_inferred_period(vec![
            Attr::new("G", Type::Int),
            Attr::new("T1", Type::Int),
            Attr::new("T2", Type::Int),
        ]));
        Relation::new(s, vals.iter().map(|&(g, a, b)| tup![g, a, b]).collect())
    }

    fn run(vals: &[(i64, i32, i32)]) -> Vec<(i64, i64, i64)> {
        let mut r = rel(vals);
        r.sort_by(&SortSpec::by(["G", "T1"]));
        collect(Box::new(Coalesce::new(Box::new(VecScan::new(r))).unwrap()))
            .unwrap()
            .tuples()
            .iter()
            .map(|t| (t[0].as_int().unwrap(), t[1].as_int().unwrap(), t[2].as_int().unwrap()))
            .collect()
    }

    #[test]
    fn merges_adjacent_and_overlapping() {
        assert_eq!(
            run(&[(1, 0, 5), (1, 5, 10), (1, 12, 15), (2, 3, 8), (2, 6, 9)]),
            vec![(1, 0, 10), (1, 12, 15), (2, 3, 9)]
        );
    }

    #[test]
    fn idempotent() {
        let once = run(&[(1, 0, 5), (1, 4, 9), (1, 9, 12)]);
        assert_eq!(once, vec![(1, 0, 12)]);
    }

    proptest! {
        /// Coalescing preserves the set of (value, time-point) facts.
        #[test]
        fn preserves_snapshots(vals in proptest::collection::vec((0i64..3, 0i32..25, 1i32..8), 1..40)) {
            let fixed: Vec<(i64, i32, i32)> = vals.into_iter().map(|(g, a, d)| (g, a, a + d)).collect();
            let out = run(&fixed);
            for t in 0..35i64 {
                for g in 0..3i64 {
                    let before = fixed.iter().any(|&(gg, a, b)| gg == g && (a as i64) <= t && t < b as i64);
                    let after_cnt = out.iter().filter(|&&(gg, a, b)| gg == g && a <= t && t < b).count();
                    prop_assert_eq!(before, after_cnt == 1);
                    prop_assert!(after_cnt <= 1, "coalesced output overlaps itself");
                }
            }
        }
    }
}
