//! `FILTER^M` — middleware selection.
//!
//! The paper motivates a middleware selection algorithm even though DBMSs
//! filter efficiently: "if there is a selection between two temporal
//! algorithms to be performed in the middleware, it would be inefficient
//! to transfer the intermediate result to the DBMS solely for the purpose
//! of selection" (Section 3.3). The algorithm is order-preserving.

use crate::cursor::{BoxCursor, Cursor, Result};
use std::sync::Arc;
use tango_algebra::{Batch, Expr, Schema, Tuple};

/// The `FILTER^M` cursor: pipelined, order-preserving selection.
pub struct Filter {
    input: BoxCursor,
    pred: Expr,
    bound: Option<Expr>,
    dropped: u64,
}

impl Filter {
    /// Keep the tuples of `input` for which `pred` holds.
    pub fn new(input: BoxCursor, pred: Expr) -> Self {
        Filter { input, pred, bound: None, dropped: 0 }
    }
}

impl Cursor for Filter {
    fn schema(&self) -> &Arc<Schema> {
        self.input.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.input.open()?;
        self.bound = Some(self.pred.bound(self.input.schema())?);
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        loop {
            let t = match self.input.next()? {
                Some(t) => t,
                None => return Ok(None),
            };
            let pred = self
                .bound
                .as_ref()
                .ok_or_else(|| crate::cursor::ExecError::State("filter not opened".into()))?;
            if pred.matches(&t)? {
                return Ok(Some(t));
            }
            self.dropped += 1;
        }
    }

    fn next_batch_of(&mut self, max_rows: usize) -> Result<Option<Batch>> {
        let Some(pred) = self.bound.as_ref() else {
            return Err(crate::cursor::ExecError::State("filter not opened".into()));
        };
        // Keep pulling input batches until one survives the predicate;
        // an all-dropped batch must not end the stream early.
        loop {
            let Some(b) = self.input.next_batch_of(max_rows)? else {
                return Ok(None);
            };
            if b.is_columnar() {
                // Vectorized path: a tri-state kernel over the flat columns
                // where the predicate shape supports one, per-row
                // materialization where it doesn't; survivors are gathered
                // into a fresh columnar batch (or the input batch is passed
                // through untouched when nothing drops).
                let n = b.len();
                let sel: Vec<u32> = match pred.eval_batch_tri(&b) {
                    Some(tri) => tri
                        .iter()
                        .enumerate()
                        .filter(|&(_, &t)| t == 1)
                        .map(|(i, _)| i as u32)
                        .collect(),
                    None => {
                        let mut sel = Vec::new();
                        for i in 0..n {
                            if pred.matches(&b.tuple_at(i))? {
                                sel.push(i as u32);
                            }
                        }
                        sel
                    }
                };
                self.dropped += (n - sel.len()) as u64;
                if sel.len() == n {
                    return Ok(Some(b));
                }
                if !sel.is_empty() {
                    return Ok(Some(b.gather(&sel)));
                }
                continue;
            }
            let mut rows = b.into_rows();
            let mut kept = 0usize;
            for i in 0..rows.len() {
                if pred.matches(&rows[i])? {
                    rows.swap(kept, i);
                    kept += 1;
                } else {
                    self.dropped += 1;
                }
            }
            rows.truncate(kept);
            if !rows.is_empty() {
                return Ok(Some(Batch::new(self.schema().clone(), rows)));
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![("rows_dropped", self.dropped)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect;
    use crate::scan::VecScan;
    use crate::testutil::figure3_position;
    use tango_algebra::{tup, CmpOp};

    #[test]
    fn filters_and_preserves_order() {
        let pred = Expr::cmp(CmpOp::Eq, Expr::col("PosID"), Expr::lit(1));
        let got = collect(Box::new(Filter::new(Box::new(VecScan::new(figure3_position())), pred)))
            .unwrap();
        assert_eq!(got.tuples(), &[tup![1, "Tom", 2, 20], tup![1, "Jane", 5, 25]]);
    }

    #[test]
    fn temporal_predicate() {
        // Overlaps([4, 6)): T1 < 6 AND T2 > 4
        let pred = Expr::overlaps("T1", "T2", Expr::lit(4), Expr::lit(6));
        let got = collect(Box::new(Filter::new(Box::new(VecScan::new(figure3_position())), pred)))
            .unwrap();
        assert_eq!(got.len(), 3); // all three periods overlap [4, 6)
    }
}
