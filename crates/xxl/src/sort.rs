//! `SORT^M` — middleware sorting.
//!
//! Two implementations share the operator interface:
//!
//! * [`Sort`] materializes its input, columnarizes it, and sorts by
//!   permutation over flat key arrays (the default; the paper's prototype
//!   worked in memory and listed very-large-relation support as future
//!   work). With `workers > 1` the permutation is computed over
//!   morsel-sized chunks in parallel and stable-merged — byte-identical
//!   to the sequential sort.
//! * [`ExternalSort`] is that future work: it spills sorted runs to
//!   temporary files using the binary tuple codec and k-way merges them,
//!   bounding memory by the run size. With `workers > 1`, up to `workers`
//!   run chunks are sorted concurrently before being spilled in input
//!   order, so the run files are identical to a sequential spill.
//!
//! Both sorts are stable, so they refine any pre-existing order — a
//! property rule T12 (`sort_A(sort_B(r)) → sort_A(r)` when
//! `IsPrefixOf(B, A)`) depends on.

use crate::cursor::{drain_batches, BoxCursor, Cursor, ExecError, ExecOpts, Result};
use crate::par::{morsel_ranges, run_ordered, ParStats};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tango_algebra::codec::{encode_tuple, Decoder};
use tango_algebra::{sort_tuples, Batch, BatchKeys, Schema, SortSpec, Tuple};

/// In-memory sort: columnar permutation sort with an optional parallel
/// chunk phase.
pub struct Sort {
    input: BoxCursor,
    spec: SortSpec,
    opts: ExecOpts,
    sorted: Option<Batch>,
    pos: usize,
    buffered: u64,
    par: Option<ParStats>,
}

impl Sort {
    /// Sort `input` by `spec` (stable; materializes at open).
    pub fn new(input: BoxCursor, spec: SortSpec) -> Self {
        Self::with_opts(input, spec, ExecOpts::default())
    }

    /// Like [`Sort::new`] with explicit execution knobs (batch size and
    /// worker-pool width).
    pub fn with_opts(input: BoxCursor, spec: SortSpec, opts: ExecOpts) -> Self {
        Sort { input, spec, opts, sorted: None, pos: 0, buffered: 0, par: None }
    }
}

impl Cursor for Sort {
    fn schema(&self) -> &Arc<Schema> {
        self.input.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.input.open()?;
        let schema = self.input.schema().clone();
        let batches = drain_batches(self.input.as_mut(), self.opts.batch_rows)?;
        let data = Batch::concat(schema.clone(), batches);
        self.buffered = data.len() as u64;
        self.pos = 0;
        let keys = BatchKeys::extract(&data, &self.spec, &schema);
        if data.is_empty() || keys.is_empty() {
            self.sorted = Some(data);
            return Ok(());
        }
        let n = data.len();
        let ranges = morsel_ranges(n, self.opts.workers);
        let perm = if ranges.len() > 1 {
            let keys_ref = &keys;
            let jobs: Vec<_> =
                ranges.into_iter().map(|(lo, hi)| move || keys_ref.sort_range(lo, hi)).collect();
            let (chunks, stats) = run_ordered(self.opts.workers, jobs);
            self.par = Some(stats);
            keys.merge(chunks)
        } else {
            keys.sort_range(0, n)
        };
        self.sorted = Some(data.gather(&perm));
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        let Some(s) = self.sorted.as_ref() else {
            return Err(ExecError::State("sort not opened".into()));
        };
        if self.pos >= s.len() {
            return Ok(None);
        }
        let t = s.tuple_at(self.pos);
        self.pos += 1;
        Ok(Some(t))
    }

    fn next_batch_of(&mut self, max_rows: usize) -> Result<Option<Batch>> {
        let Some(s) = self.sorted.as_ref() else {
            return Err(ExecError::State("sort not opened".into()));
        };
        let n = (s.len() - self.pos).min(max_rows.max(1));
        if n == 0 {
            return Ok(None);
        }
        let b = s.slice(self.pos, n);
        self.pos += n;
        Ok(Some(b))
    }

    fn close(&mut self) -> Result<()> {
        self.sorted = None;
        self.input.close()
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        let mut out = vec![("rows_buffered", self.buffered)];
        if let Some(par) = &self.par {
            out.extend(par.counters());
        }
        out
    }
}

/// External merge sort: sorted runs of at most `run_size` tuples are
/// spilled to temporary files and merged with a loser-tree (binary heap).
pub struct ExternalSort {
    input: BoxCursor,
    spec: SortSpec,
    run_size: usize,
    opts: ExecOpts,
    merge: Option<MergeState>,
    runs_spilled: u64,
    rows_spilled: u64,
    par: Option<ParStats>,
}

struct Run {
    reader: BufReader<File>,
    path: PathBuf,
}

impl Drop for Run {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Run {
    fn next_tuple(&mut self) -> Result<Option<Tuple>> {
        let mut len_buf = [0u8; 4];
        match self.reader.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(ExecError::State(format!("spill read: {e}"))),
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut buf = vec![0u8; len];
        self.reader
            .read_exact(&mut buf)
            .map_err(|e| ExecError::State(format!("spill read: {e}")))?;
        Ok(Some(Decoder::new(&buf).decode_tuple()?))
    }
}

/// Write one already-sorted run to a fresh spill file.
fn spill_run(chunk: Vec<Tuple>, dir: &Path) -> Result<Run> {
    static RUN_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let id = RUN_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let path = dir.join(format!("tango-sort-{}-{id}.run", std::process::id()));
    let file = File::create(&path).map_err(|e| ExecError::State(format!("spill create: {e}")))?;
    let mut w = BufWriter::new(file);
    let mut buf = Vec::new();
    for t in chunk {
        buf.clear();
        encode_tuple(&t, &mut buf);
        w.write_all(&(buf.len() as u32).to_le_bytes())
            .and_then(|_| w.write_all(&buf))
            .map_err(|e| ExecError::State(format!("spill write: {e}")))?;
    }
    w.flush().map_err(|e| ExecError::State(format!("spill flush: {e}")))?;
    drop(w);
    let file = File::open(&path).map_err(|e| ExecError::State(format!("spill open: {e}")))?;
    Ok(Run { reader: BufReader::new(file), path })
}

struct HeapEntry {
    tuple: Tuple,
    run: usize,
    seq: usize,
    keys: Vec<(usize, bool)>,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for ascending output. Ties
        // break on (run, seq) to keep the merge stable.
        let mut o = Ordering::Equal;
        for &(i, desc) in &self.keys {
            o = self.tuple[i].total_cmp(&other.tuple[i]);
            if desc {
                o = o.reverse();
            }
            if o != Ordering::Equal {
                break;
            }
        }
        o.then(self.run.cmp(&other.run)).then(self.seq.cmp(&other.seq)).reverse()
    }
}

struct MergeState {
    runs: Vec<Run>,
    heap: BinaryHeap<HeapEntry>,
    keys: Vec<(usize, bool)>,
    seq: usize,
}

impl ExternalSort {
    /// Sort `input` by `spec`, spilling sorted runs of `run_size` tuples
    /// to temporary files and merging them on demand.
    pub fn new(input: BoxCursor, spec: SortSpec, run_size: usize) -> Self {
        Self::with_opts(input, spec, run_size, ExecOpts::default())
    }

    /// Like [`ExternalSort::new`] with explicit execution knobs. With
    /// `workers > 1`, run chunks accumulate until the pool is full and are
    /// then sorted concurrently; spilling stays in input order so the run
    /// files (and all downstream results) are byte-identical to a
    /// sequential spill.
    pub fn with_opts(input: BoxCursor, spec: SortSpec, run_size: usize, opts: ExecOpts) -> Self {
        ExternalSort {
            input,
            spec,
            run_size: run_size.max(2),
            opts,
            merge: None,
            runs_spilled: 0,
            rows_spilled: 0,
            par: None,
        }
    }
}

impl Cursor for ExternalSort {
    fn schema(&self) -> &Arc<Schema> {
        self.input.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.input.open()?;
        let spec = self.spec.clone();
        let schema = self.input.schema().clone();
        let keys = self.spec.resolve(self.input.schema());
        let dir = std::env::temp_dir();
        let workers = self.opts.workers.max(1);
        let mut runs: Vec<Run> = Vec::new();
        let mut par = ParStats::default();
        let mut pending: Vec<Vec<Tuple>> = Vec::new();
        let mut chunk: Vec<Tuple> = Vec::with_capacity(self.run_size);
        let flush = |pending: &mut Vec<Vec<Tuple>>,
                     runs: &mut Vec<Run>,
                     par: &mut ParStats|
         -> Result<()> {
            if pending.is_empty() {
                return Ok(());
            }
            let (spec, schema) = (&spec, &schema);
            let jobs: Vec<_> = std::mem::take(pending)
                .into_iter()
                .map(|mut c| {
                    move || {
                        sort_tuples(&mut c, spec, schema);
                        c
                    }
                })
                .collect();
            let (sorted, stats) = run_ordered(workers, jobs);
            par.absorb(&stats);
            for c in sorted {
                runs.push(spill_run(c, &dir)?);
            }
            Ok(())
        };
        while let Some(t) = self.input.next()? {
            self.rows_spilled += 1;
            chunk.push(t);
            if chunk.len() >= self.run_size {
                pending.push(std::mem::take(&mut chunk));
                if pending.len() >= workers {
                    flush(&mut pending, &mut runs, &mut par)?;
                }
            }
        }
        if !chunk.is_empty() {
            pending.push(chunk);
        }
        flush(&mut pending, &mut runs, &mut par)?;
        if workers > 1 {
            self.par = Some(par);
        }
        self.runs_spilled = runs.len() as u64;
        let mut heap = BinaryHeap::with_capacity(runs.len());
        let mut seq = 0usize;
        for (i, run) in runs.iter_mut().enumerate() {
            if let Some(t) = run.next_tuple()? {
                heap.push(HeapEntry { tuple: t, run: i, seq, keys: keys.clone() });
                seq += 1;
            }
        }
        self.merge = Some(MergeState { runs, heap, keys, seq });
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        let m = self
            .merge
            .as_mut()
            .ok_or_else(|| ExecError::State("external sort not opened".into()))?;
        let Some(top) = m.heap.pop() else {
            return Ok(None);
        };
        if let Some(t) = m.runs[top.run].next_tuple()? {
            m.heap.push(HeapEntry { tuple: t, run: top.run, seq: m.seq, keys: m.keys.clone() });
            m.seq += 1;
        }
        Ok(Some(top.tuple))
    }

    fn next_batch_of(&mut self, max_rows: usize) -> Result<Option<Batch>> {
        let m = self
            .merge
            .as_mut()
            .ok_or_else(|| ExecError::State("external sort not opened".into()))?;
        let max = max_rows.max(1);
        let mut rows = Vec::with_capacity(max.min(m.runs.len().max(1) * 16));
        while rows.len() < max {
            let Some(top) = m.heap.pop() else {
                break;
            };
            if let Some(t) = m.runs[top.run].next_tuple()? {
                m.heap.push(HeapEntry { tuple: t, run: top.run, seq: m.seq, keys: m.keys.clone() });
                m.seq += 1;
            }
            rows.push(top.tuple);
        }
        if rows.is_empty() {
            Ok(None)
        } else {
            Ok(Some(Batch::new(self.input.schema().clone(), rows)))
        }
    }

    fn close(&mut self) -> Result<()> {
        // Dropping the merge state deletes the spill files.
        self.merge = None;
        self.input.close()
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        let mut out =
            vec![("runs_spilled", self.runs_spilled), ("rows_spilled", self.rows_spilled)];
        if let Some(par) = &self.par {
            out.extend(par.counters());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect;
    use crate::scan::VecScan;
    use proptest::prelude::*;
    use std::sync::Arc;
    use tango_algebra::{tup, Attr, Relation, Type, Value};

    fn rel(vals: Vec<(i64, i64)>) -> Relation {
        let s = Arc::new(Schema::new(vec![Attr::new("A", Type::Int), Attr::new("B", Type::Int)]));
        Relation::new(s, vals.into_iter().map(|(a, b)| tup![a, b]).collect())
    }

    #[test]
    fn in_memory_sort() {
        let r = rel(vec![(3, 1), (1, 2), (2, 0), (1, 1)]);
        let got = collect(Box::new(Sort::new(Box::new(VecScan::new(r)), SortSpec::by(["A", "B"]))))
            .unwrap();
        let keys: Vec<(i64, i64)> =
            got.tuples().iter().map(|t| (t[0].as_int().unwrap(), t[1].as_int().unwrap())).collect();
        assert_eq!(keys, vec![(1, 1), (1, 2), (2, 0), (3, 1)]);
    }

    #[test]
    fn sort_is_stable() {
        // equal keys keep input order
        let s = Arc::new(Schema::new(vec![Attr::new("K", Type::Int), Attr::new("Tag", Type::Str)]));
        let r = Relation::new(s, vec![tup![1, "first"], tup![0, "x"], tup![1, "second"]]);
        let got =
            collect(Box::new(Sort::new(Box::new(VecScan::new(r)), SortSpec::by(["K"])))).unwrap();
        assert_eq!(got.tuples()[1][1], Value::Str("first".into()));
        assert_eq!(got.tuples()[2][1], Value::Str("second".into()));
    }

    #[test]
    fn parallel_sort_matches_sequential() {
        let mut x = 9u64;
        let vals: Vec<(i64, i64)> = (0..5000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (((x >> 33) % 100) as i64, ((x >> 11) % 100) as i64)
            })
            .collect();
        let spec = SortSpec::by(["A", "B"]);
        let seq =
            collect(Box::new(Sort::new(Box::new(VecScan::new(rel(vals.clone()))), spec.clone())))
                .unwrap();
        for workers in [2, 8] {
            let opts = ExecOpts { workers, ..ExecOpts::default() };
            let par = collect(Box::new(Sort::with_opts(
                Box::new(VecScan::new(rel(vals.clone()))),
                spec.clone(),
                opts,
            )))
            .unwrap();
            assert!(seq.list_eq(&par), "parallel sort diverged at workers={workers}");
        }
    }

    proptest! {
        #[test]
        fn external_sort_matches_in_memory(vals in proptest::collection::vec((0i64..50, 0i64..50), 0..200), run in 2usize..40) {
            let spec = SortSpec::by(["A", "B"]);
            let mem = collect(Box::new(Sort::new(Box::new(VecScan::new(rel(vals.clone()))), spec.clone()))).unwrap();
            let ext = collect(Box::new(ExternalSort::new(Box::new(VecScan::new(rel(vals))), spec, run))).unwrap();
            prop_assert!(mem.list_eq(&ext), "external sort diverged from in-memory sort");
        }

        #[test]
        fn parallel_external_sort_matches(vals in proptest::collection::vec((0i64..50, 0i64..50), 0..300), run in 2usize..40) {
            let spec = SortSpec::by(["A", "B"]);
            let seq = collect(Box::new(ExternalSort::new(Box::new(VecScan::new(rel(vals.clone()))), spec.clone(), run))).unwrap();
            let opts = ExecOpts { workers: 4, ..ExecOpts::default() };
            let par = collect(Box::new(ExternalSort::with_opts(Box::new(VecScan::new(rel(vals))), spec, run, opts))).unwrap();
            prop_assert!(seq.list_eq(&par), "parallel external sort diverged");
        }
    }
}
