//! `SORT^M` — middleware sorting.
//!
//! Two implementations share the operator interface:
//!
//! * [`Sort`] materializes its input and sorts in memory (the default; the
//!   paper's prototype worked in memory and listed very-large-relation
//!   support as future work), and
//! * [`ExternalSort`] is that future work: it spills sorted runs to
//!   temporary files using the binary tuple codec and k-way merges them,
//!   bounding memory by the run size.
//!
//! Both sorts are stable, so they refine any pre-existing order — a
//! property rule T12 (`sort_A(sort_B(r)) → sort_A(r)` when
//! `IsPrefixOf(B, A)`) depends on.

use crate::cursor::{drain, BoxCursor, Cursor, ExecError, Result};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::Arc;
use tango_algebra::codec::{encode_tuple, Decoder};
use tango_algebra::{sort_tuples, Batch, Schema, SortSpec, Tuple};

/// In-memory sort.
pub struct Sort {
    input: BoxCursor,
    spec: SortSpec,
    out: Option<std::vec::IntoIter<Tuple>>,
    buffered: u64,
}

impl Sort {
    /// Sort `input` by `spec` (stable; materializes at open).
    pub fn new(input: BoxCursor, spec: SortSpec) -> Self {
        Sort { input, spec, out: None, buffered: 0 }
    }
}

impl Cursor for Sort {
    fn schema(&self) -> &Arc<Schema> {
        self.input.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.input.open()?;
        let mut tuples = drain(self.input.as_mut())?;
        self.buffered = tuples.len() as u64;
        sort_tuples(&mut tuples, &self.spec, self.input.schema());
        self.out = Some(tuples.into_iter());
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        match &mut self.out {
            Some(it) => Ok(it.next()),
            None => Err(ExecError::State("sort not opened".into())),
        }
    }

    fn next_batch_of(&mut self, max_rows: usize) -> Result<Option<Batch>> {
        let Some(it) = self.out.as_mut() else {
            return Err(ExecError::State("sort not opened".into()));
        };
        let rows: Vec<Tuple> = it.by_ref().take(max_rows.max(1)).collect();
        if rows.is_empty() {
            Ok(None)
        } else {
            Ok(Some(Batch::new(self.input.schema().clone(), rows)))
        }
    }

    fn close(&mut self) -> Result<()> {
        self.out = None;
        self.input.close()
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![("rows_buffered", self.buffered)]
    }
}

/// External merge sort: sorted runs of at most `run_size` tuples are
/// spilled to temporary files and merged with a loser-tree (binary heap).
pub struct ExternalSort {
    input: BoxCursor,
    spec: SortSpec,
    run_size: usize,
    merge: Option<MergeState>,
    runs_spilled: u64,
    rows_spilled: u64,
}

struct Run {
    reader: BufReader<File>,
    path: PathBuf,
}

impl Drop for Run {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Run {
    fn next_tuple(&mut self) -> Result<Option<Tuple>> {
        let mut len_buf = [0u8; 4];
        match self.reader.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(ExecError::State(format!("spill read: {e}"))),
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut buf = vec![0u8; len];
        self.reader
            .read_exact(&mut buf)
            .map_err(|e| ExecError::State(format!("spill read: {e}")))?;
        Ok(Some(Decoder::new(&buf).decode_tuple()?))
    }
}

struct HeapEntry {
    tuple: Tuple,
    run: usize,
    seq: usize,
    keys: Vec<(usize, bool)>,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for ascending output. Ties
        // break on (run, seq) to keep the merge stable.
        let mut o = Ordering::Equal;
        for &(i, desc) in &self.keys {
            o = self.tuple[i].total_cmp(&other.tuple[i]);
            if desc {
                o = o.reverse();
            }
            if o != Ordering::Equal {
                break;
            }
        }
        o.then(self.run.cmp(&other.run)).then(self.seq.cmp(&other.seq)).reverse()
    }
}

struct MergeState {
    runs: Vec<Run>,
    heap: BinaryHeap<HeapEntry>,
    keys: Vec<(usize, bool)>,
    seq: usize,
}

impl ExternalSort {
    /// Sort `input` by `spec`, spilling sorted runs of `run_size` tuples
    /// to temporary files and merging them on demand.
    pub fn new(input: BoxCursor, spec: SortSpec, run_size: usize) -> Self {
        ExternalSort {
            input,
            spec,
            run_size: run_size.max(2),
            merge: None,
            runs_spilled: 0,
            rows_spilled: 0,
        }
    }
}

impl Cursor for ExternalSort {
    fn schema(&self) -> &Arc<Schema> {
        self.input.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.input.open()?;
        let spec = self.spec.clone();
        let schema = self.input.schema().clone();
        let keys = self.spec.resolve(self.input.schema());
        let dir = std::env::temp_dir();
        let mut runs = Vec::new();
        let mut chunk: Vec<Tuple> = Vec::with_capacity(self.run_size);
        let mut spill = |chunk: &mut Vec<Tuple>| -> Result<()> {
            if chunk.is_empty() {
                return Ok(());
            }
            sort_tuples(chunk, &spec, &schema);
            static RUN_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let id = RUN_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let path = dir.join(format!("tango-sort-{}-{id}.run", std::process::id()));
            let file =
                File::create(&path).map_err(|e| ExecError::State(format!("spill create: {e}")))?;
            let mut w = BufWriter::new(file);
            let mut buf = Vec::new();
            for t in chunk.drain(..) {
                buf.clear();
                encode_tuple(&t, &mut buf);
                w.write_all(&(buf.len() as u32).to_le_bytes())
                    .and_then(|_| w.write_all(&buf))
                    .map_err(|e| ExecError::State(format!("spill write: {e}")))?;
            }
            w.flush().map_err(|e| ExecError::State(format!("spill flush: {e}")))?;
            drop(w);
            let file =
                File::open(&path).map_err(|e| ExecError::State(format!("spill open: {e}")))?;
            runs.push(Run { reader: BufReader::new(file), path });
            Ok(())
        };
        while let Some(t) = self.input.next()? {
            self.rows_spilled += 1;
            chunk.push(t);
            if chunk.len() >= self.run_size {
                spill(&mut chunk)?;
            }
        }
        spill(&mut chunk)?;
        self.runs_spilled = runs.len() as u64;
        let mut heap = BinaryHeap::with_capacity(runs.len());
        let mut seq = 0usize;
        for (i, run) in runs.iter_mut().enumerate() {
            if let Some(t) = run.next_tuple()? {
                heap.push(HeapEntry { tuple: t, run: i, seq, keys: keys.clone() });
                seq += 1;
            }
        }
        self.merge = Some(MergeState { runs, heap, keys, seq });
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        let m = self
            .merge
            .as_mut()
            .ok_or_else(|| ExecError::State("external sort not opened".into()))?;
        let Some(top) = m.heap.pop() else {
            return Ok(None);
        };
        if let Some(t) = m.runs[top.run].next_tuple()? {
            m.heap.push(HeapEntry { tuple: t, run: top.run, seq: m.seq, keys: m.keys.clone() });
            m.seq += 1;
        }
        Ok(Some(top.tuple))
    }

    fn next_batch_of(&mut self, max_rows: usize) -> Result<Option<Batch>> {
        let m = self
            .merge
            .as_mut()
            .ok_or_else(|| ExecError::State("external sort not opened".into()))?;
        let max = max_rows.max(1);
        let mut rows = Vec::with_capacity(max.min(m.runs.len().max(1) * 16));
        while rows.len() < max {
            let Some(top) = m.heap.pop() else {
                break;
            };
            if let Some(t) = m.runs[top.run].next_tuple()? {
                m.heap.push(HeapEntry { tuple: t, run: top.run, seq: m.seq, keys: m.keys.clone() });
                m.seq += 1;
            }
            rows.push(top.tuple);
        }
        if rows.is_empty() {
            Ok(None)
        } else {
            Ok(Some(Batch::new(self.input.schema().clone(), rows)))
        }
    }

    fn close(&mut self) -> Result<()> {
        // Dropping the merge state deletes the spill files.
        self.merge = None;
        self.input.close()
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![("runs_spilled", self.runs_spilled), ("rows_spilled", self.rows_spilled)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect;
    use crate::scan::VecScan;
    use proptest::prelude::*;
    use std::sync::Arc;
    use tango_algebra::{tup, Attr, Relation, Type, Value};

    fn rel(vals: Vec<(i64, i64)>) -> Relation {
        let s = Arc::new(Schema::new(vec![Attr::new("A", Type::Int), Attr::new("B", Type::Int)]));
        Relation::new(s, vals.into_iter().map(|(a, b)| tup![a, b]).collect())
    }

    #[test]
    fn in_memory_sort() {
        let r = rel(vec![(3, 1), (1, 2), (2, 0), (1, 1)]);
        let got = collect(Box::new(Sort::new(Box::new(VecScan::new(r)), SortSpec::by(["A", "B"]))))
            .unwrap();
        let keys: Vec<(i64, i64)> =
            got.tuples().iter().map(|t| (t[0].as_int().unwrap(), t[1].as_int().unwrap())).collect();
        assert_eq!(keys, vec![(1, 1), (1, 2), (2, 0), (3, 1)]);
    }

    #[test]
    fn sort_is_stable() {
        // equal keys keep input order
        let s = Arc::new(Schema::new(vec![Attr::new("K", Type::Int), Attr::new("Tag", Type::Str)]));
        let r = Relation::new(s, vec![tup![1, "first"], tup![0, "x"], tup![1, "second"]]);
        let got =
            collect(Box::new(Sort::new(Box::new(VecScan::new(r)), SortSpec::by(["K"])))).unwrap();
        assert_eq!(got.tuples()[1][1], Value::Str("first".into()));
        assert_eq!(got.tuples()[2][1], Value::Str("second".into()));
    }

    proptest! {
        #[test]
        fn external_sort_matches_in_memory(vals in proptest::collection::vec((0i64..50, 0i64..50), 0..200), run in 2usize..40) {
            let spec = SortSpec::by(["A", "B"]);
            let mem = collect(Box::new(Sort::new(Box::new(VecScan::new(rel(vals.clone()))), spec.clone()))).unwrap();
            let ext = collect(Box::new(ExternalSort::new(Box::new(VecScan::new(rel(vals))), spec, run))).unwrap();
            prop_assert!(mem.list_eq(&ext), "external sort diverged from in-memory sort");
        }
    }
}
