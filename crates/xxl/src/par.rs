//! Morsel-driven parallel execution for pipeline breakers.
//!
//! The heavy middleware operators (sort-run formation, sort-merge and
//! temporal join partitions, TAGGR group sweeps) split their materialized
//! input into ~[`MORSEL_ROWS`]-row morsels and run them on a small fixed
//! pool of scoped worker threads. Workers *claim* morsels dynamically
//! (an atomic cursor over the job list) but results are collected *by
//! slot*, so the merged output is byte-identical to the sequential run no
//! matter how the morsels were scheduled. With `workers <= 1` (the
//! default) everything runs inline on the calling thread — no pool, no
//! behavior change.

use crate::cursor::{BatchBuffered, Result};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tango_algebra::Tuple;

/// Target rows per morsel: large enough to amortize claim overhead, small
/// enough to load-balance skewed inputs across the pool.
pub const MORSEL_ROWS: usize = 64 * 1024;

/// Scheduling statistics from one parallel region, surfaced as
/// per-operator counters in EXPLAIN ANALYZE (only when `workers > 1`, so
/// sequential golden traces are unchanged).
#[derive(Debug, Clone, Default)]
pub struct ParStats {
    /// Pool width actually used.
    pub workers: usize,
    /// Total morsels (jobs) executed.
    pub morsels: u64,
    /// Morsels executed by each worker. Dynamic claiming makes this
    /// scheduling-dependent; results are order-preserving regardless.
    pub per_worker: Vec<u64>,
}

impl ParStats {
    /// Fold another region's stats into this one (per-worker counts align
    /// by slot).
    pub fn absorb(&mut self, other: &ParStats) {
        self.workers = self.workers.max(other.workers);
        self.morsels += other.morsels;
        if self.per_worker.len() < other.per_worker.len() {
            self.per_worker.resize(other.per_worker.len(), 0);
        }
        for (a, b) in self.per_worker.iter_mut().zip(&other.per_worker) {
            *a += b;
        }
    }

    /// Counter rows for `Cursor::counters` (names are 'static, capped at
    /// eight per-worker slots).
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        const W: [&str; 8] = [
            "morsels_w0",
            "morsels_w1",
            "morsels_w2",
            "morsels_w3",
            "morsels_w4",
            "morsels_w5",
            "morsels_w6",
            "morsels_w7",
        ];
        let mut out = vec![("par_workers", self.workers as u64), ("morsels", self.morsels)];
        for (i, &n) in self.per_worker.iter().take(W.len()).enumerate() {
            out.push((W[i], n));
        }
        out
    }
}

/// Split `rows` into at most `jobs` contiguous ranges of whole rows,
/// targeting [`MORSEL_ROWS`] per range (fewer when the input is small).
pub fn morsel_ranges(rows: usize, workers: usize) -> Vec<(usize, usize)> {
    if rows == 0 {
        return Vec::new();
    }
    if workers <= 1 {
        return vec![(0, rows)];
    }
    let target = MORSEL_ROWS.min(rows.div_ceil(workers)).max(1);
    let mut out = Vec::with_capacity(rows.div_ceil(target));
    let mut at = 0;
    while at < rows {
        let hi = (at + target).min(rows);
        out.push((at, hi));
        at = hi;
    }
    out
}

/// Drain a [`BatchBuffered`] input to a materialized row vector (parallel
/// joins materialize both sides before partitioning).
pub fn drain_buffered(b: &mut BatchBuffered) -> Result<Vec<Tuple>> {
    let mut rows = Vec::new();
    while let Some(t) = b.next()? {
        rows.push(t);
    }
    Ok(rows)
}

/// Partition two key-sorted inputs for a parallel merge join: split the
/// left side into ~morsel-sized ranges that never cut a key group (`same`
/// tests two *left* rows for key equality), then align each range with
/// the right rows whose keys fall inside its key span (`cmp` compares a
/// left row's key to a right row's key). Returns
/// `(left_lo, left_hi, right_lo, right_hi)` ranges in key order; right
/// rows between partitions match nothing and belong to none.
pub fn partition_pairs<L, R>(
    left: &[L],
    right: &[R],
    workers: usize,
    same: impl Fn(&L, &L) -> bool,
    cmp: impl Fn(&L, &R) -> std::cmp::Ordering,
) -> Vec<(usize, usize, usize, usize)> {
    use std::cmp::Ordering as O;
    let n = left.len();
    if n == 0 {
        return Vec::new();
    }
    let target = MORSEL_ROWS.min(n.div_ceil(workers.max(1))).max(1);
    let mut parts = Vec::new();
    let mut lo = 0usize;
    for r in 1..=n {
        let boundary = r == n || !same(&left[r - 1], &left[r]);
        if boundary && r - lo >= target {
            parts.push((lo, r));
            lo = r;
        }
    }
    if lo < n {
        parts.push((lo, n));
    }
    let mut out = Vec::with_capacity(parts.len());
    let mut rpos = 0usize;
    for (llo, lhi) in parts {
        // skip right keys below this partition's first key
        while rpos < right.len() && cmp(&left[llo], &right[rpos]) == O::Greater {
            rpos += 1;
        }
        let rlo = rpos;
        // include right keys up to and including the partition's last key
        while rpos < right.len() && cmp(&left[lhi - 1], &right[rpos]) != O::Less {
            rpos += 1;
        }
        out.push((llo, lhi, rlo, rpos));
    }
    out
}

/// Run `jobs` on a pool of `workers` scoped threads, collecting results in
/// job order. Workers claim jobs via an atomic cursor; a job's result goes
/// into its own slot, so the output `Vec` is deterministic. Runs inline
/// when `workers <= 1` or there is at most one job.
pub fn run_ordered<T, F>(workers: usize, jobs: Vec<F>) -> (Vec<T>, ParStats)
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if workers <= 1 || n <= 1 {
        let results: Vec<T> = jobs.into_iter().map(|j| j()).collect();
        let stats = ParStats { workers: 1, morsels: n as u64, per_worker: vec![n as u64] };
        return (results, stats);
    }
    let w = workers.min(n);
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let mut per_worker = vec![0u64; w];
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..w)
            .map(|_| {
                s.spawn(|| {
                    let mut claimed = 0u64;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let job = jobs[i].lock().unwrap().take().unwrap();
                        let result = job();
                        *slots[i].lock().unwrap() = Some(result);
                        claimed += 1;
                    }
                    claimed
                })
            })
            .collect();
        for (wi, h) in handles.into_iter().enumerate() {
            per_worker[wi] = h.join().expect("worker panicked");
        }
    });
    let results =
        slots.into_iter().map(|m| m.into_inner().unwrap().expect("job not run")).collect();
    (results, ParStats { workers: w, morsels: n as u64, per_worker })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_when_sequential() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..5usize).map(|i| Box::new(move || i * i) as _).collect();
        let (r, stats) = run_ordered(1, jobs);
        assert_eq!(r, vec![0, 1, 4, 9, 16]);
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.morsels, 5);
    }

    #[test]
    fn parallel_preserves_job_order() {
        for workers in [2, 3, 8] {
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
                (0..37usize).map(|i| Box::new(move || i * 3) as _).collect();
            let (r, stats) = run_ordered(workers, jobs);
            assert_eq!(r, (0..37).map(|i| i * 3).collect::<Vec<_>>());
            assert_eq!(stats.morsels, 37);
            assert_eq!(stats.per_worker.iter().sum::<u64>(), 37);
        }
    }

    #[test]
    fn morsel_ranges_cover_exactly() {
        for (rows, workers) in [(0, 4), (1, 4), (100, 1), (100, 4), (1_000_000, 8)] {
            let ranges = morsel_ranges(rows, workers);
            let mut at = 0;
            for (lo, hi) in &ranges {
                assert_eq!(*lo, at);
                assert!(hi > lo);
                at = *hi;
            }
            assert_eq!(at, rows);
            if workers > 1 && rows > 0 {
                assert!(ranges.len() >= workers.min(rows));
            }
        }
    }
}
