//! Multiset set operations over union-compatible inputs: `UNION ALL`,
//! `INTERSECT ALL` and `EXCEPT ALL` (bag semantics, as in the paper's
//! multiset foundation [19]). The temporal (snapshot-semantics)
//! difference lives in [`crate::tdiff`].

use crate::cursor::{BoxCursor, Cursor, ExecError, Result};
use std::collections::HashMap;
use std::sync::Arc;
use tango_algebra::value::Key;
use tango_algebra::{Schema, Tuple};

fn check_compatible(l: &Schema, r: &Schema) -> Result<()> {
    if l.len() != r.len() {
        return Err(ExecError::State(format!(
            "set operation over incompatible arities: {} vs {}",
            l.len(),
            r.len()
        )));
    }
    Ok(())
}

fn key_of(t: &Tuple) -> Vec<Key> {
    t.values().iter().map(|v| v.key()).collect()
}

/// Concatenation of both inputs (left first) — order-preserving.
pub struct UnionAll {
    left: BoxCursor,
    right: BoxCursor,
    on_right: bool,
}

impl UnionAll {
    /// Concatenate two schema-compatible inputs.
    pub fn new(left: BoxCursor, right: BoxCursor) -> Result<Self> {
        check_compatible(left.schema(), right.schema())?;
        Ok(UnionAll { left, right, on_right: false })
    }
}

impl Cursor for UnionAll {
    fn schema(&self) -> &Arc<Schema> {
        self.left.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()?;
        self.on_right = false;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if !self.on_right {
            if let Some(t) = self.left.next()? {
                return Ok(Some(t));
            }
            self.on_right = true;
        }
        self.right.next()
    }

    fn close(&mut self) -> Result<()> {
        self.left.close()?;
        self.right.close()
    }
}

/// Bag intersection: a tuple appears `min(m, n)` times when it occurs `m`
/// times on the left and `n` on the right. Preserves left order.
pub struct IntersectAll {
    left: BoxCursor,
    right: BoxCursor,
    budget: HashMap<Vec<Key>, usize>,
}

impl IntersectAll {
    /// Multiset intersection of two schema-compatible inputs.
    pub fn new(left: BoxCursor, right: BoxCursor) -> Result<Self> {
        check_compatible(left.schema(), right.schema())?;
        Ok(IntersectAll { left, right, budget: HashMap::new() })
    }
}

impl Cursor for IntersectAll {
    fn schema(&self) -> &Arc<Schema> {
        self.left.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()?;
        self.budget.clear();
        while let Some(t) = self.right.next()? {
            *self.budget.entry(key_of(&t)).or_insert(0) += 1;
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        while let Some(t) = self.left.next()? {
            if let Some(n) = self.budget.get_mut(&key_of(&t)) {
                if *n > 0 {
                    *n -= 1;
                    return Ok(Some(t));
                }
            }
        }
        Ok(None)
    }

    fn close(&mut self) -> Result<()> {
        self.budget.clear();
        self.left.close()?;
        self.right.close()
    }
}

/// Bag difference: a tuple appears `max(m - n, 0)` times. Preserves left
/// order (the *last* `m - n` occurrences survive would be equally valid;
/// we keep occurrences once the right-side budget is exhausted).
pub struct ExceptAll {
    left: BoxCursor,
    right: BoxCursor,
    budget: HashMap<Vec<Key>, usize>,
}

impl ExceptAll {
    /// Multiset difference of two schema-compatible inputs.
    pub fn new(left: BoxCursor, right: BoxCursor) -> Result<Self> {
        check_compatible(left.schema(), right.schema())?;
        Ok(ExceptAll { left, right, budget: HashMap::new() })
    }
}

impl Cursor for ExceptAll {
    fn schema(&self) -> &Arc<Schema> {
        self.left.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()?;
        self.budget.clear();
        while let Some(t) = self.right.next()? {
            *self.budget.entry(key_of(&t)).or_insert(0) += 1;
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        while let Some(t) = self.left.next()? {
            match self.budget.get_mut(&key_of(&t)) {
                Some(n) if *n > 0 => *n -= 1, // cancelled by a right tuple
                _ => return Ok(Some(t)),
            }
        }
        Ok(None)
    }

    fn close(&mut self) -> Result<()> {
        self.budget.clear();
        self.left.close()?;
        self.right.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect;
    use crate::scan::VecScan;
    use proptest::prelude::*;
    use tango_algebra::{tup, Attr, Relation, Type};

    fn rel(vals: &[i64]) -> Relation {
        let s = Arc::new(Schema::new(vec![Attr::new("A", Type::Int)]));
        Relation::new(s, vals.iter().map(|&v| tup![v]).collect())
    }

    fn run2(
        f: impl Fn(BoxCursor, BoxCursor) -> Result<BoxCursor>,
        l: &[i64],
        r: &[i64],
    ) -> Vec<i64> {
        let c = f(Box::new(VecScan::new(rel(l))), Box::new(VecScan::new(rel(r)))).unwrap();
        collect(c).unwrap().tuples().iter().map(|t| t[0].as_int().unwrap()).collect()
    }

    #[test]
    fn union_all_concatenates() {
        let got = run2(|l, r| Ok(Box::new(UnionAll::new(l, r)?) as BoxCursor), &[1, 2], &[2, 3]);
        assert_eq!(got, vec![1, 2, 2, 3]);
    }

    #[test]
    fn intersect_all_bag_semantics() {
        let got = run2(
            |l, r| Ok(Box::new(IntersectAll::new(l, r)?) as BoxCursor),
            &[1, 1, 2, 3, 1],
            &[1, 1, 3, 4],
        );
        assert_eq!(got, vec![1, 1, 3]);
    }

    #[test]
    fn except_all_bag_semantics() {
        let got = run2(
            |l, r| Ok(Box::new(ExceptAll::new(l, r)?) as BoxCursor),
            &[1, 1, 2, 3, 1],
            &[1, 3, 3],
        );
        assert_eq!(got, vec![1, 2, 1]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let wide = Relation::new(
            Arc::new(Schema::new(vec![Attr::new("A", Type::Int), Attr::new("B", Type::Int)])),
            vec![],
        );
        assert!(
            UnionAll::new(Box::new(VecScan::new(rel(&[1]))), Box::new(VecScan::new(wide))).is_err()
        );
    }

    proptest! {
        /// Multiset identity: |L ∩ R| + |L \ R| = |L|.
        #[test]
        fn intersect_plus_except_partitions_left(
            l in proptest::collection::vec(0i64..5, 0..30),
            r in proptest::collection::vec(0i64..5, 0..30),
        ) {
            let inter = run2(|a, b| Ok(Box::new(IntersectAll::new(a, b)?) as BoxCursor), &l, &r);
            let exc = run2(|a, b| Ok(Box::new(ExceptAll::new(a, b)?) as BoxCursor), &l, &r);
            prop_assert_eq!(inter.len() + exc.len(), l.len());
            // and together they are a permutation of L
            let mut all: Vec<i64> = inter.into_iter().chain(exc).collect();
            let mut lhs = l.clone();
            all.sort();
            lhs.sort();
            prop_assert_eq!(all, lhs);
        }
    }
}
