//! Temporal difference — another operator from the paper's extension list
//! (Section 3.1). For each left tuple, removes the time during which a
//! value-equivalent right tuple holds, possibly splitting the left period
//! into fragments.
//!
//! Both inputs must be sorted on all non-temporal attributes (then `T1`).

use crate::cursor::{BoxCursor, Cursor, ExecError, Result};
use std::cmp::Ordering;
use std::collections::VecDeque;
use std::sync::Arc;
use tango_algebra::{Period, Schema, Tuple, Type, Value};

/// The temporal-difference cursor: subtracts the right input's periods
/// from value-equivalent left tuples, splitting them into the remaining
/// fragments. Inputs sorted on (value attributes, `T1`).
pub struct TemporalDiff {
    left: BoxCursor,
    right: BoxCursor,
    value_idx: Vec<usize>,
    lperiod: (usize, usize),
    rperiod: (usize, usize),
    date_typed: bool,
    rnext: Option<Tuple>,
    /// Buffered right group (periods of the current value combination).
    rgroup: Vec<Period>,
    rgroup_key: Option<Tuple>,
    out: VecDeque<Tuple>,
    opened: bool,
    splits: u64,
}

impl TemporalDiff {
    /// Subtract `right` from `left`; both must be temporal with matching
    /// value attributes.
    pub fn new(left: BoxCursor, right: BoxCursor) -> Result<Self> {
        let ls = left.schema();
        let rs = right.schema();
        let lperiod = ls
            .period()
            .ok_or_else(|| ExecError::State("temporal diff: left not temporal".into()))?;
        let rperiod = rs
            .period()
            .ok_or_else(|| ExecError::State("temporal diff: right not temporal".into()))?;
        if ls.len() != rs.len() {
            return Err(ExecError::State("temporal diff: schema arity mismatch".into()));
        }
        let value_idx: Vec<usize> =
            (0..ls.len()).filter(|&i| i != lperiod.0 && i != lperiod.1).collect();
        let date_typed = matches!(ls.attr(lperiod.0).ty, Type::Date);
        Ok(TemporalDiff {
            left,
            right,
            value_idx,
            lperiod,
            rperiod,
            date_typed,
            rnext: None,
            rgroup: Vec::new(),
            rgroup_key: None,
            out: VecDeque::new(),
            opened: false,
            splits: 0,
        })
    }

    fn value_cmp(&self, a: &Tuple, b: &Tuple) -> Ordering {
        for &i in &self.value_idx {
            let o = a[i].total_cmp(&b[i]);
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    }

    /// Advance the right side until its group key >= the left tuple's key,
    /// buffering the matching group's periods.
    fn align_right(&mut self, l: &Tuple) -> Result<()> {
        if let Some(k) = &self.rgroup_key {
            if self.value_cmp(k, l) == Ordering::Equal {
                return Ok(()); // group already buffered
            }
        }
        loop {
            if self.rnext.is_none() {
                self.rnext = self.right.next()?;
                if self.rnext.is_none() {
                    self.rgroup.clear();
                    self.rgroup_key = None;
                    return Ok(());
                }
            }
            let r = self.rnext.as_ref().unwrap();
            match self.value_cmp(r, l) {
                Ordering::Less => {
                    self.rnext = None; // discard, fetch next
                }
                Ordering::Greater => {
                    self.rgroup.clear();
                    self.rgroup_key = None;
                    return Ok(());
                }
                Ordering::Equal => {
                    // buffer the whole group
                    let key = r.clone();
                    let mut periods = Vec::new();
                    loop {
                        let r = match self.rnext.take() {
                            Some(r) => r,
                            None => match self.right.next()? {
                                Some(r) => r,
                                None => break,
                            },
                        };
                        if self.value_cmp(&r, &key) != Ordering::Equal {
                            self.rnext = Some(r);
                            break;
                        }
                        if let (Some(a), Some(b)) =
                            (r[self.rperiod.0].as_day(), r[self.rperiod.1].as_day())
                        {
                            let p = Period::new(a, b);
                            if p.is_valid() {
                                periods.push(p);
                            }
                        }
                    }
                    self.rgroup = periods;
                    self.rgroup_key = Some(key);
                    return Ok(());
                }
            }
        }
    }

    fn push_fragments(&mut self, l: &Tuple, mut fragments: Vec<Period>) {
        for p in &self.rgroup {
            let mut next = Vec::new();
            for f in fragments {
                next.extend(f.subtract(p));
            }
            fragments = next;
            if fragments.is_empty() {
                break;
            }
        }
        for f in fragments {
            let mut t = l.clone();
            let (v1, v2) = if self.date_typed {
                (Value::Date(f.start), Value::Date(f.end))
            } else {
                (Value::Int(f.start as i64), Value::Int(f.end as i64))
            };
            t.set(self.lperiod.0, v1);
            t.set(self.lperiod.1, v2);
            self.out.push_back(t);
        }
    }
}

impl Cursor for TemporalDiff {
    fn schema(&self) -> &Arc<Schema> {
        self.left.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()?;
        self.opened = true;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if !self.opened {
            return Err(ExecError::State("temporal diff not opened".into()));
        }
        loop {
            if let Some(t) = self.out.pop_front() {
                return Ok(Some(t));
            }
            let Some(l) = self.left.next()? else {
                return Ok(None);
            };
            let Some(p) = l[self.lperiod.0]
                .as_day()
                .zip(l[self.lperiod.1].as_day())
                .map(|(a, b)| Period::new(a, b))
                .filter(Period::is_valid)
            else {
                continue;
            };
            self.align_right(&l)?;
            let matches = self
                .rgroup_key
                .as_ref()
                .map(|k| self.value_cmp(k, &l) == Ordering::Equal)
                .unwrap_or(false);
            if matches {
                self.splits += 1;
                self.push_fragments(&l, vec![p]);
            } else {
                self.out.push_back(l);
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.out.clear();
        self.rgroup.clear();
        self.left.close()?;
        self.right.close()
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![("periods_split", self.splits)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect;
    use crate::scan::VecScan;
    use proptest::prelude::*;
    use tango_algebra::{tup, Attr, Relation, SortSpec};

    fn rel(vals: &[(i64, i32, i32)]) -> Relation {
        let s = Arc::new(Schema::with_inferred_period(vec![
            Attr::new("G", Type::Int),
            Attr::new("T1", Type::Int),
            Attr::new("T2", Type::Int),
        ]));
        Relation::new(s, vals.iter().map(|&(g, a, b)| tup![g, a, b]).collect())
    }

    fn run(l: &[(i64, i32, i32)], r: &[(i64, i32, i32)]) -> Vec<(i64, i64, i64)> {
        let mut lr = rel(l);
        let mut rr = rel(r);
        lr.sort_by(&SortSpec::by(["G", "T1"]));
        rr.sort_by(&SortSpec::by(["G", "T1"]));
        let d = TemporalDiff::new(Box::new(VecScan::new(lr)), Box::new(VecScan::new(rr))).unwrap();
        collect(Box::new(d))
            .unwrap()
            .tuples()
            .iter()
            .map(|t| (t[0].as_int().unwrap(), t[1].as_int().unwrap(), t[2].as_int().unwrap()))
            .collect()
    }

    #[test]
    fn splits_and_removes() {
        assert_eq!(
            run(&[(1, 0, 10), (2, 0, 5)], &[(1, 3, 6)]),
            vec![(1, 0, 3), (1, 6, 10), (2, 0, 5)]
        );
        assert_eq!(run(&[(1, 0, 10)], &[(1, 0, 10)]), vec![]);
        assert_eq!(run(&[(1, 0, 10)], &[(2, 0, 10)]), vec![(1, 0, 10)]);
    }

    proptest! {
        /// Snapshot semantics: a (value, time point) pair survives iff it
        /// holds on the left and not on the right.
        #[test]
        fn snapshot_semantics(
            l in proptest::collection::vec((0i64..3, 0i32..20, 1i32..8), 0..25),
            r in proptest::collection::vec((0i64..3, 0i32..20, 1i32..8), 0..25),
        ) {
            let fix = |v: Vec<(i64, i32, i32)>| -> Vec<(i64, i32, i32)> {
                v.into_iter().map(|(g, a, d)| (g, a, a + d)).collect()
            };
            let (l, r) = (fix(l), fix(r));
            let out = run(&l, &r);
            for t in 0..30i64 {
                for g in 0..3i64 {
                    let on_l = l.iter().filter(|&&(gg, a, b)| gg == g && (a as i64) <= t && t < b as i64).count();
                    let on_r = r.iter().any(|&(gg, a, b)| gg == g && (a as i64) <= t && t < b as i64);
                    let got = out.iter().filter(|&&(gg, a, b)| gg == g && a <= t && t < b).count();
                    let want = if on_r { 0 } else { on_l };
                    prop_assert_eq!(got, want, "g={} t={}", g, t);
                }
            }
        }
    }
}
