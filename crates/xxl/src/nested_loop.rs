//! Nested-loop theta join — the fallback for non-equi predicates in the
//! middleware. Materializes the right input at open; order-preserving on
//! the left input (outer-major output order).

use crate::cursor::{drain, BoxCursor, Cursor, ExecError, Result};
use std::sync::Arc;
use tango_algebra::logical::concat_schemas;
use tango_algebra::{Expr, Schema, Tuple};

/// The nested-loop theta-join cursor (right input materialized at open).
pub struct NestedLoopJoin {
    left: BoxCursor,
    right: BoxCursor,
    pred: Option<Expr>,
    bound: Option<Expr>,
    schema: Arc<Schema>,
    right_buf: Vec<Tuple>,
    left_cur: Option<Tuple>,
    j: usize,
}

impl NestedLoopJoin {
    /// `pred` is evaluated over the concatenated tuple; `None` yields the
    /// Cartesian product.
    pub fn new(left: BoxCursor, right: BoxCursor, pred: Option<Expr>) -> Self {
        let schema = Arc::new(concat_schemas(left.schema(), right.schema()));
        NestedLoopJoin {
            left,
            right,
            pred,
            bound: None,
            schema,
            right_buf: Vec::new(),
            left_cur: None,
            j: 0,
        }
    }
}

impl Cursor for NestedLoopJoin {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()?;
        self.right_buf = drain(self.right.as_mut())?;
        self.bound = match &self.pred {
            Some(p) => Some(p.bound(&self.schema)?),
            None => None,
        };
        self.left_cur = self.left.next()?;
        self.j = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        loop {
            let Some(l) = &self.left_cur else {
                return Ok(None);
            };
            if self.j >= self.right_buf.len() {
                self.left_cur = self.left.next()?;
                self.j = 0;
                if self.left_cur.is_none() {
                    return Ok(None);
                }
                continue;
            }
            let out = l.concat(&self.right_buf[self.j]);
            self.j += 1;
            match &self.bound {
                None => return Ok(Some(out)),
                Some(p) => {
                    if p.matches(&out)? {
                        return Ok(Some(out));
                    }
                }
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.right_buf.clear();
        self.left.close()?;
        self.right.close()
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![("rows_buffered", self.right_buf.len() as u64)]
    }
}

impl NestedLoopJoin {
    /// Guard against misuse in tests: error if opened twice.
    pub fn assert_unopened(&self) -> Result<()> {
        if self.left_cur.is_some() || !self.right_buf.is_empty() {
            return Err(ExecError::State("join already opened".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect;
    use crate::scan::VecScan;
    use tango_algebra::{tup, Attr, CmpOp, Relation, Type};

    fn rel(name: &str, vals: &[i64]) -> Relation {
        let s = Arc::new(Schema::new(vec![Attr::new(name, Type::Int)]));
        Relation::new(s, vals.iter().map(|&v| tup![v]).collect())
    }

    #[test]
    fn cartesian_product() {
        let got = collect(Box::new(NestedLoopJoin::new(
            Box::new(VecScan::new(rel("A", &[1, 2]))),
            Box::new(VecScan::new(rel("B", &[10, 20, 30]))),
            None,
        )))
        .unwrap();
        assert_eq!(got.len(), 6);
        assert_eq!(got.tuples()[0], tup![1, 10]); // outer-major order
        assert_eq!(got.tuples()[5], tup![2, 30]);
    }

    #[test]
    fn theta_join() {
        let pred = Expr::cmp(CmpOp::Lt, Expr::col("A"), Expr::col("B"));
        let got = collect(Box::new(NestedLoopJoin::new(
            Box::new(VecScan::new(rel("A", &[5, 15]))),
            Box::new(VecScan::new(rel("B", &[10, 20]))),
            Some(pred),
        )))
        .unwrap();
        assert_eq!(got.tuples(), &[tup![5, 10], tup![5, 20], tup![15, 20]]);
    }
}
