//! Delta rules and the [`DeltaApply`] cursor — incremental maintenance
//! of cached fragment results.
//!
//! A fragment delta is a **signed multiset** ([`ZSet`]): each tuple
//! carries a net weight (insertions minus deletions). The cacheable
//! operator shapes propagate deltas with the classic rules:
//!
//! * `FILTER` / `PROJECT` are *linear*: `ΔF(R) = F(ΔR)` — run the
//!   existing cursor over the delta's positive and negative parts
//!   separately ([`delta_filter`], [`delta_project`]);
//! * the merge joins are *bilinear*: when only one input changed,
//!   `Δ(A ⋈ B) = ΔA ⋈ B` — join the delta parts against the full
//!   resident other side with the ordinary (temporal) merge-join cursor
//!   ([`delta_join`]).
//!
//! [`DeltaApply`] then merges a cached base at version `v` with the net
//! delta for `(v, v']`, re-establishes the fragment's delivered sort
//! order, and — crucially — verifies the result is **order-determined**:
//! every run of tuples equal under the sort keys must be fully
//! identical, so the merged sequence is the *only* sequence a cold
//! refetch could deliver. Ambiguity (or a negative net count, which a
//! correct log can never produce) makes the merge bail, and the caller
//! falls back to a refetch — incremental maintenance is an optimization
//! that must be byte-identical or absent.

use crate::cursor::{BoxCursor, Cursor, ExecError, Result};
use crate::filter::Filter;
use crate::merge_join::MergeJoin;
use crate::project::Project;
use crate::scan::VecScan;
use crate::sort::Sort;
use crate::temporal_join::TemporalMergeJoin;
use std::collections::HashMap;
use std::sync::Arc;
use tango_algebra::logical::ProjItem;
use tango_algebra::{Batch, Expr, Relation, Schema, SortSpec, Tuple};

/// A signed multiset of tuples: net insert (+) / delete (−) weights.
#[derive(Debug, Clone)]
pub struct ZSet {
    schema: Arc<Schema>,
    weights: HashMap<Tuple, i64>,
}

impl ZSet {
    /// The empty delta over `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        ZSet { schema, weights: HashMap::new() }
    }

    /// The schema the carried tuples conform to.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Add `weight` copies of `row` (negative = deletions); zero-net
    /// rows are dropped eagerly.
    pub fn add(&mut self, row: Tuple, weight: i64) {
        if weight == 0 {
            return;
        }
        match self.weights.entry(row) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                *e.get_mut() += weight;
                if *e.get() == 0 {
                    e.remove();
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(weight);
            }
        }
    }

    /// Fold another delta (same schema) into this one.
    pub fn merge(&mut self, other: ZSet) {
        for (t, w) in other.weights {
            self.add(t, w);
        }
    }

    /// No net effect?
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Distinct carried tuples.
    pub fn distinct(&self) -> usize {
        self.weights.len()
    }

    /// Iterate `(row, net weight)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.weights.iter().map(|(t, w)| (t, *w))
    }

    /// Expand into (insertions, deletions), each row repeated by its
    /// weight's magnitude.
    pub fn parts(&self) -> (Vec<Tuple>, Vec<Tuple>) {
        let (mut pos, mut neg) = (Vec::new(), Vec::new());
        for (t, w) in &self.weights {
            let (dst, n) = if *w > 0 { (&mut pos, *w) } else { (&mut neg, -*w) };
            for _ in 0..n {
                dst.push(t.clone());
            }
        }
        (pos, neg)
    }

    /// A delta that is all-positive: the relation itself viewed as a
    /// ZSet (used as the unchanged side of a delta join).
    pub fn from_rows(schema: Arc<Schema>, rows: impl IntoIterator<Item = Tuple>) -> Self {
        let mut z = ZSet::new(schema);
        for r in rows {
            z.add(r, 1);
        }
        z
    }
}

/// Drain a cursor built over one signed part, tagging every output row
/// with `sign`.
fn run_part(mut cur: BoxCursor, sign: i64, out: &mut ZSet) -> Result<()> {
    cur.open()?;
    while let Some(b) = cur.next_batch()? {
        for t in b.into_rows() {
            out.add(t, sign);
        }
    }
    cur.close()
}

fn scan_of(schema: &Arc<Schema>, rows: Vec<Tuple>) -> BoxCursor {
    Box::new(VecScan::new(Relation::new(schema.clone(), rows)))
}

/// `Δσ_pred(R) = σ_pred(ΔR)` — filter both parts with the ordinary
/// [`Filter`] cursor.
pub fn delta_filter(delta: &ZSet, pred: &Expr) -> Result<ZSet> {
    let mut out = ZSet::new(delta.schema.clone());
    let (pos, neg) = delta.parts();
    for (rows, sign) in [(pos, 1), (neg, -1)] {
        if !rows.is_empty() {
            run_part(
                Box::new(Filter::new(scan_of(&delta.schema, rows), pred.clone())),
                sign,
                &mut out,
            )?;
        }
    }
    Ok(out)
}

/// `Δπ_items(R) = π_items(ΔR)` — project both parts with the ordinary
/// [`Project`] cursor.
pub fn delta_project(delta: &ZSet, items: &[ProjItem]) -> Result<ZSet> {
    let (pos, neg) = delta.parts();
    let probe = Project::new(scan_of(&delta.schema, Vec::new()), items.to_vec())?;
    let mut out = ZSet::new(probe.schema().clone());
    for (rows, sign) in [(pos, 1), (neg, -1)] {
        if !rows.is_empty() {
            run_part(
                Box::new(Project::new(scan_of(&delta.schema, rows), items.to_vec())?),
                sign,
                &mut out,
            )?;
        }
    }
    Ok(out)
}

/// Bilinear delta join: `left ⋈ right` over signed inputs, where output
/// weight is the product of the input weights. With `left = ΔA` and
/// `right = B` (all-positive) this computes `Δ(A ⋈ B)` when only `A`
/// changed — the *delta-join against the resident other side*. Inputs
/// need not be pre-sorted; each signed part is sorted on the join
/// attributes before the (temporal) merge join runs.
pub fn delta_join(
    temporal: bool,
    left: &ZSet,
    right: &ZSet,
    eq: &[(String, String)],
) -> Result<ZSet> {
    let lcols: Vec<&str> = eq.iter().map(|(l, _)| l.as_str()).collect();
    let rcols: Vec<&str> = eq.iter().map(|(_, r)| r.as_str()).collect();
    let sorted = |schema: &Arc<Schema>, rows: Vec<Tuple>, cols: &[&str]| -> BoxCursor {
        Box::new(Sort::new(scan_of(schema, rows), SortSpec::by(cols.iter().copied())))
    };
    let (lpos, lneg) = left.parts();
    let (rpos, rneg) = right.parts();
    let mut out: Option<ZSet> = None;
    for (lrows, lsign) in [(lpos, 1i64), (lneg, -1i64)] {
        if lrows.is_empty() {
            continue;
        }
        for (rrows, rsign) in [(&rpos, 1i64), (&rneg, -1i64)] {
            if rrows.is_empty() {
                continue;
            }
            let l = sorted(&left.schema, lrows.clone(), &lcols);
            let r = sorted(&right.schema, rrows.clone(), &rcols);
            let join: BoxCursor = if temporal {
                Box::new(TemporalMergeJoin::new(l, r, eq)?)
            } else {
                Box::new(MergeJoin::new(l, r, eq)?)
            };
            let target = out.get_or_insert_with(|| ZSet::new(join.schema().clone()));
            run_part(join, lsign * rsign, target)?;
        }
    }
    match out {
        Some(z) => Ok(z),
        None => {
            // both parts empty on one side: probe for the output schema
            let l = sorted(&left.schema, Vec::new(), &lcols);
            let r = sorted(&right.schema, Vec::new(), &rcols);
            let join: BoxCursor = if temporal {
                Box::new(TemporalMergeJoin::new(l, r, eq)?)
            } else {
                Box::new(MergeJoin::new(l, r, eq)?)
            };
            Ok(ZSet::new(join.schema().clone()))
        }
    }
}

/// Merges a cached fragment snapshot with a net delta and serves the
/// refreshed rows — the execution side of refresh-by-delta.
///
/// Construction performs the whole merge eagerly (`try_new`); it yields
/// `None` when the merged multiset cannot be proven byte-identical to a
/// cold refetch: a tuple's net count went negative (log/base mismatch)
/// or the delivered order leaves equal-key runs with non-identical
/// tuples (order-ambiguous). Callers treat `None` as "bail to refetch".
pub struct DeltaApply {
    schema: Arc<Schema>,
    rows: Arc<Vec<Tuple>>,
    pos: usize,
    opened: bool,
}

impl DeltaApply {
    /// Merge `base + delta`, sort by `order`, and verify the result is
    /// order-determined. `order` must be the fragment's delivered sort
    /// order and non-trivial — an unordered fragment can never be proven
    /// byte-identical, so it is rejected outright.
    pub fn try_new(
        schema: Arc<Schema>,
        base: &[Tuple],
        delta: &ZSet,
        order: &SortSpec,
    ) -> Result<Option<DeltaApply>> {
        if order.is_none() {
            return Ok(None);
        }
        let mut counts: HashMap<&Tuple, i64> = HashMap::with_capacity(base.len());
        for t in base {
            *counts.entry(t).or_insert(0) += 1;
        }
        for (t, w) in delta.iter() {
            *counts.entry(t).or_insert(0) += w;
        }
        let mut rows = Vec::with_capacity(base.len());
        for (t, n) in counts {
            if n < 0 {
                return Ok(None); // deleting rows the base never had
            }
            for _ in 0..n {
                rows.push(t.clone());
            }
        }
        let cmp = order.comparator(&schema);
        rows.sort_by(&cmp);
        // order-determined check: within every equal-sort-key run, all
        // tuples must be fully identical, otherwise a cold refetch could
        // legally deliver a different interleaving
        for w in rows.windows(2) {
            if cmp(&w[0], &w[1]) == std::cmp::Ordering::Equal && w[0] != w[1] {
                return Ok(None);
            }
        }
        Ok(Some(DeltaApply { schema, rows: Arc::new(rows), pos: 0, opened: false }))
    }

    /// The refreshed fragment rows (shared, so the caller can commit the
    /// same allocation to the cache it serves from).
    pub fn rows(&self) -> &Arc<Vec<Tuple>> {
        &self.rows
    }
}

impl Cursor for DeltaApply {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.opened = true;
        self.pos = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if !self.opened {
            return Err(ExecError::State("DeltaApply::next before open".into()));
        }
        if self.pos >= self.rows.len() {
            return Ok(None);
        }
        let t = self.rows[self.pos].clone();
        self.pos += 1;
        Ok(Some(t))
    }

    fn next_batch_of(&mut self, max_rows: usize) -> Result<Option<Batch>> {
        if !self.opened {
            return Err(ExecError::State("DeltaApply::next_batch before open".into()));
        }
        if self.pos >= self.rows.len() {
            return Ok(None);
        }
        let end = (self.pos + max_rows.max(1)).min(self.rows.len());
        let batch = Batch::new(self.schema.clone(), self.rows[self.pos..end].to_vec());
        self.pos = end;
        Ok(Some(batch))
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![("refreshed_rows", self.rows.len() as u64)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect;
    use tango_algebra::{tup, Attr, CmpOp, Type};

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::with_inferred_period(vec![
            Attr::new("PosID", Type::Int),
            Attr::new("EmpName", Type::Str),
            Attr::new("T1", Type::Int),
            Attr::new("T2", Type::Int),
        ]))
    }

    #[test]
    fn filter_rule_is_linear() {
        let mut d = ZSet::new(schema());
        d.add(tup![1, "Tom", 2, 20], 1);
        d.add(tup![2, "Tom", 5, 10], -1);
        d.add(tup![3, "Jane", 5, 25], 1);
        let pred = Expr::cmp(CmpOp::Eq, Expr::col("EmpName"), Expr::lit("Tom"));
        let out = delta_filter(&d, &pred).unwrap();
        assert_eq!(out.distinct(), 2);
        let w: i64 = out.iter().map(|(_, w)| w).sum();
        assert_eq!(w, 0, "one Tom in, one Tom out");
    }

    #[test]
    fn join_rule_weights_multiply() {
        let mut da = ZSet::new(schema());
        da.add(tup![1, "New", 3, 9], 1);
        da.add(tup![1, "Old", 2, 20], -1);
        let b = ZSet::from_rows(
            schema(),
            vec![tup![1, "Tom", 2, 20], tup![1, "Jane", 5, 25], tup![2, "Tom", 5, 10]],
        );
        let eq = vec![("PosID".to_string(), "PosID".to_string())];
        let out = delta_join(true, &da, &b, &eq).unwrap();
        // inserted row overlaps both PosID=1 rows; deleted row too
        let (pos, neg) = out.parts();
        assert_eq!(pos.len(), 2);
        assert_eq!(neg.len(), 2);
    }

    #[test]
    fn apply_merges_and_preserves_order() {
        let s = schema();
        let base = vec![tup![1, "Jane", 5, 25], tup![2, "Tom", 5, 10]];
        let mut d = ZSet::new(s.clone());
        d.add(tup![1, "Amy", 1, 2], 1);
        d.add(tup![2, "Tom", 5, 10], -1);
        let order = SortSpec::by(["PosID", "T1"]);
        let a = DeltaApply::try_new(s, &base, &d, &order).unwrap().expect("determined");
        let rel = collect(Box::new(a)).unwrap();
        assert_eq!(rel.tuples(), &[tup![1, "Amy", 1, 2], tup![1, "Jane", 5, 25]]);
    }

    #[test]
    fn ambiguous_order_bails() {
        let s = schema();
        // two rows equal on the sort key but different elsewhere
        let base = vec![tup![1, "Jane", 5, 25]];
        let mut d = ZSet::new(s.clone());
        d.add(tup![1, "Tom", 7, 9], 1);
        let order = SortSpec::by(["PosID"]);
        assert!(DeltaApply::try_new(s.clone(), &base, &d, &order).unwrap().is_none());
        // deleting a row the base lacks bails too
        let mut d2 = ZSet::new(s.clone());
        d2.add(tup![9, "Nope", 1, 2], -1);
        let order2 = SortSpec::by(["PosID", "EmpName", "T1", "T2"]);
        assert!(DeltaApply::try_new(s.clone(), &base, &d2, &order2).unwrap().is_none());
        // and an unordered fragment is rejected outright
        assert!(DeltaApply::try_new(s, &base, &d, &SortSpec::none()).unwrap().is_none());
    }
}
