//! # tango-xxl
//!
//! The middleware's query-processing algorithm library, modelled on the
//! XXL library the paper's Execution Engine builds on (van den Bercken,
//! Dittrich & Seeger, SIGMOD 2000).
//!
//! Every algorithm is a [`Cursor`]: an iterator with explicit `open` /
//! `next` lifecycle enabling the pipelined execution of Figure 2 of the
//! paper. Algorithms are deliberately *order-preserving* wherever the
//! paper requires it (Section 4: "the middleware algorithms are designed
//! to be order preserving").
//!
//! Cursors also support *batch-at-a-time* pulls via
//! [`Cursor::next_batch`]: every algorithm answers batch requests (a
//! default implementation loops `next`), the bulk operators (scan,
//! filter, project, sort, dedup, aggregation) produce batches natively
//! over tango-algebra's columnar `Batch` layout, and the stream-merging
//! operators amortize their input dispatch with
//! [`cursor::BatchBuffered`]. Execution knobs travel per operator
//! instance as [`ExecOpts`] (every algorithm has a `with_opts`
//! constructor): `batch_rows` sets the batch size (1 degenerates to
//! row-at-a-time execution; the process-wide
//! [`cursor::batch_rows`]/[`cursor::set_batch_rows`] knob survives as
//! the deprecated default) and `workers` sizes the morsel-driven worker
//! pool of the [`par`] module — the heavy stages (sorts, the merge
//! joins, `TAGGR^M`) split into ~64k-row morsels, execute on scoped
//! threads and merge order-preserving, byte-identical to `workers = 1`.
//!
//! Inventory:
//!
//! * [`scan::VecScan`] — scan of a materialized relation,
//! * [`scan::CachedScan`] — scan of a *shared* cached relation (serves
//!   middleware-cache hits without consuming the entry),
//! * [`filter::Filter`] — `FILTER^M`,
//! * [`project::Project`] — `PROJECT^M`,
//! * [`sort::Sort`] / [`sort::ExternalSort`] — `SORT^M`,
//! * [`merge_join::MergeJoin`] — `MERGEJOIN^M` (sort-merge equi join),
//! * [`temporal_join::TemporalMergeJoin`] — `TMERGEJOIN^M` (⋈ᵀ),
//! * [`nested_loop::NestedLoopJoin`] — fallback theta join,
//! * [`taggr::TemporalAggregate`] — `TAGGR^M`, the two-sorted-copies
//!   sweep of Section 3.4,
//! * [`dedup::DupElim`], [`coalesce::Coalesce`], [`tdiff::TemporalDiff`] —
//!   the extension operators the paper lists as future additions,
//! * [`set_ops`] — multiset `UNION ALL` / `INTERSECT ALL` / `EXCEPT ALL`.
//!
//! ```
//! use std::sync::Arc;
//! use tango_algebra::{tup, AggFunc, AggSpec, Attr, Relation, Schema, SortSpec, Type};
//! use tango_xxl::{collect, TemporalAggregate, VecScan};
//!
//! // Figure 3(a) of the paper, sorted on (PosID, T1) as TAGGR^M requires
//! let schema = Arc::new(Schema::with_inferred_period(vec![
//!     Attr::new("PosID", Type::Int),
//!     Attr::new("EmpName", Type::Str),
//!     Attr::new("T1", Type::Int),
//!     Attr::new("T2", Type::Int),
//! ]));
//! let mut position = Relation::new(schema, vec![
//!     tup![1, "Tom", 2, 20], tup![1, "Jane", 5, 25], tup![2, "Tom", 5, 10],
//! ]);
//! position.sort_by(&SortSpec::by(["PosID", "T1"]));
//!
//! let agg = TemporalAggregate::new(
//!     Box::new(VecScan::new(position)),
//!     vec!["PosID".into()],
//!     vec![AggSpec::new(AggFunc::Count, Some("PosID"), "Cnt")],
//! )?;
//! let result = collect(Box::new(agg))?;
//! assert_eq!(result.tuples()[1], tup![1, 5, 20, 2]); // two holders over [5, 20)
//! # Ok::<(), tango_xxl::ExecError>(())
//! ```

#![warn(missing_docs)]

pub mod coalesce;
pub mod cursor;
pub mod dedup;
pub mod delta;
pub mod filter;
pub mod merge_join;
pub mod nested_loop;
pub mod par;
pub mod project;
pub mod scan;
pub mod set_ops;
pub mod sort;
pub mod taggr;
pub mod tdiff;
pub mod temporal_join;

pub use coalesce::Coalesce;
pub use cursor::{
    batch_rows, collect, collect_batched, drain_batches, drain_of, set_batch_rows, BatchBuffered,
    BoxCursor, Cursor, ExecError, ExecOpts, Result,
};
pub use dedup::DupElim;
pub use delta::{delta_filter, delta_join, delta_project, DeltaApply, ZSet};
pub use filter::Filter;
pub use merge_join::MergeJoin;
pub use nested_loop::NestedLoopJoin;
pub use par::{morsel_ranges, run_ordered, ParStats, MORSEL_ROWS};
pub use project::Project;
pub use scan::{CachedScan, VecScan};
pub use set_ops::{ExceptAll, IntersectAll, UnionAll};
pub use sort::{ExternalSort, Sort};
pub use taggr::TemporalAggregate;
pub use tdiff::TemporalDiff;
pub use temporal_join::TemporalMergeJoin;

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::Arc;
    use tango_algebra::{Attr, Relation, Schema, Type};

    /// POSITION relation from Figure 3(a) of the paper.
    pub fn figure3_position() -> Relation {
        let schema = Arc::new(Schema::with_inferred_period(vec![
            Attr::new("PosID", Type::Int),
            Attr::new("EmpName", Type::Str),
            Attr::new("T1", Type::Int),
            Attr::new("T2", Type::Int),
        ]));
        let rows = vec![
            tango_algebra::tup![1, "Tom", 2, 20],
            tango_algebra::tup![1, "Jane", 5, 25],
            tango_algebra::tup![2, "Tom", 5, 10],
        ];
        Relation::new(schema, rows)
    }
}
