//! Duplicate elimination — one of the operators the paper lists as a
//! natural later addition to TANGO ("Additional algorithms may later be
//! added ... including duplicate elimination, difference, and
//! coalescing", Section 3.1).
//!
//! Hash-based; keeps the *first* occurrence, so the algorithm is
//! order-preserving in the list-semantics sense: the output is the input
//! list with later duplicates removed.

use crate::cursor::{BoxCursor, Cursor, Result};
use std::collections::HashSet;
use std::sync::Arc;
use tango_algebra::value::Key;
use tango_algebra::{Batch, Schema, Tuple};

/// Order-preserving hash duplicate elimination (keeps first occurrences).
pub struct DupElim {
    input: BoxCursor,
    seen: HashSet<Vec<Key>>,
    dropped: u64,
}

impl DupElim {
    /// Deduplicate `input` on all attributes.
    pub fn new(input: BoxCursor) -> Self {
        DupElim { input, seen: HashSet::new(), dropped: 0 }
    }
}

impl Cursor for DupElim {
    fn schema(&self) -> &Arc<Schema> {
        self.input.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.seen.clear();
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        while let Some(t) = self.input.next()? {
            let key: Vec<Key> = t.values().iter().map(|v| v.key()).collect();
            if self.seen.insert(key) {
                return Ok(Some(t));
            }
            self.dropped += 1;
        }
        Ok(None)
    }

    fn next_batch_of(&mut self, max_rows: usize) -> Result<Option<Batch>> {
        loop {
            let Some(b) = self.input.next_batch_of(max_rows)? else {
                return Ok(None);
            };
            let mut rows = b.into_rows();
            let mut kept = 0usize;
            for i in 0..rows.len() {
                let key: Vec<Key> = rows[i].values().iter().map(|v| v.key()).collect();
                if self.seen.insert(key) {
                    rows.swap(kept, i);
                    kept += 1;
                } else {
                    self.dropped += 1;
                }
            }
            rows.truncate(kept);
            if !rows.is_empty() {
                return Ok(Some(Batch::new(self.input.schema().clone(), rows)));
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.seen.clear();
        self.input.close()
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![("duplicates_dropped", self.dropped)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect;
    use crate::scan::VecScan;
    use tango_algebra::{tup, Attr, Relation, Type};

    #[test]
    fn keeps_first_occurrence() {
        let s = Arc::new(Schema::new(vec![Attr::new("A", Type::Int), Attr::new("B", Type::Str)]));
        let r = Relation::new(s, vec![tup![1, "x"], tup![2, "y"], tup![1, "x"], tup![1, "z"]]);
        let got = collect(Box::new(DupElim::new(Box::new(VecScan::new(r))))).unwrap();
        assert_eq!(got.tuples(), &[tup![1, "x"], tup![2, "y"], tup![1, "z"]]);
    }
}
