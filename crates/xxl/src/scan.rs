//! Scan over a materialized relation.

use crate::cursor::{Cursor, Result};
use std::sync::Arc;
use tango_algebra::{Batch, Relation, Schema, Tuple};

/// Streams the tuples of an in-memory relation in list order.
pub struct VecScan {
    schema: Arc<Schema>,
    tuples: std::vec::IntoIter<Tuple>,
    opened: bool,
}

impl VecScan {
    /// Scan a materialized relation.
    pub fn new(rel: Relation) -> Self {
        let schema = rel.schema().clone();
        VecScan { schema, tuples: rel.into_tuples().into_iter(), opened: false }
    }

    /// Scan over explicit parts (schema + tuples).
    pub fn from_parts(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Self {
        VecScan { schema, tuples: tuples.into_iter(), opened: false }
    }
}

impl Cursor for VecScan {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.opened = true;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        debug_assert!(self.opened, "scan consumed before open()");
        Ok(self.tuples.next())
    }

    fn next_batch_of(&mut self, max_rows: usize) -> Result<Option<Batch>> {
        debug_assert!(self.opened, "scan consumed before open()");
        let rows: Vec<Tuple> = self.tuples.by_ref().take(max_rows.max(1)).collect();
        if rows.is_empty() {
            Ok(None)
        } else {
            Ok(Some(Batch::new(self.schema.clone(), rows)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect;
    use crate::testutil::figure3_position;

    #[test]
    fn scan_preserves_list_order() {
        let rel = figure3_position();
        let expected = rel.clone();
        let got = collect(Box::new(VecScan::new(rel))).unwrap();
        assert!(got.list_eq(&expected));
    }
}
