//! Scan over a materialized relation.

use crate::cursor::{Cursor, Result};
use std::sync::Arc;
use tango_algebra::{Batch, Relation, Schema, Tuple};

/// Streams the tuples of an in-memory relation in list order.
pub struct VecScan {
    schema: Arc<Schema>,
    tuples: std::vec::IntoIter<Tuple>,
    opened: bool,
}

impl VecScan {
    /// Scan a materialized relation.
    pub fn new(rel: Relation) -> Self {
        let schema = rel.schema().clone();
        VecScan { schema, tuples: rel.into_tuples().into_iter(), opened: false }
    }

    /// Scan over explicit parts (schema + tuples).
    pub fn from_parts(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Self {
        VecScan { schema, tuples: tuples.into_iter(), opened: false }
    }
}

impl Cursor for VecScan {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.opened = true;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        debug_assert!(self.opened, "scan consumed before open()");
        Ok(self.tuples.next())
    }

    fn next_batch_of(&mut self, max_rows: usize) -> Result<Option<Batch>> {
        debug_assert!(self.opened, "scan consumed before open()");
        let rows: Vec<Tuple> = self.tuples.by_ref().take(max_rows.max(1)).collect();
        if rows.is_empty() {
            Ok(None)
        } else {
            Ok(Some(Batch::new(self.schema.clone(), rows)))
        }
    }
}

/// Streams a *shared* materialized relation (`Arc<Vec<Tuple>>`) in list
/// order, cloning tuples as they are emitted.
///
/// This is the serving cursor of the middleware relation cache: a cache
/// hit replaces a `TRANSFER^M`'s wire traffic with a `CachedScan` over
/// the resident copy, which stays shared (and reusable by later hits)
/// rather than being consumed. Reports one counter, `cache_bytes` — the
/// stored byte size of the entry being served.
pub struct CachedScan {
    schema: Arc<Schema>,
    rows: Arc<Vec<Tuple>>,
    pos: usize,
    entry_bytes: u64,
    opened: bool,
}

impl CachedScan {
    /// Serve `rows` (the cached entry, `entry_bytes` encoded bytes).
    pub fn new(schema: Arc<Schema>, rows: Arc<Vec<Tuple>>, entry_bytes: u64) -> Self {
        CachedScan { schema, rows, pos: 0, entry_bytes, opened: false }
    }
}

impl Cursor for CachedScan {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.opened = true;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        debug_assert!(self.opened, "scan consumed before open()");
        let t = self.rows.get(self.pos).cloned();
        self.pos += t.is_some() as usize;
        Ok(t)
    }

    fn next_batch_of(&mut self, max_rows: usize) -> Result<Option<Batch>> {
        debug_assert!(self.opened, "scan consumed before open()");
        if self.pos >= self.rows.len() {
            return Ok(None);
        }
        let end = (self.pos + max_rows.max(1)).min(self.rows.len());
        let batch = Batch::new(self.schema.clone(), self.rows[self.pos..end].to_vec());
        self.pos = end;
        Ok(Some(batch))
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![("cache_bytes", self.entry_bytes)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect;
    use crate::testutil::figure3_position;

    #[test]
    fn scan_preserves_list_order() {
        let rel = figure3_position();
        let expected = rel.clone();
        let got = collect(Box::new(VecScan::new(rel))).unwrap();
        assert!(got.list_eq(&expected));
    }

    #[test]
    fn cached_scan_is_repeatable_and_counts_bytes() {
        let rel = figure3_position();
        let schema = rel.schema().clone();
        let rows = Arc::new(rel.tuples().to_vec());
        let bytes: u64 = rows.iter().map(|t| t.byte_size() as u64).sum();
        for _ in 0..2 {
            let c = CachedScan::new(schema.clone(), rows.clone(), bytes);
            assert_eq!(c.counters(), vec![("cache_bytes", bytes)]);
            let got = collect(Box::new(c)).unwrap();
            assert!(got.list_eq(&figure3_position()));
        }
        // batch path agrees with the row path
        let mut c = CachedScan::new(schema, rows.clone(), bytes);
        c.open().unwrap();
        let mut n = 0;
        while let Some(b) = c.next_batch_of(2).unwrap() {
            assert!(!b.is_empty());
            n += b.len();
        }
        assert_eq!(n, rows.len());
    }
}
