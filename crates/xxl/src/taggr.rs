//! `TAGGR^M` — middleware temporal aggregation (ξᵀ), Section 3.4.
//!
//! The argument must be sorted on the grouping attributes and `T1`; the
//! algorithm internally sorts a second copy of each group on `T2` and
//! traverses both "similarly to sort-merge join", computing aggregate
//! values group by group over the *constant periods* induced by the
//! period endpoints.
//!
//! TAGGR is a pipeline breaker, so the cursor materializes its input as
//! one columnar batch at `open` and runs the sweep over flat arrays:
//! group boundaries come from extracted key columns, period endpoints
//! from a flat `(start, end)` pair of `i64` vectors, and output rows are
//! built column-at-a-time. With `workers > 1` the groups are partitioned
//! into ~morsel-sized chunks (groups never span a chunk) and swept
//! concurrently; chunk outputs are concatenated in group order, so the
//! result is byte-identical to the sequential sweep.
//!
//! The output is ordered on (grouping attributes, `T1`), which is why
//! Query 1's best plan needs no final sort (Figure 7, Plan 1).

use crate::cursor::{drain_batches, BoxCursor, Cursor, ExecError, ExecOpts, Result};
use crate::par::{run_ordered, ParStats, MORSEL_ROWS};
use std::collections::BTreeMap;
use std::sync::Arc;
use tango_algebra::logical::taggr_schema;
use tango_algebra::value::Key;
use tango_algebra::{
    AggFunc, AggSpec, Batch, BatchKeys, Column, Day, Schema, SortSpec, Tuple, Type, Value,
};

/// Sentinel for "no valid day" in the flattened period-endpoint arrays
/// (no valid day is ever `i64::MIN`; days fit in `i32`).
const NO_DAY: i64 = i64::MIN;

/// The `TAGGR^M` cursor: temporal aggregation by a sweep over each
/// group's constant periods (Section 3.4 of the paper). Input must be
/// sorted on (group attributes, `T1`).
pub struct TemporalAggregate {
    input: BoxCursor,
    opts: ExecOpts,
    group_by: Vec<String>,
    group_idx: Vec<usize>,
    agg_arg_idx: Vec<Option<usize>>,
    aggs: Vec<AggSpec>,
    period: (usize, usize),
    date_typed: bool,
    schema: Arc<Schema>,
    /// The whole input, columnar, resident from `open` on.
    data: Option<Batch>,
    /// Row ranges of the input's groups, in input order.
    bounds: Vec<(u32, u32)>,
    /// Next `bounds` entry the lazy sequential path will sweep.
    next_group: usize,
    /// Flat period endpoints per input row ([`NO_DAY`] = empty/null).
    starts_all: Vec<i64>,
    ends_all: Vec<i64>,
    /// Computed output not yet handed out (`out_pos` = next row).
    out: Option<Batch>,
    out_pos: usize,
    opened: bool,
    groups: u64,
    constant_periods: u64,
    par: Option<ParStats>,
}

impl TemporalAggregate {
    /// Aggregate `input` per `group_by` combination over every constant
    /// period; `aggs` define the computed columns.
    pub fn new(input: BoxCursor, group_by: Vec<String>, aggs: Vec<AggSpec>) -> Result<Self> {
        Self::with_opts(input, group_by, aggs, ExecOpts::default())
    }

    /// Like [`TemporalAggregate::new`] with explicit execution knobs.
    pub fn with_opts(
        input: BoxCursor,
        group_by: Vec<String>,
        aggs: Vec<AggSpec>,
        opts: ExecOpts,
    ) -> Result<Self> {
        let in_schema = input.schema();
        let period = in_schema
            .period()
            .ok_or_else(|| ExecError::State("temporal aggregation: input not temporal".into()))?;
        let mut group_idx = Vec::with_capacity(group_by.len());
        for g in &group_by {
            group_idx.push(in_schema.index_of(g)?);
        }
        let mut agg_arg_idx = Vec::with_capacity(aggs.len());
        for a in &aggs {
            agg_arg_idx.push(match &a.arg {
                Some(c) => Some(in_schema.index_of(c)?),
                None => None,
            });
        }
        let date_typed = matches!(in_schema.attr(period.0).ty, Type::Date);
        let schema = Arc::new(taggr_schema(&group_by, &aggs, in_schema)?);
        Ok(TemporalAggregate {
            input,
            opts,
            group_by,
            group_idx,
            agg_arg_idx,
            aggs,
            period,
            date_typed,
            schema,
            data: None,
            bounds: Vec::new(),
            next_group: 0,
            starts_all: Vec::new(),
            ends_all: Vec::new(),
            out: None,
            out_pos: 0,
            opened: false,
            groups: 0,
            constant_periods: 0,
            par: None,
        })
    }

    /// Sweep all groups in parallel morsels and stage the whole output.
    fn run_parallel(&mut self) -> Result<()> {
        let data = self.data.as_ref().expect("opened");
        let total_rows = data.len();
        let target = MORSEL_ROWS.min(total_rows.div_ceil(self.opts.workers)).max(1);
        // Chunk whole groups by accumulated input rows so no group spans
        // two morsels.
        let mut chunks: Vec<(usize, usize)> = Vec::new();
        let (mut start, mut acc) = (0usize, 0usize);
        for (i, &(lo, hi)) in self.bounds.iter().enumerate() {
            acc += (hi - lo) as usize;
            if acc >= target {
                chunks.push((start, i + 1));
                start = i + 1;
                acc = 0;
            }
        }
        if start < self.bounds.len() {
            chunks.push((start, self.bounds.len()));
        }
        let ctx = SweepCtx {
            data,
            group_idx: &self.group_idx,
            agg_arg_idx: &self.agg_arg_idx,
            aggs: &self.aggs,
            date_typed: self.date_typed,
            starts_all: &self.starts_all,
            ends_all: &self.ends_all,
        };
        let bounds = &self.bounds;
        let width = self.schema.len();
        let ctx_ref = &ctx;
        let jobs: Vec<_> = chunks
            .into_iter()
            .map(|(a, b)| {
                move || {
                    let mut cols: Vec<Vec<Value>> = (0..width).map(|_| Vec::new()).collect();
                    let (_, g, cp) = sweep_groups(ctx_ref, &bounds[a..b], &mut cols, usize::MAX);
                    (cols, g, cp)
                }
            })
            .collect();
        let (results, stats) = run_ordered(self.opts.workers, jobs);
        let mut cols: Vec<Vec<Value>> = (0..width).map(|_| Vec::new()).collect();
        let (mut groups, mut cps) = (0u64, 0u64);
        for (chunk_cols, g, cp) in results {
            groups += g;
            cps += cp;
            for (dst, src) in cols.iter_mut().zip(chunk_cols) {
                dst.extend(src);
            }
        }
        self.groups += groups;
        self.constant_periods += cps;
        self.par = Some(stats);
        self.out = Some(Batch::from_columns(
            self.schema.clone(),
            cols.into_iter().map(Column::from_values).collect(),
        ));
        self.out_pos = 0;
        self.next_group = self.bounds.len();
        Ok(())
    }

    /// Sequential path: sweep groups until at least `min_rows` output rows
    /// are staged (or the input is exhausted).
    fn refill(&mut self, min_rows: usize) -> Result<()> {
        let width = self.schema.len();
        let mut cols: Vec<Vec<Value>> = (0..width).map(|_| Vec::new()).collect();
        let data = self
            .data
            .as_ref()
            .ok_or_else(|| ExecError::State("temporal aggregation not opened".into()))?;
        let ctx = SweepCtx {
            data,
            group_idx: &self.group_idx,
            agg_arg_idx: &self.agg_arg_idx,
            aggs: &self.aggs,
            date_typed: self.date_typed,
            starts_all: &self.starts_all,
            ends_all: &self.ends_all,
        };
        let (processed, g, cp) =
            sweep_groups(&ctx, &self.bounds[self.next_group..], &mut cols, min_rows.max(1));
        self.next_group += processed;
        self.groups += g;
        self.constant_periods += cp;
        self.out = if cols.first().map(|c| c.is_empty()).unwrap_or(true) {
            None
        } else {
            Some(Batch::from_columns(
                self.schema.clone(),
                cols.into_iter().map(Column::from_values).collect(),
            ))
        };
        self.out_pos = 0;
        Ok(())
    }
}

impl Cursor for TemporalAggregate {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.input.open()?;
        let in_schema = self.input.schema().clone();
        let batches = drain_batches(self.input.as_mut(), self.opts.batch_rows)?;
        let data = Batch::concat(in_schema.clone(), batches);
        let n = data.len();
        self.bounds.clear();
        if n > 0 {
            let spec = SortSpec::by(self.group_by.iter().map(String::as_str));
            let keys = BatchKeys::extract(&data, &spec, &in_schema);
            if keys.is_empty() {
                self.bounds.push((0, n as u32));
            } else {
                let mut lo = 0usize;
                for r in 1..n {
                    if keys.cmp(r - 1, r) != std::cmp::Ordering::Equal {
                        self.bounds.push((lo as u32, r as u32));
                        lo = r;
                    }
                }
                self.bounds.push((lo as u32, n as u32));
            }
        }
        self.starts_all = day_col(&data, self.period.0);
        self.ends_all = day_col(&data, self.period.1);
        self.next_group = 0;
        self.out = None;
        self.out_pos = 0;
        self.data = Some(data);
        self.opened = true;
        if self.opts.workers > 1 && !self.bounds.is_empty() {
            self.run_parallel()?;
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if !self.opened {
            return Err(ExecError::State("temporal aggregation not opened".into()));
        }
        loop {
            if let Some(out) = &self.out {
                if self.out_pos < out.len() {
                    let t = out.tuple_at(self.out_pos);
                    self.out_pos += 1;
                    return Ok(Some(t));
                }
            }
            if self.next_group >= self.bounds.len() {
                return Ok(None);
            }
            self.refill(1)?;
            if self.out.is_none() {
                return Ok(None);
            }
        }
    }

    fn next_batch_of(&mut self, max_rows: usize) -> Result<Option<Batch>> {
        if !self.opened {
            return Err(ExecError::State("temporal aggregation not opened".into()));
        }
        let max = max_rows.max(1);
        loop {
            if let Some(out) = &self.out {
                let rem = out.len() - self.out_pos;
                if rem > 0 {
                    let n = rem.min(max);
                    let b = out.slice(self.out_pos, n);
                    self.out_pos += n;
                    return Ok(Some(b));
                }
            }
            if self.next_group >= self.bounds.len() {
                return Ok(None);
            }
            self.refill(max)?;
            if self.out.is_none() {
                return Ok(None);
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.data = None;
        self.out = None;
        self.out_pos = 0;
        self.starts_all = Vec::new();
        self.ends_all = Vec::new();
        self.input.close()
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        let mut out = vec![("groups", self.groups), ("constant_periods", self.constant_periods)];
        if let Some(par) = &self.par {
            out.extend(par.counters());
        }
        out
    }
}

/// Flatten a period-endpoint column to `i64` days ([`NO_DAY`] for rows
/// with no valid day: nulls, non-numeric values, ints outside `i32`).
fn day_col(data: &Batch, col: usize) -> Vec<i64> {
    if let Some((cols, offset, len)) = data.columns() {
        match &cols[col] {
            Column::Date { vals, valid } => {
                return (0..len)
                    .map(|r| {
                        if valid.as_ref().map(|b| b.get(offset + r)).unwrap_or(true) {
                            vals[offset + r]
                        } else {
                            NO_DAY
                        }
                    })
                    .collect();
            }
            Column::Int { vals, valid } => {
                return (0..len)
                    .map(|r| {
                        let ok = valid.as_ref().map(|b| b.get(offset + r)).unwrap_or(true);
                        let v = vals[offset + r];
                        if ok && i32::try_from(v).is_ok() {
                            v
                        } else {
                            NO_DAY
                        }
                    })
                    .collect();
            }
            _ => {}
        }
    }
    (0..data.len())
        .map(|r| data.value_at(r, col).as_day().map(|d| d as i64).unwrap_or(NO_DAY))
        .collect()
}

fn mk_t(date_typed: bool, v: i64) -> Value {
    if date_typed {
        Value::Date(v as Day)
    } else {
        Value::Int(v)
    }
}

/// Shared read-only view a sweep job needs.
struct SweepCtx<'a> {
    data: &'a Batch,
    group_idx: &'a [usize],
    agg_arg_idx: &'a [Option<usize>],
    aggs: &'a [AggSpec],
    date_typed: bool,
    starts_all: &'a [i64],
    ends_all: &'a [i64],
}

/// Sweep whole groups from `bounds` into the per-column output vectors
/// until at least `min_rows` rows are produced (or `bounds` is
/// exhausted). Returns (groups processed, non-empty groups, constant
/// periods). The per-group algorithm — retain non-empty periods, sort a
/// second index copy by `T2`, advance start/end events emitting one row
/// per constant period — is the exact sweep of Section 3.4.
fn sweep_groups(
    ctx: &SweepCtx<'_>,
    bounds: &[(u32, u32)],
    out: &mut [Vec<Value>],
    min_rows: usize,
) -> (usize, u64, u64) {
    let mut states: Vec<Box<dyn AggState>> = ctx.aggs.iter().map(|a| new_state(a.func)).collect();
    let width_g = ctx.group_idx.len();
    let mut kept: Vec<u32> = Vec::new();
    let mut starts: Vec<i64> = Vec::new();
    let mut ends: Vec<i64> = Vec::new();
    let mut by_end: Vec<u32> = Vec::new();
    let (mut groups, mut cps) = (0u64, 0u64);
    let mut processed = 0usize;
    for &(lo, hi) in bounds {
        if out[0].len() >= min_rows {
            break;
        }
        processed += 1;
        // Drop tuples with empty or null periods: they hold at no time
        // point and contribute nothing.
        kept.clear();
        for r in lo..hi {
            let (s, e) = (ctx.starts_all[r as usize], ctx.ends_all[r as usize]);
            if s != NO_DAY && e != NO_DAY && s < e {
                kept.push(r);
            }
        }
        if kept.is_empty() {
            continue; // an empty group produces no constant periods
        }
        groups += 1;
        let k = kept.len();
        starts.clear();
        starts.extend(kept.iter().map(|&r| ctx.starts_all[r as usize]));
        ends.clear();
        ends.extend(kept.iter().map(|&r| ctx.ends_all[r as usize]));
        // Second copy, sorted on T2 (the algorithm's internal sort).
        by_end.clear();
        by_end.extend(0..k as u32);
        by_end.sort_unstable_by_key(|&i| ends[i as usize]);
        for s in states.iter_mut() {
            s.reset();
        }
        let group_vals: Vec<Value> =
            ctx.group_idx.iter().map(|&c| ctx.data.value_at(kept[0] as usize, c)).collect();
        let mut i = 0usize; // next start event (group is sorted by T1)
        let mut j = 0usize; // next end event (via by_end)
        let mut active = 0usize;
        let mut prev: Option<i64> = None;
        while j < k {
            let end_t = ends[by_end[j] as usize];
            let t = if i < k { end_t.min(starts[i]) } else { end_t };
            if let Some(p) = prev {
                if p < t && active > 0 {
                    for (c, v) in group_vals.iter().enumerate() {
                        out[c].push(v.clone());
                    }
                    out[width_g].push(mk_t(ctx.date_typed, p));
                    out[width_g + 1].push(mk_t(ctx.date_typed, t));
                    for (c, s) in states.iter().enumerate() {
                        out[width_g + 2 + c].push(s.current());
                    }
                    cps += 1;
                }
            }
            while i < k && starts[i] == t {
                let row = kept[i] as usize;
                for (s, arg) in states.iter_mut().zip(ctx.agg_arg_idx) {
                    match arg {
                        Some(a) => {
                            let v = ctx.data.value_at(row, *a);
                            s.add(Some(&v));
                        }
                        None => s.add(None),
                    }
                }
                active += 1;
                i += 1;
            }
            while j < k && ends[by_end[j] as usize] == t {
                let row = kept[by_end[j] as usize] as usize;
                for (s, arg) in states.iter_mut().zip(ctx.agg_arg_idx) {
                    match arg {
                        Some(a) => {
                            let v = ctx.data.value_at(row, *a);
                            s.remove(Some(&v));
                        }
                        None => s.remove(None),
                    }
                }
                active -= 1;
                j += 1;
            }
            prev = Some(t);
        }
    }
    (processed, groups, cps)
}

/// Incremental aggregate state with add/remove (the sweep enters and
/// leaves tuples as their periods start and end).
trait AggState: Send {
    fn add(&mut self, v: Option<&Value>);
    fn remove(&mut self, v: Option<&Value>);
    fn current(&self) -> Value;
    /// Return to the empty state (one state box is reused across all the
    /// groups a sweep covers).
    fn reset(&mut self);
}

fn new_state(f: AggFunc) -> Box<dyn AggState> {
    match f {
        AggFunc::Count => Box::new(CountState { n: 0 }),
        AggFunc::Sum => Box::new(SumState { int: 0, float: 0.0, n: 0, saw_float: false }),
        AggFunc::Avg => Box::new(AvgState { sum: 0.0, n: 0 }),
        AggFunc::Min => Box::new(ExtState { vals: BTreeMap::new(), min: true }),
        AggFunc::Max => Box::new(ExtState { vals: BTreeMap::new(), min: false }),
    }
}

struct CountState {
    n: i64,
}

impl AggState for CountState {
    fn add(&mut self, v: Option<&Value>) {
        // COUNT(*) counts rows; COUNT(col) counts non-null values.
        if v.is_none_or(|v| !v.is_null()) {
            self.n += 1;
        }
    }
    fn remove(&mut self, v: Option<&Value>) {
        if v.is_none_or(|v| !v.is_null()) {
            self.n -= 1;
        }
    }
    fn current(&self) -> Value {
        Value::Int(self.n)
    }
    fn reset(&mut self) {
        self.n = 0;
    }
}

struct SumState {
    int: i64,
    float: f64,
    n: i64,
    saw_float: bool,
}

impl SumState {
    fn apply(&mut self, v: Option<&Value>, sign: i64) {
        match v {
            Some(Value::Int(i)) => {
                self.int += sign * i;
                self.n += sign;
            }
            Some(Value::Double(d)) => {
                self.float += sign as f64 * d;
                self.n += sign;
                self.saw_float = true;
            }
            Some(Value::Date(d)) => {
                self.int += sign * *d as i64;
                self.n += sign;
            }
            _ => {}
        }
    }
}

impl AggState for SumState {
    fn add(&mut self, v: Option<&Value>) {
        self.apply(v, 1);
    }
    fn remove(&mut self, v: Option<&Value>) {
        self.apply(v, -1);
    }
    fn current(&self) -> Value {
        if self.n == 0 {
            Value::Null
        } else if self.saw_float {
            Value::Double(self.float + self.int as f64)
        } else {
            Value::Int(self.int)
        }
    }
    fn reset(&mut self) {
        *self = SumState { int: 0, float: 0.0, n: 0, saw_float: false };
    }
}

struct AvgState {
    sum: f64,
    n: i64,
}

impl AggState for AvgState {
    fn add(&mut self, v: Option<&Value>) {
        if let Some(x) = v.and_then(Value::as_f64) {
            self.sum += x;
            self.n += 1;
        }
    }
    fn remove(&mut self, v: Option<&Value>) {
        if let Some(x) = v.and_then(Value::as_f64) {
            self.sum -= x;
            self.n -= 1;
        }
    }
    fn current(&self) -> Value {
        if self.n == 0 {
            Value::Null
        } else {
            Value::Double(self.sum / self.n as f64)
        }
    }
    fn reset(&mut self) {
        self.sum = 0.0;
        self.n = 0;
    }
}

/// MIN/MAX need a multiset because a value leaving the sweep may not be
/// the extreme one.
struct ExtState {
    vals: BTreeMap<Key, (Value, usize)>,
    min: bool,
}

impl AggState for ExtState {
    fn add(&mut self, v: Option<&Value>) {
        if let Some(v) = v {
            if !v.is_null() {
                self.vals.entry(v.key()).or_insert_with(|| (v.clone(), 0)).1 += 1;
            }
        }
    }
    fn remove(&mut self, v: Option<&Value>) {
        if let Some(v) = v {
            if !v.is_null() {
                if let Some(e) = self.vals.get_mut(&v.key()) {
                    e.1 -= 1;
                    if e.1 == 0 {
                        self.vals.remove(&v.key());
                    }
                }
            }
        }
    }
    fn current(&self) -> Value {
        let entry =
            if self.min { self.vals.values().next() } else { self.vals.values().next_back() };
        entry.map(|(v, _)| v.clone()).unwrap_or(Value::Null)
    }
    fn reset(&mut self) {
        self.vals.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect;
    use crate::scan::VecScan;
    use crate::testutil::figure3_position;
    use proptest::prelude::*;
    use tango_algebra::{tup, Attr, Relation, SortSpec};

    /// Figure 3(c): the aggregation result of the paper's example.
    #[test]
    fn figure3_aggregation_result() {
        let mut pos = figure3_position();
        pos.sort_by(&SortSpec::by(["PosID", "T1"]));
        let agg = TemporalAggregate::new(
            Box::new(VecScan::new(pos)),
            vec!["PosID".into()],
            vec![AggSpec::new(AggFunc::Count, Some("PosID"), "COUNT")],
        )
        .unwrap();
        let got = collect(Box::new(agg)).unwrap();
        let expected =
            vec![tup![1, 2, 5, 1], tup![1, 5, 20, 2], tup![1, 20, 25, 1], tup![2, 5, 10, 1]];
        assert_eq!(got.tuples(), expected.as_slice());
        assert_eq!(got.schema().names().collect::<Vec<_>>(), vec!["PosID", "T1", "T2", "COUNT"]);
    }

    #[test]
    fn no_grouping_attributes() {
        let mut pos = figure3_position();
        pos.sort_by(&SortSpec::by(["T1"]));
        let agg = TemporalAggregate::new(
            Box::new(VecScan::new(pos)),
            vec![],
            vec![AggSpec::count_star("C")],
        )
        .unwrap();
        let got = collect(Box::new(agg)).unwrap();
        // periods: [2,20) [5,25) [5,10); endpoints 2,5,10,20,25
        let expected = vec![tup![2, 5, 1], tup![5, 10, 3], tup![10, 20, 2], tup![20, 25, 1]];
        assert_eq!(got.tuples(), expected.as_slice());
    }

    #[test]
    fn min_max_sum_avg() {
        let s = Arc::new(Schema::with_inferred_period(vec![
            Attr::new("G", Type::Int),
            Attr::new("V", Type::Int),
            Attr::new("T1", Type::Int),
            Attr::new("T2", Type::Int),
        ]));
        let rel = Relation::new(s, vec![tup![1, 10, 0, 10], tup![1, 4, 5, 15], tup![1, 7, 5, 8]]);
        let agg = TemporalAggregate::new(
            Box::new(VecScan::new(rel)),
            vec!["G".into()],
            vec![
                AggSpec::new(AggFunc::Min, Some("V"), "MinV"),
                AggSpec::new(AggFunc::Max, Some("V"), "MaxV"),
                AggSpec::new(AggFunc::Sum, Some("V"), "SumV"),
                AggSpec::new(AggFunc::Avg, Some("V"), "AvgV"),
            ],
        )
        .unwrap();
        let got = collect(Box::new(agg)).unwrap();
        let expected = vec![
            tup![1, 0, 5, 10, 10, 10, Value::Double(10.0)],
            tup![1, 5, 8, 4, 10, 21, Value::Double(7.0)],
            tup![1, 8, 10, 4, 10, 14, Value::Double(7.0)],
            tup![1, 10, 15, 4, 4, 4, Value::Double(4.0)],
        ];
        assert_eq!(got.tuples(), expected.as_slice());
    }

    fn input_rel(vals: &[(i64, i32, i32)]) -> Relation {
        let s = Arc::new(Schema::with_inferred_period(vec![
            Attr::new("G", Type::Int),
            Attr::new("T1", Type::Int),
            Attr::new("T2", Type::Int),
        ]));
        Relation::new(s, vals.iter().map(|&(g, a, b)| tup![g, a, b]).collect())
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut x = 11u64;
        let vals: Vec<(i64, i32, i32)> = (0..4000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let g = ((x >> 33) % 64) as i64;
                let t1 = ((x >> 11) % 50) as i32;
                (g, t1, t1 + 1 + ((x >> 5) % 20) as i32)
            })
            .collect();
        let mut rel = input_rel(&vals);
        rel.sort_by(&SortSpec::by(["G", "T1"]));
        let mk = |workers: usize| {
            let opts = ExecOpts { workers, ..ExecOpts::default() };
            TemporalAggregate::with_opts(
                Box::new(VecScan::new(rel.clone())),
                vec!["G".into()],
                vec![
                    AggSpec::count_star("C"),
                    AggSpec::new(AggFunc::Sum, Some("T2"), "S"),
                    AggSpec::new(AggFunc::Min, Some("T1"), "M"),
                ],
                opts,
            )
            .unwrap()
        };
        let seq = collect(Box::new(mk(1))).unwrap();
        for workers in [2, 8] {
            let par = collect(Box::new(mk(workers))).unwrap();
            assert!(seq.list_eq(&par), "parallel TAGGR diverged at workers={workers}");
        }
    }

    proptest! {
        /// Invariant: at every time point, the COUNT reported by the
        /// constant-period output equals the number of input tuples of
        /// that group whose period contains the point.
        #[test]
        fn count_matches_pointwise(vals in proptest::collection::vec((0i64..4, 0i32..30, 1i32..12), 1..60)) {
            let fixed: Vec<(i64, i32, i32)> = vals.into_iter().map(|(g, t1, d)| (g, t1, t1 + d)).collect();
            let mut rel = input_rel(&fixed);
            rel.sort_by(&SortSpec::by(["G", "T1"]));
            let agg = TemporalAggregate::new(
                Box::new(VecScan::new(rel)),
                vec!["G".into()],
                vec![AggSpec::count_star("C")],
            ).unwrap();
            let got = collect(Box::new(agg)).unwrap();
            // constant periods per group must not overlap and be maximal
            for t in 0..45i32 {
                for g in 0..4i64 {
                    let truth = fixed.iter().filter(|&&(gg, a, b)| gg == g && a <= t && t < b).count() as i64;
                    let reported: Vec<i64> = got.tuples().iter()
                        .filter(|r| r[0].as_int() == Some(g)
                            && r[1].as_int().unwrap() <= t as i64
                            && (t as i64) < r[2].as_int().unwrap())
                        .map(|r| r[3].as_int().unwrap())
                        .collect();
                    if truth == 0 {
                        prop_assert!(reported.is_empty(), "g={g} t={t}: expected gap, got {reported:?}");
                    } else {
                        prop_assert_eq!(&reported, &vec![truth], "g={} t={}", g, t);
                    }
                }
            }
        }

        /// The output is ordered by (G, T1): the order-preservation claim
        /// the optimizer exploits.
        #[test]
        fn output_order(vals in proptest::collection::vec((0i64..4, 0i32..30, 1i32..12), 1..60)) {
            let fixed: Vec<(i64, i32, i32)> = vals.into_iter().map(|(g, t1, d)| (g, t1, t1 + d)).collect();
            let mut rel = input_rel(&fixed);
            rel.sort_by(&SortSpec::by(["G", "T1"]));
            let agg = TemporalAggregate::new(
                Box::new(VecScan::new(rel)),
                vec!["G".into()],
                vec![AggSpec::count_star("C")],
            ).unwrap();
            let got = collect(Box::new(agg)).unwrap();
            prop_assert!(got.is_sorted_by(&SortSpec::by(["G", "T1"])));
            // cardinality bounds from Section 3.4
            let n = fixed.len();
            prop_assert!(got.len() < 2 * n);
        }

        /// Parallel sweep equals sequential on arbitrary inputs (including
        /// empty periods and many tiny groups).
        #[test]
        fn parallel_matches_sequential_prop(vals in proptest::collection::vec((0i64..6, 0i32..30, 0i32..12), 0..80)) {
            let fixed: Vec<(i64, i32, i32)> = vals.into_iter().map(|(g, t1, d)| (g, t1, t1 + d)).collect();
            let mut rel = input_rel(&fixed);
            rel.sort_by(&SortSpec::by(["G", "T1"]));
            let mk = |workers: usize| TemporalAggregate::with_opts(
                Box::new(VecScan::new(rel.clone())),
                vec!["G".into()],
                vec![AggSpec::count_star("C")],
                ExecOpts { workers, ..ExecOpts::default() },
            ).unwrap();
            let seq = collect(Box::new(mk(1))).unwrap();
            let par = collect(Box::new(mk(8))).unwrap();
            prop_assert!(seq.list_eq(&par));
        }
    }
}
