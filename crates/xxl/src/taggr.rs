//! `TAGGR^M` — middleware temporal aggregation (ξᵀ), Section 3.4.
//!
//! The argument must be sorted on the grouping attributes and `T1`; the
//! algorithm internally sorts a second copy of each group on `T2` and
//! traverses both "similarly to sort-merge join", computing aggregate
//! values group by group over the *constant periods* induced by the
//! period endpoints. Each input tuple is read once and only one group is
//! resident at a time.
//!
//! The output is ordered on (grouping attributes, `T1`), which is why
//! Query 1's best plan needs no final sort (Figure 7, Plan 1).

use crate::cursor::{BatchBuffered, BoxCursor, Cursor, ExecError, Result};
use std::collections::BTreeMap;
use std::sync::Arc;
use tango_algebra::logical::taggr_schema;
use tango_algebra::value::Key;
use tango_algebra::{AggFunc, AggSpec, Batch, Day, Schema, Tuple, Type, Value};

/// The `TAGGR^M` cursor: temporal aggregation by a sweep over each
/// group's constant periods (Section 3.4 of the paper). Input must be
/// sorted on (group attributes, `T1`).
pub struct TemporalAggregate {
    input: BatchBuffered,
    group_idx: Vec<usize>,
    agg_arg_idx: Vec<Option<usize>>,
    period: (usize, usize),
    date_typed: bool,
    schema: Arc<Schema>,
    /// Lookahead tuple belonging to the *next* group.
    pending: Option<Tuple>,
    /// Constant-period rows not yet handed out; `out_pos` marks the next
    /// one (already-emitted slots hold empty husk tuples).
    out: Vec<Tuple>,
    out_pos: usize,
    opened: bool,
    done: bool,
    groups: u64,
    constant_periods: u64,
    // Per-group scratch, reused across groups so a run with many small
    // groups doesn't reallocate per group.
    group: Vec<Tuple>,
    starts: Vec<Day>,
    ends: Vec<Day>,
    by_end: Vec<usize>,
    states: Vec<Box<dyn AggState>>,
}

impl TemporalAggregate {
    /// Aggregate `input` per `group_by` combination over every constant
    /// period; `aggs` define the computed columns.
    pub fn new(input: BoxCursor, group_by: Vec<String>, aggs: Vec<AggSpec>) -> Result<Self> {
        let in_schema = input.schema();
        let period = in_schema
            .period()
            .ok_or_else(|| ExecError::State("temporal aggregation: input not temporal".into()))?;
        let mut group_idx = Vec::with_capacity(group_by.len());
        for g in &group_by {
            group_idx.push(in_schema.index_of(g)?);
        }
        let mut agg_arg_idx = Vec::with_capacity(aggs.len());
        for a in &aggs {
            agg_arg_idx.push(match &a.arg {
                Some(c) => Some(in_schema.index_of(c)?),
                None => None,
            });
        }
        let date_typed = matches!(in_schema.attr(period.0).ty, Type::Date);
        let schema = Arc::new(taggr_schema(&group_by, &aggs, in_schema)?);
        let input = BatchBuffered::new(input);
        let states = aggs.iter().map(|a| new_state(a.func)).collect();
        Ok(TemporalAggregate {
            input,
            group_idx,
            agg_arg_idx,
            period,
            date_typed,
            schema,
            pending: None,
            out: Vec::new(),
            out_pos: 0,
            opened: false,
            done: false,
            groups: 0,
            constant_periods: 0,
            group: Vec::new(),
            starts: Vec::new(),
            ends: Vec::new(),
            by_end: Vec::new(),
            states,
        })
    }

    fn same_group(&self, a: &Tuple, b: &Tuple) -> bool {
        self.group_idx.iter().all(|&i| a[i].total_cmp(&b[i]) == std::cmp::Ordering::Equal)
    }

    /// Read the next group from the input and compute its constant-period
    /// rows into `sink`. Returns `false` at end of input.
    fn process_next_group(&mut self, sink: &mut Vec<Tuple>) -> Result<bool> {
        let first = match self.pending.take() {
            Some(t) => t,
            None => match self.input.next()? {
                Some(t) => t,
                None => return Ok(false),
            },
        };
        // First copy: the group's tuples ordered by T1 (input order).
        self.group.clear();
        self.group.push(first);
        loop {
            match self.input.next()? {
                Some(t) if self.same_group(&self.group[0], &t) => self.group.push(t),
                other => {
                    self.pending = other;
                    break;
                }
            }
        }
        let (it1, it2) = self.period;
        // Drop tuples with empty or null periods: they hold at no time
        // point and contribute nothing.
        self.group.retain(|t| match (t[it1].as_day(), t[it2].as_day()) {
            (Some(a), Some(b)) => a < b,
            _ => false,
        });
        if self.group.is_empty() {
            return Ok(true); // an empty group produces no constant periods
        }
        self.groups += 1;
        let group = &self.group[..];
        // Parse the period endpoints once per group; the sweep below
        // consults them repeatedly in its loop conditions.
        self.starts.clear();
        self.starts.extend(group.iter().map(|t| t[it1].as_day().unwrap()));
        self.ends.clear();
        self.ends.extend(group.iter().map(|t| t[it2].as_day().unwrap()));
        let (starts, ends) = (&self.starts[..], &self.ends[..]);
        // Second copy, sorted on T2 (the algorithm's internal sort).
        self.by_end.clear();
        self.by_end.extend(0..group.len());
        self.by_end.sort_unstable_by_key(|&i| ends[i]);
        let by_end = &self.by_end[..];

        let states = &mut self.states;
        for s in states.iter_mut() {
            s.reset();
        }
        let group_vals: Vec<Value> = self.group_idx.iter().map(|&i| group[0][i].clone()).collect();

        let mut i = 0usize; // next start event (group is sorted by T1)
        let mut j = 0usize; // next end event (via by_end)
        let mut active = 0usize;
        let mut prev: Option<Day> = None;
        while j < group.len() {
            let end_t = ends[by_end[j]];
            let t = if i < group.len() { end_t.min(starts[i]) } else { end_t };
            if let Some(p) = prev {
                if p < t && active > 0 {
                    let mut row = Vec::with_capacity(group_vals.len() + 2 + states.len());
                    row.extend(group_vals.iter().cloned());
                    row.push(if self.date_typed { Value::Date(p) } else { Value::Int(p as i64) });
                    row.push(if self.date_typed { Value::Date(t) } else { Value::Int(t as i64) });
                    for s in states.iter() {
                        row.push(s.current());
                    }
                    sink.push(Tuple::new(row));
                    self.constant_periods += 1;
                }
            }
            while i < group.len() && starts[i] == t {
                let tup = &group[i];
                for (s, arg) in states.iter_mut().zip(&self.agg_arg_idx) {
                    s.add(arg.map(|a| &tup[a]));
                }
                active += 1;
                i += 1;
            }
            while j < group.len() && ends[by_end[j]] == t {
                let tup = &group[by_end[j]];
                for (s, arg) in states.iter_mut().zip(&self.agg_arg_idx) {
                    s.remove(arg.map(|a| &tup[a]));
                }
                active -= 1;
                j += 1;
            }
            prev = Some(t);
        }
        Ok(true)
    }
}

impl Cursor for TemporalAggregate {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.input.open()?;
        self.opened = true;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if !self.opened {
            return Err(ExecError::State("temporal aggregation not opened".into()));
        }
        loop {
            if self.out_pos < self.out.len() {
                let t = std::mem::replace(&mut self.out[self.out_pos], Tuple::new(Vec::new()));
                self.out_pos += 1;
                return Ok(Some(t));
            }
            if self.done {
                return Ok(None);
            }
            self.out.clear();
            self.out_pos = 0;
            let mut out = std::mem::take(&mut self.out);
            let more = self.process_next_group(&mut out);
            self.out = out;
            if !more? {
                self.done = true;
            }
        }
    }

    fn next_batch_of(&mut self, max_rows: usize) -> Result<Option<Batch>> {
        if !self.opened {
            return Err(ExecError::State("temporal aggregation not opened".into()));
        }
        let max = max_rows.max(1);
        let mut rows: Vec<Tuple> = Vec::new();
        // leftovers stashed by a previous call (or row-path use) first
        while self.out_pos < self.out.len() && rows.len() < max {
            rows.push(std::mem::replace(&mut self.out[self.out_pos], Tuple::new(Vec::new())));
            self.out_pos += 1;
        }
        // then aggregate whole groups straight into the outgoing batch
        while rows.len() < max && !self.done {
            if !self.process_next_group(&mut rows)? {
                self.done = true;
            }
        }
        if rows.len() > max {
            // a group straddled the batch boundary: stash the overflow
            self.out.clear();
            self.out_pos = 0;
            self.out.extend(rows.drain(max..));
        }
        if rows.is_empty() {
            Ok(None)
        } else {
            Ok(Some(Batch::new(self.schema.clone(), rows)))
        }
    }

    fn close(&mut self) -> Result<()> {
        self.out.clear();
        self.out_pos = 0;
        self.input.close()
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![("groups", self.groups), ("constant_periods", self.constant_periods)]
    }
}

/// Incremental aggregate state with add/remove (the sweep enters and
/// leaves tuples as their periods start and end).
trait AggState: Send {
    fn add(&mut self, v: Option<&Value>);
    fn remove(&mut self, v: Option<&Value>);
    fn current(&self) -> Value;
    /// Return to the empty state (the cursor reuses one state box across
    /// all groups).
    fn reset(&mut self);
}

fn new_state(f: AggFunc) -> Box<dyn AggState> {
    match f {
        AggFunc::Count => Box::new(CountState { n: 0 }),
        AggFunc::Sum => Box::new(SumState { int: 0, float: 0.0, n: 0, saw_float: false }),
        AggFunc::Avg => Box::new(AvgState { sum: 0.0, n: 0 }),
        AggFunc::Min => Box::new(ExtState { vals: BTreeMap::new(), min: true }),
        AggFunc::Max => Box::new(ExtState { vals: BTreeMap::new(), min: false }),
    }
}

struct CountState {
    n: i64,
}

impl AggState for CountState {
    fn add(&mut self, v: Option<&Value>) {
        // COUNT(*) counts rows; COUNT(col) counts non-null values.
        if v.is_none_or(|v| !v.is_null()) {
            self.n += 1;
        }
    }
    fn remove(&mut self, v: Option<&Value>) {
        if v.is_none_or(|v| !v.is_null()) {
            self.n -= 1;
        }
    }
    fn current(&self) -> Value {
        Value::Int(self.n)
    }
    fn reset(&mut self) {
        self.n = 0;
    }
}

struct SumState {
    int: i64,
    float: f64,
    n: i64,
    saw_float: bool,
}

impl SumState {
    fn apply(&mut self, v: Option<&Value>, sign: i64) {
        match v {
            Some(Value::Int(i)) => {
                self.int += sign * i;
                self.n += sign;
            }
            Some(Value::Double(d)) => {
                self.float += sign as f64 * d;
                self.n += sign;
                self.saw_float = true;
            }
            Some(Value::Date(d)) => {
                self.int += sign * *d as i64;
                self.n += sign;
            }
            _ => {}
        }
    }
}

impl AggState for SumState {
    fn add(&mut self, v: Option<&Value>) {
        self.apply(v, 1);
    }
    fn remove(&mut self, v: Option<&Value>) {
        self.apply(v, -1);
    }
    fn current(&self) -> Value {
        if self.n == 0 {
            Value::Null
        } else if self.saw_float {
            Value::Double(self.float + self.int as f64)
        } else {
            Value::Int(self.int)
        }
    }
    fn reset(&mut self) {
        *self = SumState { int: 0, float: 0.0, n: 0, saw_float: false };
    }
}

struct AvgState {
    sum: f64,
    n: i64,
}

impl AggState for AvgState {
    fn add(&mut self, v: Option<&Value>) {
        if let Some(x) = v.and_then(Value::as_f64) {
            self.sum += x;
            self.n += 1;
        }
    }
    fn remove(&mut self, v: Option<&Value>) {
        if let Some(x) = v.and_then(Value::as_f64) {
            self.sum -= x;
            self.n -= 1;
        }
    }
    fn current(&self) -> Value {
        if self.n == 0 {
            Value::Null
        } else {
            Value::Double(self.sum / self.n as f64)
        }
    }
    fn reset(&mut self) {
        self.sum = 0.0;
        self.n = 0;
    }
}

/// MIN/MAX need a multiset because a value leaving the sweep may not be
/// the extreme one.
struct ExtState {
    vals: BTreeMap<Key, (Value, usize)>,
    min: bool,
}

impl AggState for ExtState {
    fn add(&mut self, v: Option<&Value>) {
        if let Some(v) = v {
            if !v.is_null() {
                self.vals.entry(v.key()).or_insert_with(|| (v.clone(), 0)).1 += 1;
            }
        }
    }
    fn remove(&mut self, v: Option<&Value>) {
        if let Some(v) = v {
            if !v.is_null() {
                if let Some(e) = self.vals.get_mut(&v.key()) {
                    e.1 -= 1;
                    if e.1 == 0 {
                        self.vals.remove(&v.key());
                    }
                }
            }
        }
    }
    fn current(&self) -> Value {
        let entry =
            if self.min { self.vals.values().next() } else { self.vals.values().next_back() };
        entry.map(|(v, _)| v.clone()).unwrap_or(Value::Null)
    }
    fn reset(&mut self) {
        self.vals.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect;
    use crate::scan::VecScan;
    use crate::testutil::figure3_position;
    use proptest::prelude::*;
    use tango_algebra::{tup, Attr, Relation, SortSpec};

    /// Figure 3(c): the aggregation result of the paper's example.
    #[test]
    fn figure3_aggregation_result() {
        let mut pos = figure3_position();
        pos.sort_by(&SortSpec::by(["PosID", "T1"]));
        let agg = TemporalAggregate::new(
            Box::new(VecScan::new(pos)),
            vec!["PosID".into()],
            vec![AggSpec::new(AggFunc::Count, Some("PosID"), "COUNT")],
        )
        .unwrap();
        let got = collect(Box::new(agg)).unwrap();
        let expected =
            vec![tup![1, 2, 5, 1], tup![1, 5, 20, 2], tup![1, 20, 25, 1], tup![2, 5, 10, 1]];
        assert_eq!(got.tuples(), expected.as_slice());
        assert_eq!(got.schema().names().collect::<Vec<_>>(), vec!["PosID", "T1", "T2", "COUNT"]);
    }

    #[test]
    fn no_grouping_attributes() {
        let mut pos = figure3_position();
        pos.sort_by(&SortSpec::by(["T1"]));
        let agg = TemporalAggregate::new(
            Box::new(VecScan::new(pos)),
            vec![],
            vec![AggSpec::count_star("C")],
        )
        .unwrap();
        let got = collect(Box::new(agg)).unwrap();
        // periods: [2,20) [5,25) [5,10); endpoints 2,5,10,20,25
        let expected = vec![tup![2, 5, 1], tup![5, 10, 3], tup![10, 20, 2], tup![20, 25, 1]];
        assert_eq!(got.tuples(), expected.as_slice());
    }

    #[test]
    fn min_max_sum_avg() {
        let s = Arc::new(Schema::with_inferred_period(vec![
            Attr::new("G", Type::Int),
            Attr::new("V", Type::Int),
            Attr::new("T1", Type::Int),
            Attr::new("T2", Type::Int),
        ]));
        let rel = Relation::new(s, vec![tup![1, 10, 0, 10], tup![1, 4, 5, 15], tup![1, 7, 5, 8]]);
        let agg = TemporalAggregate::new(
            Box::new(VecScan::new(rel)),
            vec!["G".into()],
            vec![
                AggSpec::new(AggFunc::Min, Some("V"), "MinV"),
                AggSpec::new(AggFunc::Max, Some("V"), "MaxV"),
                AggSpec::new(AggFunc::Sum, Some("V"), "SumV"),
                AggSpec::new(AggFunc::Avg, Some("V"), "AvgV"),
            ],
        )
        .unwrap();
        let got = collect(Box::new(agg)).unwrap();
        let expected = vec![
            tup![1, 0, 5, 10, 10, 10, Value::Double(10.0)],
            tup![1, 5, 8, 4, 10, 21, Value::Double(7.0)],
            tup![1, 8, 10, 4, 10, 14, Value::Double(7.0)],
            tup![1, 10, 15, 4, 4, 4, Value::Double(4.0)],
        ];
        assert_eq!(got.tuples(), expected.as_slice());
    }

    fn input_rel(vals: &[(i64, i32, i32)]) -> Relation {
        let s = Arc::new(Schema::with_inferred_period(vec![
            Attr::new("G", Type::Int),
            Attr::new("T1", Type::Int),
            Attr::new("T2", Type::Int),
        ]));
        Relation::new(s, vals.iter().map(|&(g, a, b)| tup![g, a, b]).collect())
    }

    proptest! {
        /// Invariant: at every time point, the COUNT reported by the
        /// constant-period output equals the number of input tuples of
        /// that group whose period contains the point.
        #[test]
        fn count_matches_pointwise(vals in proptest::collection::vec((0i64..4, 0i32..30, 1i32..12), 1..60)) {
            let fixed: Vec<(i64, i32, i32)> = vals.into_iter().map(|(g, t1, d)| (g, t1, t1 + d)).collect();
            let mut rel = input_rel(&fixed);
            rel.sort_by(&SortSpec::by(["G", "T1"]));
            let agg = TemporalAggregate::new(
                Box::new(VecScan::new(rel)),
                vec!["G".into()],
                vec![AggSpec::count_star("C")],
            ).unwrap();
            let got = collect(Box::new(agg)).unwrap();
            // constant periods per group must not overlap and be maximal
            for t in 0..45i32 {
                for g in 0..4i64 {
                    let truth = fixed.iter().filter(|&&(gg, a, b)| gg == g && a <= t && t < b).count() as i64;
                    let reported: Vec<i64> = got.tuples().iter()
                        .filter(|r| r[0].as_int() == Some(g)
                            && r[1].as_int().unwrap() <= t as i64
                            && (t as i64) < r[2].as_int().unwrap())
                        .map(|r| r[3].as_int().unwrap())
                        .collect();
                    if truth == 0 {
                        prop_assert!(reported.is_empty(), "g={g} t={t}: expected gap, got {reported:?}");
                    } else {
                        prop_assert_eq!(&reported, &vec![truth], "g={} t={}", g, t);
                    }
                }
            }
        }

        /// The output is ordered by (G, T1): the order-preservation claim
        /// the optimizer exploits.
        #[test]
        fn output_order(vals in proptest::collection::vec((0i64..4, 0i32..30, 1i32..12), 1..60)) {
            let fixed: Vec<(i64, i32, i32)> = vals.into_iter().map(|(g, t1, d)| (g, t1, t1 + d)).collect();
            let mut rel = input_rel(&fixed);
            rel.sort_by(&SortSpec::by(["G", "T1"]));
            let agg = TemporalAggregate::new(
                Box::new(VecScan::new(rel)),
                vec!["G".into()],
                vec![AggSpec::count_star("C")],
            ).unwrap();
            let got = collect(Box::new(agg)).unwrap();
            prop_assert!(got.is_sorted_by(&SortSpec::by(["G", "T1"])));
            // cardinality bounds from Section 3.4
            let n = fixed.len();
            prop_assert!(got.len() < 2 * n);
        }
    }
}
