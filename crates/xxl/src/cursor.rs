//! The cursor (iterator) abstraction.
//!
//! Mirrors the `ResultSet` interface of the paper's Execution Engine
//! (Figure 2): `init()` / `getNext()` become [`Cursor::open`] /
//! [`Cursor::next`]. Opening may do real work — e.g. a sort materializes
//! its input, and the `TRANSFER^D` algorithm in `tango-core` copies its
//! whole argument into the DBMS during `open`.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tango_algebra::{AlgebraError, Batch, Relation, Schema, Tuple, DEFAULT_BATCH_ROWS};

/// The process-wide batch-size knob, defaulting to
/// [`DEFAULT_BATCH_ROWS`]. A value of 1 degenerates batch-at-a-time
/// execution to the row-at-a-time baseline (used by the batch-size
/// ablation benchmark).
static BATCH_ROWS: AtomicUsize = AtomicUsize::new(DEFAULT_BATCH_ROWS);

/// The number of rows [`Cursor::next_batch`] targets per batch.
pub fn batch_rows() -> usize {
    BATCH_ROWS.load(Ordering::Relaxed)
}

/// Set the process-wide target batch size (clamped to at least 1).
///
/// **Deprecated default**: concurrent sessions in one process share this
/// atomic, so prefer the per-session knob (`TangoOptions::batch_rows` in
/// `tango-core`, threaded to operators as [`ExecOpts::batch_rows`]). The
/// global remains as the default for sessions that don't set their own.
pub fn set_batch_rows(n: usize) {
    BATCH_ROWS.store(n.max(1), Ordering::Relaxed);
}

/// Per-execution knobs threaded from the session options through the
/// engine into every operator constructor (`with_opts`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOpts {
    /// Rows per batch pulled between operators. Captured once per
    /// execution so concurrent sessions cannot race on the process-wide
    /// [`set_batch_rows`] knob.
    pub batch_rows: usize,
    /// Worker threads for morsel-driven parallel pipeline breakers
    /// (sorts, joins, TAGGR). `1` = sequential execution — today's exact
    /// plans, traces and golden EXPLAIN ANALYZE output.
    pub workers: usize,
}

impl Default for ExecOpts {
    fn default() -> Self {
        ExecOpts { batch_rows: batch_rows(), workers: 1 }
    }
}

/// Errors raised during pipelined execution.
#[derive(Debug, Clone)]
pub enum ExecError {
    /// Schema or expression-evaluation failures from `tango-algebra`.
    Algebra(AlgebraError),
    /// Failures from the underlying DBMS (bubbled up by transfer cursors).
    Dbms(String),
    /// A classified wire failure from the DBMS link (bubbled up by
    /// transfer cursors after the connection's retry budget is spent).
    /// `fatal`/`timeout` preserve the `tango-minidb` error taxonomy so
    /// the engine's degradation logic can branch without string
    /// matching.
    Wire {
        /// Retrying or re-planning cannot help.
        fatal: bool,
        /// The statement's time budget was exceeded.
        timeout: bool,
        /// Driver-style error text.
        msg: String,
    },
    /// Protocol violations (e.g. `next` before `open`) or bad input
    /// order/shape detected at runtime.
    State(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Algebra(e) => write!(f, "{e}"),
            ExecError::Dbms(m) => write!(f, "dbms error: {m}"),
            ExecError::Wire { fatal, timeout, msg } => {
                let class = if *fatal {
                    "fatal"
                } else if *timeout {
                    "timeout"
                } else {
                    "transient"
                };
                write!(f, "wire error ({class}): {msg}")
            }
            ExecError::State(m) => write!(f, "cursor state error: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<AlgebraError> for ExecError {
    fn from(e: AlgebraError) -> Self {
        ExecError::Algebra(e)
    }
}

/// Result alias for cursor operations.
pub type Result<T> = std::result::Result<T, ExecError>;

/// A pipelined tuple stream.
pub trait Cursor: Send {
    /// The schema of the tuples this cursor produces. Must be available
    /// before `open`.
    fn schema(&self) -> &Arc<Schema>;

    /// Prepare the cursor (bind expressions, materialize inputs where the
    /// algorithm requires it). Must be called exactly once before `next`.
    fn open(&mut self) -> Result<()>;

    /// Produce the next tuple, or `None` at end of stream.
    fn next(&mut self) -> Result<Option<Tuple>>;

    /// Produce the next batch of up to [`batch_rows`] tuples, or `None`
    /// at end of stream. Equivalent to calling [`Cursor::next`]
    /// repeatedly — the default implementation does exactly that, so
    /// every row-at-a-time cursor keeps working — but native
    /// implementations amortize per-tuple dispatch, trace accounting and
    /// wire bookkeeping over the whole batch.
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        self.next_batch_of(batch_rows())
    }

    /// Like [`Cursor::next_batch`] with an explicit row target. Batches
    /// may come back smaller than `max_rows` (e.g. wire cursors return
    /// prefetch-aligned batches); an empty stream yields `None`, never an
    /// empty batch. Implementations must share state with
    /// [`Cursor::next`] so the two pull styles can be mixed freely.
    fn next_batch_of(&mut self, max_rows: usize) -> Result<Option<Batch>> {
        let max = max_rows.max(1);
        let mut rows = Vec::with_capacity(max.min(DEFAULT_BATCH_ROWS));
        while rows.len() < max {
            match self.next()? {
                Some(t) => rows.push(t),
                None => break,
            }
        }
        if rows.is_empty() {
            Ok(None)
        } else {
            Ok(Some(Batch::new(self.schema().clone(), rows)))
        }
    }

    /// Release resources held by the cursor (spill files, buffered
    /// state) and propagate to the inputs. Called once after the stream
    /// is drained; the default does nothing.
    fn close(&mut self) -> Result<()> {
        Ok(())
    }

    /// Algorithm-specific counters (spilled runs, buffered groups, rows
    /// dropped, …), sampled by the tracing layer just before [`close`]
    /// (`Cursor::close`). The default reports none.
    fn counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

/// An owned, dynamically-typed cursor — how operators hold their inputs.
pub type BoxCursor = Box<dyn Cursor>;

/// Drain a cursor into a materialized [`Relation`] (opens it first).
pub fn collect(mut c: BoxCursor) -> Result<Relation> {
    c.open()?;
    let schema = c.schema().clone();
    let mut tuples = Vec::new();
    while let Some(t) = c.next()? {
        tuples.push(t);
    }
    c.close()?;
    Ok(Relation::new(schema, tuples))
}

/// Like [`collect`], but pulls whole batches via
/// [`Cursor::next_batch`] — the differential tests compare this against
/// [`collect`] to prove the two pull styles agree byte for byte.
pub fn collect_batched(mut c: BoxCursor) -> Result<Relation> {
    c.open()?;
    let schema = c.schema().clone();
    let mut tuples = Vec::new();
    while let Some(b) = c.next_batch()? {
        tuples.extend(b.into_rows());
    }
    c.close()?;
    Ok(Relation::new(schema, tuples))
}

/// Drain an already-open cursor (batch-at-a-time, so inputs with native
/// batch support are consumed at batch cost).
pub fn drain(c: &mut dyn Cursor) -> Result<Vec<Tuple>> {
    let mut tuples = Vec::new();
    while let Some(b) = c.next_batch()? {
        tuples.extend(b.into_rows());
    }
    Ok(tuples)
}

/// Like [`drain`] with an explicit per-pull batch-size target.
pub fn drain_of(c: &mut dyn Cursor, rows: usize) -> Result<Vec<Tuple>> {
    let mut tuples = Vec::new();
    while let Some(b) = c.next_batch_of(rows)? {
        tuples.extend(b.into_rows());
    }
    Ok(tuples)
}

/// Drain an already-open cursor into whole batches (no materialization),
/// for pipeline breakers that columnarize their input.
pub fn drain_batches(c: &mut dyn Cursor, rows: usize) -> Result<Vec<Batch>> {
    let mut out = Vec::new();
    while let Some(b) = c.next_batch_of(rows)? {
        out.push(b);
    }
    Ok(out)
}

/// Buffers an input cursor batch-at-a-time while exposing a cheap
/// per-row [`BatchBuffered::next`]. Stream-merging operators (joins,
/// aggregation, coalescing) hold their inputs in this adapter: their
/// group-reading logic stays row-oriented, but each underlying
/// (possibly traced, possibly remote) cursor is only dispatched once per
/// batch.
pub struct BatchBuffered {
    inner: BoxCursor,
    buf: VecDeque<Tuple>,
    done: bool,
    rows: usize,
}

impl BatchBuffered {
    /// Wrap `inner`; rows are pulled through the wrapper from `open` on.
    /// The per-refill batch size is captured from the process-wide default
    /// at construction; use [`BatchBuffered::with_rows`] for a per-session
    /// size.
    pub fn new(inner: BoxCursor) -> Self {
        Self::with_rows(inner, batch_rows())
    }

    /// Wrap `inner` with an explicit per-refill batch-size target.
    pub fn with_rows(inner: BoxCursor, rows: usize) -> Self {
        BatchBuffered { inner, buf: VecDeque::new(), done: false, rows: rows.max(1) }
    }

    /// The wrapped cursor's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        self.inner.schema()
    }

    /// Open the wrapped cursor.
    pub fn open(&mut self) -> Result<()> {
        self.buf.clear();
        self.done = false;
        self.inner.open()
    }

    /// Next row: pops the buffer, refilling it one batch at a time.
    /// Named after [`Cursor::next`] (fallible, lifecycle-bound), which
    /// `Iterator` cannot express.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> Result<Option<Tuple>> {
        if let Some(t) = self.buf.pop_front() {
            return Ok(Some(t));
        }
        self.refill()
    }

    fn refill(&mut self) -> Result<Option<Tuple>> {
        if self.done {
            return Ok(None);
        }
        match self.inner.next_batch_of(self.rows)? {
            Some(b) => {
                self.buf.extend(b.into_rows());
                Ok(self.buf.pop_front())
            }
            None => {
                self.done = true;
                Ok(None)
            }
        }
    }

    /// Close the wrapped cursor.
    pub fn close(&mut self) -> Result<()> {
        self.buf.clear();
        self.inner.close()
    }
}
