//! The cursor (iterator) abstraction.
//!
//! Mirrors the `ResultSet` interface of the paper's Execution Engine
//! (Figure 2): `init()` / `getNext()` become [`Cursor::open`] /
//! [`Cursor::next`]. Opening may do real work — e.g. a sort materializes
//! its input, and the `TRANSFER^D` algorithm in `tango-core` copies its
//! whole argument into the DBMS during `open`.

use std::fmt;
use std::sync::Arc;
use tango_algebra::{AlgebraError, Relation, Schema, Tuple};

/// Errors raised during pipelined execution.
#[derive(Debug, Clone)]
pub enum ExecError {
    /// Schema or expression-evaluation failures from `tango-algebra`.
    Algebra(AlgebraError),
    /// Failures from the underlying DBMS (bubbled up by transfer cursors).
    Dbms(String),
    /// A classified wire failure from the DBMS link (bubbled up by
    /// transfer cursors after the connection's retry budget is spent).
    /// `fatal`/`timeout` preserve the `tango-minidb` error taxonomy so
    /// the engine's degradation logic can branch without string
    /// matching.
    Wire {
        /// Retrying or re-planning cannot help.
        fatal: bool,
        /// The statement's time budget was exceeded.
        timeout: bool,
        /// Driver-style error text.
        msg: String,
    },
    /// Protocol violations (e.g. `next` before `open`) or bad input
    /// order/shape detected at runtime.
    State(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Algebra(e) => write!(f, "{e}"),
            ExecError::Dbms(m) => write!(f, "dbms error: {m}"),
            ExecError::Wire { fatal, timeout, msg } => {
                let class = if *fatal {
                    "fatal"
                } else if *timeout {
                    "timeout"
                } else {
                    "transient"
                };
                write!(f, "wire error ({class}): {msg}")
            }
            ExecError::State(m) => write!(f, "cursor state error: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<AlgebraError> for ExecError {
    fn from(e: AlgebraError) -> Self {
        ExecError::Algebra(e)
    }
}

/// Result alias for cursor operations.
pub type Result<T> = std::result::Result<T, ExecError>;

/// A pipelined tuple stream.
pub trait Cursor: Send {
    /// The schema of the tuples this cursor produces. Must be available
    /// before `open`.
    fn schema(&self) -> &Arc<Schema>;

    /// Prepare the cursor (bind expressions, materialize inputs where the
    /// algorithm requires it). Must be called exactly once before `next`.
    fn open(&mut self) -> Result<()>;

    /// Produce the next tuple, or `None` at end of stream.
    fn next(&mut self) -> Result<Option<Tuple>>;

    /// Release resources held by the cursor (spill files, buffered
    /// state) and propagate to the inputs. Called once after the stream
    /// is drained; the default does nothing.
    fn close(&mut self) -> Result<()> {
        Ok(())
    }

    /// Algorithm-specific counters (spilled runs, buffered groups, rows
    /// dropped, …), sampled by the tracing layer just before [`close`]
    /// (`Cursor::close`). The default reports none.
    fn counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

/// An owned, dynamically-typed cursor — how operators hold their inputs.
pub type BoxCursor = Box<dyn Cursor>;

/// Drain a cursor into a materialized [`Relation`] (opens it first).
pub fn collect(mut c: BoxCursor) -> Result<Relation> {
    c.open()?;
    let schema = c.schema().clone();
    let mut tuples = Vec::new();
    while let Some(t) = c.next()? {
        tuples.push(t);
    }
    c.close()?;
    Ok(Relation::new(schema, tuples))
}

/// Drain an already-open cursor.
pub fn drain(c: &mut dyn Cursor) -> Result<Vec<Tuple>> {
    let mut tuples = Vec::new();
    while let Some(t) = c.next()? {
        tuples.push(t);
    }
    Ok(tuples)
}
