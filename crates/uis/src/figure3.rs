//! The worked example of Section 2.2 / Figure 3 of the paper.

use std::sync::Arc;
use tango_algebra::{tup, Attr, Relation, Schema, Type};

/// Figure 3(a): the POSITION example relation (time values denote days).
pub fn position() -> Relation {
    let schema = Arc::new(Schema::with_inferred_period(vec![
        Attr::new("PosID", Type::Int),
        Attr::new("EmpName", Type::Str),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
    ]));
    Relation::new(
        schema,
        vec![tup![1, "Tom", 2, 20], tup![1, "Jane", 5, 25], tup![2, "Tom", 5, 10]],
    )
}

/// Figure 3(c): the temporal-aggregation result (count of employees per
/// position over time).
pub fn aggregation_result() -> Relation {
    let schema = Arc::new(Schema::with_inferred_period(vec![
        Attr::new("PosID", Type::Int),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
        Attr::new("COUNT", Type::Int),
    ]));
    Relation::new(
        schema,
        vec![tup![1, 2, 5, 1], tup![1, 5, 20, 2], tup![1, 20, 25, 1], tup![2, 5, 10, 1]],
    )
}

/// Figure 3(b): the final query result, as (PosID, EmpName,
/// COUNTofPosID, T1, T2) — the paper prints the same columns in a
/// different order.
pub fn query_result() -> Relation {
    let schema = Arc::new(Schema::with_inferred_period(vec![
        Attr::new("PosID", Type::Int),
        Attr::new("EmpName", Type::Str),
        Attr::new("COUNTofPosID", Type::Int),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
    ]));
    Relation::new(
        schema,
        vec![
            tup![1, "Tom", 1, 2, 5],
            tup![1, "Tom", 2, 5, 20],
            tup![1, "Jane", 2, 5, 20],
            tup![1, "Jane", 1, 20, 25],
            tup![2, "Tom", 1, 5, 10],
        ],
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn shapes() {
        assert_eq!(super::position().len(), 3);
        assert_eq!(super::aggregation_result().len(), 4);
        assert_eq!(super::query_result().len(), 5);
    }
}
