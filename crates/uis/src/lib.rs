//! # tango-uis
//!
//! Synthetic stand-in for the University Information System (UIS) dataset
//! (Gendrano, Shah, Snodgrass & Yang, TIMECENTER CD-1, 1998) used in the
//! paper's performance study. The original CD is not redistributable, so
//! this generator reproduces the properties the experiments depend on:
//!
//! * **EMPLOYEE**: 49,972 tuples of 31 attributes, ≈13.8 MB (≈276 B/row);
//! * **POSITION**: 83,857 tuples of 8 attributes, ≈6.7 MB (≈80 B/row),
//!   plus the eight smaller variants (8k–74k rows) used in Queries 1 and 4;
//! * most POSITION periods concentrated after 1992, with ~65 % starting
//!   in 1995 or later (this skew produces the knees in Figures 10 and 11a);
//! * skewed PosID frequencies (the non-uniformity blamed for the
//!   optimizer's mid-range errors in Query 3);
//! * `PayRate` spanning $2–$50 so the "> $10" predicate of Query 2 keeps
//!   roughly half the tuples.
//!
//! Generation is deterministic for a given seed.

pub mod figure3;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tango_algebra::date::day;
use tango_algebra::{tup, Attr, Day, Relation, Schema, Tuple, Type, Value};

/// Row counts from the paper.
pub const POSITION_ROWS: usize = 83_857;
pub const EMPLOYEE_ROWS: usize = 49_972;
/// The eight POSITION variants of Section 5.1.
pub const POSITION_VARIANTS: [usize; 8] =
    [8_000, 17_000, 27_000, 36_000, 46_000, 55_000, 64_000, 74_000];

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct UisConfig {
    pub position_rows: usize,
    pub employee_rows: usize,
    pub seed: u64,
}

impl Default for UisConfig {
    fn default() -> Self {
        UisConfig { position_rows: POSITION_ROWS, employee_rows: EMPLOYEE_ROWS, seed: 0xEC1 }
    }
}

impl UisConfig {
    /// A scaled-down configuration for fast tests.
    pub fn small(seed: u64) -> Self {
        UisConfig { position_rows: 2_000, employee_rows: 1_200, seed }
    }
}

/// POSITION(PosID, EmpID, Dept, PosCode, PayRate, Hours, T1, T2) — 8
/// attributes like the paper's relation.
pub fn position_schema() -> Schema {
    Schema::with_inferred_period(vec![
        Attr::new("PosID", Type::Int),
        Attr::new("EmpID", Type::Int),
        Attr::new("Dept", Type::Int),
        Attr::new("PosCode", Type::Str),
        Attr::new("PayRate", Type::Double),
        Attr::new("Hours", Type::Int),
        Attr::new("T1", Type::Date),
        Attr::new("T2", Type::Date),
    ])
}

/// EMPLOYEE: 31 attributes (id, name, address fields, misc numeric HR
/// fields) sized to ≈276 bytes per row like the paper's relation.
pub fn employee_schema() -> Schema {
    let mut attrs = vec![
        Attr::new("EmpID", Type::Int),
        Attr::new("EmpName", Type::Str),
        Attr::new("Address", Type::Str),
        Attr::new("City", Type::Str),
        Attr::new("State", Type::Str),
        Attr::new("Zip", Type::Str),
        Attr::new("Phone", Type::Str),
        Attr::new("Email", Type::Str),
        Attr::new("BirthDate", Type::Date),
        Attr::new("HireDate", Type::Date),
        Attr::new("Dept", Type::Int),
        Attr::new("Title", Type::Str),
        Attr::new("Salary", Type::Double),
    ];
    for i in 1..=16 {
        attrs.push(Attr::new(format!("Misc{i}"), Type::Int));
    }
    attrs.push(Attr::new("Notes", Type::Str));
    assert_eq!(attrs.len(), 30);
    attrs.push(Attr::new("Status", Type::Str));
    Schema::new(attrs)
}

/// The dataset's "current date": open positions end here.
pub fn dataset_now() -> Day {
    day(2000, 6, 1)
}

fn syllable_name(rng: &mut StdRng, syllables: usize) -> String {
    const CONS: &[&str] = &["b", "d", "g", "k", "l", "m", "n", "r", "s", "t", "v", "z"];
    const VOW: &[&str] = &["a", "e", "i", "o", "u"];
    let mut s = String::new();
    for _ in 0..syllables {
        s.push_str(CONS[rng.gen_range(0..CONS.len())]);
        s.push_str(VOW[rng.gen_range(0..VOW.len())]);
    }
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => s,
    }
}

/// A period start with the paper's skew: ~10 % before 1992, ~25 % in
/// 1992–1994, ~65 % in 1995 or later.
fn skewed_start(rng: &mut StdRng) -> Day {
    let u: f64 = rng.gen();
    let (lo, hi) = if u < 0.10 {
        (day(1980, 1, 1), day(1992, 1, 1))
    } else if u < 0.35 {
        (day(1992, 1, 1), day(1995, 1, 1))
    } else {
        (day(1995, 1, 1), day(2000, 1, 1))
    };
    rng.gen_range(lo..hi)
}

/// Generate the POSITION relation.
pub fn generate_position(cfg: &UisConfig) -> Relation {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x705);
    let schema = Arc::new(position_schema());
    // Skewed position popularity: a long tail of rarely-held positions and
    // a head of positions held by many employees over time. Average ~5
    // assignments per position.
    let n_pos = (cfg.position_rows / 5).max(1);
    let mut rows = Vec::with_capacity(cfg.position_rows);
    for _ in 0..cfg.position_rows {
        // skew towards low PosIDs (max group ≈ 25× the average): enough
        // to break the optimizer's uniformity assumption (Query 3's
        // mid-range plan-choice errors) while keeping the DBMS-side
        // constant-period self-joins tractable
        let u: f64 = rng.gen();
        let pos_id = ((u.powf(1.5) * n_pos as f64) as i64).min(n_pos as i64 - 1) + 1;
        let emp_id = rng.gen_range(1..=cfg.employee_rows as i64);
        let dept = 1 + pos_id % 40;
        let pos_code = format!("P{:05}", pos_id);
        let pay_rate = 2.0 + rng.gen::<f64>() * 48.0;
        let hours = *[10i64, 20, 30, 40].get(rng.gen_range(0..4usize)).unwrap();
        let t1 = skewed_start(&mut rng);
        // durations: weeks to a few years, clipped at the dataset's "now"
        let dur = rng.gen_range(14i32..1460);
        let t2 = (t1 + dur).min(dataset_now());
        rows.push(tup![
            pos_id,
            emp_id,
            dept,
            pos_code,
            pay_rate,
            hours,
            Value::Date(t1),
            Value::Date(t2.max(t1 + 1))
        ]);
    }
    Relation::new(schema, rows)
}

/// Generate the EMPLOYEE relation (unique `EmpID` 1..=n).
pub fn generate_employee(cfg: &UisConfig) -> Relation {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE3B);
    let schema = Arc::new(employee_schema());
    let mut rows = Vec::with_capacity(cfg.employee_rows);
    for emp_id in 1..=cfg.employee_rows as i64 {
        let name = format!("{} {}", syllable_name(&mut rng, 2), syllable_name(&mut rng, 3));
        let mut vals = vec![
            Value::Int(emp_id),
            Value::Str(name),
            Value::Str(format!("{} {} St.", rng.gen_range(1..9999), syllable_name(&mut rng, 3))),
            Value::Str(syllable_name(&mut rng, 3)),
            Value::Str(["AZ", "CA", "NY", "TX", "WA"][rng.gen_range(0..5usize)].to_string()),
            Value::Str(format!("{:05}", rng.gen_range(10000..99999))),
            Value::Str(format!(
                "({:03}) 555-{:04}",
                rng.gen_range(200..999),
                rng.gen_range(0..9999)
            )),
            Value::Str(format!("u{emp_id}@example.edu")),
            Value::Date(rng.gen_range(day(1940, 1, 1)..day(1980, 1, 1))),
            Value::Date(rng.gen_range(day(1980, 1, 1)..day(2000, 1, 1))),
            Value::Int(rng.gen_range(1..=40)),
            Value::Str(
                ["Clerk", "Professor", "Lecturer", "Technician", "Manager"]
                    [rng.gen_range(0..5usize)]
                .to_string(),
            ),
            Value::Double(18_000.0 + rng.gen::<f64>() * 90_000.0),
        ];
        for _ in 0..16 {
            vals.push(Value::Int(rng.gen_range(0..100_000)));
        }
        vals.push(Value::Str(format!(
            "{} {} {}",
            syllable_name(&mut rng, 4),
            syllable_name(&mut rng, 4),
            syllable_name(&mut rng, 4)
        )));
        vals.push(Value::Str(["active", "inactive"][rng.gen_range(0..2usize)].to_string()));
        rows.push(Tuple::new(vals));
    }
    Relation::new(schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = UisConfig::small(42);
        let a = generate_position(&cfg);
        let b = generate_position(&cfg);
        assert!(a.list_eq(&b));
        let c = generate_position(&UisConfig { seed: 43, ..cfg });
        assert!(!a.list_eq(&c));
    }

    #[test]
    fn position_properties() {
        let cfg = UisConfig::small(7);
        let r = generate_position(&cfg);
        assert_eq!(r.len(), cfg.position_rows);
        assert_eq!(r.schema().len(), 8);
        assert!(r.schema().is_temporal());
        // ~65% start 1995 or later
        let after95 =
            r.tuples().iter().filter(|t| t[6].as_day().unwrap() >= day(1995, 1, 1)).count() as f64
                / r.len() as f64;
        assert!((0.55..0.75).contains(&after95), "got {after95}");
        // all periods valid and within bounds
        for t in r.tuples() {
            let (t1, t2) = (t[6].as_day().unwrap(), t[7].as_day().unwrap());
            assert!(t1 < t2);
            assert!(t2 <= dataset_now());
        }
        // PayRate > 10 keeps well under all rows (Query 2's filter bites)
        let above10 = r.tuples().iter().filter(|t| t[4].as_f64().unwrap() > 10.0).count() as f64
            / r.len() as f64;
        assert!((0.6..0.95).contains(&above10), "got {above10}");
    }

    #[test]
    fn posid_skewed() {
        let cfg = UisConfig::small(7);
        let r = generate_position(&cfg);
        let mut counts = std::collections::HashMap::new();
        for t in r.tuples() {
            *counts.entry(t[0].as_int().unwrap()).or_insert(0usize) += 1;
        }
        let max = *counts.values().max().unwrap() as f64;
        let avg = r.len() as f64 / counts.len() as f64;
        assert!(max > 3.0 * avg, "PosID distribution should be skewed: max={max} avg={avg}");
    }

    #[test]
    fn employee_properties() {
        let cfg = UisConfig::small(7);
        let r = generate_employee(&cfg);
        assert_eq!(r.len(), cfg.employee_rows);
        assert_eq!(r.schema().len(), 31);
        // unique EmpIDs
        let mut ids: Vec<i64> = r.tuples().iter().map(|t| t[0].as_int().unwrap()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), r.len());
        // row width in the right ballpark (paper: ~276 bytes)
        let w = r.avg_tuple_bytes();
        assert!((180.0..380.0).contains(&w), "avg width {w}");
    }
}
