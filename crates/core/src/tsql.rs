//! The middleware Parser (Figure 1): temporal SQL → initial algebraic
//! query plan.
//!
//! The dialect is the mini-DBMS SQL grammar extended with a `VALIDTIME`
//! prefix (the paper leaves the concrete temporal-SQL syntax to [6, 12];
//! we follow the ATSQL/SQL/TP convention of a statement modifier):
//!
//! * `VALIDTIME SELECT g, COUNT(x) AS c FROM r GROUP BY g` — *temporal
//!   aggregation* (ξᵀ): aggregates per group over every constant period.
//! * `VALIDTIME SELECT ... FROM r1, r2 WHERE r1.k = r2.k` — *temporal
//!   join* (⋈ᵀ): equi-join plus period overlap, output period intersected.
//! * Subqueries in `FROM` may themselves be `VALIDTIME` blocks (used by
//!   Query 2 of the paper).
//! * Without `VALIDTIME`, plain selections/projections/joins are built.
//!
//! The initial plan assigns all processing to the DBMS and places a
//! single `T^M` on top (Figure 4a); the optimizer then repartitions it.

use crate::error::{Result, TangoError};
use std::collections::HashMap;
use tango_algebra::{AggSpec, Expr, Logical, ProjItem, Schema, SortKey, SortSpec};
use tango_minidb::ast::{FromItem, SelectItem, SelectStmt, Stmt};

/// Parse a temporal-SQL statement into the initial logical plan
/// (`T^M` on top). `table_schema` resolves base relations.
pub fn parse_tsql(sql: &str, table_schema: &dyn Fn(&str) -> Option<Schema>) -> Result<Logical> {
    let stmt = tango_minidb::parser::parse(sql).map_err(|e| TangoError::Parse(e.to_string()))?;
    let Stmt::Select(sel) = stmt else {
        return Err(TangoError::Parse(
            "only SELECT statements can be optimized by the middleware".into(),
        ));
    };
    let plan = block_to_logical(&sel, table_schema)?;
    Ok(plan.transfer_m())
}

/// What an `EXPLAIN` prefix asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Explain {
    /// `EXPLAIN <query>`: show the optimized plan, don't run it.
    Plan,
    /// `EXPLAIN ANALYZE <query>`: run it and show estimated vs. actuals.
    Analyze,
}

/// Strip a leading `EXPLAIN [ANALYZE]` from a statement. Returns the
/// request (if any) and the remaining statement text; the keywords are
/// case-insensitive, matching the rest of the dialect.
pub fn strip_explain(sql: &str) -> (Option<Explain>, &str) {
    fn eat_kw<'a>(s: &'a str, kw: &str) -> Option<&'a str> {
        let t = s.trim_start();
        let head = t.get(..kw.len())?;
        if head.eq_ignore_ascii_case(kw) && t[kw.len()..].starts_with(|c: char| c.is_whitespace()) {
            Some(&t[kw.len()..])
        } else {
            None
        }
    }
    let Some(rest) = eat_kw(sql, "EXPLAIN") else {
        return (None, sql);
    };
    match eat_kw(rest, "ANALYZE") {
        Some(rest) => (Some(Explain::Analyze), rest.trim_start()),
        None => (Some(Explain::Plan), rest.trim_start()),
    }
}

/// One planned FROM item with its binding name and current schema.
struct Item {
    binding: String,
    schema: Schema,
    plan: Logical,
}

fn block_to_logical(
    stmt: &SelectStmt,
    table_schema: &dyn Fn(&str) -> Option<Schema>,
) -> Result<Logical> {
    if stmt.set_op.is_some() {
        return Err(TangoError::Parse("UNION is not supported in temporal SQL".into()));
    }
    if stmt.having.is_some() {
        return Err(TangoError::Parse("HAVING is not supported in temporal SQL".into()));
    }
    if stmt.from.is_empty() {
        return Err(TangoError::Parse("FROM clause required".into()));
    }
    if !stmt.validtime && !stmt.group_by.is_empty() {
        return Err(TangoError::Parse(
            "non-temporal GROUP BY belongs in the DBMS, not the middleware; use VALIDTIME for temporal aggregation"
                .into(),
        ));
    }

    // ---- FROM items -------------------------------------------------
    let mut items: Vec<Item> = Vec::with_capacity(stmt.from.len());
    for fi in &stmt.from {
        match fi {
            FromItem::Table { name, alias } => {
                let schema = table_schema(name)
                    .ok_or_else(|| TangoError::Parse(format!("unknown table {name}")))?;
                items.push(Item {
                    binding: alias.clone().unwrap_or_else(|| name.clone()),
                    schema,
                    plan: Logical::get(name.clone()),
                });
            }
            FromItem::Subquery { query, alias } => {
                let plan = block_to_logical(query, table_schema)?;
                let schema = plan.output_schema(&SrcFn(table_schema))?;
                items.push(Item { binding: alias.clone(), schema, plan });
            }
        }
    }

    // ---- resolve a (possibly qualified) column to an item -----------
    let resolve = |col: &str, items: &[Item]| -> Result<(usize, String)> {
        if let Some((q, bare)) = col.split_once('.') {
            for (i, it) in items.iter().enumerate() {
                if it.binding.eq_ignore_ascii_case(q) {
                    let idx = it.schema.index_of(bare).map_err(TangoError::from)?;
                    return Ok((i, it.schema.attr(idx).name.clone()));
                }
            }
            return Err(TangoError::Parse(format!("unknown binding in {col}")));
        }
        let mut hit = None;
        for (i, it) in items.iter().enumerate() {
            if let Ok(idx) = it.schema.index_of(col) {
                if hit.is_some() {
                    return Err(TangoError::Parse(format!("ambiguous column {col}")));
                }
                hit = Some((i, it.schema.attr(idx).name.clone()));
            }
        }
        hit.ok_or_else(|| TangoError::Parse(format!("unknown column {col}")))
    };

    // ---- classify WHERE conjuncts -----------------------------------
    let conjuncts: Vec<Expr> = stmt
        .where_
        .as_ref()
        .map(|w| w.conjuncts().into_iter().cloned().collect())
        .unwrap_or_default();
    let mut single: Vec<Vec<Expr>> = (0..items.len()).map(|_| Vec::new()).collect();
    let mut join_conds: Vec<(usize, String, usize, String)> = Vec::new();
    let mut post: Vec<Expr> = Vec::new();
    'conj: for c in &conjuncts {
        // equi-join between two items?
        if let Expr::Cmp(tango_algebra::CmpOp::Eq, l, r) = c {
            if let (Expr::Col { name: ln, .. }, Expr::Col { name: rn, .. }) =
                (l.as_ref(), r.as_ref())
            {
                if let (Ok((li, la)), Ok((ri, ra))) = (resolve(ln, &items), resolve(rn, &items)) {
                    if li != ri {
                        join_conds.push((li, la, ri, ra));
                        continue 'conj;
                    }
                }
            }
        }
        // single-item conjunct?
        let cols = c.columns();
        let owners: Vec<Option<usize>> =
            cols.iter().map(|cn| resolve(cn, &items).ok().map(|(i, _)| i)).collect();
        if !cols.is_empty() && owners.iter().all(|o| o == &owners[0] && o.is_some()) {
            let i = owners[0].unwrap();
            // rewrite to the item's local attribute names
            let mut local = c.clone();
            rewrite_cols(&mut local, &|n| resolve(n, &items).map(|(_, a)| a))?;
            single[i].push(local);
            continue;
        }
        post.push(c.clone());
    }

    // apply single-item selections
    for (i, preds) in single.into_iter().enumerate() {
        if let Some(p) = Expr::and_all(preds) {
            let item = &mut items[i];
            item.plan = std::mem::replace(&mut item.plan, Logical::get("_")).select(p);
        }
    }

    // ---- fold joins, maintaining the (item, attr) -> output-name map --
    let src = SrcFn(table_schema);
    let mut name_map: HashMap<(usize, String), String> = HashMap::new();
    for a in items[0].schema.attrs() {
        name_map.insert((0, a.name.to_uppercase()), a.name.clone());
    }
    let mut plan = std::mem::replace(&mut items[0].plan, Logical::get("_"));
    let mut cur_schema = items[0].schema.clone();

    #[allow(clippy::needless_range_loop)] // k indexes items *and* tags the name map
    for k in 1..items.len() {
        let mut eq: Vec<(String, String)> = Vec::new();
        for (a, la, b, ra) in &join_conds {
            let (left_item, left_attr, right_attr) = if *b == k && *a < k {
                (*a, la, ra)
            } else if *a == k && *b < k {
                (*b, ra, la)
            } else {
                continue;
            };
            let lname = name_map
                .get(&(left_item, left_attr.to_uppercase()))
                .cloned()
                .ok_or_else(|| TangoError::Parse(format!("join column {left_attr} lost")))?;
            eq.push((lname, right_attr.clone()));
        }
        let right_plan = std::mem::replace(&mut items[k].plan, Logical::get("_"));
        let right_schema = items[k].schema.clone();
        if stmt.validtime {
            if eq.is_empty() {
                return Err(TangoError::Parse(
                    "temporal join requires an equi-join condition".into(),
                ));
            }
            plan = plan.tjoin(right_plan, eq.clone());
        } else if eq.is_empty() {
            plan = Logical::Product { left: Box::new(plan), right: Box::new(right_plan) };
        } else {
            plan = plan.join(right_plan, eq.clone());
        }
        let new_schema = plan.output_schema(&src)?;
        // rebuild the name map against the new schema
        let mut new_map: HashMap<(usize, String), String> = HashMap::new();
        if stmt.validtime {
            // TJoin layout: left non-period, right non-period minus keys, T1, T2
            let (lt1, lt2) = cur_schema
                .period()
                .ok_or_else(|| TangoError::Parse("temporal join over non-temporal input".into()))?;
            let mut pos = 0usize;
            for (i, a) in cur_schema.attrs().iter().enumerate() {
                if i == lt1 || i == lt2 {
                    continue;
                }
                // find which (item, attr) mapped to this left output name
                for (key, v) in &name_map {
                    if v == &a.name {
                        new_map.insert(key.clone(), new_schema.attr(pos).name.clone());
                    }
                }
                pos += 1;
            }
            let (rt1, rt2) = right_schema
                .period()
                .ok_or_else(|| TangoError::Parse("temporal join over non-temporal input".into()))?;
            for (j, a) in right_schema.attrs().iter().enumerate() {
                if j == rt1 || j == rt2 {
                    continue;
                }
                let is_key = eq.iter().any(|(_, rc)| rc.eq_ignore_ascii_case(&a.name));
                if is_key {
                    // right key values equal the left key's: map to it
                    if let Some((lname, _)) =
                        eq.iter().find(|(_, rc)| rc.eq_ignore_ascii_case(&a.name))
                    {
                        for (key, v) in &name_map {
                            if v == lname {
                                let mapped = new_map.get(key).cloned();
                                if let Some(m) = mapped {
                                    new_map.insert((k, a.name.to_uppercase()), m);
                                }
                            }
                        }
                    }
                    continue;
                }
                new_map.insert((k, a.name.to_uppercase()), new_schema.attr(pos).name.clone());
                pos += 1;
            }
        } else {
            // concat layout: left attrs then right attrs (clash-renamed)
            for (key, v) in &name_map {
                // left names unchanged by concat
                new_map.insert(key.clone(), v.clone());
            }
            let n_l = cur_schema.len();
            for (j, a) in right_schema.attrs().iter().enumerate() {
                new_map.insert((k, a.name.to_uppercase()), new_schema.attr(n_l + j).name.clone());
            }
        }
        name_map = new_map;
        cur_schema = new_schema;
    }

    // rewrites a column reference to the current combined output name;
    // bare T1/T2 in a validtime query address the (intersected) period
    let out_name = |col: &str| -> Result<String> {
        if stmt.validtime
            && items.len() > 1
            && (col.eq_ignore_ascii_case("T1") || col.eq_ignore_ascii_case("T2"))
        {
            return Ok(col.to_uppercase());
        }
        let (i, a) = resolve(col, &items)?;
        name_map
            .get(&(i, a.to_uppercase()))
            .cloned()
            .ok_or_else(|| TangoError::Parse(format!("column {col} not available here")))
    };

    // ---- post-join selection -----------------------------------------
    let post_rewritten: Vec<Expr> = post
        .into_iter()
        .map(|mut p| {
            rewrite_cols(&mut p, &out_name)?;
            Ok(p)
        })
        .collect::<Result<_>>()?;
    if let Some(p) = Expr::and_all(post_rewritten) {
        plan = plan.select(p);
    }

    // ---- aggregation ---------------------------------------------------
    let has_agg = stmt.items.iter().any(|i| matches!(i, SelectItem::Agg { .. }));
    let mut agg_aliases: Vec<String> = Vec::new();
    if stmt.validtime && (has_agg || !stmt.group_by.is_empty()) {
        let group_by: Vec<String> =
            stmt.group_by.iter().map(|g| out_name(g)).collect::<Result<_>>()?;
        let mut aggs = Vec::new();
        for (i, it) in stmt.items.iter().enumerate() {
            if let SelectItem::Agg { func, arg, alias } = it {
                let arg_col = match arg {
                    None => None,
                    Some(Expr::Col { name, .. }) => Some(out_name(name)?),
                    Some(_) => {
                        return Err(TangoError::Parse(
                            "temporal aggregates take a plain column argument".into(),
                        ))
                    }
                };
                let alias = alias.clone().unwrap_or_else(|| format!("{}_{}", func.sql(), i + 1));
                agg_aliases.push(alias.clone());
                aggs.push(AggSpec { func: *func, arg: arg_col, alias });
            }
        }
        plan = plan.taggr(group_by, aggs);
        cur_schema = plan.output_schema(&src)?;
    }

    // ---- projection -----------------------------------------------------
    // Output names must be unique: the Translator-To-SQL addresses inline
    // view columns by name, so `SELECT A.EmpID, B.EmpID` becomes
    // (EmpID, EmpID_2) like the join-schema convention.
    let mut used: Vec<String> = Vec::new();
    let mut uniquify = move |alias: String| -> String {
        let mut candidate = alias.clone();
        let mut i = 1;
        while used.iter().any(|u| u.eq_ignore_ascii_case(&candidate)) {
            i += 1;
            candidate = format!("{alias}_{i}");
        }
        used.push(candidate.clone());
        candidate
    };
    let mut proj: Vec<ProjItem> = Vec::new();
    let mut agg_i = 0usize;
    for it in &stmt.items {
        match it {
            SelectItem::Star => {
                for a in cur_schema.attrs() {
                    let alias = uniquify(a.name.clone());
                    proj.push(ProjItem::named(Expr::col(a.name.clone()), alias));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let mut e = expr.clone();
                if stmt.validtime && (has_agg || !stmt.group_by.is_empty()) {
                    // post-aggregation: references address the ξᵀ output
                    rewrite_cols(&mut e, &|n| {
                        cur_schema
                            .index_of(n)
                            .map(|i| cur_schema.attr(i).name.clone())
                            .map_err(TangoError::from)
                    })?;
                } else {
                    rewrite_cols(&mut e, &out_name)?;
                }
                let alias = alias.clone().unwrap_or_else(|| match expr {
                    Expr::Col { name, .. } => name.rsplit('.').next().unwrap_or(name).to_string(),
                    _ => format!("EXPR_{}", proj.len() + 1),
                });
                proj.push(ProjItem::named(e, uniquify(alias)));
            }
            SelectItem::Agg { .. } => {
                let alias = agg_aliases
                    .get(agg_i)
                    .cloned()
                    .ok_or_else(|| TangoError::Parse("aggregate outside VALIDTIME".into()))?;
                agg_i += 1;
                let out_alias = uniquify(alias.clone());
                proj.push(ProjItem::named(Expr::col(alias), out_alias));
            }
        }
    }
    // temporal queries always carry their period
    if stmt.validtime && cur_schema.is_temporal() {
        for t in ["T1", "T2"] {
            if !proj.iter().any(|p| p.alias.eq_ignore_ascii_case(t)) {
                proj.push(ProjItem::named(Expr::col(t), uniquify(t.to_string())));
            }
        }
    }
    // skip identity projections (rule T9 at construction time)
    let identity = proj.len() == cur_schema.len()
        && proj.iter().zip(cur_schema.attrs()).all(|(p, a)| {
            p.alias.eq_ignore_ascii_case(&a.name)
                && matches!(&p.expr, Expr::Col { name, .. } if name.eq_ignore_ascii_case(&a.name))
        });
    if !identity {
        plan = plan.project(proj);
        cur_schema = plan.output_schema(&src)?;
    }

    // ---- DISTINCT / COALESCE ---------------------------------------------
    if stmt.distinct {
        plan = Logical::DupElim { input: Box::new(plan) };
    }
    if stmt.coalesce {
        if !cur_schema.is_temporal() {
            return Err(TangoError::Parse("VALIDTIME COALESCE requires a temporal result".into()));
        }
        plan = Logical::Coalesce { input: Box::new(plan) };
    }

    // ---- ORDER BY --------------------------------------------------------
    if !stmt.order_by.is_empty() {
        let mut keys = Vec::new();
        for (col, desc) in &stmt.order_by {
            // resolve against the projected output first, then inputs
            let name = if cur_schema.has(col) {
                cur_schema
                    .index_of(col)
                    .map(|i| cur_schema.attr(i).name.clone())
                    .map_err(TangoError::from)?
            } else {
                out_name(col)?
            };
            keys.push(SortKey { col: name, desc: *desc });
        }
        plan = plan.sort(SortSpec(keys));
    }
    Ok(plan)
}

/// Rewrite every column reference via `f`.
fn rewrite_cols(e: &mut Expr, f: &dyn Fn(&str) -> Result<String>) -> Result<()> {
    match e {
        Expr::Col { name, index } => {
            *name = f(name)?;
            *index = None;
            Ok(())
        }
        Expr::Lit(_) => Ok(()),
        Expr::Cmp(_, l, r) | Expr::And(l, r) | Expr::Or(l, r) | Expr::Arith(_, l, r) => {
            rewrite_cols(l, f)?;
            rewrite_cols(r, f)
        }
        Expr::Not(x) | Expr::IsNull(x, _) => rewrite_cols(x, f),
        Expr::Greatest(es) | Expr::Least(es) => es.iter_mut().try_for_each(|x| rewrite_cols(x, f)),
    }
}

/// Adapter: `Fn(&str) -> Option<Schema>` as a [`tango_algebra::SchemaSource`].
pub struct SrcFn<'a>(pub &'a dyn Fn(&str) -> Option<Schema>);

impl tango_algebra::SchemaSource for SrcFn<'_> {
    fn table_schema(&self, name: &str) -> tango_algebra::Result<Schema> {
        (self.0)(name)
            .ok_or_else(|| tango_algebra::AlgebraError::Schema(format!("unknown table {name}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_algebra::{Attr, Type};

    fn schemas(name: &str) -> Option<Schema> {
        match name.to_uppercase().as_str() {
            "POSITION" => Some(Schema::with_inferred_period(vec![
                Attr::new("PosID", Type::Int),
                Attr::new("EmpID", Type::Int),
                Attr::new("PayRate", Type::Double),
                Attr::new("T1", Type::Date),
                Attr::new("T2", Type::Date),
            ])),
            "EMPLOYEE" => Some(Schema::new(vec![
                Attr::new("EmpID", Type::Int),
                Attr::new("EmpName", Type::Str),
                Attr::new("Address", Type::Str),
            ])),
            _ => None,
        }
    }

    #[test]
    fn query1_temporal_aggregation() {
        let plan = parse_tsql(
            "VALIDTIME SELECT PosID, COUNT(PosID) AS Cnt FROM POSITION GROUP BY PosID ORDER BY PosID",
            &schemas,
        )
        .unwrap();
        let s = plan.to_string();
        assert!(s.starts_with("T^M"), "{s}");
        assert!(s.contains("TAGGR"), "{s}");
        assert!(s.contains("SORT"), "{s}");
        assert!(s.contains("GET POSITION"), "{s}");
        // initial plan has no transfers besides the top T^M
        assert_eq!(s.matches("T^M").count(), 1);
    }

    #[test]
    fn temporal_join_query() {
        let plan = parse_tsql(
            "VALIDTIME SELECT A.PosID, A.EmpID, B.EmpID FROM POSITION A, POSITION B \
             WHERE A.PosID = B.PosID AND A.T1 < DATE '1990-01-01' ORDER BY A.PosID",
            &schemas,
        )
        .unwrap();
        let s = plan.to_string();
        assert!(s.contains("TJOIN"), "{s}");
        // the single-table temporal restriction was pushed to input A
        assert!(s.contains("SELECT [(T1 < DATE '1990-01-01')]"), "{s}");
        // output carries the intersected period
        let schema = plan.output_schema(&SrcFn(&schemas)).unwrap();
        assert!(schema.is_temporal());
        assert!(schema.has("EmpID") || schema.has("EmpID_2"));
    }

    #[test]
    fn query2_nested_validtime() {
        let plan = parse_tsql(
            "VALIDTIME SELECT P.PosID, Cnt, P.EmpID FROM \
               (VALIDTIME SELECT PosID, COUNT(PosID) AS Cnt FROM POSITION GROUP BY PosID) A, \
               POSITION P \
             WHERE A.PosID = P.PosID AND P.PayRate > 10 \
               AND T1 < DATE '1984-01-01' AND T2 > DATE '1983-01-01' \
             ORDER BY P.PosID",
            &schemas,
        )
        .unwrap();
        let s = plan.to_string();
        assert!(s.contains("TAGGR"), "{s}");
        assert!(s.contains("TJOIN"), "{s}");
        // PayRate pushed to POSITION side; window stays above the join
        assert!(s.contains("PayRate > 10"), "{s}");
        assert!(s.contains("T2 > DATE '1983-01-01'"), "{s}");
    }

    #[test]
    fn regular_join_query4() {
        let plan = parse_tsql(
            "SELECT P.PosID, E.EmpName, E.Address FROM POSITION P, EMPLOYEE E \
             WHERE P.EmpID = E.EmpID ORDER BY P.PosID",
            &schemas,
        )
        .unwrap();
        let s = plan.to_string();
        assert!(s.contains("JOIN"), "{s}");
        assert!(!s.contains("TJOIN"), "{s}");
        let schema = plan.output_schema(&SrcFn(&schemas)).unwrap();
        assert_eq!(schema.names().collect::<Vec<_>>(), vec!["PosID", "EmpName", "Address"]);
    }

    #[test]
    fn distinct_and_coalesce() {
        let plan = parse_tsql("VALIDTIME SELECT DISTINCT PosID FROM POSITION", &schemas).unwrap();
        assert!(plan.to_string().contains("DUPELIM"));
        let plan = parse_tsql("VALIDTIME COALESCE SELECT PosID FROM POSITION", &schemas).unwrap();
        assert!(plan.to_string().contains("COALESCE"), "{plan}");
    }

    #[test]
    fn errors() {
        assert!(parse_tsql("SELECT * FROM NOPE", &schemas).is_err());
        assert!(parse_tsql("SELECT PosID, COUNT(PosID) C FROM POSITION GROUP BY PosID", &schemas)
            .is_err()); // non-temporal aggregation is the DBMS's job
        assert!(parse_tsql(
            "VALIDTIME SELECT PosID FROM POSITION UNION VALIDTIME SELECT PosID FROM POSITION",
            &schemas
        )
        .is_err());
    }
}
