//! The Cost Estimator (Figure 1): determines the cost factors for the
//! optimizer's formulas by *calibration* — running a family of sample
//! queries against both execution sites and fitting each factor by least
//! squares, following Du, Krishnamurthy & Shan (VLDB 1992) as the paper
//! does ("we use a similar approach, but we assume that we do not know
//! the specific algorithms used by the DBMS").

use crate::cost::CostFactors;
use crate::error::{Result, TangoError};
use crate::phys::{Algo, PhysNode};
use crate::to_sql;
use rand_free::SmallRng;
use std::sync::Arc;
use tango_algebra::{tup, AggFunc, AggSpec, Attr, Relation, Schema, SortSpec, Type};
use tango_minidb::Connection;
use tango_trace::Stopwatch;
use tango_xxl::{collect as drain, VecScan};

/// A tiny deterministic PRNG so the calibrator needs no extra crate
/// dependencies in this module (xorshift64*).
mod rand_free {
    pub struct SmallRng(u64);

    impl SmallRng {
        pub fn new(seed: u64) -> Self {
            SmallRng(seed.max(1))
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n.max(1)
        }
    }
}

/// One calibration observation.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Which probe produced it.
    pub probe: &'static str,
    /// The statistic the formula weighs (bytes, bytes·log₂ n, ...).
    pub x: f64,
    /// Observed microseconds.
    pub t_us: f64,
}

/// Calibration outcome: fitted factors plus the raw samples.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// The fitted cost factors.
    pub factors: CostFactors,
    /// The raw observations behind the fit.
    pub samples: Vec<Sample>,
}

/// Least squares through the origin.
fn fit(samples: &[(f64, f64)]) -> Option<f64> {
    let sxx: f64 = samples.iter().map(|(x, _)| x * x).sum();
    if sxx <= 0.0 {
        return None;
    }
    let sxt: f64 = samples.iter().map(|(x, t)| x * t).sum();
    Some((sxt / sxx).max(1e-9))
}

/// Least squares with intercept; returns (intercept, slope).
fn fit_affine(samples: &[(f64, f64)]) -> Option<(f64, f64)> {
    let n = samples.len() as f64;
    if samples.len() < 2 {
        return None;
    }
    let sx: f64 = samples.iter().map(|(x, _)| x).sum();
    let st: f64 = samples.iter().map(|(_, t)| t).sum();
    let sxx: f64 = samples.iter().map(|(x, _)| x * x).sum();
    let sxt: f64 = samples.iter().map(|(x, t)| x * t).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-9 {
        return None;
    }
    let slope = (n * sxt - sx * st) / denom;
    let intercept = (st - slope * sx) / n;
    Some((intercept.max(0.0), slope.max(1e-9)))
}

fn probe_schema() -> Schema {
    Schema::with_inferred_period(vec![
        Attr::new("K", Type::Int),
        Attr::new("V", Type::Int),
        Attr::new("S", Type::Str),
        Attr::new("T1", Type::Int),
        Attr::new("T2", Type::Int),
    ])
}

fn probe_rows(n: usize, rng: &mut SmallRng) -> Vec<tango_algebra::Tuple> {
    (0..n)
        .map(|_| {
            // skewed keys, like real grouping attributes: calibration
            // queries should resemble the workload (Du et al.)
            let u = rng.below(1_000_000) as f64 / 1_000_000.0;
            let k = (u.powf(1.5) * (n as f64 / 8.0)) as i64;
            let t1 = rng.below(10_000) as i64;
            let dur = 1 + rng.below(400) as i64;
            tup![
                k,
                rng.below(1_000_000) as i64,
                format!("pad-{:08}", rng.below(100_000_000)),
                t1,
                t1 + dur
            ]
        })
        .collect()
}

/// Run the calibration experiment and fit the cost factors.
///
/// Creates temporary `TANGO_CAL_*` tables in the DBMS, probes each
/// algorithm at several input sizes, and drops the tables again.
pub fn calibrate(conn: &Connection, seed: u64) -> Result<Calibration> {
    let mut rng = SmallRng::new(seed | 1);
    let sizes = [1_000usize, 4_000, 12_000];
    let mut samples: Vec<Sample> = Vec::new();
    let mut factors = CostFactors::default();

    let add = |probe: &'static str, x: f64, t_us: f64, out: &mut Vec<Sample>| {
        out.push(Sample { probe, x, t_us });
    };

    // wire-aware timing helper: wall time + virtual wire delta
    let timed = |conn: &Connection, f: &mut dyn FnMut() -> Result<()>| -> Result<f64> {
        let sw = Stopwatch::start(conn.wire_time());
        f()?;
        Ok(sw.elapsed_us(conn.wire_time()))
    };

    for (i, &n) in sizes.iter().enumerate() {
        let table = format!("TANGO_CAL_{i}");
        let rows = probe_rows(n, &mut rng);
        let rel = Relation::new(Arc::new(probe_schema()), rows.clone());
        let bytes = rel.byte_size() as f64;
        let log2n = (n as f64).log2();

        // TRANSFER^D (direct-path load) — affine in bytes
        let t = timed(conn, &mut || {
            conn.load_direct(&table, probe_schema(), rows.clone())
                .map_err(|e| TangoError::Dbms(e.to_string()))?;
            Ok(())
        })?;
        add("transfer_d", bytes, t, &mut samples);
        conn.execute(&format!("ANALYZE TABLE {table} COMPUTE STATISTICS"))
            .map_err(|e| TangoError::Dbms(e.to_string()))?;

        // TRANSFER^M (scan + fetch over the wire) — linear in bytes
        let mut fetched = None;
        let t = timed(conn, &mut || {
            fetched = Some(
                conn.query_all(&format!("SELECT K, V, S, T1, T2 FROM {table}"))
                    .map_err(|e| TangoError::Dbms(e.to_string()))?,
            );
            Ok(())
        })?;
        add("transfer_m", bytes, t, &mut samples);
        let plain_scan_t = t;
        let fetched = fetched.unwrap();

        // SORT^D: sorted fetch minus plain fetch
        let t_sorted = timed(conn, &mut || {
            conn.query_all(&format!("SELECT K, V, S, T1, T2 FROM {table} ORDER BY K, T1"))
                .map_err(|e| TangoError::Dbms(e.to_string()))?;
            Ok(())
        })?;
        add("sort_d", bytes * log2n, (t_sorted - plain_scan_t).max(1.0), &mut samples);

        // SORT^M over the materialized relation
        let t = timed(conn, &mut || {
            drain(Box::new(tango_xxl::Sort::new(
                Box::new(VecScan::new(fetched.clone())),
                SortSpec::by(["K", "T1"]),
            )))
            .map_err(|e| TangoError::Exec(e.to_string()))?;
            Ok(())
        })?;
        add("sort_m", bytes * log2n, t, &mut samples);

        // FILTER^M
        let pred = tango_algebra::Expr::cmp(
            tango_algebra::CmpOp::Lt,
            tango_algebra::Expr::col("V"),
            tango_algebra::Expr::lit(500_000),
        );
        let t = timed(conn, &mut || {
            drain(Box::new(tango_xxl::Filter::new(
                Box::new(VecScan::new(fetched.clone())),
                pred.clone(),
            )))
            .map_err(|e| TangoError::Exec(e.to_string()))?;
            Ok(())
        })?;
        add("filter_m", bytes, t, &mut samples);

        // TAGGR^M over a sorted copy
        let mut sorted = fetched.clone();
        sorted.sort_by(&SortSpec::by(["K", "T1"]));
        let t = timed(conn, &mut || {
            let agg = tango_xxl::TemporalAggregate::new(
                Box::new(VecScan::new(sorted.clone())),
                vec!["K".into()],
                vec![AggSpec::new(AggFunc::Count, Some("K"), "C")],
            )
            .map_err(|e| TangoError::Exec(e.to_string()))?;
            drain(Box::new(agg)).map_err(|e| TangoError::Exec(e.to_string()))?;
            Ok(())
        })?;
        add("taggr_m", bytes, t, &mut samples);

        // MERGEJOIN^M (self join on K over sorted copies)
        let mut out_bytes = 0f64;
        let t = timed(conn, &mut || {
            let mj = tango_xxl::MergeJoin::new(
                Box::new(VecScan::new(sorted.clone())),
                Box::new(VecScan::new(sorted.clone())),
                &[("K".to_string(), "K".to_string())],
            )
            .map_err(|e| TangoError::Exec(e.to_string()))?;
            let out = drain(Box::new(mj)).map_err(|e| TangoError::Exec(e.to_string()))?;
            out_bytes = out.byte_size() as f64;
            Ok(())
        })?;
        add("mergejoin_m", 2.0 * bytes + out_bytes / 2.0, t.max(1.0), &mut samples);
    }

    // -- first fit the transfer rate: the DBMS-side probes below must
    // subtract the cost of shipping their results over the wire, and the
    // subtraction needs the *fitted* p_tm, not the default.
    {
        let pick = |probe: &str| -> Vec<(f64, f64)> {
            samples.iter().filter(|s| s.probe == probe).map(|s| (s.x, s.t_us)).collect()
        };
        if let Some(p) = fit(&pick("transfer_m")) {
            factors.p_tm = p;
        }
    }

    // -- second pass: DBMS-side composite probes
    for (i, &n) in sizes.iter().enumerate() {
        let table = format!("TANGO_CAL_{i}");
        let t_probe = conn
            .query_all(&format!("SELECT K FROM {table}"))
            .map_err(|e| TangoError::Dbms(e.to_string()))?;
        let bytes = {
            // recompute input size from the stored table
            let s = conn.table_stats(&table).unwrap_or_default();
            s.size_bytes()
        };
        let _ = t_probe;

        // JOIN^D (generic): wrap the join in COUNT(*) so only one row
        // crosses the wire and the measurement is the join itself
        let mut join_out_rows = 0f64;
        let t = timed(conn, &mut || {
            let r = conn
                .query_all(&format!(
                    "SELECT COUNT(*) AS N FROM \
                     (SELECT A.K k, A.V v, B.V w FROM {table} A, {table} B WHERE A.K = B.K) J"
                ))
                .map_err(|e| TangoError::Dbms(e.to_string()))?;
            join_out_rows = r.tuples()[0][0].as_f64().unwrap_or(0.0);
            Ok(())
        })?;
        let join_out_bytes = join_out_rows * 24.0; // three int columns
        add("join_d", 2.0 * bytes + join_out_bytes, t.max(1.0), &mut samples);

        // TAGGR^D (constant-period SQL). The algorithm is superlinear in
        // the group sizes, so probing up to the largest size matters: the
        // least-squares fit (x²-weighted) then reflects realistic inputs.
        if n <= 12_000 {
            let scan = PhysNode {
                algo: Algo::ScanD(table.clone()),
                schema: Arc::new(probe_schema()),
                children: vec![],
            };
            let aggs = vec![AggSpec::new(AggFunc::Count, Some("K"), "C")];
            let out_schema =
                tango_algebra::logical::taggr_schema(&["K".to_string()], &aggs, &probe_schema())
                    .map_err(TangoError::from)?;
            let node = PhysNode {
                algo: Algo::TAggrD { group_by: vec!["K".into()], aggs },
                schema: Arc::new(out_schema),
                children: vec![scan],
            };
            let sql = to_sql::render_select(&node)?;
            let mut out_rows = 0f64;
            let t = timed(conn, &mut || {
                let r = conn
                    .query_all(&format!("SELECT COUNT(*) AS N FROM ({sql}) X"))
                    .map_err(|e| TangoError::Dbms(e.to_string()))?;
                out_rows = r.tuples()[0][0].as_f64().unwrap_or(0.0);
                Ok(())
            })?;
            add("taggr_d", bytes + out_rows * 32.0, t.max(1.0), &mut samples);
        }
    }

    // fit factors from the samples ------------------------------------
    let pick = |probe: &str| -> Vec<(f64, f64)> {
        samples.iter().filter(|s| s.probe == probe).map(|s| (s.x, s.t_us)).collect()
    };
    if let Some((fixed, slope)) = fit_affine(&pick("transfer_d")) {
        factors.p_td_fixed = fixed;
        factors.p_td = slope;
    }
    if let Some(p) = fit(&pick("sort_d")) {
        factors.p_sd = p;
    }
    if let Some(p) = fit(&pick("sort_m")) {
        factors.p_sm = p;
    }
    if let Some(p) = fit(&pick("filter_m")) {
        factors.p_sem = p;
        factors.p_pm = p; // projection moves the same bytes
    }
    if let Some(p) = fit(&pick("taggr_m")) {
        factors.p_taggm1 = p;
        factors.p_taggm2 = p / 2.0;
    }
    if let Some(p) = fit(&pick("mergejoin_m")) {
        factors.p_mjm = p;
        factors.p_mjout = p / 2.0;
    }
    if let Some(p) = fit(&pick("join_d")) {
        factors.p_jd = p;
    }
    if let Some(p) = fit(&pick("taggr_d")) {
        factors.p_taggd1 = p;
        factors.p_taggd2 = p;
    }

    // drop the probe tables
    for i in 0..sizes.len() {
        let _ = conn.execute(&format!("DROP TABLE IF EXISTS TANGO_CAL_{i}"));
    }
    Ok(Calibration { factors, samples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_minidb::Database;

    #[test]
    fn fit_through_origin() {
        let p = fit(&[(1.0, 2.0), (2.0, 4.0), (3.0, 6.1)]).unwrap();
        assert!((p - 2.0).abs() < 0.05);
        assert!(fit(&[]).is_none());
    }

    #[test]
    fn fit_with_intercept() {
        let (b, m) = fit_affine(&[(0.0, 10.0), (10.0, 30.0), (20.0, 50.0)]).unwrap();
        assert!((b - 10.0).abs() < 1e-6);
        assert!((m - 2.0).abs() < 1e-6);
    }

    #[test]
    fn calibration_produces_positive_factors() {
        let conn = Connection::new(Database::in_memory());
        let cal = calibrate(&conn, 7).unwrap();
        let f = cal.factors;
        for v in [f.p_tm, f.p_td, f.p_sem, f.p_sm, f.p_sd, f.p_taggm1, f.p_taggd1, f.p_mjm, f.p_jd]
        {
            assert!(v > 0.0);
        }
        // probe tables are cleaned up
        assert!(conn.query("SELECT K FROM TANGO_CAL_0").is_err());
        // the wire makes transfers far more expensive per byte than local
        // filtering
        assert!(f.p_tm > f.p_sem, "p_tm={} p_sem={}", f.p_tm, f.p_sem);
        // and DBMS temporal aggregation much more expensive than middleware
        assert!(f.p_taggd1 > f.p_taggm1, "taggd={} taggm={}", f.p_taggd1, f.p_taggm1);
    }
}
