//! The Translator-To-SQL component (Figure 1): turns the DBMS-resident
//! parts of a chosen plan — everything below a `T^M` down to base
//! relations or `T^D` boundaries — into SQL text for the underlying DBMS.
//!
//! Rendering is compositional: every operator becomes a `SELECT` over its
//! children as inline views, so arbitrarily shaped fragments translate.
//! Temporal operators are expanded into conventional SQL:
//!
//! * a temporal join becomes the join + `GREATEST`/`LEAST` projection +
//!   overlap predicate of Figure 5;
//! * temporal aggregation becomes the *constant-period* query (the
//!   paper's "50-line SQL" for `TAGGR^D`): derive each group's candidate
//!   constant periods from the union of its `T1`/`T2` points, then count
//!   or aggregate the tuples covering each period.

use crate::error::{Result, TangoError};
use crate::phys::{Algo, PhysNode};
use std::fmt::Write;
use tango_algebra::{AggSpec, Schema, SortSpec};

/// Render a pure-DBMS plan fragment as a SELECT statement. `T^D`
/// boundaries must already have been replaced by temp-table scans by the
/// engine.
pub fn render_select(node: &PhysNode) -> Result<String> {
    match render(node)? {
        Rendered::Table(t) => {
            // a bare table scan: expand to an explicit SELECT
            let cols = column_list(&node.schema, None);
            Ok(format!("SELECT {cols} FROM {t}"))
        }
        Rendered::Query(q) => Ok(q),
    }
}

enum Rendered {
    /// A base (or temp) table usable directly in FROM.
    Table(String),
    /// A full SELECT, usable as an inline view.
    Query(String),
}

impl Rendered {
    // renders this fragment as a FROM-clause item (not a conversion)
    #[allow(clippy::wrong_self_convention)]
    fn from_clause(&self, alias: &str) -> String {
        match self {
            Rendered::Table(t) => format!("{t} {alias}"),
            Rendered::Query(q) => format!("({q}) {alias}"),
        }
    }
}

fn column_list(schema: &Schema, qualifier: Option<&str>) -> String {
    schema
        .names()
        .map(|n| match qualifier {
            Some(q) => format!("{q}.{n} AS {n}"),
            None => n.to_string(),
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn order_clause(spec: &SortSpec) -> String {
    spec.keys()
        .iter()
        .map(|k| if k.desc { format!("{} DESC", k.col) } else { k.col.clone() })
        .collect::<Vec<_>>()
        .join(", ")
}

fn render(node: &PhysNode) -> Result<Rendered> {
    Ok(match &node.algo {
        Algo::ScanD(table) => Rendered::Table(table.clone()),
        Algo::FilterD(pred) => {
            let child = render(&node.children[0])?;
            Rendered::Query(format!(
                "SELECT {} FROM {} WHERE {pred}",
                column_list(&node.schema, Some("X")),
                child.from_clause("X"),
            ))
        }
        Algo::ProjectD(items) => {
            let child = render(&node.children[0])?;
            let sel = items
                .iter()
                .map(|it| format!("{} AS {}", it.expr, it.alias))
                .collect::<Vec<_>>()
                .join(", ");
            Rendered::Query(format!("SELECT {sel} FROM {}", child.from_clause("X")))
        }
        Algo::SortD(spec) => {
            let child = render(&node.children[0])?;
            Rendered::Query(format!(
                "SELECT {} FROM {} ORDER BY {}",
                column_list(&node.schema, Some("X")),
                child.from_clause("X"),
                order_clause(spec),
            ))
        }
        Algo::DupElimD => {
            let child = render(&node.children[0])?;
            Rendered::Query(format!(
                "SELECT DISTINCT {} FROM {}",
                column_list(&node.schema, Some("X")),
                child.from_clause("X"),
            ))
        }
        Algo::JoinD(_) | Algo::ProductD => {
            let eq = if let Algo::JoinD(eq) = &node.algo { eq.clone() } else { vec![] };
            let l = render(&node.children[0])?;
            let r = render(&node.children[1])?;
            let ls = &node.children[0].schema;
            let rs = &node.children[1].schema;
            // output layout: left attrs then right attrs (clash-renamed)
            let mut sel = Vec::new();
            for (i, a) in ls.attrs().iter().enumerate() {
                sel.push(format!("A.{} AS {}", a.name, node.schema.attr(i).name));
            }
            for (j, a) in rs.attrs().iter().enumerate() {
                sel.push(format!("B.{} AS {}", a.name, node.schema.attr(ls.len() + j).name));
            }
            let mut sql = format!(
                "SELECT {} FROM {}, {}",
                sel.join(", "),
                l.from_clause("A"),
                r.from_clause("B"),
            );
            if !eq.is_empty() {
                let conds: Vec<String> = eq.iter().map(|(a, b)| format!("A.{a} = B.{b}")).collect();
                write!(sql, " WHERE {}", conds.join(" AND ")).unwrap();
            }
            Rendered::Query(sql)
        }
        Algo::TJoinD(eq) => {
            let l = render(&node.children[0])?;
            let r = render(&node.children[1])?;
            let ls = &node.children[0].schema;
            let rs = &node.children[1].schema;
            let (lt1, lt2) = ls.period().ok_or_else(|| {
                TangoError::Exec("temporal join over non-temporal SQL fragment".into())
            })?;
            let (rt1, rt2) = rs.period().ok_or_else(|| {
                TangoError::Exec("temporal join over non-temporal SQL fragment".into())
            })?;
            let (lt1, lt2) = (&ls.attr(lt1).name, &ls.attr(lt2).name);
            let (rt1, rt2) = (&rs.attr(rt1).name, &rs.attr(rt2).name);
            // select list follows tjoin_schema: left non-period, right
            // non-period minus keys, then the intersected T1/T2
            let mut sel = Vec::new();
            let mut out_i = 0usize;
            for a in ls.attrs() {
                if a.name != *lt1 && a.name != *lt2 {
                    sel.push(format!("A.{} AS {}", a.name, node.schema.attr(out_i).name));
                    out_i += 1;
                }
            }
            for a in rs.attrs() {
                let is_key = eq.iter().any(|(_, rc)| rc.eq_ignore_ascii_case(&a.name));
                if a.name != *rt1 && a.name != *rt2 && !is_key {
                    sel.push(format!("B.{} AS {}", a.name, node.schema.attr(out_i).name));
                    out_i += 1;
                }
            }
            sel.push(format!("GREATEST(A.{lt1}, B.{rt1}) AS T1"));
            sel.push(format!("LEAST(A.{lt2}, B.{rt2}) AS T2"));
            let mut conds: Vec<String> = eq.iter().map(|(a, b)| format!("A.{a} = B.{b}")).collect();
            conds.push(format!("A.{lt1} < B.{rt2}"));
            conds.push(format!("A.{lt2} > B.{rt1}"));
            Rendered::Query(format!(
                "SELECT {} FROM {}, {} WHERE {}",
                sel.join(", "),
                l.from_clause("A"),
                r.from_clause("B"),
                conds.join(" AND "),
            ))
        }
        Algo::TAggrD { group_by, aggs } => {
            let child = render(&node.children[0])?;
            let cs = &node.children[0].schema;
            let (t1, t2) = cs.period().ok_or_else(|| {
                TangoError::Exec("temporal aggregation over non-temporal SQL fragment".into())
            })?;
            let (t1, t2) = (cs.attr(t1).name.clone(), cs.attr(t2).name.clone());
            Rendered::Query(taggr_sql(&child, group_by, aggs, &t1, &t2, &node.schema))
        }
        other => {
            return Err(TangoError::Exec(format!(
                "cannot translate middleware algorithm {} to SQL",
                other.label()
            )))
        }
    })
}

/// The constant-period SQL for DBMS-side temporal aggregation.
///
/// Structure (for grouping attributes `g…` over argument `R`):
///
/// 1. `points` — the distinct period endpoints per group
///    (`T1 ∪ T2`);
/// 2. `cp` — candidate constant periods: each point paired with the next
///    point of the same group (`MIN` over later points);
/// 3. outer query — joins candidate periods back to `R`, keeping periods
///    covered by at least one tuple, and aggregates the covering tuples.
fn taggr_sql(
    child: &Rendered,
    group_by: &[String],
    aggs: &[AggSpec],
    t1: &str,
    t2: &str,
    out_schema: &Schema,
) -> String {
    let g_sel = |src: &str| -> String {
        group_by
            .iter()
            .enumerate()
            .map(|(i, g)| format!("{src}{g} AS g{i}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let points = format!(
        "SELECT DISTINCT {}{}{t1} AS t FROM {} UNION SELECT DISTINCT {}{}{t2} FROM {}",
        g_sel(""),
        if group_by.is_empty() { "" } else { ", " },
        child.from_clause("XP1"),
        group_by.iter().map(|g| g.to_string()).collect::<Vec<_>>().join(", "),
        if group_by.is_empty() { "" } else { ", " },
        child.from_clause("XP2"),
    );
    let mut cp_conds: Vec<String> =
        group_by.iter().enumerate().map(|(i, _)| format!("p1.g{i} = p2.g{i}")).collect();
    cp_conds.push("p2.t > p1.t".to_string());
    let cp_group: Vec<String> = group_by
        .iter()
        .enumerate()
        .map(|(i, _)| format!("p1.g{i}"))
        .chain(std::iter::once("p1.t".to_string()))
        .collect();
    let cp_sel: Vec<String> = group_by
        .iter()
        .enumerate()
        .map(|(i, _)| format!("p1.g{i} AS g{i}"))
        .chain(["p1.t AS ts".to_string(), "MIN(p2.t) AS te".to_string()])
        .collect();
    let cp = format!(
        "SELECT {} FROM ({points}) p1, ({points}) p2 WHERE {} GROUP BY {}",
        cp_sel.join(", "),
        cp_conds.join(" AND "),
        cp_group.join(", "),
    );
    // outer: join candidate periods with covering tuples
    let mut outer_sel: Vec<String> = group_by
        .iter()
        .enumerate()
        .map(|(i, _)| format!("cp.g{i} AS {}", out_schema.attr(i).name))
        .collect();
    outer_sel.push("cp.ts AS T1".to_string());
    outer_sel.push("cp.te AS T2".to_string());
    for a in aggs {
        let call = match &a.arg {
            Some(c) => format!("{}(r.{c})", a.func.sql()),
            None => format!("{}(*)", a.func.sql()),
        };
        outer_sel.push(format!("{call} AS {}", a.alias));
    }
    let mut outer_conds: Vec<String> =
        group_by.iter().enumerate().map(|(i, g)| format!("r.{g} = cp.g{i}")).collect();
    outer_conds.push(format!("r.{t1} <= cp.ts"));
    outer_conds.push(format!("r.{t2} >= cp.te"));
    let outer_group: Vec<String> = group_by
        .iter()
        .enumerate()
        .map(|(i, _)| format!("cp.g{i}"))
        .chain(["cp.ts".to_string(), "cp.te".to_string()])
        .collect();
    format!(
        "SELECT {} FROM ({cp}) cp, {} WHERE {} GROUP BY {}",
        outer_sel.join(", "),
        child.from_clause("r"),
        outer_conds.join(" AND "),
        outer_group.join(", "),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tango_algebra::{AggFunc, Attr, CmpOp, Expr, Type};
    use tango_minidb::{Connection, Database};

    fn position_schema() -> Arc<Schema> {
        Arc::new(Schema::with_inferred_period(vec![
            Attr::new("PosID", Type::Int),
            Attr::new("EmpName", Type::Str),
            Attr::new("T1", Type::Int),
            Attr::new("T2", Type::Int),
        ]))
    }

    fn scan() -> PhysNode {
        PhysNode {
            algo: Algo::ScanD("POSITION".into()),
            schema: position_schema(),
            children: vec![],
        }
    }

    fn conn() -> Connection {
        let c = Connection::new(Database::in_memory());
        c.execute("CREATE TABLE POSITION (PosID INT, EmpName VARCHAR(20), T1 INT, T2 INT)")
            .unwrap();
        c.execute("INSERT INTO POSITION VALUES (1,'Tom',2,20),(1,'Jane',5,25),(2,'Tom',5,10)")
            .unwrap();
        c
    }

    #[test]
    fn scan_filter_sort_roundtrip() {
        let filter = PhysNode {
            algo: Algo::FilterD(Expr::cmp(CmpOp::Eq, Expr::col("PosID"), Expr::lit(1))),
            schema: position_schema(),
            children: vec![scan()],
        };
        let sorted = PhysNode {
            algo: Algo::SortD(SortSpec::by(["T1"])),
            schema: position_schema(),
            children: vec![filter],
        };
        let sql = render_select(&sorted).unwrap();
        let r = conn().query_all(&sql).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.tuples()[0][1], tango_algebra::Value::Str("Tom".into()));
    }

    #[test]
    fn taggr_sql_matches_figure3c() {
        let aggs = vec![AggSpec::new(AggFunc::Count, Some("PosID"), "CNT")];
        let out =
            tango_algebra::logical::taggr_schema(&["PosID".to_string()], &aggs, &position_schema())
                .unwrap();
        let node = PhysNode {
            algo: Algo::TAggrD { group_by: vec!["PosID".into()], aggs },
            schema: Arc::new(out),
            children: vec![scan()],
        };
        let sql = render_select(&node).unwrap();
        let mut r = conn().query_all(&sql).unwrap();
        r.sort_by(&SortSpec::by(["PosID", "T1"]));
        assert_eq!(
            r.tuples(),
            &[
                tango_algebra::tup![1, 2, 5, 1],
                tango_algebra::tup![1, 5, 20, 2],
                tango_algebra::tup![1, 20, 25, 1],
                tango_algebra::tup![2, 5, 10, 1],
            ]
        );
    }

    #[test]
    fn tjoin_sql_matches_figure3b() {
        // temporal self-join of POSITION with its aggregation, DBMS-side
        let aggs = vec![AggSpec::new(AggFunc::Count, Some("PosID"), "COUNTofPosID")];
        let agg_schema = Arc::new(
            tango_algebra::logical::taggr_schema(&["PosID".to_string()], &aggs, &position_schema())
                .unwrap(),
        );
        let agg = PhysNode {
            algo: Algo::TAggrD { group_by: vec!["PosID".into()], aggs },
            schema: agg_schema.clone(),
            children: vec![scan()],
        };
        let eq = vec![("PosID".to_string(), "PosID".to_string())];
        let out =
            tango_algebra::logical::tjoin_schema(&eq, &position_schema(), &agg_schema).unwrap();
        let node =
            PhysNode { algo: Algo::TJoinD(eq), schema: Arc::new(out), children: vec![scan(), agg] };
        let sql = render_select(&node).unwrap();
        let mut r = conn().query_all(&sql).unwrap();
        r.sort_by(&SortSpec::by(["PosID", "EmpName", "T1"]));
        // Figure 3(b) as (PosID, EmpName, COUNTofPosID, T1, T2)
        assert_eq!(
            r.tuples(),
            &[
                tango_algebra::tup![1, "Jane", 2, 5, 20],
                tango_algebra::tup![1, "Jane", 1, 20, 25],
                tango_algebra::tup![1, "Tom", 1, 2, 5],
                tango_algebra::tup![1, "Tom", 2, 5, 20],
                tango_algebra::tup![2, "Tom", 1, 5, 10],
            ]
        );
    }

    #[test]
    fn middleware_algorithms_are_untranslatable() {
        let node =
            PhysNode { algo: Algo::TransferM, schema: position_schema(), children: vec![scan()] };
        assert!(render_select(&node).is_err());
    }
}
