//! Unified error type for the middleware.

use std::fmt;

/// Any failure the middleware can report.
#[derive(Debug, Clone)]
pub enum TangoError {
    /// Temporal-SQL parsing failed.
    Parse(String),
    /// Schema derivation or expression evaluation failed.
    Algebra(tango_algebra::AlgebraError),
    /// The underlying DBMS rejected a statement.
    Dbms(String),
    /// A middleware cursor failed during execution.
    Exec(String),
    /// The optimizer could not produce a plan.
    Optimizer(String),
}

impl fmt::Display for TangoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TangoError::Parse(m) => write!(f, "temporal SQL parse error: {m}"),
            TangoError::Algebra(e) => write!(f, "{e}"),
            TangoError::Dbms(m) => write!(f, "dbms error: {m}"),
            TangoError::Exec(m) => write!(f, "execution error: {m}"),
            TangoError::Optimizer(m) => write!(f, "optimizer error: {m}"),
        }
    }
}

impl std::error::Error for TangoError {}

impl From<tango_algebra::AlgebraError> for TangoError {
    fn from(e: tango_algebra::AlgebraError) -> Self {
        TangoError::Algebra(e)
    }
}

impl From<tango_minidb::DbError> for TangoError {
    fn from(e: tango_minidb::DbError) -> Self {
        TangoError::Dbms(e.to_string())
    }
}

impl From<tango_xxl::ExecError> for TangoError {
    fn from(e: tango_xxl::ExecError) -> Self {
        TangoError::Exec(e.to_string())
    }
}

/// Result alias for middleware operations.
pub type Result<T> = std::result::Result<T, TangoError>;
