//! Unified error type for the middleware.

use std::fmt;
use tango_minidb::ErrorClass;

/// Any failure the middleware can report.
#[derive(Debug, Clone)]
pub enum TangoError {
    /// Temporal-SQL parsing failed.
    Parse(String),
    /// Schema derivation or expression evaluation failed.
    Algebra(tango_algebra::AlgebraError),
    /// The underlying DBMS rejected a statement.
    Dbms(String),
    /// The DBMS link failed. Carries the `tango-minidb` failure class
    /// (`Transient`: the retry budget was exhausted; `Timeout`: the
    /// statement's time budget was exceeded; `Fatal`: not retryable) so
    /// callers can react without parsing message text.
    Wire {
        /// Failure classification from the wire layer.
        class: ErrorClass,
        /// Driver-style error text.
        msg: String,
    },
    /// A middleware cursor failed during execution.
    Exec(String),
    /// The optimizer could not produce a plan.
    Optimizer(String),
    /// A rewrite rule pack failed to load or validate.
    Rewrite(String),
}

impl TangoError {
    /// The wire failure class, if this error came off the wire.
    pub fn wire_class(&self) -> Option<ErrorClass> {
        match self {
            TangoError::Wire { class, .. } => Some(*class),
            _ => None,
        }
    }
}

impl fmt::Display for TangoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TangoError::Parse(m) => write!(f, "temporal SQL parse error: {m}"),
            TangoError::Algebra(e) => write!(f, "{e}"),
            TangoError::Dbms(m) => write!(f, "dbms error: {m}"),
            TangoError::Wire { class, msg } => write!(f, "wire error ({class}): {msg}"),
            TangoError::Exec(m) => write!(f, "execution error: {m}"),
            TangoError::Optimizer(m) => write!(f, "optimizer error: {m}"),
            TangoError::Rewrite(m) => write!(f, "rewrite error: {m}"),
        }
    }
}

impl std::error::Error for TangoError {}

impl From<tango_algebra::AlgebraError> for TangoError {
    fn from(e: tango_algebra::AlgebraError) -> Self {
        TangoError::Algebra(e)
    }
}

impl From<tango_minidb::DbError> for TangoError {
    fn from(e: tango_minidb::DbError) -> Self {
        use tango_minidb::DbError;
        match e {
            DbError::Transient(m) => TangoError::Wire { class: ErrorClass::Transient, msg: m },
            DbError::Timeout(m) => TangoError::Wire { class: ErrorClass::Timeout, msg: m },
            DbError::Fatal(m) => TangoError::Wire { class: ErrorClass::Fatal, msg: m },
            other => TangoError::Dbms(other.to_string()),
        }
    }
}

impl From<tango_xxl::ExecError> for TangoError {
    fn from(e: tango_xxl::ExecError) -> Self {
        match e {
            tango_xxl::ExecError::Wire { fatal, timeout, msg } => {
                let class = if fatal {
                    ErrorClass::Fatal
                } else if timeout {
                    ErrorClass::Timeout
                } else {
                    ErrorClass::Transient
                };
                TangoError::Wire { class, msg }
            }
            other => TangoError::Exec(other.to_string()),
        }
    }
}

/// Result alias for middleware operations.
pub type Result<T> = std::result::Result<T, TangoError>;
