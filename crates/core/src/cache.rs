//! The middleware relation cache (`MidCache`).
//!
//! The paper's Figure 10 shows the temporal join running ~2× faster when
//! one argument *already resides in the middleware*. This module makes
//! residency a first-class state instead of a hand-staged benchmark
//! setup: materialized results of DBMS fragments shipped over
//! `TRANSFER^M` are retained in a byte-budgeted store, the optimizer
//! prices transfers over resident fragments at near-zero wire cost (and
//! may flip join-side placement because of it), and the engine serves
//! hits from memory without issuing any SQL.
//!
//! # Keying — canonical fragment signatures
//!
//! An entry is keyed by the **canonical signature** of the DBMS fragment
//! that produced it plus the **delivered sort order**. The signature is
//! a syntactic normal form over the temporal-algebra shape of the
//! fragment — `SEL[PayRate > 10](GET[POSITION]())` — computed two ways
//! that agree by construction:
//!
//! * the optimizer derives it compositionally for every memo group
//!   ([`top_signature`], stored in `GroupProps`), and
//! * the engine erases a physical fragment back to the same form
//!   ([`fragment_key`]), peeling a topmost `SORT^D` into the entry's
//!   delivered order.
//!
//! A `TRANSFER^M` whose child group's signature is resident with a
//! [satisfying](tango_algebra::SortSpec::satisfies) order is a **hit**.
//! Matching is deliberately conservative: it is syntactic, so two
//! semantically equal but differently-shaped fragments miss — a miss
//! only costs the normal transfer, never correctness.
//!
//! Fragments containing temp-table scans (`TRANSFER^D` results), or
//! interior sorts below other operators, are **uncacheable**: their
//! contents are not a pure function of base-table state (or their order
//! cannot be represented in the key). The engine annotates such
//! transfers `cache bypass`.
//!
//! # Invalidation — table write-versions
//!
//! Every entry records the [write-version](tango_minidb::Database::table_version)
//! of each base table it was computed from. `tango-minidb` bumps a
//! table's version on every INSERT/DELETE/UPDATE, so `versions
//! unchanged ⇒ contents unchanged`. Entries are validated lazily — at
//! lookup and when the optimizer snapshots residency — and dropped the
//! moment any dependency's version moved (an `invalidate` span event).
//!
//! # Eviction — GreedyDual-Size
//!
//! The store keeps an inflation clock `L`; an entry's priority is
//! `L + fill_cost/size` where `fill_cost` is the measured wire+server
//! time the entry saved. Eviction removes the minimum-priority entry and
//! advances `L` to its priority; a hit refreshes the entry's priority
//! against the current clock. This is the classic GreedyDual-Size
//! policy: recency, byte footprint and the real cost of refetching all
//! trade off in one number, and plain LRU falls out when fetch costs are
//! uniform per byte. Entries larger than the whole budget are never
//! admitted.

use crate::phys::{Algo, PhysNode, TOp};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use tango_algebra::{ProjItem, Schema, SortSpec, Tuple};

/// Default cache budget used by a new session: 64 MiB.
pub const DEFAULT_CACHE_BUDGET: u64 = 64 * 1024 * 1024;

fn canon(name: &str, params: &str, children: &[String]) -> String {
    format!("{name}[{params}]({})", children.join(","))
}

fn eq_params(eq: &[(String, String)]) -> String {
    eq.iter().map(|(l, r)| format!("{l}={r}")).collect::<Vec<_>>().join(",")
}

fn proj_params(items: &[ProjItem]) -> String {
    items.iter().map(|it| format!("{}={}", it.alias, it.expr)).collect::<Vec<_>>().join(",")
}

fn taggr_params(group_by: &[String], aggs: &[tango_algebra::AggSpec]) -> String {
    format!(
        "{};{}",
        group_by.join(","),
        aggs.iter().map(ToString::to_string).collect::<Vec<_>>().join(",")
    )
}

/// Canonical signature of a logical operator over its children's
/// signatures. The optimizer calls this in `derive_props`, so every memo
/// group knows the signature of the fragment it denotes; the engine-side
/// [`fragment_key`] erases physical fragments to the identical form.
pub fn top_signature(op: &TOp, children: &[String]) -> String {
    match op {
        TOp::Get { table } => canon("GET", &table.to_uppercase(), &[]),
        TOp::Select { pred } => canon("SEL", &pred.to_string(), children),
        TOp::Project { items } => canon("PROJ", &proj_params(items), children),
        TOp::Join { eq } => canon("JOIN", &eq_params(eq), children),
        TOp::TJoin { eq } => canon("TJOIN", &eq_params(eq), children),
        TOp::Product => canon("PROD", "", children),
        TOp::TAggr { group_by, aggs } => canon("TAGGR", &taggr_params(group_by, aggs), children),
        TOp::DupElim => canon("DUP", "", children),
        TOp::Coalesce => canon("COAL", "", children),
        TOp::Diff => canon("DIFF", "", children),
    }
}

/// The identity of a cacheable DBMS fragment: canonical signature,
/// delivered sort order, the rendered SQL (kept for observability — the
/// signature, not the SQL text, is the match key) and the base tables
/// the fragment reads.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentKey {
    /// Canonical fragment signature; see [`top_signature`].
    pub signature: String,
    /// Sort order the fragment delivers (a topmost `SORT^D`'s spec,
    /// [`SortSpec::none`] otherwise).
    pub order: SortSpec,
    /// The SQL the fragment renders to — display/debugging only.
    pub sql: String,
    /// Upper-cased base tables read by the fragment, deduplicated.
    pub tables: Vec<String>,
}

/// Compute the cache key of a physical DBMS fragment (the subtree below
/// a `TRANSFER^M`, after temp-table lowering). Returns `None` — meaning
/// *uncacheable*, rendered as `cache bypass` — when the fragment scans a
/// temp table (its contents depend on middleware state, not base-table
/// versions), contains an interior sort, or contains any non-DBMS
/// operator. `is_temp` decides which scanned names are temp tables.
pub fn fragment_key(
    fragment: &PhysNode,
    sql: &str,
    is_temp: &dyn Fn(&str) -> bool,
) -> Option<FragmentKey> {
    let (inner, order) = match &fragment.algo {
        Algo::SortD(spec) => (&fragment.children[0], spec.clone()),
        _ => (fragment, SortSpec::none()),
    };
    let mut tables = Vec::new();
    let signature = erase(inner, is_temp, &mut tables)?;
    tables.sort();
    tables.dedup();
    Some(FragmentKey { signature, order, sql: sql.to_string(), tables })
}

/// Erase a physical DBMS operator tree to its canonical signature,
/// collecting base-table names. `None` ⇒ uncacheable.
fn erase(
    node: &PhysNode,
    is_temp: &dyn Fn(&str) -> bool,
    tables: &mut Vec<String>,
) -> Option<String> {
    let kids: Option<Vec<String>> =
        node.children.iter().map(|c| erase(c, is_temp, tables)).collect();
    let kids = kids?;
    Some(match &node.algo {
        Algo::ScanD(t) => {
            if is_temp(t) {
                return None;
            }
            tables.push(t.to_uppercase());
            canon("GET", &t.to_uppercase(), &[])
        }
        Algo::FilterD(pred) => canon("SEL", &pred.to_string(), &kids),
        Algo::ProjectD(items) => canon("PROJ", &proj_params(items), &kids),
        Algo::JoinD(eq) => canon("JOIN", &eq_params(eq), &kids),
        Algo::TJoinD(eq) => canon("TJOIN", &eq_params(eq), &kids),
        Algo::ProductD => canon("PROD", "", &kids),
        Algo::TAggrD { group_by, aggs } => canon("TAGGR", &taggr_params(group_by, aggs), &kids),
        Algo::DupElimD => canon("DUP", "", &kids),
        // an interior sort's order is not representable in the key, and
        // any middleware algorithm or TRANSFER^D means this is not a
        // pure DBMS fragment
        _ => return None,
    })
}

/// A materialized relation served from the cache: shared, immutable.
#[derive(Debug, Clone)]
pub struct CachedRelation {
    /// Output schema of the cached fragment.
    pub schema: Arc<Schema>,
    /// The materialized tuples, shared with the store.
    pub rows: Arc<Vec<Tuple>>,
    /// Encoded byte size of the entry.
    pub bytes: u64,
    /// Sort order the rows are stored in.
    pub order: SortSpec,
}

/// Outcome of a [`MidCache::lookup`].
#[derive(Debug)]
pub enum Lookup {
    /// A fresh entry with a satisfying order was found.
    Hit(CachedRelation),
    /// No usable entry. `invalidated` lists the SQL of same-signature
    /// entries dropped because a base table's version moved — the engine
    /// turns each into an `invalidate` span event.
    Miss {
        /// SQL texts of entries invalidated during this lookup.
        invalidated: Vec<String>,
    },
}

/// Outcome of a [`MidCache::insert`].
#[derive(Debug)]
pub struct Admission {
    /// Whether the relation was stored.
    pub admitted: bool,
    /// `(sql, bytes)` of entries evicted to make room — the engine turns
    /// each into an `evict` span event.
    pub evicted: Vec<(String, u64)>,
}

/// Monotonic activity counters of a [`MidCache`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a fresh entry.
    pub hits: u64,
    /// Lookups that found no usable entry.
    pub misses: u64,
    /// Transfers whose fragment was uncacheable (see [`fragment_key`]).
    pub bypasses: u64,
    /// Relations admitted (including replacements).
    pub insertions: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Entries dropped because a dependency's write-version moved.
    pub invalidations: u64,
    /// Insertions rejected because the relation exceeds the budget.
    pub rejections: u64,
}

#[derive(Debug)]
struct Entry {
    signature: String,
    order: SortSpec,
    sql: String,
    schema: Arc<Schema>,
    rows: Arc<Vec<Tuple>>,
    bytes: u64,
    /// `(table, write-version)` dependencies recorded at fill time.
    deps: Vec<(String, u64)>,
    fill_cost_us: f64,
    /// GreedyDual-Size priority: clock-at-touch + fill_cost/size.
    priority: f64,
    hits: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: Vec<Entry>,
    bytes: u64,
    budget: u64,
    /// GreedyDual-Size inflation clock `L`.
    clock: f64,
    stats: CacheStats,
}

impl Inner {
    fn gds_priority(&self, fill_cost_us: f64, bytes: u64) -> f64 {
        self.clock + fill_cost_us / bytes.max(1) as f64
    }

    /// Drop entries whose dependencies are stale, appending their SQL to
    /// `invalidated`. `filter` restricts which entries are checked.
    fn validate(
        &mut self,
        version_of: &dyn Fn(&str) -> Option<u64>,
        filter: impl Fn(&Entry) -> bool,
        invalidated: &mut Vec<String>,
    ) {
        let mut i = 0;
        while i < self.entries.len() {
            let e = &self.entries[i];
            if filter(e) && e.deps.iter().any(|(t, v)| version_of(t) != Some(*v)) {
                let e = self.entries.remove(i);
                self.bytes -= e.bytes;
                self.stats.invalidations += 1;
                invalidated.push(e.sql);
            } else {
                i += 1;
            }
        }
    }

    /// Evict minimum-priority entries until `need` more bytes fit.
    fn make_room(&mut self, need: u64) -> Vec<(String, u64)> {
        let mut evicted = Vec::new();
        while self.bytes + need > self.budget && !self.entries.is_empty() {
            let (i, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.priority.total_cmp(&b.priority))
                .expect("non-empty");
            let e = self.entries.remove(i);
            self.bytes -= e.bytes;
            self.clock = self.clock.max(e.priority);
            self.stats.evictions += 1;
            evicted.push((e.sql, e.bytes));
        }
        evicted
    }
}

/// The middleware-resident relation cache. Shared by a session and its
/// engine executions (`Arc<MidCache>`); all operations take an internal
/// lock, so clones of a session see one coherent store.
#[derive(Debug)]
pub struct MidCache {
    inner: Mutex<Inner>,
}

impl MidCache {
    /// An empty cache with the given byte budget.
    pub fn new(budget: u64) -> MidCache {
        MidCache { inner: Mutex::new(Inner { budget, ..Inner::default() }) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The byte budget.
    pub fn budget(&self) -> u64 {
        self.lock().budget
    }

    /// Change the byte budget, evicting (by priority) down to the new
    /// limit if it shrank.
    pub fn set_budget(&self, budget: u64) {
        let mut g = self.lock();
        g.budget = budget;
        g.make_room(0);
    }

    /// Total bytes currently stored.
    pub fn bytes(&self) -> u64 {
        self.lock().bytes
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.lock().entries.is_empty()
    }

    /// Activity counters since creation (or the last [`MidCache::clear`];
    /// clearing resets contents, not counters).
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }

    /// Drop every entry. Counters are preserved.
    pub fn clear(&self) {
        let mut g = self.lock();
        g.entries.clear();
        g.bytes = 0;
    }

    /// Record that a transfer's fragment was uncacheable.
    pub fn note_bypass(&self) {
        self.lock().stats.bypasses += 1;
    }

    /// Drop all entries that depend on `table` (any version). Validation
    /// at lookup already catches stale entries lazily; this is for
    /// explicit invalidation, e.g. after `DROP TABLE`.
    pub fn invalidate_table(&self, table: &str) -> usize {
        let mut g = self.lock();
        let t = table.to_uppercase();
        let before = g.entries.len();
        let mut freed = 0;
        g.entries.retain(|e| {
            let dep = e.deps.iter().any(|(d, _)| *d == t);
            if dep {
                freed += e.bytes;
            }
            !dep
        });
        g.bytes -= freed;
        let n = before - g.entries.len();
        g.stats.invalidations += n as u64;
        n
    }

    /// Look up a fragment. A hit requires a fresh entry (every recorded
    /// table version unchanged per `version_of`) with the same signature
    /// and a stored order that [satisfies](SortSpec::satisfies) the
    /// requested one. Hits refresh the entry's GreedyDual-Size priority.
    pub fn lookup(&self, key: &FragmentKey, version_of: &dyn Fn(&str) -> Option<u64>) -> Lookup {
        let mut g = self.lock();
        let mut invalidated = Vec::new();
        g.validate(version_of, |e| e.signature == key.signature, &mut invalidated);
        let found = g
            .entries
            .iter()
            .position(|e| e.signature == key.signature && e.order.satisfies(&key.order));
        match found {
            Some(i) => {
                g.stats.hits += 1;
                let p = g.gds_priority(g.entries[i].fill_cost_us, g.entries[i].bytes);
                let e = &mut g.entries[i];
                e.priority = p;
                e.hits += 1;
                Lookup::Hit(CachedRelation {
                    schema: e.schema.clone(),
                    rows: e.rows.clone(),
                    bytes: e.bytes,
                    order: e.order.clone(),
                })
            }
            None => {
                g.stats.misses += 1;
                Lookup::Miss { invalidated }
            }
        }
    }

    /// Admit a fully-materialized fragment result. `deps` are the
    /// `(table, write-version)` pairs read *before* the fragment's SQL
    /// was issued; `fill_cost_us` is the measured wire + server time the
    /// transfer spent producing it (the refetch cost GreedyDual-Size
    /// weighs against size). An entry with the same signature and order
    /// is replaced in place.
    pub fn insert(
        &self,
        key: &FragmentKey,
        schema: Arc<Schema>,
        rows: Vec<Tuple>,
        deps: Vec<(String, u64)>,
        fill_cost_us: f64,
    ) -> Admission {
        let bytes: u64 = rows.iter().map(|t| t.byte_size() as u64).sum();
        let mut g = self.lock();
        if bytes > g.budget {
            g.stats.rejections += 1;
            return Admission { admitted: false, evicted: Vec::new() };
        }
        if let Some(i) =
            g.entries.iter().position(|e| e.signature == key.signature && e.order == key.order)
        {
            let e = g.entries.remove(i);
            g.bytes -= e.bytes;
        }
        let evicted = g.make_room(bytes);
        let priority = g.gds_priority(fill_cost_us, bytes);
        g.entries.push(Entry {
            signature: key.signature.clone(),
            order: key.order.clone(),
            sql: key.sql.clone(),
            schema,
            rows: Arc::new(rows),
            bytes,
            deps,
            fill_cost_us,
            priority,
            hits: 0,
        });
        g.bytes += bytes;
        g.stats.insertions += 1;
        Admission { admitted: true, evicted }
    }

    /// Snapshot which fragments are resident and fresh, for the
    /// optimizer. Stale entries are dropped (as at lookup) so the
    /// snapshot never advertises residency the engine could not serve.
    pub fn residency(&self, version_of: &dyn Fn(&str) -> Option<u64>) -> Residency {
        let mut g = self.lock();
        let mut dropped = Vec::new();
        g.validate(version_of, |_| true, &mut dropped);
        let mut by_signature: HashMap<String, Vec<(SortSpec, u64)>> = HashMap::new();
        for e in &g.entries {
            by_signature.entry(e.signature.clone()).or_default().push((e.order.clone(), e.bytes));
        }
        Residency { by_signature }
    }
}

/// An optimizer-facing snapshot of cache contents: which canonical
/// fragment signatures are resident, in which orders, at what size.
/// Taken once per optimization ([`MidCache::residency`]) so planning
/// sees a consistent view.
#[derive(Debug, Clone, Default)]
pub struct Residency {
    by_signature: HashMap<String, Vec<(SortSpec, u64)>>,
}

impl Residency {
    /// Whether no fragment is resident.
    pub fn is_empty(&self) -> bool {
        self.by_signature.is_empty()
    }

    /// If a fragment with this signature is resident in an order that
    /// [satisfies](SortSpec::satisfies) `required`, the stored byte size
    /// (smallest such entry); `None` otherwise.
    pub fn serves(&self, signature: &str, required: &SortSpec) -> Option<u64> {
        self.by_signature
            .get(signature)?
            .iter()
            .filter(|(order, _)| order.satisfies(required))
            .map(|(_, bytes)| *bytes)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_algebra::{tup, Attr, Expr, Type};

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![Attr::new("A", Type::Int)]))
    }

    fn key(signature: &str) -> FragmentKey {
        FragmentKey {
            signature: signature.to_string(),
            order: SortSpec::none(),
            sql: format!("SELECT {signature}"),
            tables: vec!["T".into()],
        }
    }

    fn rows(n: usize) -> Vec<Tuple> {
        (0..n as i64).map(|i| tup![i]).collect()
    }

    /// The two signature computations — compositional over `TOp` and
    /// erased from a physical fragment — agree on the same shape.
    #[test]
    fn signature_parity_logical_vs_physical() {
        let pred = Expr::eq(Expr::col("PosID"), Expr::lit(7));
        let sig_get = top_signature(&TOp::Get { table: "position".into() }, &[]);
        let sig_sel = top_signature(&TOp::Select { pred: pred.clone() }, &[sig_get]);

        let scan =
            PhysNode { algo: Algo::ScanD("position".into()), schema: schema(), children: vec![] };
        let filter = PhysNode { algo: Algo::FilterD(pred), schema: schema(), children: vec![scan] };
        let k = fragment_key(&filter, "SELECT ...", &|_| false).expect("cacheable");
        assert_eq!(k.signature, sig_sel);
        assert_eq!(k.tables, vec!["POSITION".to_string()]);
        assert_eq!(k.order, SortSpec::none());
    }

    /// A topmost `SORT^D` becomes the key's delivered order; an interior
    /// sort or a temp-table scan makes the fragment uncacheable.
    #[test]
    fn sort_peeling_and_uncacheable_shapes() {
        let scan =
            PhysNode { algo: Algo::ScanD("POSITION".into()), schema: schema(), children: vec![] };
        let sorted = PhysNode {
            algo: Algo::SortD(SortSpec::by(["A"])),
            schema: schema(),
            children: vec![scan.clone()],
        };
        let k = fragment_key(&sorted, "sql", &|_| false).unwrap();
        assert_eq!(k.order, SortSpec::by(["A"]));
        assert_eq!(k.signature, "GET[POSITION]()");

        // interior sort: SEL over SORT^D cannot be keyed
        let sel_over_sort = PhysNode {
            algo: Algo::FilterD(Expr::lit(1)),
            schema: schema(),
            children: vec![sorted],
        };
        assert!(fragment_key(&sel_over_sort, "sql", &|_| false).is_none());

        // temp-table scan: contents are middleware state, not versioned
        assert!(fragment_key(&scan, "sql", &|t| t == "POSITION").is_none());
    }

    #[test]
    fn lookup_miss_then_hit_and_order_satisfaction() {
        let cache = MidCache::new(1 << 20);
        let versions = |_: &str| Some(1);
        let mut k = key("GET[T]()");
        k.order = SortSpec::by(["A"]);
        assert!(matches!(cache.lookup(&k, &versions), Lookup::Miss { .. }));
        cache.insert(&k, schema(), rows(10), vec![("T".into(), 1)], 500.0);
        // stored order (A) satisfies both (A) and the unsorted request
        assert!(matches!(cache.lookup(&k, &versions), Lookup::Hit(_)));
        let unordered = key("GET[T]()");
        match cache.lookup(&unordered, &versions) {
            Lookup::Hit(rel) => assert_eq!(rel.rows.len(), 10),
            other => panic!("expected hit, got {other:?}"),
        }
        // but a different requested order misses
        let mut by_b = key("GET[T]()");
        by_b.order = SortSpec::by(["B"]);
        assert!(matches!(cache.lookup(&by_b, &versions), Lookup::Miss { .. }));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 2));
    }

    /// A moved write-version drops the entry at the next lookup and
    /// reports its SQL for the `invalidate` span event.
    #[test]
    fn version_bump_invalidates() {
        let cache = MidCache::new(1 << 20);
        let k = key("GET[T]()");
        cache.insert(&k, schema(), rows(4), vec![("T".into(), 1)], 100.0);
        assert!(matches!(cache.lookup(&k, &|_| Some(1)), Lookup::Hit(_)));
        match cache.lookup(&k, &|_| Some(2)) {
            Lookup::Miss { invalidated } => assert_eq!(invalidated, vec![k.sql.clone()]),
            other => panic!("expected invalidating miss, got {other:?}"),
        }
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidations, 1);
        // residency snapshots validate too
        cache.insert(&k, schema(), rows(4), vec![("T".into(), 2)], 100.0);
        assert!(cache.residency(&|_| Some(3)).is_empty());
    }

    /// GreedyDual-Size: under pressure the entry with the lowest
    /// cost-per-byte goes first, and the byte budget is never exceeded.
    #[test]
    fn gds_eviction_prefers_cheap_large_entries() {
        let row_bytes = rows(1).iter().map(|t| t.byte_size() as u64).sum::<u64>();
        // room for exactly two 8-row entries
        let cache = MidCache::new(row_bytes * 17);
        let cheap = key("CHEAP");
        let dear = key("DEAR");
        let third = key("THIRD");
        cache.insert(&cheap, schema(), rows(8), vec![], 10.0);
        cache.insert(&dear, schema(), rows(8), vec![], 10_000.0);
        let adm = cache.insert(&third, schema(), rows(8), vec![], 1_000.0);
        assert_eq!(adm.evicted.len(), 1);
        assert_eq!(adm.evicted[0].0, cheap.sql, "cheapest-to-refill entry should go first");
        assert!(cache.bytes() <= cache.budget());
        assert_eq!(cache.len(), 2);
        let v = |_: &str| Some(1);
        assert!(matches!(cache.lookup(&dear, &v), Lookup::Hit(_)));
        assert!(matches!(cache.lookup(&cheap, &v), Lookup::Miss { .. }));
    }

    /// An entry larger than the whole budget is rejected outright rather
    /// than flushing everything else.
    #[test]
    fn oversized_entries_are_rejected() {
        let cache = MidCache::new(16);
        let adm = cache.insert(&key("BIG"), schema(), rows(1000), vec![], 1.0);
        assert!(!adm.admitted);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().rejections, 1);
    }

    /// Same signature + order replaces in place (no duplicate entries);
    /// shrinking the budget evicts down to it.
    #[test]
    fn replacement_and_budget_shrink() {
        let cache = MidCache::new(1 << 20);
        let k = key("GET[T]()");
        cache.insert(&k, schema(), rows(8), vec![], 1.0);
        cache.insert(&k, schema(), rows(4), vec![], 1.0);
        assert_eq!(cache.len(), 1);
        match cache.lookup(&k, &|_| Some(1)) {
            Lookup::Hit(rel) => assert_eq!(rel.rows.len(), 4),
            other => panic!("expected hit, got {other:?}"),
        }
        cache.set_budget(1);
        assert_eq!(cache.len(), 0);
        assert!(cache.bytes() <= 1);
    }

    #[test]
    fn residency_reports_smallest_satisfying_entry() {
        let cache = MidCache::new(1 << 20);
        let mut sorted = key("GET[T]()");
        sorted.order = SortSpec::by(["A"]);
        cache.insert(&sorted, schema(), rows(20), vec![("T".into(), 1)], 1.0);
        cache.insert(&key("GET[T]()"), schema(), rows(5), vec![("T".into(), 1)], 1.0);
        let r = cache.residency(&|_| Some(1));
        let small = r.serves("GET[T]()", &SortSpec::none()).unwrap();
        let ordered = r.serves("GET[T]()", &SortSpec::by(["A"])).unwrap();
        assert!(small < ordered, "unordered request should pick the smaller entry");
        assert!(r.serves("GET[T]()", &SortSpec::by(["B"])).is_none());
        assert!(r.serves("OTHER", &SortSpec::none()).is_none());
    }

    #[test]
    fn explicit_table_invalidation() {
        let cache = MidCache::new(1 << 20);
        cache.insert(&key("A"), schema(), rows(2), vec![("T".into(), 1)], 1.0);
        let mut other = key("B");
        other.tables = vec!["U".into()];
        cache.insert(&other, schema(), rows(2), vec![("U".into(), 1)], 1.0);
        assert_eq!(cache.invalidate_table("t"), 1);
        assert_eq!(cache.len(), 1);
    }
}
