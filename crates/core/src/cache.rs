//! The middleware relation cache (`MidCache`).
//!
//! The paper's Figure 10 shows the temporal join running ~2× faster when
//! one argument *already resides in the middleware*. This module makes
//! residency a first-class state instead of a hand-staged benchmark
//! setup: materialized results of DBMS fragments shipped over
//! `TRANSFER^M` are retained in a byte-budgeted store, the optimizer
//! prices transfers over resident fragments at near-zero wire cost (and
//! may flip join-side placement because of it), and the engine serves
//! hits from memory without issuing any SQL.
//!
//! Since the serving-tier refactor the cache is **shared and
//! concurrent**: one `MidCache` lives at `Database` scope (every
//! [`crate::Tango`] session attached to the same database sees the same
//! residency — a fragment one session paid to fetch is a warm hit for
//! all of them), and the store is sharded so parallel sessions do not
//! serialize on one lock. See `docs/CONCURRENCY.md` for the full
//! serving model.
//!
//! # Sharding and locking
//!
//! Entries are spread over [`MidCache::shard_count`] shards by a hash
//! of the fragment signature; each shard is an independent `RwLock`'d
//! store with its own [`CacheStats`]. All cross-shard state — total
//! bytes, the byte budget, the GreedyDual-Size clock, the admission
//! frequency sketch — is atomic or behind a leaf mutex, and no
//! operation ever holds two shard locks at once (the global budget is
//! enforced by evicting one shard at a time), so the cache cannot
//! deadlock and scales with the shard count.
//!
//! # Keying — canonical fragment signatures
//!
//! An entry is keyed by the **canonical signature** of the DBMS fragment
//! that produced it plus the **delivered sort order**. The signature is
//! a syntactic normal form over the temporal-algebra shape of the
//! fragment — `SEL[PayRate > 10](GET[POSITION]())` — computed two ways
//! that agree by construction:
//!
//! * the optimizer derives it compositionally for every memo group
//!   ([`top_signature`], stored in `GroupProps`), and
//! * the engine erases a physical fragment back to the same form
//!   ([`fragment_key`]), peeling a topmost `SORT^D` into the entry's
//!   delivered order.
//!
//! A `TRANSFER^M` whose child group's signature is resident with a
//! [satisfying](tango_algebra::SortSpec::satisfies) order is a **hit**.
//! Matching is deliberately conservative: it is syntactic, so two
//! semantically equal but differently-shaped fragments miss — a miss
//! only costs the normal transfer, never correctness.
//!
//! Fragments containing temp-table scans (`TRANSFER^D` results), or
//! interior sorts below other operators, are **uncacheable**: their
//! contents are not a pure function of base-table state (or their order
//! cannot be represented in the key). The engine annotates such
//! transfers `cache bypass`.
//!
//! # Staleness — no longer binary
//!
//! Every entry records the [write-version](tango_minidb::Database::table_version)
//! of each base table it was computed from. `tango-minidb` bumps a
//! table's version on every INSERT/DELETE/UPDATE, so `versions
//! unchanged ⇒ contents unchanged`. Entries are validated lazily — at
//! lookup and when the optimizer snapshots residency — but a moved
//! dependency no longer always drops the entry. Lookup is tri-state:
//!
//! * **Fresh** — every dependency version unchanged: a [`Lookup::Hit`].
//! * **Stale** — versions moved but every moved table's
//!   [delta log](tango_minidb::delta::DeltaLog) still covers the entry's
//!   snapshot: the entry is *kept* and returned as [`Lookup::Stale`]
//!   with the replay byte count, so the engine can price
//!   **refresh-by-delta** against **refetch** against **drop**
//!   ([`maintenance_choice`]) instead of always paying a cold refill.
//! * **Gone** — some moved table's log no longer covers the snapshot
//!   (compaction, in-place UPDATE, dropped table): the entry is dropped
//!   exactly as before (an `invalidate` span event).
//!
//! Because versions are read *before* a fragment's SQL is issued, a
//! write racing a populating query always invalidates the entry that
//! query admits — cross-session invalidation needs no extra machinery.
//! A successful refresh replaces the entry's rows and dependency
//! versions in place ([`MidCache::refresh`], counted in
//! [`CacheStats::refreshes`]/[`CacheStats::refresh_bytes`]); a bailed
//! refresh ([`CacheStats::refresh_bails`]) degrades to the refetch
//! path, which drops the stale entry first.
//!
//! # Admission — TinyLFU frequency gating
//!
//! Under byte pressure, inserting means evicting, and evicting the
//! wrong entry under contention is how shared caches churn. When an
//! insert would force eviction (and only then — an unpressured cache
//! admits everything), the candidate must *win* its shard's space:
//!
//! * fragments **cheaper to refetch than the space they occupy**
//!   (measured fill cost below [`ADMISSION_MIN_FILL_US_PER_BYTE`] per
//!   byte) are rejected outright — serving them from cache could never
//!   repay the bytes; and
//! * otherwise the candidate's access frequency — estimated by a small
//!   count-min sketch touched on every lookup and insert, TinyLFU
//!   style — must strictly exceed the would-be victim's; ties keep the
//!   incumbent. A fragment that keeps missing accumulates frequency
//!   and wins admission on a later attempt, so hot fragments displace
//!   cold ones but a one-off scan cannot flush the working set.
//!
//! Rejections are counted per shard ([`CacheStats::admission_rejects`])
//! and the gate can be disabled ([`MidCache::set_admission`], surfaced
//! as [`crate::TangoOptions::cache_admission`]).
//!
//! # Eviction — GreedyDual-Size
//!
//! The store keeps an inflation clock `L`; an entry's priority is
//! `L + fill_cost/size` where `fill_cost` is the measured wire+server
//! time the entry saved. Eviction removes the minimum-priority entry
//! (across all shards, scanned one lock at a time) and advances `L` to
//! its priority; a hit refreshes the entry's priority against the
//! current clock. This is the classic GreedyDual-Size policy: recency,
//! byte footprint and the real cost of refetching all trade off in one
//! number, and plain LRU falls out when fetch costs are uniform per
//! byte. Entries larger than the whole budget are never admitted.
//!
//! # Exactly-one populate
//!
//! Two sessions can miss on the same cold fragment concurrently and
//! both drain it cleanly. The second [`MidCache::insert`] of an entry
//! whose signature, order and dependency versions match one already
//! resident is a **duplicate**: it is dropped without touching the
//! store ([`AdmitOutcome::Duplicate`]), so `cache_bytes` is counted
//! once no matter how many sessions raced the populate. An insert
//! carrying *older* dependency versions than the resident entry is
//! likewise dropped (it lost a race against a fresher populate), while
//! newer versions replace the incumbent.

use crate::cost::CostFactors;
use crate::phys::{Algo, PhysNode, TOp};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use tango_algebra::{ProjItem, Schema, SortSpec, Tuple};

/// Default cache budget used by a new session: 64 MiB.
pub const DEFAULT_CACHE_BUDGET: u64 = 64 * 1024 * 1024;

/// Default number of shards of a shared cache. Eight keeps per-shard
/// contention negligible for tens of concurrent sessions while the
/// per-shard stores stay large enough for GreedyDual-Size to rank
/// meaningfully.
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// Admission floor: under byte pressure, a fragment whose measured fill
/// cost is below this many µs per byte is cheaper to refetch than the
/// space it would occupy (serving a resident byte itself costs
/// `p_cached` ≈ 0.004 µs) and is never admitted.
pub const ADMISSION_MIN_FILL_US_PER_BYTE: f64 = 0.01;

fn canon(name: &str, params: &str, children: &[String]) -> String {
    format!("{name}[{params}]({})", children.join(","))
}

fn eq_params(eq: &[(String, String)]) -> String {
    eq.iter().map(|(l, r)| format!("{l}={r}")).collect::<Vec<_>>().join(",")
}

fn proj_params(items: &[ProjItem]) -> String {
    items.iter().map(|it| format!("{}={}", it.alias, it.expr)).collect::<Vec<_>>().join(",")
}

fn taggr_params(group_by: &[String], aggs: &[tango_algebra::AggSpec]) -> String {
    format!(
        "{};{}",
        group_by.join(","),
        aggs.iter().map(ToString::to_string).collect::<Vec<_>>().join(",")
    )
}

/// Canonical signature of a logical operator over its children's
/// signatures. The optimizer calls this in `derive_props`, so every memo
/// group knows the signature of the fragment it denotes; the engine-side
/// [`fragment_key`] erases physical fragments to the identical form.
pub fn top_signature(op: &TOp, children: &[String]) -> String {
    match op {
        TOp::Get { table } => canon("GET", &table.to_uppercase(), &[]),
        TOp::Select { pred } => canon("SEL", &pred.to_string(), children),
        TOp::Project { items } => canon("PROJ", &proj_params(items), children),
        TOp::Join { eq } => canon("JOIN", &eq_params(eq), children),
        TOp::TJoin { eq } => canon("TJOIN", &eq_params(eq), children),
        TOp::Product => canon("PROD", "", children),
        TOp::TAggr { group_by, aggs } => canon("TAGGR", &taggr_params(group_by, aggs), children),
        TOp::DupElim => canon("DUP", "", children),
        TOp::Coalesce => canon("COAL", "", children),
        TOp::Diff => canon("DIFF", "", children),
    }
}

/// The identity of a cacheable DBMS fragment: canonical signature,
/// delivered sort order, the rendered SQL (kept for observability — the
/// signature, not the SQL text, is the match key) and the base tables
/// the fragment reads.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentKey {
    /// Canonical fragment signature; see [`top_signature`].
    pub signature: String,
    /// Sort order the fragment delivers (a topmost `SORT^D`'s spec,
    /// [`SortSpec::none`] otherwise).
    pub order: SortSpec,
    /// The SQL the fragment renders to — display/debugging only.
    pub sql: String,
    /// Upper-cased base tables read by the fragment, deduplicated.
    pub tables: Vec<String>,
}

/// Compute the cache key of a physical DBMS fragment (the subtree below
/// a `TRANSFER^M`, after temp-table lowering). Returns `None` — meaning
/// *uncacheable*, rendered as `cache bypass` — when the fragment scans a
/// temp table (its contents depend on middleware state, not base-table
/// versions), contains an interior sort, or contains any non-DBMS
/// operator. `is_temp` decides which scanned names are temp tables.
pub fn fragment_key(
    fragment: &PhysNode,
    sql: &str,
    is_temp: &dyn Fn(&str) -> bool,
) -> Option<FragmentKey> {
    let (inner, order) = match &fragment.algo {
        Algo::SortD(spec) => (&fragment.children[0], spec.clone()),
        _ => (fragment, SortSpec::none()),
    };
    let mut tables = Vec::new();
    let signature = erase(inner, is_temp, &mut tables)?;
    tables.sort();
    tables.dedup();
    Some(FragmentKey { signature, order, sql: sql.to_string(), tables })
}

/// Erase a physical DBMS operator tree to its canonical signature,
/// collecting base-table names. `None` ⇒ uncacheable.
fn erase(
    node: &PhysNode,
    is_temp: &dyn Fn(&str) -> bool,
    tables: &mut Vec<String>,
) -> Option<String> {
    let kids: Option<Vec<String>> =
        node.children.iter().map(|c| erase(c, is_temp, tables)).collect();
    let kids = kids?;
    Some(match &node.algo {
        Algo::ScanD(t) => {
            if is_temp(t) {
                return None;
            }
            tables.push(t.to_uppercase());
            canon("GET", &t.to_uppercase(), &[])
        }
        Algo::FilterD(pred) => canon("SEL", &pred.to_string(), &kids),
        Algo::ProjectD(items) => canon("PROJ", &proj_params(items), &kids),
        Algo::JoinD(eq) => canon("JOIN", &eq_params(eq), &kids),
        Algo::TJoinD(eq) => canon("TJOIN", &eq_params(eq), &kids),
        Algo::ProductD => canon("PROD", "", &kids),
        Algo::TAggrD { group_by, aggs } => canon("TAGGR", &taggr_params(group_by, aggs), &kids),
        Algo::DupElimD => canon("DUP", "", &kids),
        // an interior sort's order is not representable in the key, and
        // any middleware algorithm or TRANSFER^D means this is not a
        // pure DBMS fragment
        _ => return None,
    })
}

/// A materialized relation served from the cache: shared, immutable.
#[derive(Debug, Clone)]
pub struct CachedRelation {
    /// Output schema of the cached fragment.
    pub schema: Arc<Schema>,
    /// The materialized tuples, shared with the store.
    pub rows: Arc<Vec<Tuple>>,
    /// Encoded byte size of the entry.
    pub bytes: u64,
    /// Sort order the rows are stored in.
    pub order: SortSpec,
}

/// Outcome of a [`MidCache::lookup`].
#[derive(Debug)]
pub enum Lookup {
    /// A fresh entry with a satisfying order was found.
    Hit(CachedRelation),
    /// A stale-but-refreshable entry was found: its base tables moved,
    /// but every moved table's delta log still covers the entry's
    /// snapshot. The entry stays resident; the engine prices
    /// refresh-by-delta against refetch against drop
    /// ([`maintenance_choice`]) using the carried [`StaleEntry`].
    Stale {
        /// The stale entry's contents and maintenance inputs.
        entry: StaleEntry,
        /// SQL texts of *other* entries invalidated during this lookup.
        invalidated: Vec<String>,
    },
    /// No usable entry. `invalidated` lists the SQL of same-signature
    /// entries dropped because a base table's version moved — the engine
    /// turns each into an `invalidate` span event.
    Miss {
        /// SQL texts of entries invalidated during this lookup.
        invalidated: Vec<String>,
    },
}

/// A stale cache entry surfaced by [`Lookup::Stale`]: everything the
/// engine needs to price and execute refresh-by-delta without holding
/// the shard lock.
#[derive(Debug, Clone)]
pub struct StaleEntry {
    /// Output schema of the cached fragment.
    pub schema: Arc<Schema>,
    /// The stale base rows, shared with the store.
    pub rows: Arc<Vec<Tuple>>,
    /// Encoded byte size of the stale base.
    pub bytes: u64,
    /// Sort order the rows are stored in (the order a refresh must
    /// restore, and the `order` to address the entry by on
    /// [`MidCache::refresh`]/[`MidCache::remove`]).
    pub order: SortSpec,
    /// `(table, write-version)` dependencies recorded at fill time —
    /// the versions a delta replay must start from.
    pub deps: Vec<(String, u64)>,
    /// Total replay bytes pending across all moved dependencies.
    pub delta_bytes: u64,
    /// Measured fill cost of the original populate (the refetch price).
    pub fill_cost_us: f64,
    /// Hits the entry has served — the demand signal in the
    /// refresh-benefit estimate.
    pub hits: u64,
    /// The SQL the entry was filled from (for span events).
    pub sql: String,
}

/// Why an [`MidCache::insert`] did or did not store its relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// The relation was stored (possibly replacing a staler entry).
    Admitted,
    /// Rejected: larger than the entire byte budget.
    Oversized,
    /// Dropped: an entry with the same signature, order and equal-or-
    /// newer dependency versions is already resident — a concurrent
    /// session populated first (the exactly-one-populate guarantee).
    Duplicate,
    /// Rejected by the TinyLFU admission gate: under byte pressure the
    /// candidate was cheaper to refetch than to store, or not accessed
    /// frequently enough to displace the eviction victim.
    Rejected,
}

/// Outcome of a [`MidCache::insert`].
#[derive(Debug)]
pub struct Admission {
    /// Whether the relation was stored.
    pub admitted: bool,
    /// Why (not).
    pub outcome: AdmitOutcome,
    /// `(sql, bytes)` of entries evicted to make room — the engine turns
    /// each into an `evict` span event.
    pub evicted: Vec<(String, u64)>,
}

impl Admission {
    fn skipped(outcome: AdmitOutcome) -> Admission {
        Admission { admitted: false, outcome, evicted: Vec::new() }
    }
}

/// Monotonic activity counters of a [`MidCache`] (or of one shard; see
/// [`MidCache::shard_stats`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a fresh entry.
    pub hits: u64,
    /// Lookups that found no usable entry.
    pub misses: u64,
    /// Transfers whose fragment was uncacheable (see [`fragment_key`]).
    /// Tracked cache-wide, not per shard (a bypassed fragment never
    /// hashes to a shard).
    pub bypasses: u64,
    /// Relations admitted (including replacements).
    pub insertions: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Entries dropped because a dependency's write-version moved.
    pub invalidations: u64,
    /// Insertions rejected because the relation exceeds the budget.
    pub rejections: u64,
    /// Insertions rejected by the TinyLFU admission gate (under byte
    /// pressure: refetch cheaper than the space, or candidate frequency
    /// not above the victim's).
    pub admission_rejects: u64,
    /// Insertions dropped because a concurrent session already
    /// populated the same (or a fresher) entry.
    pub duplicate_populates: u64,
    /// Stale entries brought current by delta replay
    /// ([`MidCache::refresh`]).
    pub refreshes: u64,
    /// Total delta bytes replayed by successful refreshes — the wire
    /// traffic that replaced full refills.
    pub refresh_bytes: u64,
    /// Refresh attempts that bailed (unsupported shape, ambiguous
    /// merge, racing write, wire fault) and degraded to refetch/drop.
    pub refresh_bails: u64,
}

impl CacheStats {
    fn add(&mut self, o: &CacheStats) {
        self.hits += o.hits;
        self.misses += o.misses;
        self.bypasses += o.bypasses;
        self.insertions += o.insertions;
        self.evictions += o.evictions;
        self.invalidations += o.invalidations;
        self.rejections += o.rejections;
        self.admission_rejects += o.admission_rejects;
        self.duplicate_populates += o.duplicate_populates;
        self.refreshes += o.refreshes;
        self.refresh_bytes += o.refresh_bytes;
        self.refresh_bails += o.refresh_bails;
    }

    /// Whether every counter is zero (the shard saw no activity).
    pub fn is_idle(&self) -> bool {
        *self == CacheStats::default()
    }
}

#[derive(Debug)]
struct Entry {
    signature: String,
    /// [`sig_hash`] of `signature` — the sketch/shard key, precomputed.
    hash: u64,
    order: SortSpec,
    sql: String,
    schema: Arc<Schema>,
    rows: Arc<Vec<Tuple>>,
    bytes: u64,
    /// `(table, write-version)` dependencies recorded at fill time.
    deps: Vec<(String, u64)>,
    fill_cost_us: f64,
    /// GreedyDual-Size priority: clock-at-touch + fill_cost/size.
    priority: f64,
    hits: u64,
}

/// Freshness of an entry against current table versions and delta-log
/// coverage. `Stale` carries the total replay bytes pending.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Freshness {
    Fresh,
    Stale(u64),
    Gone,
}

impl Entry {
    /// Classify this entry: `Fresh` if no dependency version moved,
    /// `Stale(delta_bytes)` if every moved table's delta log still
    /// covers the recorded snapshot version, `Gone` otherwise (dropped
    /// table, compacted log, poisoned log, or no delta source at all).
    fn freshness(
        &self,
        version_of: &dyn Fn(&str) -> Option<u64>,
        delta_bytes_of: &dyn Fn(&str, u64) -> Option<u64>,
    ) -> Freshness {
        let mut delta = 0u64;
        let mut stale = false;
        for (t, v) in &self.deps {
            match version_of(t) {
                Some(cur) if cur == *v => {}
                Some(_) => match delta_bytes_of(t, *v) {
                    Some(b) => {
                        stale = true;
                        delta += b;
                    }
                    None => return Freshness::Gone,
                },
                None => return Freshness::Gone,
            }
        }
        if stale {
            Freshness::Stale(delta)
        } else {
            Freshness::Fresh
        }
    }
}

/// One lock's worth of the store.
#[derive(Debug, Default)]
struct Shard {
    entries: Vec<Entry>,
    stats: CacheStats,
}

impl Shard {
    /// Drop entries that are [`Freshness::Gone`] — stale with no delta
    /// coverage — appending their SQL to `invalidated` and returning the
    /// bytes freed. Stale-but-covered entries are kept (the engine
    /// decides their fate via [`maintenance_choice`]). `filter`
    /// restricts which entries are checked.
    fn validate(
        &mut self,
        version_of: &dyn Fn(&str) -> Option<u64>,
        delta_bytes_of: &dyn Fn(&str, u64) -> Option<u64>,
        filter: impl Fn(&Entry) -> bool,
        invalidated: &mut Vec<String>,
    ) -> u64 {
        let mut freed = 0;
        let mut i = 0;
        while i < self.entries.len() {
            let e = &self.entries[i];
            if filter(e) && e.freshness(version_of, delta_bytes_of) == Freshness::Gone {
                let e = self.entries.remove(i);
                freed += e.bytes;
                self.stats.invalidations += 1;
                invalidated.push(e.sql);
            } else {
                i += 1;
            }
        }
        freed
    }

    fn min_priority_index(&self) -> Option<usize> {
        self.entries
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.priority.total_cmp(&b.priority))
            .map(|(i, _)| i)
    }
}

/// FNV-1a hash of a fragment signature — the key both the shard map and
/// the admission sketch are driven by.
pub fn sig_hash(signature: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in signature.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

const SKETCH_ROWS: usize = 4;
const SKETCH_WIDTH: usize = 1024; // power of two
const SKETCH_CAP: u8 = 15;

/// A count-min sketch with saturating 4-bit-style counters and periodic
/// halving — the frequency memory of the TinyLFU admission gate. Tiny
/// (4 KiB), touched once per transfer, behind its own leaf mutex.
#[derive(Debug)]
struct FreqSketch {
    rows: Vec<[u8; SKETCH_WIDTH]>,
    /// Touches since the last aging pass.
    ops: u32,
}

impl FreqSketch {
    fn new() -> FreqSketch {
        FreqSketch { rows: vec![[0; SKETCH_WIDTH]; SKETCH_ROWS], ops: 0 }
    }

    fn slot(h: u64, row: usize) -> usize {
        (splitmix(h ^ (row as u64).wrapping_mul(0xA076_1D64_78BD_642F)) as usize)
            & (SKETCH_WIDTH - 1)
    }

    /// Record one access and return the new estimate.
    fn touch(&mut self, h: u64) -> u8 {
        let mut est = u8::MAX;
        for r in 0..SKETCH_ROWS {
            let c = &mut self.rows[r][Self::slot(h, r)];
            if *c < SKETCH_CAP {
                *c += 1;
            }
            est = est.min(*c);
        }
        self.ops += 1;
        if self.ops as usize >= SKETCH_WIDTH * 8 {
            // age: halve every counter so frequency means *recent* use
            for row in &mut self.rows {
                for c in row.iter_mut() {
                    *c /= 2;
                }
            }
            self.ops = 0;
        }
        est
    }

    fn estimate(&self, h: u64) -> u8 {
        (0..SKETCH_ROWS).map(|r| self.rows[r][Self::slot(h, r)]).min().unwrap_or(0)
    }
}

/// The middleware-resident relation cache — shared, sharded, concurrent.
///
/// One instance is held at `Database` scope and consulted by every
/// session ([`crate::Tango::connect`] attaches to the shared instance;
/// [`crate::Tango::connect_private`] opts out). All operations are safe
/// to call from any number of threads; see the module docs for the
/// locking discipline.
#[derive(Debug)]
pub struct MidCache {
    shards: Vec<RwLock<Shard>>,
    /// Total bytes stored, across shards.
    bytes: AtomicU64,
    /// The global byte budget.
    budget: AtomicU64,
    /// Whether the TinyLFU admission gate is active.
    admission: AtomicBool,
    /// Whether lookups may surface stale-but-delta-covered entries for
    /// refresh-by-delta (off = binary drop-on-write staleness).
    refreshing: AtomicBool,
    /// GreedyDual-Size inflation clock `L` (f64 bits; non-negative, so
    /// integer `fetch_max` is order-preserving).
    clock: AtomicU64,
    /// Uncacheable-fragment counter (bypasses never reach a shard).
    bypasses: AtomicU64,
    sketch: Mutex<FreqSketch>,
}

impl MidCache {
    /// An empty cache with the given byte budget and
    /// [`DEFAULT_CACHE_SHARDS`] shards.
    pub fn new(budget: u64) -> MidCache {
        MidCache::with_shards(budget, DEFAULT_CACHE_SHARDS)
    }

    /// An empty cache with the given byte budget and shard count
    /// (clamped to at least 1).
    pub fn with_shards(budget: u64, shards: usize) -> MidCache {
        MidCache {
            shards: (0..shards.max(1)).map(|_| RwLock::new(Shard::default())).collect(),
            bytes: AtomicU64::new(0),
            budget: AtomicU64::new(budget),
            admission: AtomicBool::new(true),
            refreshing: AtomicBool::new(true),
            clock: AtomicU64::new(0f64.to_bits()),
            bypasses: AtomicU64::new(0),
            sketch: Mutex::new(FreqSketch::new()),
        }
    }

    /// Number of shards the store is spread over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, hash: u64) -> usize {
        (hash % self.shards.len() as u64) as usize
    }

    fn clock_load(&self) -> f64 {
        f64::from_bits(self.clock.load(Ordering::Relaxed))
    }

    fn clock_raise(&self, to: f64) {
        // non-negative f64s order like their bit patterns
        self.clock.fetch_max(to.max(0.0).to_bits(), Ordering::Relaxed);
    }

    fn gds_priority(&self, fill_cost_us: f64, bytes: u64) -> f64 {
        self.clock_load() + fill_cost_us / bytes.max(1) as f64
    }

    /// The byte budget.
    pub fn budget(&self) -> u64 {
        self.budget.load(Ordering::Relaxed)
    }

    /// Change the byte budget, evicting (by priority) down to the new
    /// limit if it shrank.
    pub fn set_budget(&self, budget: u64) {
        self.budget.store(budget, Ordering::Relaxed);
        self.enforce_budget();
    }

    /// Whether the TinyLFU admission gate is active (it is by default).
    pub fn admission(&self) -> bool {
        self.admission.load(Ordering::Relaxed)
    }

    /// Enable or disable the admission gate. Disabled, every cleanly
    /// drained cacheable fragment is admitted (pre-serving-tier
    /// behavior), relying on GreedyDual-Size eviction alone.
    pub fn set_admission(&self, on: bool) {
        self.admission.store(on, Ordering::Relaxed);
    }

    /// Whether incremental maintenance is active (it is by default):
    /// lookups surface stale-but-delta-covered entries as
    /// [`Lookup::Stale`] and the engine prices refresh-by-delta against
    /// refetch and drop.
    pub fn refresh_enabled(&self) -> bool {
        self.refreshing.load(Ordering::Relaxed)
    }

    /// Enable or disable incremental maintenance. Disabled, the engine
    /// passes no delta source and every version-moved entry is dropped
    /// at lookup — the pre-delta-log drop-on-write baseline.
    pub fn set_refresh(&self, on: bool) {
        self.refreshing.store(on, Ordering::Relaxed);
    }

    /// Total bytes currently stored, across all shards.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().entries.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().entries.is_empty())
    }

    /// Activity counters since creation (or the last [`MidCache::clear`];
    /// clearing resets contents, not counters), summed across shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            total.add(&s.read().stats);
        }
        total.bypasses += self.bypasses.load(Ordering::Relaxed);
        total
    }

    /// Per-shard activity counters, indexed by shard. Bypasses are
    /// cache-wide and appear only in the [`MidCache::stats`] aggregate.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(|s| s.read().stats).collect()
    }

    /// Entry count per shard (the shard-layout view `tango-trace`
    /// reports alongside the counters).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.read().entries.len()).collect()
    }

    /// Drop every entry. Counters are preserved.
    pub fn clear(&self) {
        for s in &self.shards {
            let mut g = s.write();
            let freed: u64 = g.entries.iter().map(|e| e.bytes).sum();
            g.entries.clear();
            self.bytes.fetch_sub(freed, Ordering::Relaxed);
        }
    }

    /// Record that a transfer's fragment was uncacheable.
    pub fn note_bypass(&self) {
        self.bypasses.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop all entries that depend on `table` (any version). Validation
    /// at lookup already catches stale entries lazily; this is for
    /// explicit invalidation, e.g. after `DROP TABLE`.
    pub fn invalidate_table(&self, table: &str) -> usize {
        let t = table.to_uppercase();
        let mut n = 0;
        for s in &self.shards {
            let mut g = s.write();
            let mut freed = 0;
            let before = g.entries.len();
            g.entries.retain(|e| {
                let dep = e.deps.iter().any(|(d, _)| *d == t);
                if dep {
                    freed += e.bytes;
                }
                !dep
            });
            let dropped = before - g.entries.len();
            g.stats.invalidations += dropped as u64;
            n += dropped;
            self.bytes.fetch_sub(freed, Ordering::Relaxed);
        }
        n
    }

    /// Look up a fragment. A hit requires a fresh entry (every recorded
    /// table version unchanged per `version_of`) with the same signature
    /// and a stored order that [satisfies](SortSpec::satisfies) the
    /// requested one. A stale entry whose moved tables are all covered
    /// by `delta_bytes_of` (delta-log replay bytes since the recorded
    /// version, `None` = uncovered) is returned as [`Lookup::Stale`]
    /// instead of being dropped; passing `&|_, _| None` restores the
    /// binary drop-on-write behavior. Hits refresh the entry's
    /// GreedyDual-Size priority; every lookup feeds the admission
    /// frequency sketch. Stale lookups count as neither hit nor miss —
    /// the engine's maintenance decision settles them
    /// ([`CacheStats::refreshes`] or [`CacheStats::invalidations`]).
    pub fn lookup(
        &self,
        key: &FragmentKey,
        version_of: &dyn Fn(&str) -> Option<u64>,
        delta_bytes_of: &dyn Fn(&str, u64) -> Option<u64>,
    ) -> Lookup {
        let hash = sig_hash(&key.signature);
        self.sketch.lock().touch(hash);
        let mut g = self.shards[self.shard_of(hash)].write();
        let mut invalidated = Vec::new();
        let freed = g.validate(
            version_of,
            delta_bytes_of,
            |e| e.signature == key.signature,
            &mut invalidated,
        );
        self.bytes.fetch_sub(freed, Ordering::Relaxed);
        // prefer a fresh entry; fall back to the cheapest stale one
        let mut fresh: Option<usize> = None;
        let mut stale: Option<(usize, u64)> = None;
        for (i, e) in g.entries.iter().enumerate() {
            if e.signature != key.signature || !e.order.satisfies(&key.order) {
                continue;
            }
            match e.freshness(version_of, delta_bytes_of) {
                Freshness::Fresh => {
                    fresh = Some(i);
                    break;
                }
                Freshness::Stale(d) => {
                    if stale.map(|(j, dj)| d + e.bytes < dj + g.entries[j].bytes).unwrap_or(true) {
                        stale = Some((i, d));
                    }
                }
                Freshness::Gone => {} // validate already removed these
            }
        }
        if let Some(i) = fresh {
            g.stats.hits += 1;
            let p = self.gds_priority(g.entries[i].fill_cost_us, g.entries[i].bytes);
            let e = &mut g.entries[i];
            e.priority = p;
            e.hits += 1;
            return Lookup::Hit(CachedRelation {
                schema: e.schema.clone(),
                rows: e.rows.clone(),
                bytes: e.bytes,
                order: e.order.clone(),
            });
        }
        if let Some((i, delta_bytes)) = stale {
            let e = &g.entries[i];
            return Lookup::Stale {
                entry: StaleEntry {
                    schema: e.schema.clone(),
                    rows: e.rows.clone(),
                    bytes: e.bytes,
                    order: e.order.clone(),
                    deps: e.deps.clone(),
                    delta_bytes,
                    fill_cost_us: e.fill_cost_us,
                    hits: e.hits,
                    sql: e.sql.clone(),
                },
                invalidated,
            };
        }
        g.stats.misses += 1;
        Lookup::Miss { invalidated }
    }

    /// Admit a fully-materialized fragment result. `deps` are the
    /// `(table, write-version)` pairs read *before* the fragment's SQL
    /// was issued; `fill_cost_us` is the measured wire + server time the
    /// transfer spent producing it (the refetch cost GreedyDual-Size
    /// weighs against size).
    ///
    /// Concurrency semantics (see module docs): an already-resident
    /// entry with the same signature, order and equal-or-newer deps
    /// makes this insert a no-op [`AdmitOutcome::Duplicate`]; a staler
    /// incumbent is replaced. Under byte pressure the TinyLFU gate may
    /// return [`AdmitOutcome::Rejected`] instead of evicting.
    pub fn insert(
        &self,
        key: &FragmentKey,
        schema: Arc<Schema>,
        rows: Vec<Tuple>,
        deps: Vec<(String, u64)>,
        fill_cost_us: f64,
    ) -> Admission {
        let bytes: u64 = rows.iter().map(|t| t.byte_size() as u64).sum();
        let hash = sig_hash(&key.signature);
        let freq = self.sketch.lock().touch(hash);
        let shard = self.shard_of(hash);
        {
            let mut g = self.shards[shard].write();
            if bytes > self.budget() {
                g.stats.rejections += 1;
                return Admission::skipped(AdmitOutcome::Oversized);
            }
            if let Some(i) =
                g.entries.iter().position(|e| e.signature == key.signature && e.order == key.order)
            {
                if !newer_deps(&deps, &g.entries[i].deps) {
                    // a concurrent session populated the same (or a
                    // fresher) entry first: exactly-one-populate
                    g.stats.duplicate_populates += 1;
                    return Admission::skipped(AdmitOutcome::Duplicate);
                }
                let old = g.entries.remove(i);
                self.bytes.fetch_sub(old.bytes, Ordering::Relaxed);
            }
            let pressured = self.bytes() + bytes > self.budget();
            if pressured && self.admission() {
                if fill_cost_us < bytes as f64 * ADMISSION_MIN_FILL_US_PER_BYTE {
                    // cheaper to refetch than the space it occupies
                    g.stats.admission_rejects += 1;
                    return Admission::skipped(AdmitOutcome::Rejected);
                }
                if let Some(v) = g.min_priority_index() {
                    let victim_freq = self.sketch.lock().estimate(g.entries[v].hash);
                    if freq <= victim_freq {
                        // not hot enough to displace the incumbent
                        g.stats.admission_rejects += 1;
                        return Admission::skipped(AdmitOutcome::Rejected);
                    }
                }
            }
            let priority = self.gds_priority(fill_cost_us, bytes);
            g.entries.push(Entry {
                signature: key.signature.clone(),
                hash,
                order: key.order.clone(),
                sql: key.sql.clone(),
                schema,
                rows: Arc::new(rows),
                bytes,
                deps,
                fill_cost_us,
                priority,
                hits: 0,
            });
            self.bytes.fetch_add(bytes, Ordering::Relaxed);
            g.stats.insertions += 1;
        }
        let evicted = self.enforce_budget();
        Admission { admitted: true, outcome: AdmitOutcome::Admitted, evicted }
    }

    /// Commit a refresh-by-delta: replace the entry addressed by
    /// `key.signature` + `key.order` (the *stored* order from
    /// [`StaleEntry::order`], not the requested one) with the merged
    /// rows and the post-replay dependency versions. `delta_bytes` is
    /// the replay traffic, counted in [`CacheStats::refresh_bytes`].
    ///
    /// Returns `false` without touching the store when the entry
    /// vanished (evicted concurrently) or already carries newer deps (a
    /// racing session refreshed or repopulated first) — the caller's
    /// merged rows are still correct to serve, they just do not enter
    /// the cache. Counted as a hit too: the query was served from
    /// resident bytes plus a delta, not a refill.
    pub fn refresh(
        &self,
        key: &FragmentKey,
        rows: Arc<Vec<Tuple>>,
        deps: Vec<(String, u64)>,
        delta_bytes: u64,
    ) -> bool {
        let bytes: u64 = rows.iter().map(|t| t.byte_size() as u64).sum();
        let hash = sig_hash(&key.signature);
        {
            let mut g = self.shards[self.shard_of(hash)].write();
            let Some(i) =
                g.entries.iter().position(|e| e.signature == key.signature && e.order == key.order)
            else {
                return false;
            };
            if !newer_deps(&deps, &g.entries[i].deps) {
                return false;
            }
            let p = self.gds_priority(g.entries[i].fill_cost_us, bytes);
            let e = &mut g.entries[i];
            let old_bytes = e.bytes;
            e.rows = rows;
            e.bytes = bytes;
            e.deps = deps;
            e.priority = p;
            e.hits += 1;
            self.bytes.fetch_add(bytes, Ordering::Relaxed);
            self.bytes.fetch_sub(old_bytes, Ordering::Relaxed);
            g.stats.refreshes += 1;
            g.stats.refresh_bytes += delta_bytes;
            g.stats.hits += 1;
        }
        self.enforce_budget();
        true
    }

    /// Drop the entry addressed by `key.signature` + `key.order`
    /// exactly (counted as an invalidation). The engine calls this when
    /// the maintenance decision for a stale entry is refetch or drop.
    pub fn remove(&self, key: &FragmentKey) -> bool {
        let hash = sig_hash(&key.signature);
        let mut g = self.shards[self.shard_of(hash)].write();
        if let Some(i) =
            g.entries.iter().position(|e| e.signature == key.signature && e.order == key.order)
        {
            let e = g.entries.remove(i);
            self.bytes.fetch_sub(e.bytes, Ordering::Relaxed);
            g.stats.invalidations += 1;
            true
        } else {
            false
        }
    }

    /// Peek at a resident entry by bare signature (any stored order),
    /// returning its schema, rows and recorded deps. No validation, no
    /// counter updates, no priority touch — the refresh path uses this
    /// to find the *resident other side* of a delta join and checks the
    /// returned deps against its own version snapshot itself.
    #[allow(clippy::type_complexity)]
    pub fn peek_by_signature(
        &self,
        signature: &str,
    ) -> Option<(Arc<Schema>, Arc<Vec<Tuple>>, Vec<(String, u64)>)> {
        let hash = sig_hash(signature);
        let g = self.shards[self.shard_of(hash)].read();
        g.entries
            .iter()
            .find(|e| e.signature == signature)
            .map(|e| (e.schema.clone(), e.rows.clone(), e.deps.clone()))
    }

    /// Record that a refresh attempt bailed (unsupported shape,
    /// ambiguous merge, racing write, wire fault) and degraded to the
    /// refetch path.
    pub fn note_refresh_bail(&self, key: &FragmentKey) {
        let hash = sig_hash(&key.signature);
        self.shards[self.shard_of(hash)].write().stats.refresh_bails += 1;
    }

    /// Evict globally-minimum-priority entries, one shard lock at a
    /// time, until total bytes fit the budget again.
    fn enforce_budget(&self) -> Vec<(String, u64)> {
        let mut evicted = Vec::new();
        while self.bytes() > self.budget() {
            // pick the shard holding the globally-minimum priority (read
            // locks, one at a time — the choice may go momentarily stale,
            // which only costs evicting the second-best victim)
            let mut best: Option<(usize, f64)> = None;
            for (i, s) in self.shards.iter().enumerate() {
                let g = s.read();
                if let Some(j) = g.min_priority_index() {
                    let p = g.entries[j].priority;
                    if best.map(|(_, bp)| p < bp).unwrap_or(true) {
                        best = Some((i, p));
                    }
                }
            }
            let Some((i, _)) = best else { break };
            let mut g = self.shards[i].write();
            let Some(j) = g.min_priority_index() else { continue };
            let e = g.entries.remove(j);
            self.bytes.fetch_sub(e.bytes, Ordering::Relaxed);
            self.clock_raise(e.priority);
            g.stats.evictions += 1;
            evicted.push((e.sql, e.bytes));
        }
        evicted
    }

    /// Snapshot which fragments are resident, for the optimizer.
    /// Uncoverable (`Gone`) entries are dropped (as at lookup); fresh
    /// entries are advertised at served size, stale-but-covered ones
    /// with their pending replay bytes so the enforcer can price
    /// refresh-by-delta ([`Residency::transfer_cost`]). Pass
    /// `&|_, _| None` for `delta_bytes_of` to advertise fresh entries
    /// only (drop-on-write behavior).
    pub fn residency(
        &self,
        version_of: &dyn Fn(&str) -> Option<u64>,
        delta_bytes_of: &dyn Fn(&str, u64) -> Option<u64>,
    ) -> Residency {
        let mut by_signature: HashMap<String, Vec<ResidentFragment>> = HashMap::new();
        for s in &self.shards {
            let mut g = s.write();
            let mut dropped = Vec::new();
            let freed = g.validate(version_of, delta_bytes_of, |_| true, &mut dropped);
            self.bytes.fetch_sub(freed, Ordering::Relaxed);
            for e in &g.entries {
                let delta_bytes = match e.freshness(version_of, delta_bytes_of) {
                    Freshness::Fresh => None,
                    Freshness::Stale(d) => Some(d),
                    Freshness::Gone => continue, // removed above; unreachable
                };
                by_signature.entry(e.signature.clone()).or_default().push(ResidentFragment {
                    order: e.order.clone(),
                    bytes: e.bytes,
                    delta_bytes,
                });
            }
        }
        Residency { by_signature }
    }

    /// Human-readable serving report: totals plus one line per active
    /// shard (hit/miss/evict/admission-reject/invalidation counters and
    /// entry count). Appended to `EXPLAIN ANALYZE` output by
    /// [`crate::Tango::explain_analyze`].
    pub fn render_report(&self) -> String {
        let mut s = format!(
            "cache: {} shards, {} entries, {}/{} bytes, admission {}\n",
            self.shard_count(),
            self.len(),
            self.bytes(),
            self.budget(),
            if self.admission() { "on" } else { "off" },
        );
        let lens = self.shard_lens();
        for (i, st) in self.shard_stats().iter().enumerate() {
            if st.is_idle() && lens[i] == 0 {
                continue;
            }
            s.push_str(&format!(
                "  shard {i}: {} entries, hits {}, misses {}, evictions {}, \
                 admission rejects {}, invalidations {}, duplicates {}, \
                 refreshes {} ({} delta bytes, {} bails)\n",
                lens[i],
                st.hits,
                st.misses,
                st.evictions,
                st.admission_rejects,
                st.invalidations,
                st.duplicate_populates,
                st.refreshes,
                st.refresh_bytes,
                st.refresh_bails,
            ));
        }
        s
    }

    /// The serving report as JSON (via the `tango-trace` writer):
    /// `{"shards": n, "bytes": .., "budget": .., "per_shard": [...]}`.
    pub fn stats_json(&self) -> String {
        use tango_trace::json::Object;
        let mut o = Object::new();
        o.number("shards", self.shard_count() as f64);
        o.number("entries", self.len() as f64);
        o.number("bytes", self.bytes() as f64);
        o.number("budget", self.budget() as f64);
        o.string("admission", if self.admission() { "on" } else { "off" });
        let total = self.stats();
        o.raw("totals", &stats_json_object(&total));
        let shards: Vec<String> = self.shard_stats().iter().map(stats_json_object).collect();
        o.raw("per_shard", &format!("[{}]", shards.join(",")));
        o.build()
    }
}

fn stats_json_object(s: &CacheStats) -> String {
    use tango_trace::json::Object;
    let mut o = Object::new();
    o.number("hits", s.hits as f64);
    o.number("misses", s.misses as f64);
    o.number("bypasses", s.bypasses as f64);
    o.number("insertions", s.insertions as f64);
    o.number("evictions", s.evictions as f64);
    o.number("invalidations", s.invalidations as f64);
    o.number("rejections", s.rejections as f64);
    o.number("admission_rejects", s.admission_rejects as f64);
    o.number("duplicate_populates", s.duplicate_populates as f64);
    o.number("refreshes", s.refreshes as f64);
    o.number("refresh_bytes", s.refresh_bytes as f64);
    o.number("refresh_bails", s.refresh_bails as f64);
    o.build()
}

/// Whether `new` dependency versions strictly supersede `old`: every
/// table's version is ≥ the incumbent's and at least one moved (a
/// different table set also replaces — it cannot happen for equal
/// signatures, but must not wedge the store if it somehow does).
fn newer_deps(new: &[(String, u64)], old: &[(String, u64)]) -> bool {
    if new.len() != old.len() {
        return true;
    }
    let mut any_newer = false;
    for (t, v) in new {
        match old.iter().find(|(ot, _)| ot == t) {
            Some((_, ov)) => {
                if v < ov {
                    return false;
                }
                if v > ov {
                    any_newer = true;
                }
            }
            None => return true,
        }
    }
    any_newer
}

/// One resident fragment in a [`Residency`] snapshot: delivered order,
/// stored size, and — when stale — the pending delta-replay bytes.
#[derive(Debug, Clone)]
struct ResidentFragment {
    order: SortSpec,
    bytes: u64,
    /// `None` = fresh; `Some(d)` = stale with `d` replay bytes pending.
    delta_bytes: Option<u64>,
}

/// An optimizer-facing snapshot of cache contents: which canonical
/// fragment signatures are resident, in which orders, at what size, and
/// how stale. Taken once per optimization ([`MidCache::residency`]) so
/// planning sees a consistent view.
#[derive(Debug, Clone, Default)]
pub struct Residency {
    by_signature: HashMap<String, Vec<ResidentFragment>>,
}

impl Residency {
    /// Whether no fragment is resident.
    pub fn is_empty(&self) -> bool {
        self.by_signature.is_empty()
    }

    /// If a *fresh* fragment with this signature is resident in an
    /// order that [satisfies](SortSpec::satisfies) `required`, the
    /// stored byte size (smallest such entry); `None` otherwise. Stale
    /// entries are priced by [`Residency::transfer_cost`], not
    /// advertised here.
    pub fn serves(&self, signature: &str, required: &SortSpec) -> Option<u64> {
        self.by_signature
            .get(signature)?
            .iter()
            .filter(|r| r.delta_bytes.is_none() && r.order.satisfies(required))
            .map(|r| r.bytes)
            .min()
    }

    /// The cheapest cost (µs) of a `TRANSFER^M` served from residency:
    /// `p_cached × bytes` for a fresh entry, delta replay + merge + the
    /// cached serve for a stale one. `None` when nothing satisfying is
    /// resident — the enforcer then pays the full transfer. Callers
    /// still `min` the result with the full-transfer cost: a stale
    /// entry's refresh may be priced worse than refetching, and the
    /// engine will indeed refetch in that case.
    pub fn transfer_cost(
        &self,
        signature: &str,
        required: &SortSpec,
        factors: &CostFactors,
    ) -> Option<f64> {
        self.by_signature
            .get(signature)?
            .iter()
            .filter(|r| r.order.satisfies(required))
            .map(|r| {
                let serve = factors.p_cached * r.bytes.max(1) as f64;
                match r.delta_bytes {
                    None => serve,
                    Some(d) => refresh_cost_us(factors, r.bytes, d) + serve,
                }
            })
            .min_by(f64::total_cmp)
    }
}

/// What to do with a stale-but-covered cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Maintenance {
    /// Replay the delta log over the resident base and keep serving.
    Refresh,
    /// Drop the entry and refill it with a full transfer (the normal
    /// miss + populate path).
    Refetch,
    /// Drop the entry and do *not* repopulate: the entry has not earned
    /// its keep, so the transfer runs uncached without a populate.
    Drop,
}

/// Estimated cost (µs) of refreshing a stale entry by delta: shipping
/// `delta_bytes` over the wire ([`CostFactors::p_tm`]) plus merging the
/// replay into the resident base ([`CostFactors::p_delta`] per byte of
/// base + delta).
pub fn refresh_cost_us(factors: &CostFactors, base_bytes: u64, delta_bytes: u64) -> f64 {
    factors.p_tm * delta_bytes as f64 + factors.p_delta * (base_bytes + delta_bytes) as f64
}

/// Decide the fate of a stale entry by cost alone.
///
/// The demand signal is `benefit = fill_cost_us × hits` — what the
/// entry's observed hit rate would save if it stayed warm. **Refresh**
/// wins when it is supported and cheaper than both a refill and the
/// benefit; otherwise **Refetch** when the refill is covered by the
/// benefit; otherwise **Drop** (in particular, a never-hit entry has
/// zero benefit and is always dropped).
pub fn maintenance_choice(
    factors: &CostFactors,
    base_bytes: u64,
    delta_bytes: u64,
    fill_cost_us: f64,
    hits: u64,
    refresh_supported: bool,
) -> Maintenance {
    let benefit = fill_cost_us * hits as f64;
    let refresh = refresh_cost_us(factors, base_bytes, delta_bytes);
    if refresh_supported && refresh <= fill_cost_us && refresh <= benefit {
        Maintenance::Refresh
    } else if fill_cost_us <= benefit {
        Maintenance::Refetch
    } else {
        Maintenance::Drop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_algebra::{tup, Attr, Expr, Type};

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![Attr::new("A", Type::Int)]))
    }

    fn key(signature: &str) -> FragmentKey {
        FragmentKey {
            signature: signature.to_string(),
            order: SortSpec::none(),
            sql: format!("SELECT {signature}"),
            tables: vec!["T".into()],
        }
    }

    fn rows(n: usize) -> Vec<Tuple> {
        (0..n as i64).map(|i| tup![i]).collect()
    }

    /// No delta source: every stale entry is `Gone`, restoring the
    /// pre-maintenance drop-on-write behavior the older tests pin.
    fn no_delta(_: &str, _: u64) -> Option<u64> {
        None
    }

    /// The two signature computations — compositional over `TOp` and
    /// erased from a physical fragment — agree on the same shape.
    #[test]
    fn signature_parity_logical_vs_physical() {
        let pred = Expr::eq(Expr::col("PosID"), Expr::lit(7));
        let sig_get = top_signature(&TOp::Get { table: "position".into() }, &[]);
        let sig_sel = top_signature(&TOp::Select { pred: pred.clone() }, &[sig_get]);

        let scan =
            PhysNode { algo: Algo::ScanD("position".into()), schema: schema(), children: vec![] };
        let filter = PhysNode { algo: Algo::FilterD(pred), schema: schema(), children: vec![scan] };
        let k = fragment_key(&filter, "SELECT ...", &|_| false).expect("cacheable");
        assert_eq!(k.signature, sig_sel);
        assert_eq!(k.tables, vec!["POSITION".to_string()]);
        assert_eq!(k.order, SortSpec::none());
    }

    /// A topmost `SORT^D` becomes the key's delivered order; an interior
    /// sort or a temp-table scan makes the fragment uncacheable.
    #[test]
    fn sort_peeling_and_uncacheable_shapes() {
        let scan =
            PhysNode { algo: Algo::ScanD("POSITION".into()), schema: schema(), children: vec![] };
        let sorted = PhysNode {
            algo: Algo::SortD(SortSpec::by(["A"])),
            schema: schema(),
            children: vec![scan.clone()],
        };
        let k = fragment_key(&sorted, "sql", &|_| false).unwrap();
        assert_eq!(k.order, SortSpec::by(["A"]));
        assert_eq!(k.signature, "GET[POSITION]()");

        // interior sort: SEL over SORT^D cannot be keyed
        let sel_over_sort = PhysNode {
            algo: Algo::FilterD(Expr::lit(1)),
            schema: schema(),
            children: vec![sorted],
        };
        assert!(fragment_key(&sel_over_sort, "sql", &|_| false).is_none());

        // temp-table scan: contents are middleware state, not versioned
        assert!(fragment_key(&scan, "sql", &|t| t == "POSITION").is_none());
    }

    #[test]
    fn lookup_miss_then_hit_and_order_satisfaction() {
        let cache = MidCache::new(1 << 20);
        let versions = |_: &str| Some(1);
        let mut k = key("GET[T]()");
        k.order = SortSpec::by(["A"]);
        assert!(matches!(cache.lookup(&k, &versions, &no_delta), Lookup::Miss { .. }));
        cache.insert(&k, schema(), rows(10), vec![("T".into(), 1)], 500.0);
        // stored order (A) satisfies both (A) and the unsorted request
        assert!(matches!(cache.lookup(&k, &versions, &no_delta), Lookup::Hit(_)));
        let unordered = key("GET[T]()");
        match cache.lookup(&unordered, &versions, &no_delta) {
            Lookup::Hit(rel) => assert_eq!(rel.rows.len(), 10),
            other => panic!("expected hit, got {other:?}"),
        }
        // but a different requested order misses
        let mut by_b = key("GET[T]()");
        by_b.order = SortSpec::by(["B"]);
        assert!(matches!(cache.lookup(&by_b, &versions, &no_delta), Lookup::Miss { .. }));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 2));
    }

    /// A moved write-version drops the entry at the next lookup and
    /// reports its SQL for the `invalidate` span event.
    #[test]
    fn version_bump_invalidates() {
        let cache = MidCache::new(1 << 20);
        let k = key("GET[T]()");
        cache.insert(&k, schema(), rows(4), vec![("T".into(), 1)], 100.0);
        assert!(matches!(cache.lookup(&k, &|_| Some(1), &no_delta), Lookup::Hit(_)));
        match cache.lookup(&k, &|_| Some(2), &no_delta) {
            Lookup::Miss { invalidated } => assert_eq!(invalidated, vec![k.sql.clone()]),
            other => panic!("expected invalidating miss, got {other:?}"),
        }
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0, "invalidation must release the global byte count");
        assert_eq!(cache.stats().invalidations, 1);
        // residency snapshots validate too
        cache.insert(&k, schema(), rows(4), vec![("T".into(), 2)], 100.0);
        assert!(cache.residency(&|_| Some(3), &no_delta).is_empty());
        assert_eq!(cache.bytes(), 0);
    }

    /// GreedyDual-Size: under pressure the entry with the lowest
    /// cost-per-byte goes first, and the byte budget is never exceeded.
    /// (Admission gating is switched off to isolate the eviction order.)
    #[test]
    fn gds_eviction_prefers_cheap_large_entries() {
        let row_bytes = rows(1).iter().map(|t| t.byte_size() as u64).sum::<u64>();
        // room for exactly two 8-row entries
        let cache = MidCache::new(row_bytes * 17);
        cache.set_admission(false);
        let cheap = key("CHEAP");
        let dear = key("DEAR");
        let third = key("THIRD");
        cache.insert(&cheap, schema(), rows(8), vec![], 10.0);
        cache.insert(&dear, schema(), rows(8), vec![], 10_000.0);
        let adm = cache.insert(&third, schema(), rows(8), vec![], 1_000.0);
        assert_eq!(adm.evicted.len(), 1);
        assert_eq!(adm.evicted[0].0, cheap.sql, "cheapest-to-refill entry should go first");
        assert!(cache.bytes() <= cache.budget());
        assert_eq!(cache.len(), 2);
        let v = |_: &str| Some(1);
        assert!(matches!(cache.lookup(&dear, &v, &no_delta), Lookup::Hit(_)));
        assert!(matches!(cache.lookup(&cheap, &v, &no_delta), Lookup::Miss { .. }));
    }

    /// An entry larger than the whole budget is rejected outright rather
    /// than flushing everything else.
    #[test]
    fn oversized_entries_are_rejected() {
        let cache = MidCache::new(16);
        let adm = cache.insert(&key("BIG"), schema(), rows(1000), vec![], 1.0);
        assert!(!adm.admitted);
        assert_eq!(adm.outcome, AdmitOutcome::Oversized);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().rejections, 1);
    }

    /// Exactly-one-populate: a same-deps re-insert (a racing session
    /// that drained the same miss) is a duplicate and changes nothing;
    /// fresher deps replace; staler deps lose.
    #[test]
    fn duplicate_and_stale_populates_are_dropped() {
        let cache = MidCache::new(1 << 20);
        let k = key("GET[T]()");
        assert!(cache.insert(&k, schema(), rows(8), vec![("T".into(), 1)], 1.0).admitted);
        let bytes_once = cache.bytes();

        // identical deps: the racing second populate is a no-op
        let adm = cache.insert(&k, schema(), rows(8), vec![("T".into(), 1)], 1.0);
        assert!(!adm.admitted);
        assert_eq!(adm.outcome, AdmitOutcome::Duplicate);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), bytes_once, "a duplicate populate double-counted bytes");

        // staler deps lose against the fresher incumbent
        cache.insert(&k, schema(), rows(4), vec![("T".into(), 3)], 1.0);
        let adm = cache.insert(&k, schema(), rows(8), vec![("T".into(), 2)], 1.0);
        assert_eq!(adm.outcome, AdmitOutcome::Duplicate);
        match cache.lookup(&k, &|_| Some(3), &no_delta) {
            Lookup::Hit(rel) => assert_eq!(rel.rows.len(), 4, "stale populate replaced fresh"),
            other => panic!("expected hit, got {other:?}"),
        }

        // fresher deps replace in place (no duplicate entries)
        let adm = cache.insert(&k, schema(), rows(2), vec![("T".into(), 5)], 1.0);
        assert!(adm.admitted);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().insertions, 3);
        assert_eq!(cache.stats().duplicate_populates, 2);
    }

    /// TinyLFU admission: under byte pressure a cold candidate cannot
    /// displace the incumbent, but a fragment that keeps being asked for
    /// accumulates frequency and wins on a later attempt.
    #[test]
    fn admission_gate_prefers_hot_fragments() {
        let row_bytes = rows(1).iter().map(|t| t.byte_size() as u64).sum::<u64>();
        // one shard so the contest is deterministic; room for one entry
        let cache = MidCache::with_shards(row_bytes * 10, 1);
        let v = |_: &str| Some(1);
        let incumbent = key("INCUMBENT");
        let challenger = key("CHALLENGER");
        assert!(cache.insert(&incumbent, schema(), rows(8), vec![], 1_000.0).admitted);

        // a cold challenger is rejected, the incumbent stays
        let adm = cache.insert(&challenger, schema(), rows(8), vec![], 1_000.0);
        assert!(!adm.admitted);
        assert_eq!(adm.outcome, AdmitOutcome::Rejected);
        assert!(matches!(cache.lookup(&incumbent, &v, &no_delta), Lookup::Hit(_)));
        assert!(cache.stats().admission_rejects >= 1);

        // demand for the challenger keeps arriving (missed lookups feed
        // the sketch) — eventually it outweighs the incumbent and enters
        for _ in 0..4 {
            assert!(matches!(cache.lookup(&challenger, &v, &no_delta), Lookup::Miss { .. }));
        }
        let adm = cache.insert(&challenger, schema(), rows(8), vec![], 1_000.0);
        assert!(adm.admitted, "a repeatedly-requested fragment must win admission");
        assert!(matches!(cache.lookup(&challenger, &v, &no_delta), Lookup::Hit(_)));
    }

    /// Fragments cheaper to refetch than the space they occupy are
    /// rejected under pressure — and admitted when the gate is off.
    #[test]
    fn admission_gate_rejects_cheap_refetches() {
        let row_bytes = rows(1).iter().map(|t| t.byte_size() as u64).sum::<u64>();
        let cache = MidCache::with_shards(row_bytes * 10, 1);
        assert!(cache.insert(&key("A"), schema(), rows(8), vec![], 1_000.0).admitted);
        // fill cost far below ADMISSION_MIN_FILL_US_PER_BYTE × bytes
        let adm = cache.insert(&key("B"), schema(), rows(8), vec![], 0.001);
        assert_eq!(adm.outcome, AdmitOutcome::Rejected);

        cache.set_admission(false);
        let adm = cache.insert(&key("B"), schema(), rows(8), vec![], 0.001);
        assert!(adm.admitted, "with the gate off, GDS alone decides");
    }

    /// With no pressure there is no admission contest: everything
    /// cleanly drained is admitted, exactly as before the serving tier.
    #[test]
    fn unpressured_cache_admits_everything() {
        let cache = MidCache::new(1 << 20);
        for i in 0..10 {
            let adm = cache.insert(&key(&format!("K{i}")), schema(), rows(4), vec![], 0.0001);
            assert!(adm.admitted);
        }
        assert_eq!(cache.stats().admission_rejects, 0);
        assert_eq!(cache.len(), 10);
    }

    /// Same signature + order with fresher deps replaces in place (no
    /// duplicate entries); shrinking the budget evicts down to it.
    #[test]
    fn replacement_and_budget_shrink() {
        let cache = MidCache::new(1 << 20);
        let k = key("GET[T]()");
        cache.insert(&k, schema(), rows(8), vec![("T".into(), 1)], 1.0);
        cache.insert(&k, schema(), rows(4), vec![("T".into(), 2)], 1.0);
        assert_eq!(cache.len(), 1);
        match cache.lookup(&k, &|_| Some(2), &no_delta) {
            Lookup::Hit(rel) => assert_eq!(rel.rows.len(), 4),
            other => panic!("expected hit, got {other:?}"),
        }
        cache.set_budget(1);
        assert_eq!(cache.len(), 0);
        assert!(cache.bytes() <= 1);
    }

    /// The byte budget is global across shards: many entries spread over
    /// different shards must still sum below the budget, with eviction
    /// reaching across shards.
    #[test]
    fn byte_budget_is_global_across_shards() {
        let entry_bytes = rows(8).iter().map(|t| t.byte_size() as u64).sum::<u64>();
        let cache = MidCache::with_shards(entry_bytes * 3 + entry_bytes / 2, 8);
        cache.set_admission(false);
        for i in 0..12 {
            cache.insert(&key(&format!("SIG{i}")), schema(), rows(8), vec![], 100.0);
            assert!(
                cache.bytes() <= cache.budget(),
                "global budget exceeded: {} > {}",
                cache.bytes(),
                cache.budget()
            );
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().evictions, 9);
        // entries really are spread over multiple shards
        assert!(cache.shard_lens().iter().filter(|&&n| n > 0).count() >= 2);
    }

    #[test]
    fn residency_reports_smallest_satisfying_entry() {
        let cache = MidCache::new(1 << 20);
        let mut sorted = key("GET[T]()");
        sorted.order = SortSpec::by(["A"]);
        cache.insert(&sorted, schema(), rows(20), vec![("T".into(), 1)], 1.0);
        cache.insert(&key("GET[T]()"), schema(), rows(5), vec![("T".into(), 1)], 1.0);
        let r = cache.residency(&|_| Some(1), &no_delta);
        let small = r.serves("GET[T]()", &SortSpec::none()).unwrap();
        let ordered = r.serves("GET[T]()", &SortSpec::by(["A"])).unwrap();
        assert!(small < ordered, "unordered request should pick the smaller entry");
        assert!(r.serves("GET[T]()", &SortSpec::by(["B"])).is_none());
        assert!(r.serves("OTHER", &SortSpec::none()).is_none());
    }

    #[test]
    fn explicit_table_invalidation() {
        let cache = MidCache::new(1 << 20);
        cache.insert(&key("A"), schema(), rows(2), vec![("T".into(), 1)], 1.0);
        let mut other = key("B");
        other.tables = vec!["U".into()];
        cache.insert(&other, schema(), rows(2), vec![("U".into(), 1)], 1.0);
        assert_eq!(cache.invalidate_table("t"), 1);
        assert_eq!(cache.len(), 1);
    }

    /// The serving report lists totals and only the active shards; the
    /// JSON form is well-formed enough for the trace tooling.
    #[test]
    fn report_renders_shards_and_json() {
        let cache = MidCache::with_shards(1 << 20, 4);
        cache.insert(&key("A"), schema(), rows(2), vec![("T".into(), 1)], 1.0);
        let _ = cache.lookup(&key("A"), &|_| Some(1), &no_delta);
        cache.note_bypass();
        let text = cache.render_report();
        assert!(text.starts_with("cache: 4 shards, 1 entries"), "{text}");
        assert!(text.contains("hits 1"), "{text}");
        let json = cache.stats_json();
        assert!(json.contains("\"per_shard\":["), "{json}");
        assert!(json.contains("\"bypasses\":1"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
    }

    /// Hammer one cache from many threads: mixed lookups, inserts and
    /// invalidations must keep the global byte count exact and never
    /// deadlock or double-free.
    #[test]
    fn concurrent_hammer_keeps_accounting_exact() {
        use std::thread;
        let entry_bytes = rows(8).iter().map(|t| t.byte_size() as u64).sum::<u64>();
        let cache = Arc::new(MidCache::with_shards(entry_bytes * 6, 4));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let cache = cache.clone();
            handles.push(thread::spawn(move || {
                for i in 0..200u64 {
                    let k = key(&format!("SIG{}", (t * 7 + i) % 10));
                    match cache.lookup(&k, &|_| Some(1), &no_delta) {
                        Lookup::Hit(rel) => assert_eq!(rel.rows.len(), 8),
                        Lookup::Stale { .. } => unreachable!("no delta source"),
                        Lookup::Miss { .. } => {
                            cache.insert(&k, schema(), rows(8), vec![("T".into(), 1)], 500.0);
                        }
                    }
                    if i % 50 == 49 {
                        cache.invalidate_table("T");
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.bytes() <= cache.budget());
        // recount from scratch: the atomic total must match the shards
        let recount: u64 = {
            let r = cache.residency(&|_| Some(1), &no_delta);
            let _ = r;
            cache.shard_lens().iter().sum::<usize>() as u64 * entry_bytes
        };
        assert_eq!(cache.bytes(), recount, "byte accounting drifted under concurrency");
    }

    /// With a covering delta source, a moved version surfaces the entry
    /// as `Stale` (carrying replay bytes) instead of dropping it; an
    /// uncovered table still degrades to the invalidating miss.
    #[test]
    fn covered_staleness_is_surfaced_not_dropped() {
        let cache = MidCache::new(1 << 20);
        let k = key("GET[T]()");
        cache.insert(&k, schema(), rows(4), vec![("T".into(), 1)], 100.0);
        let covered = |_: &str, since: u64| Some(since * 7);
        match cache.lookup(&k, &|_| Some(3), &covered) {
            Lookup::Stale { entry, invalidated } => {
                assert_eq!(entry.rows.len(), 4);
                assert_eq!(entry.delta_bytes, 7, "replay bytes since the recorded version");
                assert_eq!(entry.deps, vec![("T".to_string(), 1)]);
                assert!(invalidated.is_empty());
            }
            other => panic!("expected stale, got {other:?}"),
        }
        assert_eq!(cache.len(), 1, "a covered stale entry must stay resident");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (0, 0, 0));
        // the same moved version without delta coverage: dropped as before
        match cache.lookup(&k, &|_| Some(3), &no_delta) {
            Lookup::Miss { invalidated } => assert_eq!(invalidated, vec![k.sql.clone()]),
            other => panic!("expected invalidating miss, got {other:?}"),
        }
        assert!(cache.is_empty());
    }

    /// `refresh` replaces rows and deps in place, counts a refresh and
    /// a hit, and keeps byte accounting exact; stale-deps refreshes and
    /// refreshes of vanished entries are rejected.
    #[test]
    fn refresh_commits_in_place() {
        let cache = MidCache::new(1 << 20);
        let k = key("GET[T]()");
        cache.insert(&k, schema(), rows(4), vec![("T".into(), 1)], 100.0);
        assert!(cache.refresh(&k, Arc::new(rows(6)), vec![("T".into(), 3)], 42));
        assert_eq!(cache.len(), 1);
        let expected: u64 = rows(6).iter().map(|t| t.byte_size() as u64).sum();
        assert_eq!(cache.bytes(), expected, "refresh must swap the byte accounting");
        match cache.lookup(&k, &|_| Some(3), &no_delta) {
            Lookup::Hit(rel) => assert_eq!(rel.rows.len(), 6),
            other => panic!("expected hit on refreshed entry, got {other:?}"),
        }
        let s = cache.stats();
        assert_eq!((s.refreshes, s.refresh_bytes), (1, 42));
        assert_eq!(s.hits, 2, "the refresh itself serves the querying session");
        // a racing refresh carrying older deps loses
        assert!(!cache.refresh(&k, Arc::new(rows(1)), vec![("T".into(), 2)], 1));
        // refreshing an entry that is no longer resident is a no-op
        assert!(cache.remove(&k));
        assert!(!cache.refresh(&k, Arc::new(rows(1)), vec![("T".into(), 9)], 1));
        assert_eq!(cache.stats().invalidations, 1, "remove counts as an invalidation");
        assert_eq!(cache.bytes(), 0);
    }

    /// All three maintenance outcomes are reachable by cost alone.
    #[test]
    fn maintenance_choice_reaches_all_three() {
        let f = CostFactors::default();
        // hot entry, small delta: refresh is cheapest
        assert_eq!(maintenance_choice(&f, 10_000, 100, 5_000.0, 3, true), Maintenance::Refresh);
        // hot entry, but the shape has no delta rule: refetch
        assert_eq!(maintenance_choice(&f, 10_000, 100, 5_000.0, 3, false), Maintenance::Refetch);
        // hot entry, delta dwarfs the base refill: refetch wins on cost
        assert_eq!(maintenance_choice(&f, 10_000, 40_000, 5_000.0, 3, true), Maintenance::Refetch);
        // never-hit entry: zero benefit, drop
        assert_eq!(maintenance_choice(&f, 10_000, 100, 5_000.0, 0, true), Maintenance::Drop);
    }

    /// Residency prices stale entries at replay + merge + serve, fresh
    /// ones at the cached serve; `serves` stays fresh-only.
    #[test]
    fn residency_prices_stale_entries() {
        let f = CostFactors::default();
        let cache = MidCache::new(1 << 20);
        let k = key("GET[T]()");
        cache.insert(&k, schema(), rows(10), vec![("T".into(), 1)], 100.0);
        let base: u64 = rows(10).iter().map(|t| t.byte_size() as u64).sum();

        let fresh = cache.residency(&|_| Some(1), &no_delta);
        let fresh_cost = fresh.transfer_cost("GET[T]()", &SortSpec::none(), &f).unwrap();
        assert!((fresh_cost - f.p_cached * base as f64).abs() < 1e-9);

        let covered = |_: &str, _: u64| Some(64);
        let stale = cache.residency(&|_| Some(2), &covered);
        assert!(stale.serves("GET[T]()", &SortSpec::none()).is_none(), "serves is fresh-only");
        let stale_cost = stale.transfer_cost("GET[T]()", &SortSpec::none(), &f).unwrap();
        let expected = refresh_cost_us(&f, base, 64) + f.p_cached * base as f64;
        assert!((stale_cost - expected).abs() < 1e-9);
        assert!(stale_cost > fresh_cost);
    }
}
