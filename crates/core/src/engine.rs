//! The Execution Engine (Figure 2 of the paper).
//!
//! An execution-ready plan is a sequence of algorithms with parameters
//! and arguments. Middleware algorithms become pipelined `tango-xxl`
//! cursors; each `TRANSFER^M` issues a SELECT produced by the
//! Translator-To-SQL; each `TRANSFER^D` creates a uniquely named temp
//! table and bulk-loads its argument during `open()` (the paper:
//! "[init] fetches all tuples of the argument result set and copies
//! them into the DBMS"). Temp tables are dropped at the end of the query.
//!
//! Every cursor is instrumented: per-algorithm inclusive time and output
//! volume feed the adaptive cost-factor loop (`crate::feedback`).

use crate::error::{Result, TangoError};
use crate::phys::{Algo, PhysNode, Site};
use crate::to_sql;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tango_algebra::{Relation, Schema, Tuple};
use tango_minidb::{Connection, DbCursor};
use tango_xxl::{
    BoxCursor, Coalesce, Cursor, DupElim, Filter, MergeJoin, Project, Sort, TemporalAggregate,
    TemporalDiff, TemporalMergeJoin,
};

/// Observed execution of one algorithm instance.
#[derive(Debug, Clone)]
pub struct StepReport {
    pub algo: Algo,
    pub label: String,
    /// Inclusive wall time (children included), µs.
    pub inclusive_us: f64,
    /// Exclusive wall time, µs.
    pub exclusive_us: f64,
    pub out_rows: u64,
    pub out_bytes: u64,
    /// DBMS server compute time included in this step (µs) — nonzero only
    /// for `TRANSFER^M`, whose query execution happens inside the DBMS.
    pub server_us: f64,
    /// Indices of child steps within the report.
    pub children: Vec<usize>,
}

/// Whole-query execution report.
#[derive(Debug, Clone)]
pub struct ExecReport {
    pub rows: usize,
    /// Wall time of the whole execution (compute; excludes virtual wire).
    pub wall: Duration,
    /// Virtual wire time charged during this execution.
    pub wire: Duration,
    /// Per-algorithm observations (post-order).
    pub steps: Vec<StepReport>,
}

impl ExecReport {
    /// Total cost as the experiments report it: wall + simulated wire.
    pub fn total(&self) -> Duration {
        self.wall + self.wire
    }
}

/// Execute an optimized physical plan against the DBMS connection,
/// returning the materialized result and the execution report.
pub fn execute(conn: &Connection, plan: &PhysNode) -> Result<(Relation, ExecReport)> {
    if plan.algo.site() != Site::Middleware {
        return Err(TangoError::Exec(
            "plan root must be middleware-resident (delivery to the client)".into(),
        ));
    }
    let wire_before = conn.link().total();
    let mut ctx = Ctx { conn, temp_tables: Vec::new(), slots: Vec::new(), temp_seq: 0 };
    let started = Instant::now();
    let result = (|| -> Result<Relation> {
        let mut root = ctx.build_mid(plan)?;
        root.open()?;
        let schema = root.schema().clone();
        let mut rows = Vec::new();
        while let Some(t) = root.next()? {
            rows.push(t);
        }
        Ok(Relation::new(schema, rows))
    })();
    let wall = started.elapsed();
    // drop temp tables whatever happened ("the table must be dropped at
    // the end of the query")
    for t in &ctx.temp_tables {
        let _ = conn.execute(&format!("DROP TABLE IF EXISTS {t}"));
    }
    let result = result?;
    let wire = conn.link().total().saturating_sub(wire_before);

    // assemble step reports with exclusive times
    let mut steps: Vec<StepReport> = ctx
        .slots
        .iter()
        .map(|s| StepReport {
            algo: s.algo.clone(),
            label: s.algo.label(),
            inclusive_us: s.ns.load(Ordering::Relaxed) as f64 / 1000.0,
            exclusive_us: 0.0,
            out_rows: s.rows.load(Ordering::Relaxed),
            out_bytes: s.bytes.load(Ordering::Relaxed),
            server_us: s.server_ns.load(Ordering::Relaxed) as f64 / 1000.0,
            children: s.children.clone(),
        })
        .collect();
    for i in 0..steps.len() {
        let child_sum: f64 = steps[i]
            .children
            .iter()
            .map(|&c| steps[c].inclusive_us)
            .sum();
        steps[i].exclusive_us = (steps[i].inclusive_us - child_sum).max(0.0);
    }
    let report = ExecReport { rows: result.len(), wall, wire, steps };
    Ok((result, report))
}

struct Slot {
    algo: Algo,
    ns: AtomicU64,
    rows: AtomicU64,
    bytes: AtomicU64,
    /// Server-side execution time observed by this step's query (shared
    /// with the `TRANSFER^M` cursor that records it).
    server_ns: Arc<AtomicU64>,
    children: Vec<usize>,
}

struct Ctx<'a> {
    conn: &'a Connection,
    temp_tables: Vec<String>,
    slots: Vec<Arc<Slot>>,
    temp_seq: usize,
}

impl Ctx<'_> {
    fn new_slot(&mut self, algo: Algo, children: Vec<usize>) -> (usize, Arc<Slot>) {
        let slot = Arc::new(Slot {
            algo,
            ns: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            server_ns: Arc::new(AtomicU64::new(0)),
            children,
        });
        self.slots.push(slot.clone());
        (self.slots.len() - 1, slot)
    }

    /// Build the cursor for a middleware-resident node. Returns the cursor
    /// and its slot index.
    fn build_mid(&mut self, node: &PhysNode) -> Result<BoxCursor> {
        Ok(self.build_mid_indexed(node)?.0)
    }

    fn build_mid_indexed(&mut self, node: &PhysNode) -> Result<(BoxCursor, usize)> {
        // TRANSFER^M needs its slot's server-time sink, which exists only
        // after the slot is created: defer its construction.
        let mut server_sink: Option<Box<dyn FnOnce(Arc<AtomicU64>) -> BoxCursor>> = None;
        let (inner, child_ids): (BoxCursor, Vec<usize>) = match &node.algo {
            Algo::TransferM => {
                // lower the DBMS subtree: replace T^D descendants with temp
                // scans, building their loader cursors as prerequisites
                let (clean, prereqs, prereq_ids) = self.lower_dbms(&node.children[0])?;
                let sql = to_sql::render_select(&clean)?;
                let conn = self.conn.clone();
                let schema = node.schema.clone();
                server_sink = Some(Box::new(move |sink: Arc<AtomicU64>| -> BoxCursor {
                    Box::new(TransferMCursor {
                        conn,
                        sql,
                        schema,
                        prereqs,
                        cur: None,
                        server_ns: Some(sink),
                    })
                }));
                // placeholder; replaced once the slot exists
                (Box::new(EmptyCursor { schema: node.schema.clone() }) as BoxCursor, prereq_ids)
            }
            Algo::FilterM(pred) => {
                let (c, id) = self.build_mid_indexed(&node.children[0])?;
                (Box::new(Filter::new(c, pred.clone())) as BoxCursor, vec![id])
            }
            Algo::ProjectM(items) => {
                let (c, id) = self.build_mid_indexed(&node.children[0])?;
                (Box::new(Project::new(c, items.clone())?) as BoxCursor, vec![id])
            }
            Algo::SortM(spec) => {
                let (c, id) = self.build_mid_indexed(&node.children[0])?;
                (Box::new(Sort::new(c, spec.clone())) as BoxCursor, vec![id])
            }
            Algo::MergeJoinM(eq) => {
                let (l, lid) = self.build_mid_indexed(&node.children[0])?;
                let (r, rid) = self.build_mid_indexed(&node.children[1])?;
                (Box::new(MergeJoin::new(l, r, eq)?) as BoxCursor, vec![lid, rid])
            }
            Algo::TMergeJoinM(eq) => {
                let (l, lid) = self.build_mid_indexed(&node.children[0])?;
                let (r, rid) = self.build_mid_indexed(&node.children[1])?;
                (Box::new(TemporalMergeJoin::new(l, r, eq)?) as BoxCursor, vec![lid, rid])
            }
            Algo::TAggrM { group_by, aggs } => {
                let (c, id) = self.build_mid_indexed(&node.children[0])?;
                (
                    Box::new(TemporalAggregate::new(c, group_by.clone(), aggs.clone())?)
                        as BoxCursor,
                    vec![id],
                )
            }
            Algo::DupElimM => {
                let (c, id) = self.build_mid_indexed(&node.children[0])?;
                (Box::new(DupElim::new(c)) as BoxCursor, vec![id])
            }
            Algo::CoalesceM => {
                let (c, id) = self.build_mid_indexed(&node.children[0])?;
                (Box::new(Coalesce::new(c)?) as BoxCursor, vec![id])
            }
            Algo::TDiffM => {
                let (l, lid) = self.build_mid_indexed(&node.children[0])?;
                let (r, rid) = self.build_mid_indexed(&node.children[1])?;
                (Box::new(TemporalDiff::new(l, r)?) as BoxCursor, vec![lid, rid])
            }
            other => {
                return Err(TangoError::Exec(format!(
                    "{} is not a middleware algorithm",
                    other.label()
                )))
            }
        };
        let (idx, slot) = self.new_slot(node.algo.clone(), child_ids);
        let inner = match server_sink.take() {
            Some(cursor_builder) => cursor_builder(slot.server_ns.clone()),
            None => inner,
        };
        let link = self.conn.link().clone();
        Ok((Box::new(Instrumented { inner, slot, link }), idx))
    }

    /// Replace `T^D` nodes inside a DBMS fragment with temp-table scans;
    /// returns the cleaned fragment plus the loader cursors that must be
    /// opened before the fragment's SQL runs.
    fn lower_dbms(
        &mut self,
        node: &PhysNode,
    ) -> Result<(PhysNode, Vec<BoxCursor>, Vec<usize>)> {
        if node.algo == Algo::TransferD {
            let (input, input_id) = self.build_mid_indexed(&node.children[0])?;
            self.temp_seq += 1;
            let table = format!("TANGO_TMP_{}", self.temp_seq);
            self.temp_tables.push(table.clone());
            let loader = TransferDCursor {
                conn: self.conn.clone(),
                table: table.clone(),
                schema: node.schema.clone(),
                input: Some(input),
            };
            let (idx, slot) = self.new_slot(Algo::TransferD, vec![input_id]);
            let link = self.conn.link().clone();
            let instrumented: BoxCursor =
                Box::new(Instrumented { inner: Box::new(loader), slot, link });
            let scan = PhysNode {
                algo: Algo::ScanD(table),
                schema: node.schema.clone(),
                children: vec![],
            };
            return Ok((scan, vec![instrumented], vec![idx]));
        }
        if node.algo.site() == Site::Middleware {
            return Err(TangoError::Exec(format!(
                "middleware algorithm {} below a DBMS fragment without a transfer",
                node.algo.label()
            )));
        }
        let mut children = Vec::with_capacity(node.children.len());
        let mut prereqs = Vec::new();
        let mut ids = Vec::new();
        for c in &node.children {
            let (cc, mut p, mut i) = self.lower_dbms(c)?;
            children.push(cc);
            prereqs.append(&mut p);
            ids.append(&mut i);
        }
        Ok((
            PhysNode { algo: node.algo.clone(), schema: node.schema.clone(), children },
            prereqs,
            ids,
        ))
    }
}

/// Cursor wrapper measuring time spent in `open`/`next` — wall clock
/// *plus* any simulated wire time charged while the call ran (so the
/// feedback loop sees transfer costs the way the experiments report
/// them) — and the output volume.
struct Instrumented {
    inner: BoxCursor,
    slot: Arc<Slot>,
    link: Arc<tango_minidb::Link>,
}

impl Instrumented {
    fn measure<T>(&mut self, f: impl FnOnce(&mut BoxCursor) -> T) -> T {
        let w0 = self.link.total();
        let t = Instant::now();
        let r = f(&mut self.inner);
        let spent = t.elapsed() + self.link.total().saturating_sub(w0);
        self.slot.ns.fetch_add(spent.as_nanos() as u64, Ordering::Relaxed);
        r
    }
}

impl Cursor for Instrumented {
    fn schema(&self) -> &Arc<Schema> {
        self.inner.schema()
    }

    fn open(&mut self) -> tango_xxl::Result<()> {
        self.measure(|c| c.open())
    }

    fn next(&mut self) -> tango_xxl::Result<Option<Tuple>> {
        let r = self.measure(|c| c.next());
        if let Ok(Some(tup)) = &r {
            self.slot.rows.fetch_add(1, Ordering::Relaxed);
            self.slot
                .bytes
                .fetch_add(tup.byte_size() as u64, Ordering::Relaxed);
        }
        r
    }
}

/// Placeholder cursor swapped out before use (see `build_mid_indexed`).
struct EmptyCursor {
    schema: Arc<Schema>,
}

impl Cursor for EmptyCursor {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self) -> tango_xxl::Result<()> {
        Err(tango_xxl::ExecError::State("placeholder cursor used".into()))
    }

    fn next(&mut self) -> tango_xxl::Result<Option<Tuple>> {
        Err(tango_xxl::ExecError::State("placeholder cursor used".into()))
    }
}

/// `TRANSFER^M`: issues the translated SELECT and streams the rows out
/// of the (wire-charged) DBMS cursor. Any `T^D` loaders feeding temp
/// tables referenced by the SQL are opened first.
struct TransferMCursor {
    conn: Connection,
    sql: String,
    schema: Arc<Schema>,
    prereqs: Vec<BoxCursor>,
    cur: Option<DbCursor>,
    /// Sink for the producing statement's server-side execution time.
    server_ns: Option<Arc<AtomicU64>>,
}

impl Cursor for TransferMCursor {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self) -> tango_xxl::Result<()> {
        for p in &mut self.prereqs {
            p.open()?;
        }
        let cur = self
            .conn
            .query(&self.sql)
            .map_err(|e| tango_xxl::ExecError::Dbms(e.to_string()))?;
        if cur.schema().len() != self.schema.len() {
            return Err(tango_xxl::ExecError::Dbms(format!(
                "translated SQL arity mismatch: expected {}, got {}",
                self.schema.len(),
                cur.schema().len()
            )));
        }
        if let Some(sink) = &self.server_ns {
            sink.fetch_add(cur.server_time().as_nanos() as u64, Ordering::Relaxed);
        }
        self.cur = Some(cur);
        Ok(())
    }

    fn next(&mut self) -> tango_xxl::Result<Option<Tuple>> {
        match &mut self.cur {
            Some(c) => c.fetch().map_err(|e| tango_xxl::ExecError::Dbms(e.to_string())),
            None => Err(tango_xxl::ExecError::State("TRANSFER^M not opened".into())),
        }
    }
}

/// `TRANSFER^D`: during `open`, drains its argument and direct-path
/// loads it into a fresh DBMS table. Produces no tuples itself — it is a
/// prerequisite step, as in Figure 5 where the top `TRANSFER^M` "does
/// not take any arguments, but must be preceded by the `TRANSFER^D`".
struct TransferDCursor {
    conn: Connection,
    table: String,
    schema: Arc<Schema>,
    input: Option<BoxCursor>,
}

impl Cursor for TransferDCursor {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self) -> tango_xxl::Result<()> {
        let mut input = self
            .input
            .take()
            .ok_or_else(|| tango_xxl::ExecError::State("TRANSFER^D reopened".into()))?;
        input.open()?;
        let mut rows = Vec::new();
        while let Some(t) = input.next()? {
            rows.push(t);
        }
        self.conn
            .load_direct(&self.table, self.schema.as_ref().clone(), rows)
            .map_err(|e| tango_xxl::ExecError::Dbms(e.to_string()))?;
        Ok(())
    }

    fn next(&mut self) -> tango_xxl::Result<Option<Tuple>> {
        Ok(None)
    }
}

impl ExecReport {
    /// Find the first step running the same algorithm *kind* (parameters
    /// ignored for parameterized variants).
    pub fn exec_step(&self, algo: &Algo) -> Option<&StepReport> {
        self.steps
            .iter()
            .find(|s| std::mem::discriminant(&s.algo) == std::mem::discriminant(algo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phys::PhysNode;
    use std::sync::Arc;
    use tango_algebra::{tup, AggFunc, AggSpec, Attr, Schema, SortSpec, Type};
    use tango_minidb::{Connection, Database};

    fn setup() -> Connection {
        let c = Connection::new(Database::in_memory());
        c.execute("CREATE TABLE POSITION (PosID INT, EmpName VARCHAR(20), T1 INT, T2 INT)")
            .unwrap();
        c.execute(
            "INSERT INTO POSITION VALUES (1,'Tom',2,20),(1,'Jane',5,25),(2,'Tom',5,10)",
        )
        .unwrap();
        c
    }

    fn scan(c: &Connection, table: &str) -> PhysNode {
        PhysNode {
            algo: Algo::ScanD(table.into()),
            schema: Arc::new(c.table_schema(table).unwrap()),
            children: vec![],
        }
    }

    fn un(algo: Algo, child: PhysNode) -> PhysNode {
        let schema = Arc::new(algo.output_schema(&[child.schema.as_ref()]).unwrap());
        PhysNode { algo, schema, children: vec![child] }
    }

    fn bin(algo: Algo, l: PhysNode, r: PhysNode) -> PhysNode {
        let schema =
            Arc::new(algo.output_schema(&[l.schema.as_ref(), r.schema.as_ref()]).unwrap());
        PhysNode { algo, schema, children: vec![l, r] }
    }

    /// The full Figure 5 shape: aggregate in the middleware, load the
    /// result back via TRANSFER^D, temporal-join in the DBMS, fetch.
    #[test]
    fn transfer_d_round_trip_executes_figure5() {
        let conn = setup();
        let aggs = vec![AggSpec::new(AggFunc::Count, Some("PosID"), "COUNTofPosID")];
        let agg_m = un(
            Algo::TAggrM { group_by: vec!["PosID".into()], aggs },
            un(
                Algo::TransferM,
                un(Algo::SortD(SortSpec::by(["PosID", "T1"])), scan(&conn, "POSITION")),
            ),
        );
        let eq = vec![("PosID".to_string(), "PosID".to_string())];
        let plan = un(
            Algo::TransferM,
            un(
                Algo::SortD(SortSpec::by(["PosID"])),
                bin(Algo::TJoinD(eq), un(Algo::TransferD, agg_m), scan(&conn, "POSITION")),
            ),
        );
        let (rel, report) = execute(&conn, &plan).unwrap();
        assert_eq!(rel.len(), 5); // Figure 3(b)
        // temp table dropped afterwards
        assert!(!conn
            .database()
            .table_names()
            .iter()
            .any(|t| t.starts_with("TANGO_TMP")));
        // report contains the T^D step with its input accounted
        let td = report
            .exec_step(&Algo::TransferD)
            .expect("TRANSFER^D step missing");
        assert_eq!(td.out_rows, 0); // loader produces no stream
        assert!(report.steps.iter().any(|s| matches!(s.algo, Algo::TAggrM { .. })));
    }

    /// A failing plan must still clean up its temp tables.
    #[test]
    fn temp_tables_cleaned_on_failure() {
        let conn = setup();
        // TransferD feeding a TJoinD whose other side references a
        // missing table => the outer SQL fails after the load happened
        let aggs = vec![AggSpec::new(AggFunc::Count, Some("PosID"), "C")];
        let agg_m = un(
            Algo::TAggrM { group_by: vec!["PosID".into()], aggs },
            un(
                Algo::TransferM,
                un(Algo::SortD(SortSpec::by(["PosID", "T1"])), scan(&conn, "POSITION")),
            ),
        );
        let ghost = PhysNode {
            algo: Algo::ScanD("GHOST".into()),
            schema: Arc::new(Schema::with_inferred_period(vec![
                Attr::new("PosID", Type::Int),
                Attr::new("T1", Type::Int),
                Attr::new("T2", Type::Int),
            ])),
            children: vec![],
        };
        let eq = vec![("PosID".to_string(), "PosID".to_string())];
        let plan = un(
            Algo::TransferM,
            bin(Algo::TJoinD(eq), un(Algo::TransferD, agg_m), ghost),
        );
        assert!(execute(&conn, &plan).is_err());
        assert!(!conn
            .database()
            .table_names()
            .iter()
            .any(|t| t.starts_with("TANGO_TMP")));
    }

    #[test]
    fn dbms_rooted_plans_are_rejected() {
        let conn = setup();
        let plan = scan(&conn, "POSITION");
        assert!(execute(&conn, &plan).is_err());
    }

    #[test]
    fn empty_results_flow_through() {
        let conn = setup();
        let plan = un(
            Algo::FilterM(tango_algebra::Expr::eq(
                tango_algebra::Expr::col("PosID"),
                tango_algebra::Expr::lit(999),
            )),
            un(Algo::TransferM, scan(&conn, "POSITION")),
        );
        let (rel, report) = execute(&conn, &plan).unwrap();
        assert!(rel.is_empty());
        assert_eq!(report.rows, 0);
        let _ = tup![1]; // keep the tup! import exercised
    }
}
